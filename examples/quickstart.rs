//! Quickstart: build a graph database, evaluate queries from every class in
//! the paper's ladder (RPQ → 2RPQ → C2RPQ → RQ), and decide containments.
//!
//! Run with `cargo run --example quickstart`.

use regular_queries::core::containment::{self, Config};
use regular_queries::core::crpq::C2Rpq;
use regular_queries::core::rq::{RqExpr, RqQuery};
use regular_queries::prelude::*;

fn main() {
    // ----- a tiny corporate graph --------------------------------------
    let mut db = GraphDb::new();
    let (alice, bob, carol, dave) = (
        db.node("alice"),
        db.node("bob"),
        db.node("carol"),
        db.node("dave"),
    );
    let acme = db.node("acme");
    let knows = db.label("knows");
    let works_at = db.label("worksAt");
    db.add_edge(alice, knows, bob);
    db.add_edge(bob, knows, carol);
    db.add_edge(carol, knows, dave);
    db.add_edge(alice, works_at, acme);
    db.add_edge(carol, works_at, acme);
    let mut al = db.alphabet().clone();

    // ----- RPQ: transitive acquaintance ---------------------------------
    let fof = Rpq::parse("knows+", &mut al).unwrap();
    println!("knows+ answers:");
    for (x, y) in fof.evaluate(&db) {
        println!("  {} ⇒ {}", db.display_node(x), db.display_node(y));
    }

    // ----- 2RPQ: colleagues (navigate worksAt backwards) ----------------
    let colleagues = TwoRpq::parse("worksAt worksAt-", &mut al).unwrap();
    println!("\ncolleagues (worksAt·worksAt⁻) answers:");
    for (x, y) in colleagues.evaluate(&db) {
        if x != y {
            println!("  {} ~ {}", db.display_node(x), db.display_node(y));
        }
    }

    // ----- C2RPQ: a conjunctive pattern ---------------------------------
    // People x, y such that x knows someone who works at y's employer.
    let q = C2Rpq::parse(
        &["x", "y"],
        &[
            ("knows", "x", "m"),
            ("worksAt", "m", "e"),
            ("worksAt", "y", "e"),
        ],
        &mut al,
    )
    .unwrap();
    println!("\nconjunctive pattern answers:");
    for t in q.evaluate(&db) {
        println!("  x={}, y={}", db.display_node(t[0]), db.display_node(t[1]));
    }

    // ----- RQ: transitive closure of a conjunctive query ----------------
    // "Reachable through chains of colleague-of-acquaintance steps".
    let step = RqExpr::edge(knows, "x", "m")
        .and(RqExpr::edge(works_at, "m", "e"))
        .and(RqExpr::edge(works_at, "y", "e"))
        .project("m")
        .project("e");
    let rq = RqQuery::new(vec!["x".into(), "y".into()], step.closure("x", "y")).unwrap();
    println!(
        "\nRQ (closure of the pattern) answers: {:?}",
        rq.evaluate(&db).len()
    );

    // ----- containment ---------------------------------------------------
    let q1 = Rpq::parse("knows", &mut al).unwrap();
    let out = containment::rpq::check(&q1, &fof, &al);
    println!("\nknows ⊑ knows+ ?  {out}");
    let out = containment::rpq::check(&fof, &q1, &al);
    println!("knows+ ⊑ knows ?  {out}");
    if let Some(w) = out.witness() {
        println!("  counterexample database has {} edges", w.db.num_edges());
    }

    // The paper's flagship 2RPQ example: p ⊑ p p⁻ p.
    let p = TwoRpq::parse("p", &mut al).unwrap();
    let zigzag = TwoRpq::parse("p p- p", &mut al).unwrap();
    let out = two_rpq_containment(&p, &zigzag, &al);
    println!("p ⊑ p p⁻ p ?  {out}   (Lemma 2: folding!)");

    // RQ containment with a budgeted checker.
    let cfg = Config::default();
    let r_plus = TwoRpq::parse("knows+", &mut al).unwrap();
    let rq2 = RqQuery::new(vec!["x".into(), "y".into()], RqExpr::rel2(r_plus, "x", "y")).unwrap();
    let tc_knows = RqQuery::new(
        vec!["x".into(), "y".into()],
        RqExpr::edge(knows, "x", "y").closure("x", "y"),
    )
    .unwrap();
    let out = containment::rq::check(&tc_knows, &rq2, &al, &cfg);
    println!("TC(knows) ⊑ knows+ ?  {out}");
}
