//! Social-network analytics with regular queries.
//!
//! Generates a preferential-attachment graph (the skewed-degree data that
//! motivated graph databases, §1 of the paper) and runs the query ladder
//! over it: reachability RPQs, two-way influence queries, conjunctive
//! patterns, and an RQ with transitive closure over a conjunctive step.
//!
//! Run with `cargo run --release --example social_network`.

use regular_queries::core::crpq::C2Rpq;
use regular_queries::core::rq::{RqExpr, RqQuery};
use regular_queries::graph::generate;
use regular_queries::prelude::*;

fn main() {
    let db = generate::preferential_attachment(2_000, 3, &["knows", "follows"], 2026);
    let mut al = db.alphabet().clone();
    println!(
        "social graph: {} people, {} relationships",
        db.num_nodes(),
        db.num_edges()
    );

    // The hub: the most-connected person.
    let hub = db
        .nodes()
        .max_by_key(|&n| db.degree(n))
        .expect("nonempty graph");
    println!("hub: {} (degree {})", db.display_node(hub), db.degree(hub));

    // RPQ: forward reachability — start from a well-connected *recent*
    // member (in preferential attachment, edges point from newer members
    // to older ones, so the hub itself has no outgoing edges).
    let src = db
        .nodes()
        .max_by_key(|&n| db.out_edges(n).len() * 1000 + db.degree(n))
        .expect("nonempty graph");
    let reach = Rpq::parse("(knows|follows)+", &mut al).unwrap();
    let fwd = reach.evaluate_from(&db, src);
    println!(
        "{} reaches {} people via (knows|follows)+",
        db.display_node(src),
        fwd.len()
    );

    // 2RPQ: the hub's audience — anyone connected by following chains
    // *into* the hub (backward navigation).
    let audience = TwoRpq::parse("(knows-|follows-)+", &mut al).unwrap();
    let aud = audience.evaluate_from(&db, hub);
    println!("hub's transitive audience: {} people", aud.len());

    // 2RPQ with alternating direction: "co-audience" — people who follow
    // someone the hub is followed by (navigates backward then forward).
    let cofollow = TwoRpq::parse("follows- follows (knows- knows)*", &mut al).unwrap();
    let cf = cofollow.evaluate_from(&db, hub);
    println!("co-audience closure around hub: {} people", cf.len());

    // C2RPQ: triangles of mutual awareness around the hub pattern
    // (x knows y, both reach a common celebrity c).
    let pattern = C2Rpq::parse(
        &["x", "y"],
        &[
            ("knows", "x", "y"),
            ("(knows|follows)+", "x", "c"),
            ("(knows|follows)+", "y", "c"),
        ],
        &mut al,
    )
    .unwrap();
    let pats = pattern.evaluate(&db);
    println!("mutual-awareness pairs: {}", pats.len());

    // RQ: transitive closure of a *conjunctive* step — influence chains
    // where each hop is corroborated by a follower.
    let knows = al.get("knows").unwrap();
    let follows = al.get("follows").unwrap();
    let corroborated = RqExpr::edge(knows, "x", "y")
        .and(RqExpr::edge(follows, "w", "y"))
        .project("w");
    let rq = RqQuery::new(vec!["x".into(), "y".into()], corroborated.closure("x", "y")).unwrap();
    let infl = rq.evaluate(&db);
    println!(
        "corroborated-influence closure: {} pairs (genuinely beyond UC2RPQ)",
        infl.len()
    );

    // Witness extraction: a shortest semipath certifying one answer.
    if let Some(&y) = fwd.iter().find(|&&y| y != src) {
        let (x, y) = (src, y);
        let sp = reach
            .as_two_rpq()
            .witness_semipath(&db, x, y)
            .expect("pair is an answer");
        let names: Vec<String> = sp.nodes().iter().map(|&n| db.display_node(n)).collect();
        println!("witness path: {}", names.join(" → "));
    }
}
