//! Social-network analytics served through the `rq-engine` subsystem.
//!
//! Generates a preferential-attachment graph (the skewed-degree data that
//! motivated graph databases, §1 of the paper) and runs the query ladder
//! over it — but the 2RPQ layer goes through [`Engine`]: a worker pool
//! striping the product BFS across threads, fronted by a semantic cache
//! that answers repeated queries exactly and *narrower* queries by
//! containment (a subsumption hit re-evaluates only from the cached
//! superset's sources).
//!
//! Run with `cargo run --release --example social_network`.

use regular_queries::core::crpq::C2Rpq;
use regular_queries::core::rq::{RqExpr, RqQuery};
use regular_queries::graph::generate;
use regular_queries::prelude::*;

fn main() {
    let db = generate::preferential_attachment(1_000, 3, &["knows", "follows"], 2026);
    println!(
        "social graph: {} people, {} relationships",
        db.num_nodes(),
        db.num_edges()
    );

    // The serving engine: 2 worker threads, default semantic cache.
    let engine = Engine::new(
        db.clone(),
        EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        },
    );

    // A broad reachability query warms the cache (a cold miss: full
    // striped evaluation across the pool)...
    let broad = engine.parse("(knows|follows)+").unwrap();
    let r = engine.run(&broad).unwrap();
    println!(
        "[{}] (knows|follows)+       : {} connected pairs",
        r.disposition,
        r.answer.len()
    );

    // ...so the narrower queries behind it are answered by *containment*:
    // knows+ ⊑ (knows|follows)+, hence knows+(D) ⊆ (knows|follows)+(D)
    // and the engine re-evaluates only from the cached answer's sources.
    for text in ["knows+", "knows knows"] {
        let q = engine.parse(text).unwrap();
        let r = engine.run(&q).unwrap();
        println!("[{}] {text:<22}: {} pairs", r.disposition, r.answer.len());
        assert_eq!(r.disposition, Disposition::Subsumed);
    }

    // A repeat is a free exact hit on the canonical key — even written
    // differently: (follows|knows)+ minimizes to the same DFA.
    let rewritten = engine.parse("(follows|knows)+").unwrap();
    let r = engine.run(&rewritten).unwrap();
    println!(
        "[{}] (follows|knows)+      : {} pairs",
        r.disposition,
        r.answer.len()
    );
    assert_eq!(r.disposition, Disposition::Exact);
    println!("cache: {}", engine.cache_stats());

    // The hub: the most-connected person. Single-source questions go
    // through the engine too (governed, uncached).
    let hub = db
        .nodes()
        .max_by_key(|&n| db.degree(n))
        .expect("nonempty graph");
    println!("hub: {} (degree {})", db.display_node(hub), db.degree(hub));

    // 2RPQ: the hub's audience — anyone connected by following chains
    // *into* the hub (backward navigation).
    let audience = engine.parse("(knows-|follows-)+").unwrap();
    let aud = engine.run_from(&audience, hub).unwrap();
    println!("hub's transitive audience: {} people", aud.len());

    // 2RPQ with alternating direction: "co-audience" — people who follow
    // someone the hub is followed by (navigates backward then forward).
    let cofollow = engine.parse("follows- follows (knows- knows)*").unwrap();
    let cf = engine.run_from(&cofollow, hub).unwrap();
    println!("co-audience closure around hub: {} people", cf.len());

    // The classes beyond 2RPQ are evaluated directly — conjunction and
    // closure-over-conjunction are outside the serving engine's cache.
    let mut al = engine.alphabet();

    // C2RPQ: triangles of mutual awareness (x knows y, both reach a
    // common celebrity c).
    let pattern = C2Rpq::parse(
        &["x", "y"],
        &[
            ("knows", "x", "y"),
            ("(knows|follows)+", "x", "c"),
            ("(knows|follows)+", "y", "c"),
        ],
        &mut al,
    )
    .unwrap();
    let pats = pattern.evaluate(&db);
    println!("mutual-awareness pairs: {}", pats.len());

    // RQ: transitive closure of a *conjunctive* step — influence chains
    // where each hop is corroborated by a follower.
    let knows = al.get("knows").unwrap();
    let follows = al.get("follows").unwrap();
    let corroborated = RqExpr::edge(knows, "x", "y")
        .and(RqExpr::edge(follows, "w", "y"))
        .project("w");
    let rq = RqQuery::new(vec!["x".into(), "y".into()], corroborated.closure("x", "y")).unwrap();
    let infl = rq.evaluate(&db);
    println!(
        "corroborated-influence closure: {} pairs (genuinely beyond UC2RPQ)",
        infl.len()
    );

    // Witness extraction: a shortest semipath certifying one answer of
    // the broad query served above.
    if let Some(&(x, y)) = r.answer.iter().find(|&&(x, y)| x != y) {
        let sp = broad
            .witness_semipath(&db, x, y)
            .expect("pair is an answer");
        let names: Vec<String> = sp.nodes().iter().map(|&n| db.display_node(n)).collect();
        println!("witness path: {}", names.join(" → "));
    }
}
