//! A guided tour of the word-level machinery behind the containment
//! results: the §3.2 algorithm, folding (Lemma 2), the fold 2NFA
//! (Lemma 3), and two-way complementation (Lemma 4).
//!
//! Run with `cargo run --example automata_theory`.

use regular_queries::automata::complement2::vardi_complement;
use regular_queries::automata::containment::{check_explicit, check_on_the_fly};
use regular_queries::automata::fold::{fold_twonfa, folds_onto, lemma3_state_bound};
use regular_queries::automata::regex::{parse, simplify};
use regular_queries::automata::shepherdson::ShepherdsonDfa;
use regular_queries::automata::to_regex::nfa_to_regex;
use regular_queries::automata::{Alphabet, Letter, Nfa};

fn main() {
    let mut al = Alphabet::new();

    // ----- §3.2: containment of regular expressions ----------------------
    println!("=== Lemma 1 machinery: on-the-fly vs explicit ===");
    let e1 = parse("(a|b)* a (a|b)(a|b)(a|b)", &mut al).unwrap(); // 4th-from-end is a
    let e2 = parse("(a|b)*", &mut al).unwrap();
    let n1 = Nfa::from_regex(&e1);
    let n2 = Nfa::from_regex(&e2);
    let fly = check_on_the_fly(&n2, &n1);
    let letters: Vec<Letter> = al.sigma().collect();
    let explicit = check_explicit(&n2, &n1, &letters);
    println!(
        "Σ* ⊑ '4th-from-end is a'? {} — on-the-fly explored {} states, \
         explicit built {}",
        fly.contained, fly.states_explored, explicit.states_explored
    );
    if let Some(ce) = &fly.counterexample {
        println!("shortest counterexample: {}", al.word_to_string(ce));
    }

    // ----- Lemma 2: folding ----------------------------------------------
    println!("\n=== Lemma 2: the fold relation ===");
    let p = al.intern("p");
    let lp = Letter::forward(p);
    let v = vec![lp, lp.inv(), lp];
    let u = vec![lp];
    println!(
        "p p⁻ p ⇝ p? {}   (the zigzag walk 0,1,0,1)",
        folds_onto(&v, &u)
    );
    println!(
        "p ⇝ p p⁻ p? {}   (cannot end at position 3)",
        folds_onto(&u, &v)
    );

    // ----- Lemma 3: the fold 2NFA -----------------------------------------
    println!("\n=== Lemma 3: fold(L) as a small 2NFA ===");
    let zig = parse("p p- p", &mut al).unwrap();
    let nzig = Nfa::from_regex(&zig).eliminate_epsilon().trim();
    let sigma_pm: Vec<Letter> = [Letter::forward(p), Letter::backward(p)].into();
    let m = fold_twonfa(&nzig, &sigma_pm);
    println!(
        "NFA for p p⁻ p has {} states; its fold 2NFA has {} = n·(|Σ±|+1) = {}",
        nzig.num_states(),
        m.num_states(),
        lemma3_state_bound(nzig.num_states(), sigma_pm.len())
    );
    println!("fold 2NFA accepts 'p'?       {}", m.accepts(&[lp]));
    println!("fold 2NFA accepts 'p p⁻ p'?  {}", m.accepts(&v));
    println!("fold 2NFA accepts 'p p'?     {}", m.accepts(&[lp, lp]));

    // ----- Lemma 4 vs Shepherdson ------------------------------------------
    println!("\n=== Lemma 4: complementation blow-up ===");
    let comp = vardi_complement(&m, &sigma_pm, 50_000_000).expect("within cap");
    println!(
        "Vardi complement of the {}-state fold 2NFA: {} reachable subset \
         pairs (bound 4^n = {})",
        m.num_states(),
        comp.pairs,
        comp.bound
    );
    let mut det = ShepherdsonDfa::new(&m);
    for len in 0..4 {
        det.accepts(&vec![lp; len]);
    }
    println!(
        "Shepherdson determinization of the same machine: {} tables so far",
        det.discovered()
    );

    // ----- closing the definability loop ------------------------------------
    println!("\n=== automata → regex (state elimination) ===");
    let small = parse("a(b a)*", &mut al).unwrap();
    let back = nfa_to_regex(&Nfa::from_regex(&small));
    println!("a(b a)* round-trips to: {}", simplify(&back).display(&al));
}
