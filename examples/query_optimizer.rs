//! Structural query optimization by containment.
//!
//! "Fundamentally, query optimization requires us to transform a query Q
//! to an equivalent query Q′ that is easier to evaluate. Query equivalence
//! can be reduced to query containment" (§1). This example shows three
//! optimizations driven purely by the containment checkers:
//!
//! 1. CQ minimization (Chandra–Merlin core computation);
//! 2. UCQ disjunct elimination (Sagiv–Yannakakis);
//! 3. 2RPQ rewrite validation (Theorem 5).
//!
//! Run with `cargo run --example query_optimizer`.

use regular_queries::core::containment;
use regular_queries::datalog::ast::Atom;
use regular_queries::datalog::containment::{
    cq_equivalent, minimize_cq, minimize_ucq, ucq_contained, Cq, Ucq,
};
use regular_queries::prelude::*;

fn cq(head: (&str, &[&str]), body: &[(&str, &[&str])]) -> Cq {
    Cq {
        head: Atom::new(head.0, head.1),
        body: body.iter().map(|(p, vs)| Atom::new(*p, vs)).collect(),
    }
}

fn main() {
    // ----- 1. CQ minimization -------------------------------------------
    // Q(x) :- E(x,y), E(x,z), E(z,w): the first atom is redundant
    // (map y ↦ w through z? no — y is a direct child; z,w chain covers it
    // only if… let the checker decide).
    let bloated = cq(
        ("Q", &["X"]),
        &[("E", &["X", "Y"]), ("E", &["X", "Z"]), ("E", &["Z", "W"])],
    );
    let core = minimize_cq(&bloated);
    println!("bloated CQ : {bloated}");
    println!("core       : {core}");
    assert!(cq_equivalent(&bloated, &core));
    println!(
        "equivalent ✓ ({} → {} atoms)\n",
        bloated.body.len(),
        core.body.len()
    );

    // ----- 2. UCQ disjunct elimination ----------------------------------
    let narrow = cq(
        ("Q", &["X", "Z"]),
        &[("E", &["X", "Y"]), ("E", &["Y", "Z"]), ("E", &["X", "Z"])],
    );
    let wide = cq(("Q", &["X", "Z"]), &[("E", &["X", "Z"])]);
    let union = Ucq {
        disjuncts: vec![narrow, wide],
    };
    let minimized = minimize_ucq(&union);
    println!(
        "UCQ with {} disjuncts minimizes to {}:",
        union.disjuncts.len(),
        minimized.disjuncts.len()
    );
    print!("{minimized}");
    assert!(ucq_contained(&union, &minimized) && ucq_contained(&minimized, &union));
    println!("equivalent ✓\n");

    // ----- 3. 2RPQ rewrite validation ------------------------------------
    // An optimizer proposes rewriting the zigzag pattern a(b b⁻)*a into
    // the cheaper a a — valid only in one direction; and the classic
    // simplification (a|b)* (a|b)* → (a|b)*, valid both ways.
    let mut al = Alphabet::new();
    let zig = TwoRpq::parse("a (b b-)* a", &mut al).unwrap();
    let plain = TwoRpq::parse("a a", &mut al).unwrap();
    let fwd = containment::two_rpq::check(&zig, &plain, &al);
    let bwd = containment::two_rpq::check(&plain, &zig, &al);
    println!("a(b b⁻)*a ⊑ a a ? {fwd}");
    println!("a a ⊑ a(b b⁻)*a ? {bwd}");
    println!(
        "⇒ rewrite is {}.\n",
        if fwd.is_contained() && bwd.is_contained() {
            "an equivalence: safe"
        } else if fwd.is_contained() {
            "a relaxation only: unsafe as a replacement"
        } else {
            "unsound"
        }
    );

    let dup = TwoRpq::parse("(a|b)* (a|b)*", &mut al).unwrap();
    let single = TwoRpq::parse("(a|b)*", &mut al).unwrap();
    let fwd = containment::two_rpq::check(&dup, &single, &al);
    let bwd = containment::two_rpq::check(&single, &dup, &al);
    assert!(fwd.is_contained() && bwd.is_contained());
    println!("(a|b)*(a|b)* ≡ (a|b)* ✓ — the optimizer may deduplicate stars.");

    // ----- 4. UC2RPQ minimization -----------------------------------------
    use regular_queries::core::containment::Config;
    use regular_queries::core::minimize::minimize_uc2rpq;
    use regular_queries::core::query_text::{parse_uc2rpq, render_uc2rpq};
    let q = parse_uc2rpq(
        "Q(x, y) :- [a a](x, y), [a* a*](x, m).\n\
         Q(x, y) :- [a+](x, y).\n\
         Q(x, y) :- [b](x, y).",
        &mut al,
    )
    .unwrap();
    let (m, stats) = minimize_uc2rpq(&q, &al, &Config::default());
    println!(
        "UC2RPQ minimization: −{} disjunct(s), −{} atom(s), {} regex(es) simplified:",
        stats.disjuncts_removed, stats.atoms_removed, stats.atoms_simplified
    );
    print!("{}", render_uc2rpq(&m, "Q", &al));
    println!();

    // A wrong rewrite is caught with a concrete counterexample database.
    let opt = TwoRpq::parse("a+", &mut al).unwrap();
    let orig = TwoRpq::parse("a", &mut al).unwrap();
    let out = containment::two_rpq::check(&opt, &orig, &al);
    if let Some(w) = out.witness() {
        println!(
            "a+ → a rejected; counterexample: {} ({} edges)",
            w.description,
            w.db.num_edges()
        );
    }
}
