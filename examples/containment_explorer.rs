//! Interactive containment explorer for (2)RPQs.
//!
//! ```text
//! cargo run --example containment_explorer -- "a (b b-)* a" "a a"
//! cargo run --example containment_explorer -- "p" "p p- p"
//! ```
//!
//! Parses two regular expressions over Σ± (use `label-` for inverse
//! letters), decides containment both ways with the Theorem 5 pipeline,
//! and prints the counterexample database for failed directions.

use regular_queries::core::containment::two_rpq;
use regular_queries::graph::text::to_text;
use regular_queries::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (s1, s2) = match args.as_slice() {
        [a, b] => (a.clone(), b.clone()),
        _ => {
            eprintln!("usage: containment_explorer <regex1> <regex2>");
            eprintln!("falling back to the paper's example: p vs p p- p");
            ("p".to_owned(), "p p- p".to_owned())
        }
    };

    let mut al = Alphabet::new();
    let q1 = match TwoRpq::parse(&s1, &mut al) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("cannot parse {s1:?}: {e}");
            std::process::exit(1);
        }
    };
    let q2 = match TwoRpq::parse(&s2, &mut al) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("cannot parse {s2:?}: {e}");
            std::process::exit(1);
        }
    };

    println!("Q1 = {}", q1.regex().display(&al));
    println!("Q2 = {}", q2.regex().display(&al));
    println!(
        "compiled: {} and {} NFA states\n",
        q1.nfa().num_states(),
        q2.nfa().num_states()
    );

    for (name, a, b) in [("Q1 ⊑ Q2", &q1, &q2), ("Q2 ⊑ Q1", &q2, &q1)] {
        let out = two_rpq::check(a, b, &al);
        println!("{name}: {out}");
        if let Some(w) = out.witness() {
            println!("  counterexample database:");
            for line in to_text(&w.db).lines() {
                println!("    {line}");
            }
            println!(
                "  distinguished pair: ({}, {})",
                w.db.display_node(w.tuple[0]),
                w.db.display_node(w.tuple[1])
            );
            // Double-check the witness by evaluation.
            let in_a = a.contains_pair(&w.db, w.tuple[0], w.tuple[1]);
            let in_b = b.contains_pair(&w.db, w.tuple[0], w.tuple[1]);
            println!("  verified: pair ∈ left({in_a}) ∧ pair ∉ right({})", !in_b);
        }
        println!();
    }
}
