//! Declarative networking in GRQ.
//!
//! The paper's motivating application (§1, §2.2): "in declarative
//! networking it is important to say that there is a network connection of
//! some unknown length between nodes x and y" — exactly what Monadic
//! Datalog cannot express and GRQ can. This example writes a routing
//! program in Datalog, checks it lands in the GRQ fragment, translates it
//! to the RQ algebra, and uses containment to prove a rewrite safe.
//!
//! Run with `cargo run --example declarative_networking`.

use regular_queries::core::containment::Config;
use regular_queries::core::translate::{graphdb_to_factdb, grq_containment, grq_to_rq};
use regular_queries::datalog::depgraph::{is_monadic, is_nonrecursive};
use regular_queries::datalog::grq::{analyze_grq, is_grq};
use regular_queries::datalog::parser::parse_program;
use regular_queries::datalog::{evaluate, Query};
use regular_queries::graph::generate;
use regular_queries::prelude::*;

fn main() {
    // A router-level topology: direct links plus a TC-defined route table.
    let program = parse_program(
        "Route(X, Y) :- link(X, Y).\n\
         Route(X, Z) :- Route(X, Y), link(Y, Z).",
    )
    .expect("valid program");
    let routes = Query::new(program.clone(), "Route");

    println!("routing program:\n{program}");
    println!("nonrecursive? {}", is_nonrecursive(&program));
    println!(
        "Monadic Datalog? {} (recursive Route is binary)",
        is_monadic(&program)
    );
    println!("GRQ? {}", is_grq(&program));
    let analysis = analyze_grq(&program).expect("GRQ");
    for tc in &analysis.tc_defs {
        println!(
            "  transitive closure: {} = TC({}) [{:?}]",
            tc.tc_pred, tc.base_pred, tc.step
        );
    }

    // Evaluate over a layered data-center-ish topology.
    let topo = generate::layered_dag(6, 4, 2, "link", 77);
    let facts = graphdb_to_factdb(&topo);
    let table = evaluate(&routes, &facts);
    println!(
        "\ntopology: {} routers, {} links ⇒ route table has {} entries",
        topo.num_nodes(),
        topo.num_edges(),
        table.len()
    );

    // The GRQ → RQ translation (§4): connectivity as a regular query.
    let mut al = Alphabet::new();
    let rq = grq_to_rq(&routes, &mut al).expect("GRQ translates to RQ");
    let rq_answers = rq.evaluate(&topo);
    assert_eq!(rq_answers.len(), table.len());
    println!("RQ translation agrees: {} answers", rq_answers.len());

    // Optimization by containment (Theorem 8): a proposed "shortcut" rule
    //   Route(X, Z) :- link(X, Y), link(Y, Z).
    // is redundant — the program with the extra rule is equivalent.
    let extended = parse_program(
        "Route(X, Y) :- link(X, Y).\n\
         Route(X, Z) :- Route(X, Y), link(Y, Z).\n\
         Route2(X, Y) :- Route(X, Y).\n\
         Route2(X, Z) :- link(X, Y), link(Y, Z).",
    )
    .expect("valid program");
    let extended_q = Query::new(extended, "Route2");
    let cfg = Config::default();
    let fwd = grq_containment(&routes, &extended_q, &cfg);
    let bwd = grq_containment(&extended_q, &routes, &cfg);
    println!("\nRoute ⊑ Route+shortcut ? {fwd}");
    println!("Route+shortcut ⊑ Route ? {bwd}");
    if fwd.is_contained() && bwd.is_contained() {
        println!("⇒ the shortcut rule is redundant; the optimizer may drop it.");
    }

    // And a genuinely different program is caught: 2-bounded routing.
    let bounded = parse_program(
        "Hop2(X, Y) :- link(X, Y).\n\
         Hop2(X, Z) :- link(X, Y), link(Y, Z).",
    )
    .expect("valid program");
    let bounded_q = Query::new(bounded, "Hop2");
    let out = grq_containment(&routes, &bounded_q, &cfg);
    println!("\nRoute ⊑ 2-bounded-routing ? {out}");
    if let Some(w) = out.witness() {
        println!(
            "  counterexample network: {} routers, {} links",
            w.db.num_nodes(),
            w.db.num_edges()
        );
    }
}
