/root/repo/target/release/deps/rqtool-1d7226e9716c4cd5.d: src/bin/rqtool.rs

/root/repo/target/release/deps/rqtool-1d7226e9716c4cd5: src/bin/rqtool.rs

src/bin/rqtool.rs:
