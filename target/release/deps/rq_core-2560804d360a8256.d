/root/repo/target/release/deps/rq_core-2560804d360a8256.d: crates/rq-core/src/lib.rs crates/rq-core/src/containment/mod.rs crates/rq-core/src/containment/rpq.rs crates/rq-core/src/containment/rq.rs crates/rq-core/src/containment/two_rpq.rs crates/rq-core/src/containment/uc2rpq.rs crates/rq-core/src/crpq.rs crates/rq-core/src/expansion.rs crates/rq-core/src/minimize.rs crates/rq-core/src/query_text.rs crates/rq-core/src/rpq.rs crates/rq-core/src/rq.rs crates/rq-core/src/rq_text.rs crates/rq-core/src/translate/mod.rs crates/rq-core/src/translate/arity.rs crates/rq-core/src/translate/bridge.rs crates/rq-core/src/translate/from_grq.rs crates/rq-core/src/translate/to_datalog.rs

/root/repo/target/release/deps/librq_core-2560804d360a8256.rlib: crates/rq-core/src/lib.rs crates/rq-core/src/containment/mod.rs crates/rq-core/src/containment/rpq.rs crates/rq-core/src/containment/rq.rs crates/rq-core/src/containment/two_rpq.rs crates/rq-core/src/containment/uc2rpq.rs crates/rq-core/src/crpq.rs crates/rq-core/src/expansion.rs crates/rq-core/src/minimize.rs crates/rq-core/src/query_text.rs crates/rq-core/src/rpq.rs crates/rq-core/src/rq.rs crates/rq-core/src/rq_text.rs crates/rq-core/src/translate/mod.rs crates/rq-core/src/translate/arity.rs crates/rq-core/src/translate/bridge.rs crates/rq-core/src/translate/from_grq.rs crates/rq-core/src/translate/to_datalog.rs

/root/repo/target/release/deps/librq_core-2560804d360a8256.rmeta: crates/rq-core/src/lib.rs crates/rq-core/src/containment/mod.rs crates/rq-core/src/containment/rpq.rs crates/rq-core/src/containment/rq.rs crates/rq-core/src/containment/two_rpq.rs crates/rq-core/src/containment/uc2rpq.rs crates/rq-core/src/crpq.rs crates/rq-core/src/expansion.rs crates/rq-core/src/minimize.rs crates/rq-core/src/query_text.rs crates/rq-core/src/rpq.rs crates/rq-core/src/rq.rs crates/rq-core/src/rq_text.rs crates/rq-core/src/translate/mod.rs crates/rq-core/src/translate/arity.rs crates/rq-core/src/translate/bridge.rs crates/rq-core/src/translate/from_grq.rs crates/rq-core/src/translate/to_datalog.rs

crates/rq-core/src/lib.rs:
crates/rq-core/src/containment/mod.rs:
crates/rq-core/src/containment/rpq.rs:
crates/rq-core/src/containment/rq.rs:
crates/rq-core/src/containment/two_rpq.rs:
crates/rq-core/src/containment/uc2rpq.rs:
crates/rq-core/src/crpq.rs:
crates/rq-core/src/expansion.rs:
crates/rq-core/src/minimize.rs:
crates/rq-core/src/query_text.rs:
crates/rq-core/src/rpq.rs:
crates/rq-core/src/rq.rs:
crates/rq-core/src/rq_text.rs:
crates/rq-core/src/translate/mod.rs:
crates/rq-core/src/translate/arity.rs:
crates/rq-core/src/translate/bridge.rs:
crates/rq-core/src/translate/from_grq.rs:
crates/rq-core/src/translate/to_datalog.rs:
