/root/repo/target/release/deps/regular_queries-34534285a5654f0d.d: src/lib.rs

/root/repo/target/release/deps/libregular_queries-34534285a5654f0d.rlib: src/lib.rs

/root/repo/target/release/deps/libregular_queries-34534285a5654f0d.rmeta: src/lib.rs

src/lib.rs:
