/root/repo/target/release/deps/rq_graph-de58f6159cddd48d.d: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs

/root/repo/target/release/deps/librq_graph-de58f6159cddd48d.rlib: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs

/root/repo/target/release/deps/librq_graph-de58f6159cddd48d.rmeta: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs

crates/rq-graph/src/lib.rs:
crates/rq-graph/src/db.rs:
crates/rq-graph/src/dot.rs:
crates/rq-graph/src/generate.rs:
crates/rq-graph/src/semipath.rs:
crates/rq-graph/src/text.rs:
