/root/repo/target/release/deps/rq_bench-5033ff7b66811597.d: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs

/root/repo/target/release/deps/librq_bench-5033ff7b66811597.rlib: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs

/root/repo/target/release/deps/librq_bench-5033ff7b66811597.rmeta: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs

crates/rq-bench/src/lib.rs:
crates/rq-bench/src/workloads.rs:
