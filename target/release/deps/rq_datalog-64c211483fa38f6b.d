/root/repo/target/release/deps/rq_datalog-64c211483fa38f6b.d: crates/rq-datalog/src/lib.rs crates/rq-datalog/src/ast.rs crates/rq-datalog/src/cfg.rs crates/rq-datalog/src/containment.rs crates/rq-datalog/src/depgraph.rs crates/rq-datalog/src/eval.rs crates/rq-datalog/src/grq.rs crates/rq-datalog/src/parser.rs crates/rq-datalog/src/relation.rs crates/rq-datalog/src/unfold.rs crates/rq-datalog/src/validate.rs

/root/repo/target/release/deps/librq_datalog-64c211483fa38f6b.rlib: crates/rq-datalog/src/lib.rs crates/rq-datalog/src/ast.rs crates/rq-datalog/src/cfg.rs crates/rq-datalog/src/containment.rs crates/rq-datalog/src/depgraph.rs crates/rq-datalog/src/eval.rs crates/rq-datalog/src/grq.rs crates/rq-datalog/src/parser.rs crates/rq-datalog/src/relation.rs crates/rq-datalog/src/unfold.rs crates/rq-datalog/src/validate.rs

/root/repo/target/release/deps/librq_datalog-64c211483fa38f6b.rmeta: crates/rq-datalog/src/lib.rs crates/rq-datalog/src/ast.rs crates/rq-datalog/src/cfg.rs crates/rq-datalog/src/containment.rs crates/rq-datalog/src/depgraph.rs crates/rq-datalog/src/eval.rs crates/rq-datalog/src/grq.rs crates/rq-datalog/src/parser.rs crates/rq-datalog/src/relation.rs crates/rq-datalog/src/unfold.rs crates/rq-datalog/src/validate.rs

crates/rq-datalog/src/lib.rs:
crates/rq-datalog/src/ast.rs:
crates/rq-datalog/src/cfg.rs:
crates/rq-datalog/src/containment.rs:
crates/rq-datalog/src/depgraph.rs:
crates/rq-datalog/src/eval.rs:
crates/rq-datalog/src/grq.rs:
crates/rq-datalog/src/parser.rs:
crates/rq-datalog/src/relation.rs:
crates/rq-datalog/src/unfold.rs:
crates/rq-datalog/src/validate.rs:
