/root/repo/target/release/deps/report-4550a19c905dd9da.d: crates/rq-bench/src/bin/report.rs

/root/repo/target/release/deps/report-4550a19c905dd9da: crates/rq-bench/src/bin/report.rs

crates/rq-bench/src/bin/report.rs:
