/root/repo/target/release/deps/e11_governor_overhead-1cbe629ccf01782d.d: crates/rq-bench/benches/e11_governor_overhead.rs

/root/repo/target/release/deps/e11_governor_overhead-1cbe629ccf01782d: crates/rq-bench/benches/e11_governor_overhead.rs

crates/rq-bench/benches/e11_governor_overhead.rs:
