/root/repo/target/release/deps/rq_graph-06136011b8fb495c.d: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs

/root/repo/target/release/deps/librq_graph-06136011b8fb495c.rlib: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs

/root/repo/target/release/deps/librq_graph-06136011b8fb495c.rmeta: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs

crates/rq-graph/src/lib.rs:
crates/rq-graph/src/db.rs:
crates/rq-graph/src/dot.rs:
crates/rq-graph/src/generate.rs:
crates/rq-graph/src/semipath.rs:
crates/rq-graph/src/text.rs:
