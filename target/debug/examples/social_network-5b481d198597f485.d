/root/repo/target/debug/examples/social_network-5b481d198597f485.d: examples/social_network.rs Cargo.toml

/root/repo/target/debug/examples/libsocial_network-5b481d198597f485.rmeta: examples/social_network.rs Cargo.toml

examples/social_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
