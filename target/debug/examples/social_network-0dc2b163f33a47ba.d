/root/repo/target/debug/examples/social_network-0dc2b163f33a47ba.d: examples/social_network.rs

/root/repo/target/debug/examples/social_network-0dc2b163f33a47ba: examples/social_network.rs

examples/social_network.rs:
