/root/repo/target/debug/examples/containment_explorer-61f2538931e76420.d: examples/containment_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libcontainment_explorer-61f2538931e76420.rmeta: examples/containment_explorer.rs Cargo.toml

examples/containment_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
