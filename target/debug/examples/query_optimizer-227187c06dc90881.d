/root/repo/target/debug/examples/query_optimizer-227187c06dc90881.d: examples/query_optimizer.rs

/root/repo/target/debug/examples/query_optimizer-227187c06dc90881: examples/query_optimizer.rs

examples/query_optimizer.rs:
