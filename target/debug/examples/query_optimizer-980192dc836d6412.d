/root/repo/target/debug/examples/query_optimizer-980192dc836d6412.d: examples/query_optimizer.rs Cargo.toml

/root/repo/target/debug/examples/libquery_optimizer-980192dc836d6412.rmeta: examples/query_optimizer.rs Cargo.toml

examples/query_optimizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
