/root/repo/target/debug/examples/containment_explorer-0ba5cc5d6b2bae9a.d: examples/containment_explorer.rs

/root/repo/target/debug/examples/containment_explorer-0ba5cc5d6b2bae9a: examples/containment_explorer.rs

examples/containment_explorer.rs:
