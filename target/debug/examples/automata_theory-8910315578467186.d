/root/repo/target/debug/examples/automata_theory-8910315578467186.d: examples/automata_theory.rs

/root/repo/target/debug/examples/automata_theory-8910315578467186: examples/automata_theory.rs

examples/automata_theory.rs:
