/root/repo/target/debug/examples/automata_theory-e65b88a326229c04.d: examples/automata_theory.rs Cargo.toml

/root/repo/target/debug/examples/libautomata_theory-e65b88a326229c04.rmeta: examples/automata_theory.rs Cargo.toml

examples/automata_theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
