/root/repo/target/debug/examples/quickstart-e088abbc97558db5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e088abbc97558db5: examples/quickstart.rs

examples/quickstart.rs:
