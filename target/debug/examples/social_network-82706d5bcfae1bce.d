/root/repo/target/debug/examples/social_network-82706d5bcfae1bce.d: examples/social_network.rs Cargo.toml

/root/repo/target/debug/examples/libsocial_network-82706d5bcfae1bce.rmeta: examples/social_network.rs Cargo.toml

examples/social_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
