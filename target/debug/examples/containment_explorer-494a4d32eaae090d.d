/root/repo/target/debug/examples/containment_explorer-494a4d32eaae090d.d: examples/containment_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libcontainment_explorer-494a4d32eaae090d.rmeta: examples/containment_explorer.rs Cargo.toml

examples/containment_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
