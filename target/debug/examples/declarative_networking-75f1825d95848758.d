/root/repo/target/debug/examples/declarative_networking-75f1825d95848758.d: examples/declarative_networking.rs

/root/repo/target/debug/examples/declarative_networking-75f1825d95848758: examples/declarative_networking.rs

examples/declarative_networking.rs:
