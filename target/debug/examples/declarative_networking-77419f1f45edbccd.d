/root/repo/target/debug/examples/declarative_networking-77419f1f45edbccd.d: examples/declarative_networking.rs Cargo.toml

/root/repo/target/debug/examples/libdeclarative_networking-77419f1f45edbccd.rmeta: examples/declarative_networking.rs Cargo.toml

examples/declarative_networking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
