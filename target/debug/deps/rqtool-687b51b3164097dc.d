/root/repo/target/debug/deps/rqtool-687b51b3164097dc.d: src/bin/rqtool.rs

/root/repo/target/debug/deps/rqtool-687b51b3164097dc: src/bin/rqtool.rs

src/bin/rqtool.rs:
