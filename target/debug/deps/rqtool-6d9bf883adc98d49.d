/root/repo/target/debug/deps/rqtool-6d9bf883adc98d49.d: src/bin/rqtool.rs

/root/repo/target/debug/deps/rqtool-6d9bf883adc98d49: src/bin/rqtool.rs

src/bin/rqtool.rs:
