/root/repo/target/debug/deps/rq_graph-0760119ba433971b.d: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs Cargo.toml

/root/repo/target/debug/deps/librq_graph-0760119ba433971b.rmeta: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs Cargo.toml

crates/rq-graph/src/lib.rs:
crates/rq-graph/src/db.rs:
crates/rq-graph/src/dot.rs:
crates/rq-graph/src/generate.rs:
crates/rq-graph/src/semipath.rs:
crates/rq-graph/src/text.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
