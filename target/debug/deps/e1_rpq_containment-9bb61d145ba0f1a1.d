/root/repo/target/debug/deps/e1_rpq_containment-9bb61d145ba0f1a1.d: crates/rq-bench/benches/e1_rpq_containment.rs Cargo.toml

/root/repo/target/debug/deps/libe1_rpq_containment-9bb61d145ba0f1a1.rmeta: crates/rq-bench/benches/e1_rpq_containment.rs Cargo.toml

crates/rq-bench/benches/e1_rpq_containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
