/root/repo/target/debug/deps/edge_cases-ca1a6f4a61faf0da.d: tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-ca1a6f4a61faf0da.rmeta: tests/edge_cases.rs Cargo.toml

tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
