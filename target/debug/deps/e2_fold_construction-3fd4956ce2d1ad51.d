/root/repo/target/debug/deps/e2_fold_construction-3fd4956ce2d1ad51.d: crates/rq-bench/benches/e2_fold_construction.rs Cargo.toml

/root/repo/target/debug/deps/libe2_fold_construction-3fd4956ce2d1ad51.rmeta: crates/rq-bench/benches/e2_fold_construction.rs Cargo.toml

crates/rq-bench/benches/e2_fold_construction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
