/root/repo/target/debug/deps/serde-df68eb8634cd6a60.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-df68eb8634cd6a60.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
