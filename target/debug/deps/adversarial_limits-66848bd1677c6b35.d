/root/repo/target/debug/deps/adversarial_limits-66848bd1677c6b35.d: tests/adversarial_limits.rs Cargo.toml

/root/repo/target/debug/deps/libadversarial_limits-66848bd1677c6b35.rmeta: tests/adversarial_limits.rs Cargo.toml

tests/adversarial_limits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
