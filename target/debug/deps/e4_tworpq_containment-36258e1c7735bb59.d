/root/repo/target/debug/deps/e4_tworpq_containment-36258e1c7735bb59.d: crates/rq-bench/benches/e4_tworpq_containment.rs Cargo.toml

/root/repo/target/debug/deps/libe4_tworpq_containment-36258e1c7735bb59.rmeta: crates/rq-bench/benches/e4_tworpq_containment.rs Cargo.toml

crates/rq-bench/benches/e4_tworpq_containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
