/root/repo/target/debug/deps/rqtool-cbe8f52f7ecc041b.d: src/bin/rqtool.rs

/root/repo/target/debug/deps/rqtool-cbe8f52f7ecc041b: src/bin/rqtool.rs

src/bin/rqtool.rs:
