/root/repo/target/debug/deps/report-26c2214f3bda61fc.d: crates/rq-bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-26c2214f3bda61fc.rmeta: crates/rq-bench/src/bin/report.rs Cargo.toml

crates/rq-bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
