/root/repo/target/debug/deps/rq_graph-83f7d624a0dfb415.d: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs

/root/repo/target/debug/deps/rq_graph-83f7d624a0dfb415: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs

crates/rq-graph/src/lib.rs:
crates/rq-graph/src/db.rs:
crates/rq-graph/src/dot.rs:
crates/rq-graph/src/generate.rs:
crates/rq-graph/src/semipath.rs:
crates/rq-graph/src/text.rs:
