/root/repo/target/debug/deps/e11_governor_overhead-5bbfebfb52e40191.d: crates/rq-bench/benches/e11_governor_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libe11_governor_overhead-5bbfebfb52e40191.rmeta: crates/rq-bench/benches/e11_governor_overhead.rs Cargo.toml

crates/rq-bench/benches/e11_governor_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
