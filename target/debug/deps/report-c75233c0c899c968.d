/root/repo/target/debug/deps/report-c75233c0c899c968.d: crates/rq-bench/src/bin/report.rs

/root/repo/target/debug/deps/report-c75233c0c899c968: crates/rq-bench/src/bin/report.rs

crates/rq-bench/src/bin/report.rs:
