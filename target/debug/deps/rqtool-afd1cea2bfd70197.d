/root/repo/target/debug/deps/rqtool-afd1cea2bfd70197.d: src/bin/rqtool.rs Cargo.toml

/root/repo/target/debug/deps/librqtool-afd1cea2bfd70197.rmeta: src/bin/rqtool.rs Cargo.toml

src/bin/rqtool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
