/root/repo/target/debug/deps/rq_datalog-c66ae56a91d43560.d: crates/rq-datalog/src/lib.rs crates/rq-datalog/src/ast.rs crates/rq-datalog/src/cfg.rs crates/rq-datalog/src/containment.rs crates/rq-datalog/src/depgraph.rs crates/rq-datalog/src/eval.rs crates/rq-datalog/src/grq.rs crates/rq-datalog/src/parser.rs crates/rq-datalog/src/relation.rs crates/rq-datalog/src/unfold.rs crates/rq-datalog/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/librq_datalog-c66ae56a91d43560.rmeta: crates/rq-datalog/src/lib.rs crates/rq-datalog/src/ast.rs crates/rq-datalog/src/cfg.rs crates/rq-datalog/src/containment.rs crates/rq-datalog/src/depgraph.rs crates/rq-datalog/src/eval.rs crates/rq-datalog/src/grq.rs crates/rq-datalog/src/parser.rs crates/rq-datalog/src/relation.rs crates/rq-datalog/src/unfold.rs crates/rq-datalog/src/validate.rs Cargo.toml

crates/rq-datalog/src/lib.rs:
crates/rq-datalog/src/ast.rs:
crates/rq-datalog/src/cfg.rs:
crates/rq-datalog/src/containment.rs:
crates/rq-datalog/src/depgraph.rs:
crates/rq-datalog/src/eval.rs:
crates/rq-datalog/src/grq.rs:
crates/rq-datalog/src/parser.rs:
crates/rq-datalog/src/relation.rs:
crates/rq-datalog/src/unfold.rs:
crates/rq-datalog/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
