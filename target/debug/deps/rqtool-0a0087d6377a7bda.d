/root/repo/target/debug/deps/rqtool-0a0087d6377a7bda.d: src/bin/rqtool.rs Cargo.toml

/root/repo/target/debug/deps/librqtool-0a0087d6377a7bda.rmeta: src/bin/rqtool.rs Cargo.toml

src/bin/rqtool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
