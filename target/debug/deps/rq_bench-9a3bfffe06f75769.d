/root/repo/target/debug/deps/rq_bench-9a3bfffe06f75769.d: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/librq_bench-9a3bfffe06f75769.rmeta: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs Cargo.toml

crates/rq-bench/src/lib.rs:
crates/rq-bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
