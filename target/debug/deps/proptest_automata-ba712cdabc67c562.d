/root/repo/target/debug/deps/proptest_automata-ba712cdabc67c562.d: tests/proptest_automata.rs

/root/repo/target/debug/deps/proptest_automata-ba712cdabc67c562: tests/proptest_automata.rs

tests/proptest_automata.rs:
