/root/repo/target/debug/deps/e7_grq_reduction-f63c7b6b3f04812d.d: crates/rq-bench/benches/e7_grq_reduction.rs Cargo.toml

/root/repo/target/debug/deps/libe7_grq_reduction-f63c7b6b3f04812d.rmeta: crates/rq-bench/benches/e7_grq_reduction.rs Cargo.toml

crates/rq-bench/benches/e7_grq_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
