/root/repo/target/debug/deps/report-bbeaeb23ae6108b2.d: crates/rq-bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-bbeaeb23ae6108b2.rmeta: crates/rq-bench/src/bin/report.rs Cargo.toml

crates/rq-bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
