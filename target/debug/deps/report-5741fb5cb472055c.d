/root/repo/target/debug/deps/report-5741fb5cb472055c.d: crates/rq-bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-5741fb5cb472055c.rmeta: crates/rq-bench/src/bin/report.rs Cargo.toml

crates/rq-bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
