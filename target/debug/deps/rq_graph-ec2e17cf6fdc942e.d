/root/repo/target/debug/deps/rq_graph-ec2e17cf6fdc942e.d: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs

/root/repo/target/debug/deps/librq_graph-ec2e17cf6fdc942e.rlib: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs

/root/repo/target/debug/deps/librq_graph-ec2e17cf6fdc942e.rmeta: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs

crates/rq-graph/src/lib.rs:
crates/rq-graph/src/db.rs:
crates/rq-graph/src/dot.rs:
crates/rq-graph/src/generate.rs:
crates/rq-graph/src/semipath.rs:
crates/rq-graph/src/text.rs:
