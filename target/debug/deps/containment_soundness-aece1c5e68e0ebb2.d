/root/repo/target/debug/deps/containment_soundness-aece1c5e68e0ebb2.d: tests/containment_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libcontainment_soundness-aece1c5e68e0ebb2.rmeta: tests/containment_soundness.rs Cargo.toml

tests/containment_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
