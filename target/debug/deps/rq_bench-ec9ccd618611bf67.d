/root/repo/target/debug/deps/rq_bench-ec9ccd618611bf67.d: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs

/root/repo/target/debug/deps/librq_bench-ec9ccd618611bf67.rlib: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs

/root/repo/target/debug/deps/librq_bench-ec9ccd618611bf67.rmeta: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs

crates/rq-bench/src/lib.rs:
crates/rq-bench/src/workloads.rs:
