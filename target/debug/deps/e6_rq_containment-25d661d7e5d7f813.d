/root/repo/target/debug/deps/e6_rq_containment-25d661d7e5d7f813.d: crates/rq-bench/benches/e6_rq_containment.rs Cargo.toml

/root/repo/target/debug/deps/libe6_rq_containment-25d661d7e5d7f813.rmeta: crates/rq-bench/benches/e6_rq_containment.rs Cargo.toml

crates/rq-bench/benches/e6_rq_containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
