/root/repo/target/debug/deps/proptest_automata-8e86edcd9f905cd8.d: tests/proptest_automata.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_automata-8e86edcd9f905cd8.rmeta: tests/proptest_automata.rs Cargo.toml

tests/proptest_automata.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
