/root/repo/target/debug/deps/containment_soundness-d14097147c0c34e9.d: tests/containment_soundness.rs

/root/repo/target/debug/deps/containment_soundness-d14097147c0c34e9: tests/containment_soundness.rs

tests/containment_soundness.rs:
