/root/repo/target/debug/deps/regular_queries-33405a94cd128e7d.d: src/lib.rs

/root/repo/target/debug/deps/libregular_queries-33405a94cd128e7d.rlib: src/lib.rs

/root/repo/target/debug/deps/libregular_queries-33405a94cd128e7d.rmeta: src/lib.rs

src/lib.rs:
