/root/repo/target/debug/deps/containment_soundness-d9d11ee538c9c508.d: tests/containment_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libcontainment_soundness-d9d11ee538c9c508.rmeta: tests/containment_soundness.rs Cargo.toml

tests/containment_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
