/root/repo/target/debug/deps/regular_queries-359e6a525cbaf5ee.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libregular_queries-359e6a525cbaf5ee.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
