/root/repo/target/debug/deps/rq_datalog-43526948a297d611.d: crates/rq-datalog/src/lib.rs crates/rq-datalog/src/ast.rs crates/rq-datalog/src/cfg.rs crates/rq-datalog/src/containment.rs crates/rq-datalog/src/depgraph.rs crates/rq-datalog/src/eval.rs crates/rq-datalog/src/grq.rs crates/rq-datalog/src/parser.rs crates/rq-datalog/src/relation.rs crates/rq-datalog/src/unfold.rs crates/rq-datalog/src/validate.rs

/root/repo/target/debug/deps/librq_datalog-43526948a297d611.rlib: crates/rq-datalog/src/lib.rs crates/rq-datalog/src/ast.rs crates/rq-datalog/src/cfg.rs crates/rq-datalog/src/containment.rs crates/rq-datalog/src/depgraph.rs crates/rq-datalog/src/eval.rs crates/rq-datalog/src/grq.rs crates/rq-datalog/src/parser.rs crates/rq-datalog/src/relation.rs crates/rq-datalog/src/unfold.rs crates/rq-datalog/src/validate.rs

/root/repo/target/debug/deps/librq_datalog-43526948a297d611.rmeta: crates/rq-datalog/src/lib.rs crates/rq-datalog/src/ast.rs crates/rq-datalog/src/cfg.rs crates/rq-datalog/src/containment.rs crates/rq-datalog/src/depgraph.rs crates/rq-datalog/src/eval.rs crates/rq-datalog/src/grq.rs crates/rq-datalog/src/parser.rs crates/rq-datalog/src/relation.rs crates/rq-datalog/src/unfold.rs crates/rq-datalog/src/validate.rs

crates/rq-datalog/src/lib.rs:
crates/rq-datalog/src/ast.rs:
crates/rq-datalog/src/cfg.rs:
crates/rq-datalog/src/containment.rs:
crates/rq-datalog/src/depgraph.rs:
crates/rq-datalog/src/eval.rs:
crates/rq-datalog/src/grq.rs:
crates/rq-datalog/src/parser.rs:
crates/rq-datalog/src/relation.rs:
crates/rq-datalog/src/unfold.rs:
crates/rq-datalog/src/validate.rs:
