/root/repo/target/debug/deps/serde-22e7be74cb4f44e1.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-22e7be74cb4f44e1.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-22e7be74cb4f44e1.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
