/root/repo/target/debug/deps/e2_fold_construction-397d5c883a13916a.d: crates/rq-bench/benches/e2_fold_construction.rs Cargo.toml

/root/repo/target/debug/deps/libe2_fold_construction-397d5c883a13916a.rmeta: crates/rq-bench/benches/e2_fold_construction.rs Cargo.toml

crates/rq-bench/benches/e2_fold_construction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
