/root/repo/target/debug/deps/rq_automata-ff071139ef9bb93d.d: crates/rq-automata/src/lib.rs crates/rq-automata/src/alphabet.rs crates/rq-automata/src/complement2.rs crates/rq-automata/src/containment.rs crates/rq-automata/src/dfa.rs crates/rq-automata/src/fold.rs crates/rq-automata/src/governor.rs crates/rq-automata/src/nfa.rs crates/rq-automata/src/random.rs crates/rq-automata/src/regex.rs crates/rq-automata/src/regex/parser.rs crates/rq-automata/src/regex/simplify.rs crates/rq-automata/src/shepherdson.rs crates/rq-automata/src/to_regex.rs crates/rq-automata/src/twonfa.rs

/root/repo/target/debug/deps/librq_automata-ff071139ef9bb93d.rlib: crates/rq-automata/src/lib.rs crates/rq-automata/src/alphabet.rs crates/rq-automata/src/complement2.rs crates/rq-automata/src/containment.rs crates/rq-automata/src/dfa.rs crates/rq-automata/src/fold.rs crates/rq-automata/src/governor.rs crates/rq-automata/src/nfa.rs crates/rq-automata/src/random.rs crates/rq-automata/src/regex.rs crates/rq-automata/src/regex/parser.rs crates/rq-automata/src/regex/simplify.rs crates/rq-automata/src/shepherdson.rs crates/rq-automata/src/to_regex.rs crates/rq-automata/src/twonfa.rs

/root/repo/target/debug/deps/librq_automata-ff071139ef9bb93d.rmeta: crates/rq-automata/src/lib.rs crates/rq-automata/src/alphabet.rs crates/rq-automata/src/complement2.rs crates/rq-automata/src/containment.rs crates/rq-automata/src/dfa.rs crates/rq-automata/src/fold.rs crates/rq-automata/src/governor.rs crates/rq-automata/src/nfa.rs crates/rq-automata/src/random.rs crates/rq-automata/src/regex.rs crates/rq-automata/src/regex/parser.rs crates/rq-automata/src/regex/simplify.rs crates/rq-automata/src/shepherdson.rs crates/rq-automata/src/to_regex.rs crates/rq-automata/src/twonfa.rs

crates/rq-automata/src/lib.rs:
crates/rq-automata/src/alphabet.rs:
crates/rq-automata/src/complement2.rs:
crates/rq-automata/src/containment.rs:
crates/rq-automata/src/dfa.rs:
crates/rq-automata/src/fold.rs:
crates/rq-automata/src/governor.rs:
crates/rq-automata/src/nfa.rs:
crates/rq-automata/src/random.rs:
crates/rq-automata/src/regex.rs:
crates/rq-automata/src/regex/parser.rs:
crates/rq-automata/src/regex/simplify.rs:
crates/rq-automata/src/shepherdson.rs:
crates/rq-automata/src/to_regex.rs:
crates/rq-automata/src/twonfa.rs:
