/root/repo/target/debug/deps/e6_rq_containment-4ee736a3ba5782ad.d: crates/rq-bench/benches/e6_rq_containment.rs Cargo.toml

/root/repo/target/debug/deps/libe6_rq_containment-4ee736a3ba5782ad.rmeta: crates/rq-bench/benches/e6_rq_containment.rs Cargo.toml

crates/rq-bench/benches/e6_rq_containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
