/root/repo/target/debug/deps/e4_tworpq_containment-86716b54807bd31d.d: crates/rq-bench/benches/e4_tworpq_containment.rs Cargo.toml

/root/repo/target/debug/deps/libe4_tworpq_containment-86716b54807bd31d.rmeta: crates/rq-bench/benches/e4_tworpq_containment.rs Cargo.toml

crates/rq-bench/benches/e4_tworpq_containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
