/root/repo/target/debug/deps/rqtool_cli-88e5c88405765ec6.d: tests/rqtool_cli.rs Cargo.toml

/root/repo/target/debug/deps/librqtool_cli-88e5c88405765ec6.rmeta: tests/rqtool_cli.rs Cargo.toml

tests/rqtool_cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_rqtool=placeholder:rqtool
# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
