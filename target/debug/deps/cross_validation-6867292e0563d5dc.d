/root/repo/target/debug/deps/cross_validation-6867292e0563d5dc.d: tests/cross_validation.rs Cargo.toml

/root/repo/target/debug/deps/libcross_validation-6867292e0563d5dc.rmeta: tests/cross_validation.rs Cargo.toml

tests/cross_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
