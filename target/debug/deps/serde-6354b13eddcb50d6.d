/root/repo/target/debug/deps/serde-6354b13eddcb50d6.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-6354b13eddcb50d6: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
