/root/repo/target/debug/deps/edge_cases-4696797870f661a0.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-4696797870f661a0: tests/edge_cases.rs

tests/edge_cases.rs:
