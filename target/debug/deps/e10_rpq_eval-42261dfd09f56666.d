/root/repo/target/debug/deps/e10_rpq_eval-42261dfd09f56666.d: crates/rq-bench/benches/e10_rpq_eval.rs Cargo.toml

/root/repo/target/debug/deps/libe10_rpq_eval-42261dfd09f56666.rmeta: crates/rq-bench/benches/e10_rpq_eval.rs Cargo.toml

crates/rq-bench/benches/e10_rpq_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
