/root/repo/target/debug/deps/rqtool_cli-3930a14440eb0969.d: tests/rqtool_cli.rs

/root/repo/target/debug/deps/rqtool_cli-3930a14440eb0969: tests/rqtool_cli.rs

tests/rqtool_cli.rs:

# env-dep:CARGO_BIN_EXE_rqtool=/root/repo/target/debug/rqtool
# env-dep:CARGO_MANIFEST_DIR=/root/repo
