/root/repo/target/debug/deps/regular_queries-04e3a5204690ac28.d: src/lib.rs

/root/repo/target/debug/deps/libregular_queries-04e3a5204690ac28.rlib: src/lib.rs

/root/repo/target/debug/deps/libregular_queries-04e3a5204690ac28.rmeta: src/lib.rs

src/lib.rs:
