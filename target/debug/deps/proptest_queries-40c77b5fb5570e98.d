/root/repo/target/debug/deps/proptest_queries-40c77b5fb5570e98.d: tests/proptest_queries.rs

/root/repo/target/debug/deps/proptest_queries-40c77b5fb5570e98: tests/proptest_queries.rs

tests/proptest_queries.rs:
