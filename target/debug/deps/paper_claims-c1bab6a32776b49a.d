/root/repo/target/debug/deps/paper_claims-c1bab6a32776b49a.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-c1bab6a32776b49a: tests/paper_claims.rs

tests/paper_claims.rs:
