/root/repo/target/debug/deps/example_data-3e465ccf2d97806a.d: tests/example_data.rs

/root/repo/target/debug/deps/example_data-3e465ccf2d97806a: tests/example_data.rs

tests/example_data.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
