/root/repo/target/debug/deps/regular_queries-eaded7928e8255d1.d: src/lib.rs

/root/repo/target/debug/deps/regular_queries-eaded7928e8255d1: src/lib.rs

src/lib.rs:
