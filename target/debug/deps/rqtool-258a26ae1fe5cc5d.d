/root/repo/target/debug/deps/rqtool-258a26ae1fe5cc5d.d: src/bin/rqtool.rs Cargo.toml

/root/repo/target/debug/deps/librqtool-258a26ae1fe5cc5d.rmeta: src/bin/rqtool.rs Cargo.toml

src/bin/rqtool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
