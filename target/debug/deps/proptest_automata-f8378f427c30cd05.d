/root/repo/target/debug/deps/proptest_automata-f8378f427c30cd05.d: tests/proptest_automata.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_automata-f8378f427c30cd05.rmeta: tests/proptest_automata.rs Cargo.toml

tests/proptest_automata.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
