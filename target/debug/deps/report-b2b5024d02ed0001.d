/root/repo/target/debug/deps/report-b2b5024d02ed0001.d: crates/rq-bench/src/bin/report.rs

/root/repo/target/debug/deps/report-b2b5024d02ed0001: crates/rq-bench/src/bin/report.rs

crates/rq-bench/src/bin/report.rs:
