/root/repo/target/debug/deps/rqtool-0eab3396f7dabfee.d: src/bin/rqtool.rs Cargo.toml

/root/repo/target/debug/deps/librqtool-0eab3396f7dabfee.rmeta: src/bin/rqtool.rs Cargo.toml

src/bin/rqtool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
