/root/repo/target/debug/deps/e3_complement_blowup-4e2585ad3231fcf5.d: crates/rq-bench/benches/e3_complement_blowup.rs Cargo.toml

/root/repo/target/debug/deps/libe3_complement_blowup-4e2585ad3231fcf5.rmeta: crates/rq-bench/benches/e3_complement_blowup.rs Cargo.toml

crates/rq-bench/benches/e3_complement_blowup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
