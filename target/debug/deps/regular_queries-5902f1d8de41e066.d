/root/repo/target/debug/deps/regular_queries-5902f1d8de41e066.d: src/lib.rs

/root/repo/target/debug/deps/libregular_queries-5902f1d8de41e066.rlib: src/lib.rs

/root/repo/target/debug/deps/libregular_queries-5902f1d8de41e066.rmeta: src/lib.rs

src/lib.rs:
