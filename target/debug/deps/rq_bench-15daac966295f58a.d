/root/repo/target/debug/deps/rq_bench-15daac966295f58a.d: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/librq_bench-15daac966295f58a.rmeta: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs Cargo.toml

crates/rq-bench/src/lib.rs:
crates/rq-bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
