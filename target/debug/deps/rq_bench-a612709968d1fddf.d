/root/repo/target/debug/deps/rq_bench-a612709968d1fddf.d: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs

/root/repo/target/debug/deps/librq_bench-a612709968d1fddf.rlib: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs

/root/repo/target/debug/deps/librq_bench-a612709968d1fddf.rmeta: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs

crates/rq-bench/src/lib.rs:
crates/rq-bench/src/workloads.rs:
