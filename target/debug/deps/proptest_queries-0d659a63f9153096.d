/root/repo/target/debug/deps/proptest_queries-0d659a63f9153096.d: tests/proptest_queries.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_queries-0d659a63f9153096.rmeta: tests/proptest_queries.rs Cargo.toml

tests/proptest_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
