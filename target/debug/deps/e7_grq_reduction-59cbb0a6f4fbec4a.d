/root/repo/target/debug/deps/e7_grq_reduction-59cbb0a6f4fbec4a.d: crates/rq-bench/benches/e7_grq_reduction.rs Cargo.toml

/root/repo/target/debug/deps/libe7_grq_reduction-59cbb0a6f4fbec4a.rmeta: crates/rq-bench/benches/e7_grq_reduction.rs Cargo.toml

crates/rq-bench/benches/e7_grq_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
