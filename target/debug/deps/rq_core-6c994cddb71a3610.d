/root/repo/target/debug/deps/rq_core-6c994cddb71a3610.d: crates/rq-core/src/lib.rs crates/rq-core/src/containment/mod.rs crates/rq-core/src/containment/rpq.rs crates/rq-core/src/containment/rq.rs crates/rq-core/src/containment/two_rpq.rs crates/rq-core/src/containment/uc2rpq.rs crates/rq-core/src/crpq.rs crates/rq-core/src/expansion.rs crates/rq-core/src/minimize.rs crates/rq-core/src/query_text.rs crates/rq-core/src/rpq.rs crates/rq-core/src/rq.rs crates/rq-core/src/rq_text.rs crates/rq-core/src/translate/mod.rs crates/rq-core/src/translate/arity.rs crates/rq-core/src/translate/bridge.rs crates/rq-core/src/translate/from_grq.rs crates/rq-core/src/translate/to_datalog.rs Cargo.toml

/root/repo/target/debug/deps/librq_core-6c994cddb71a3610.rmeta: crates/rq-core/src/lib.rs crates/rq-core/src/containment/mod.rs crates/rq-core/src/containment/rpq.rs crates/rq-core/src/containment/rq.rs crates/rq-core/src/containment/two_rpq.rs crates/rq-core/src/containment/uc2rpq.rs crates/rq-core/src/crpq.rs crates/rq-core/src/expansion.rs crates/rq-core/src/minimize.rs crates/rq-core/src/query_text.rs crates/rq-core/src/rpq.rs crates/rq-core/src/rq.rs crates/rq-core/src/rq_text.rs crates/rq-core/src/translate/mod.rs crates/rq-core/src/translate/arity.rs crates/rq-core/src/translate/bridge.rs crates/rq-core/src/translate/from_grq.rs crates/rq-core/src/translate/to_datalog.rs Cargo.toml

crates/rq-core/src/lib.rs:
crates/rq-core/src/containment/mod.rs:
crates/rq-core/src/containment/rpq.rs:
crates/rq-core/src/containment/rq.rs:
crates/rq-core/src/containment/two_rpq.rs:
crates/rq-core/src/containment/uc2rpq.rs:
crates/rq-core/src/crpq.rs:
crates/rq-core/src/expansion.rs:
crates/rq-core/src/minimize.rs:
crates/rq-core/src/query_text.rs:
crates/rq-core/src/rpq.rs:
crates/rq-core/src/rq.rs:
crates/rq-core/src/rq_text.rs:
crates/rq-core/src/translate/mod.rs:
crates/rq-core/src/translate/arity.rs:
crates/rq-core/src/translate/bridge.rs:
crates/rq-core/src/translate/from_grq.rs:
crates/rq-core/src/translate/to_datalog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
