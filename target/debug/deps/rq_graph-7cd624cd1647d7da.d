/root/repo/target/debug/deps/rq_graph-7cd624cd1647d7da.d: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs

/root/repo/target/debug/deps/librq_graph-7cd624cd1647d7da.rlib: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs

/root/repo/target/debug/deps/librq_graph-7cd624cd1647d7da.rmeta: crates/rq-graph/src/lib.rs crates/rq-graph/src/db.rs crates/rq-graph/src/dot.rs crates/rq-graph/src/generate.rs crates/rq-graph/src/semipath.rs crates/rq-graph/src/text.rs

crates/rq-graph/src/lib.rs:
crates/rq-graph/src/db.rs:
crates/rq-graph/src/dot.rs:
crates/rq-graph/src/generate.rs:
crates/rq-graph/src/semipath.rs:
crates/rq-graph/src/text.rs:
