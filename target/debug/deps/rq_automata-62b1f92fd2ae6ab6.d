/root/repo/target/debug/deps/rq_automata-62b1f92fd2ae6ab6.d: crates/rq-automata/src/lib.rs crates/rq-automata/src/alphabet.rs crates/rq-automata/src/complement2.rs crates/rq-automata/src/containment.rs crates/rq-automata/src/dfa.rs crates/rq-automata/src/fold.rs crates/rq-automata/src/governor.rs crates/rq-automata/src/nfa.rs crates/rq-automata/src/random.rs crates/rq-automata/src/regex.rs crates/rq-automata/src/regex/parser.rs crates/rq-automata/src/regex/simplify.rs crates/rq-automata/src/shepherdson.rs crates/rq-automata/src/to_regex.rs crates/rq-automata/src/twonfa.rs Cargo.toml

/root/repo/target/debug/deps/librq_automata-62b1f92fd2ae6ab6.rmeta: crates/rq-automata/src/lib.rs crates/rq-automata/src/alphabet.rs crates/rq-automata/src/complement2.rs crates/rq-automata/src/containment.rs crates/rq-automata/src/dfa.rs crates/rq-automata/src/fold.rs crates/rq-automata/src/governor.rs crates/rq-automata/src/nfa.rs crates/rq-automata/src/random.rs crates/rq-automata/src/regex.rs crates/rq-automata/src/regex/parser.rs crates/rq-automata/src/regex/simplify.rs crates/rq-automata/src/shepherdson.rs crates/rq-automata/src/to_regex.rs crates/rq-automata/src/twonfa.rs Cargo.toml

crates/rq-automata/src/lib.rs:
crates/rq-automata/src/alphabet.rs:
crates/rq-automata/src/complement2.rs:
crates/rq-automata/src/containment.rs:
crates/rq-automata/src/dfa.rs:
crates/rq-automata/src/fold.rs:
crates/rq-automata/src/governor.rs:
crates/rq-automata/src/nfa.rs:
crates/rq-automata/src/random.rs:
crates/rq-automata/src/regex.rs:
crates/rq-automata/src/regex/parser.rs:
crates/rq-automata/src/regex/simplify.rs:
crates/rq-automata/src/shepherdson.rs:
crates/rq-automata/src/to_regex.rs:
crates/rq-automata/src/twonfa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
