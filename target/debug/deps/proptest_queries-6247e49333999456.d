/root/repo/target/debug/deps/proptest_queries-6247e49333999456.d: tests/proptest_queries.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_queries-6247e49333999456.rmeta: tests/proptest_queries.rs Cargo.toml

tests/proptest_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
