/root/repo/target/debug/deps/rq_bench-3fa62876b449cdb4.d: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs

/root/repo/target/debug/deps/rq_bench-3fa62876b449cdb4: crates/rq-bench/src/lib.rs crates/rq-bench/src/workloads.rs

crates/rq-bench/src/lib.rs:
crates/rq-bench/src/workloads.rs:
