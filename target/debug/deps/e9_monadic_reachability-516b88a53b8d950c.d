/root/repo/target/debug/deps/e9_monadic_reachability-516b88a53b8d950c.d: crates/rq-bench/benches/e9_monadic_reachability.rs Cargo.toml

/root/repo/target/debug/deps/libe9_monadic_reachability-516b88a53b8d950c.rmeta: crates/rq-bench/benches/e9_monadic_reachability.rs Cargo.toml

crates/rq-bench/benches/e9_monadic_reachability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
