/root/repo/target/debug/deps/example_data-f027bbaa6a7fe6c3.d: tests/example_data.rs Cargo.toml

/root/repo/target/debug/deps/libexample_data-f027bbaa6a7fe6c3.rmeta: tests/example_data.rs Cargo.toml

tests/example_data.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
