/root/repo/target/debug/deps/e8_datalog_eval-86bfb6763469a6ff.d: crates/rq-bench/benches/e8_datalog_eval.rs Cargo.toml

/root/repo/target/debug/deps/libe8_datalog_eval-86bfb6763469a6ff.rmeta: crates/rq-bench/benches/e8_datalog_eval.rs Cargo.toml

crates/rq-bench/benches/e8_datalog_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
