/root/repo/target/debug/deps/cross_validation-718257c9af2fd263.d: tests/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-718257c9af2fd263: tests/cross_validation.rs

tests/cross_validation.rs:
