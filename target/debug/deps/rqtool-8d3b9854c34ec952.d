/root/repo/target/debug/deps/rqtool-8d3b9854c34ec952.d: src/bin/rqtool.rs

/root/repo/target/debug/deps/rqtool-8d3b9854c34ec952: src/bin/rqtool.rs

src/bin/rqtool.rs:
