/root/repo/target/debug/deps/adversarial_limits-665956fa86bb335c.d: tests/adversarial_limits.rs

/root/repo/target/debug/deps/adversarial_limits-665956fa86bb335c: tests/adversarial_limits.rs

tests/adversarial_limits.rs:
