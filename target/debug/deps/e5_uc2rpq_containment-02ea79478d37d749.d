/root/repo/target/debug/deps/e5_uc2rpq_containment-02ea79478d37d749.d: crates/rq-bench/benches/e5_uc2rpq_containment.rs Cargo.toml

/root/repo/target/debug/deps/libe5_uc2rpq_containment-02ea79478d37d749.rmeta: crates/rq-bench/benches/e5_uc2rpq_containment.rs Cargo.toml

crates/rq-bench/benches/e5_uc2rpq_containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
