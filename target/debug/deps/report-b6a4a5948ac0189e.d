/root/repo/target/debug/deps/report-b6a4a5948ac0189e.d: crates/rq-bench/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-b6a4a5948ac0189e.rmeta: crates/rq-bench/src/bin/report.rs Cargo.toml

crates/rq-bench/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
