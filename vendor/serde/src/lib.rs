//! Offline stand-in for the `serde` facade.
//!
//! The workspace's zero-dependency guarantee (CI's offline-build job) means
//! the registry `serde` crate cannot be resolved; this vendored crate keeps
//! the `serde` *feature* of the workspace crates compiling without network
//! access. The traits are markers: the workspace derives them but never
//! drives an actual serializer (there is no `serde_json`-style consumer in
//! the tree). Swapping in the real `serde` is a one-line change in the
//! workspace manifest.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    bool, char, f32, f64, i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, String,
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
