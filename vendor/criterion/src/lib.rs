//! Offline stand-in for `criterion`, implementing exactly the API surface
//! the `rq-bench` benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input,
//! finish}`, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The registry crate cannot be resolved under the workspace's
//! zero-dependency guarantee, and the benches are measurement *harnesses*
//! (EXPERIMENTS.md tables), so this shim does honest wall-clock timing —
//! warmup, then a fixed measurement window, median-of-batches reporting —
//! without the statistical machinery. Results print as
//! `name/param  time: [median ns/iter]` lines, greppable by the report
//! binary and stable enough for A/B overhead comparisons like
//! `e11_governor_overhead`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement entry point. `default()` gives laptop-scale windows; the
/// benches only ever pass it by `&mut` reference.
pub struct Criterion {
    warmup: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Compatibility no-op (the real crate reads CLI filters here).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warmup: self.warmup,
            measurement: self.measurement,
            sample_size: self.sample_size,
            _criterion: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id.into(), f);
    }
}

/// A named benchmark id: `from_parameter(8)` or `new("naive", 8)`.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { repr: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { repr: s }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    warmup: Duration,
    measurement: Duration,
    sample_size: usize,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Criterion semantics: number of samples per benchmark. The shim uses
    /// it to scale the measurement window down for slow benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let label = if self.name.is_empty() {
            id.repr
        } else {
            format!("{}/{}", self.name, id.repr)
        };
        let mut b = Bencher {
            warmup: self.warmup,
            measurement: self.measurement,
            samples: self.sample_size,
            result_ns: None,
        };
        f(&mut b);
        match b.result_ns {
            Some(ns) => println!("{label:<52} time: [{} per iter]", format_ns(ns)),
            None => println!("{label:<52} time: [no iterations run]"),
        }
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Runs the closure under timing. `iter` may be called once per
/// `bench_function` invocation (as in all the rq-bench benches).
pub struct Bencher {
    warmup: Duration,
    measurement: Duration,
    samples: usize,
    result_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warmup: run until the warmup window elapses (at least once),
        // estimating the per-iteration cost as we go.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_iters == 0 || warmup_start.elapsed() < self.warmup {
            black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Measurement: `samples` batches sized to fill the window, median
        // batch mean reported.
        let batch = ((self.measurement.as_secs_f64() / self.samples as f64 / per_iter.max(1e-9))
            .ceil() as u64)
            .clamp(1, 10_000_000);
        let mut batch_means: Vec<f64> = Vec::with_capacity(self.samples);
        let window_start = Instant::now();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            batch_means.push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
            // Hard cap: never let one benchmark run more than 4 windows.
            if window_start.elapsed() > self.measurement * 4 {
                break;
            }
        }
        batch_means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.result_ns = Some(batch_means[batch_means.len() / 2]);
    }

    /// Median nanoseconds per iteration from the last `iter` call (shim
    /// extension used by `e11_governor_overhead` for A/B comparisons).
    pub fn last_median_ns(&self) -> Option<f64> {
        self.result_ns
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Median ns/iter of `f`, measured standalone — the building block the
/// `e11_governor_overhead` bench uses for direct A/B ratios.
pub fn time_median_ns<O, F: FnMut() -> O>(f: F) -> f64 {
    let mut b = Bencher {
        warmup: Duration::from_millis(150),
        measurement: Duration::from_millis(400),
        samples: 15,
        result_ns: None,
    };
    b.iter(f);
    b.result_ns.expect("iter ran")
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_trivial_work() {
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
            sample_size: 5,
        };
        let mut g = c.benchmark_group("shim");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = b.last_median_ns().is_some();
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(8).repr, "8");
        assert_eq!(BenchmarkId::new("naive", 8).repr, "naive/8");
    }
}
