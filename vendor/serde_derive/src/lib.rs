//! Syn-free `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored marker-trait `serde` crate.
//!
//! The macro only needs the type's name: it scans the token stream for the
//! `struct` / `enum` keyword and takes the following identifier. All the
//! workspace types deriving serde traits are non-generic, so the emitted
//! impl needs no type parameters (a generic type would fail to compile
//! here, loudly, rather than silently misbehave). The inert `serde`
//! attribute (`#[serde(skip)]` etc.) is registered and ignored.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for tree in input {
        if let TokenTree::Ident(ident) = tree {
            let s = ident.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive stub: could not find a struct/enum name in the input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
