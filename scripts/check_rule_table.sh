#!/usr/bin/env sh
# Verify that the lint-rule table in docs/ALGORITHMS.md and the
# `rq_analyze::RULES` const list exactly the same rule ids — both ways.
# The golden suite already pins severity and firing behavior per rule;
# this guards the *documentation* from drifting when a rule is added or
# removed. Run from the repo root (CI runs it in the lint smoke job).
set -eu

rules_src="crates/rq-analyze/src/lib.rs"
doc="docs/ALGORITHMS.md"

code_ids=$(grep -o 'id: "RQ[A-Z][0-9]*"' "$rules_src" | grep -o 'RQ[A-Z][0-9]*' | sort -u)
doc_ids=$(grep -o '^| RQ[A-Z][0-9]* |' "$doc" | grep -o 'RQ[A-Z][0-9]*' | sort -u)

[ -n "$code_ids" ] || { echo "error: no rule ids found in $rules_src" >&2; exit 1; }
[ -n "$doc_ids" ] || { echo "error: no rule-table rows found in $doc" >&2; exit 1; }

status=0
for id in $code_ids; do
    if ! echo "$doc_ids" | grep -qx "$id"; then
        echo "error: $id is in $rules_src but missing from the $doc rule table" >&2
        status=1
    fi
done
for id in $doc_ids; do
    if ! echo "$code_ids" | grep -qx "$id"; then
        echo "error: $id is documented in $doc but absent from $rules_src" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    n=$(echo "$code_ids" | wc -l | tr -d ' ')
    echo "rule table in sync: $n rules"
fi
exit "$status"
