//! # regular-queries
//!
//! A production-quality Rust implementation of the query classes and
//! containment algorithms surveyed in Moshe Y. Vardi's *A Theory of Regular
//! Queries* (PODS 2016): RPQs, 2RPQs, C2RPQs, UC2RPQs, Regular Queries (RQ)
//! and Generalized Regular Queries (GRQ), together with the word-automata
//! and Datalog substrates they are built on.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`automata`] — regexes, NFA/DFA/2NFA machinery, fold, complementation;
//! * [`graph`] — edge-labeled graph databases and generators;
//! * [`datalog`] — a Datalog engine with GRQ recognition and translation;
//! * [`core`] — the query classes, their evaluation, and the containment
//!   checker suite;
//! * [`analyze`] — static-analysis & lint passes over all query classes,
//!   plus the engine's pre-flight normalizer (`rqtool lint`);
//! * [`engine`] — concurrent query serving with a containment-based
//!   semantic cache;
//! * [`metrics`] — a lock-free metrics registry (counters, gauges,
//!   fixed-bucket histograms) with Prometheus-style text exposition and
//!   optional JSON-lines tracing, threaded through the other layers;
//! * [`serve`] — a fault-tolerant multi-tenant HTTP front-end over the
//!   engine: admission control, load-shedding, deadlines/retries,
//!   graceful drain, and deterministic fault injection (`rqtool serve`).
//!
//! ## Quickstart
//!
//! ```
//! use regular_queries::prelude::*;
//!
//! // A small graph database over the alphabet {knows}.
//! let mut db = GraphDb::new();
//! let (alice, bob, carol) = (db.node("alice"), db.node("bob"), db.node("carol"));
//! let knows = db.label("knows");
//! db.add_edge(alice, knows, bob);
//! db.add_edge(bob, knows, carol);
//!
//! // Evaluate the RPQ knows+ (a friend-of-a-friend chain of any length).
//! let mut alphabet = db.alphabet().clone();
//! let q = Rpq::parse("knows+", &mut alphabet).unwrap();
//! let answers = q.evaluate(&db);
//! assert!(answers.contains(&(alice, carol)));
//!
//! // Containment: knows ⊑ knows+ holds, knows+ ⊑ knows does not.
//! let q1 = Rpq::parse("knows", &mut alphabet).unwrap();
//! assert!(rpq_containment(&q1, &q, &alphabet).is_contained());
//! assert!(rpq_containment(&q, &q1, &alphabet).is_not_contained());
//! ```

pub use rq_analyze as analyze;
pub use rq_automata as automata;
pub use rq_core as core;
pub use rq_datalog as datalog;
pub use rq_engine as engine;
pub use rq_graph as graph;
pub use rq_metrics as metrics;
pub use rq_serve as serve;
pub use rq_storage as storage;

/// Convenient glob-import surface for examples and applications.
pub mod prelude {
    pub use rq_analyze::{
        lint_program, lint_two_rpq, lint_two_rpq_with_source, lint_uc2rpq, preflight, Report,
        Severity,
    };
    pub use rq_automata::{
        Alphabet, Counters, EngineError, Exhaustion, Governor, LabelId, Letter, Limits, Nfa, Regex,
        Resource,
    };
    pub use rq_core::containment::rpq::check as rpq_containment;
    pub use rq_core::containment::two_rpq::check as two_rpq_containment;
    pub use rq_core::containment::{
        Certificate, Config as ContainmentConfig, ExhaustionReport, Outcome, Witness,
    };
    pub use rq_core::query_text::parse_uc2rpq;
    pub use rq_core::{C2Rpq, Rpq, RqExpr, RqQuery, TwoRpq, Uc2Rpq};
    pub use rq_datalog::{FactDb, Program, Query as DatalogQuery};
    pub use rq_engine::{CacheConfig, CacheStats, Disposition, Engine, EngineConfig};
    pub use rq_graph::{Delta, GraphDb, NodeId, Semipath};
    pub use rq_serve::{FaultPlan, ServeConfig, Server, TenantQuota};
    pub use rq_storage::{OpenReport, StorageConfig, StorageError, StorageHandle};
}
