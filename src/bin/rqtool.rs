//! `rqtool` — command-line front end for the regular-queries library.
//!
//! ```text
//! rqtool eval <graph.txt> <query> [--from NODE] [--dot]
//! rqtool contain <query1> <query2> [--dot]
//! rqtool simplify <query>
//! rqtool datalog <program.dl> <goal> <graph.txt>
//! rqtool recognize <program.dl>
//! rqtool to-datalog <query>
//! rqtool eval-cq <graph.txt> <query.cq>
//! rqtool contain-cq <query1.cq> <query2.cq>
//! rqtool eval-rq <graph.txt> <query.rq> [--goal=PRED]
//! rqtool contain-rq <query1.rq> <query2.rq>
//! rqtool serve-batch <graph.txt> <queries.txt> [--threads=N] [--cache-cap=N] [--metrics] [--trace]
//! rqtool stats <graph.txt> <queries.txt> [--threads=N] [--cache-cap=N]
//! rqtool explain <graph.txt> <query> [--warm=QUERY] [--threads=N]
//! rqtool lint <query|file|dir> [--goal=PRED] [--json]
//! rqtool serve <graph.txt> [--addr=H:P] [--workers=N] [--queue-cap=N] [--faults=SPEC]
//! rqtool serve --store=DIR [--addr=H:P] [--workers=N] ...
//! rqtool bench-serve <graph.txt> [queries.txt] [--clients=N] [--duration-ms=N] [--no-backoff] [--ingest-every-ms=N]
//! rqtool convert <graph.txt> <store-dir> [--shards=N]
//! rqtool compact <store-dir>
//! rqtool ingest <store-dir> <deltas.txt>
//! ```
//!
//! `convert` writes a graph into the `rq-storage` on-disk format: a
//! checksummed, sharded snapshot plus an (initially empty) append-only
//! delta log under `<store-dir>`. Everywhere a `<graph.txt>` is accepted,
//! a store directory works too — `eval`, `serve`, `bench-serve`, … open
//! it via snapshot load + log replay instead of the text parser. `ingest`
//! durably appends `add src label dst` / `remove src label dst` lines to
//! a store's log (replayed on next open); `compact` folds the log into a
//! fresh snapshot. `serve --store=DIR` serves over a store and wires
//! `POST /ingest` to it: each ingest batch is fsync'd to the log before
//! it patches the live engine, so an acknowledged batch survives a crash.
//!
//! `lint` runs the `rq-analyze` passes: over an inline regex, a single
//! `.dl`/`.cq`/`.rq`/`.batch` file, or a whole directory tree (e.g.
//! `examples/`). Findings print as `path:line:col: severity[RULE] slug:
//! message` (or a JSON array with `--json`); the exit code is non-zero
//! iff an error-severity finding or a parse failure occurred. `--goal`
//! enables the Datalog reachability lints. Failures to read or parse any
//! input are reported as structured `error[io]:` / `error[parse]:` lines
//! on stderr, never as panics.
//!
//! `serve` starts the `rq-serve` HTTP front-end over a graph: `POST
//! /query` (sync), `POST /submit` + `GET /poll?id=N` (async), `POST
//! /stream` (JSON-lines batch), `POST /lint`, `GET /metrics`, `GET
//! /healthz`, and `POST /drainz`. Requests carry `X-Tenant`, `X-Fuel`,
//! and `X-Timeout-Ms` headers; overload is shed with `429` +
//! `Retry-After`. `SIGTERM`/`SIGINT` (or `/drainz`) triggers a graceful
//! drain bounded by `--drain-ms`, ending with a final metrics flush on
//! stderr. `--faults=seed=S,panic=PPM,delay=PPM,delay_ms=MS,starve=PPM`
//! arms the deterministic fault-injection plan (needs `--features
//! faults`). `bench-serve` starts a private server over the same graph
//! and drives it with `--clients=N` closed-loop clients for
//! `--duration-ms`, printing the shed rate and admitted-request
//! latency percentiles (experiment E14). Shed clients honor the
//! server's `Retry-After` before retrying unless `--no-backoff` is
//! given.
//!
//! `explain` serves one query under a request-scoped trace and prints
//! the span tree as a per-stage profile: preflight action, cache
//! disposition, the containment-ladder rung that decided each cache
//! probe, and the frontier-BFS work of the evaluation — each span
//! annotated with its fuel and duration, with a per-stage fuel rollup at
//! the end. `--warm=QUERY` (repeatable) serves warm-up queries untraced
//! first, so cache hits and subsumptions can be profiled: `rqtool
//! explain g.txt "p p" --warm="p*"` shows the probe ladder proving
//! `p p ⊑ p*` and the superset re-evaluation.
//!
//! `serve-batch` reads one 2RPQ per line (blank lines and `#` comments
//! skipped), serves the batch through the `rq-engine` semantic cache, and
//! prints per-query hit/miss/subsumption dispositions plus the batch cache
//! counters. `--threads=N` sizes the worker pool and `--cache-cap=N` the
//! cache; the `--fuel`/`--timeout-ms` budgets apply per worker.
//! `--metrics` appends a Prometheus-style text exposition of every metric
//! recorded while serving (cache dispositions, containment-ladder stages,
//! latency histograms, governor fuel); `stats` runs the same batch but
//! prints *only* the exposition. `--trace` streams JSON-lines span events
//! to stderr (requires the `trace` cargo feature; without it the flag
//! prints a note and is otherwise ignored).
//!
//! Resource budgets: `--fuel=N` caps abstract search steps and
//! `--timeout-ms=N` sets a wall-clock deadline for `contain`,
//! `contain-cq`, `contain-rq`, and `datalog`. An exhausted budget is not
//! an error: the verdict degrades to `unknown` (or a partial fact count)
//! and the partial-progress counters are printed.
//!
//! `.rq` files use the full-RQ rule syntax with `tc[Pred]` closure atoms
//! (`Tri(x,y) :- [r](x,y), [r](y,z), [r](z,x).` / `Ans(x,y) :- tc[Tri](x,y).`).
//!
//! `.cq` files use the UC2RPQ rule syntax
//! (`Q(x, y) :- [a+](x, m), [b c-](m, y).`, one rule per line, same head
//! predicate throughout).
//!
//! Graph files use the `src label dst` text format (`node x` declares an
//! isolated node, `#` comments). Queries are regular expressions over Σ±
//! with `label-` for inverse letters. Datalog programs use
//! `Head(X,Y) :- body.` syntax with uppercase variables.

use regular_queries::analyze::{Json, Span};
use regular_queries::automata::regex::simplify;
use regular_queries::core::containment::two_rpq;
use regular_queries::core::rq::{RqExpr, RqQuery};
use regular_queries::core::translate::graphdb_to_factdb;
use regular_queries::datalog::depgraph::{is_monadic, is_nonrecursive, DepGraph};
use regular_queries::datalog::grq::analyze_grq;
use regular_queries::datalog::parser::{parse_program, parse_program_spanned};
use regular_queries::datalog::validate::validate_program;
use regular_queries::graph::dot::{to_dot, DotOptions};
use regular_queries::graph::text;
use regular_queries::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (flags, positional): (Vec<&String>, Vec<&String>) =
        args.iter().partition(|a| a.starts_with("--"));
    let want_dot = flags.iter().any(|f| *f == "--dot");
    let from = flags
        .iter()
        .position(|f| f.starts_with("--from="))
        .map(|i| flags[i]["--from=".len()..].to_owned());
    let goal = flags
        .iter()
        .position(|f| f.starts_with("--goal="))
        .map(|i| flags[i]["--goal=".len()..].to_owned());

    // A typo'd budget flag silently running an unbounded search would
    // defeat the point of having budgets; reject anything unrecognized.
    let want_json = flags.iter().any(|f| *f == "--json");
    let deny_warnings = flags.iter().any(|f| *f == "--deny-warnings");
    let unknown = flags.iter().find(|f| {
        !(***f == "--dot"
            || ***f == "--metrics"
            || ***f == "--trace"
            || ***f == "--json"
            || ***f == "--deny-warnings"
            || f.starts_with("--from=")
            || f.starts_with("--goal=")
            || f.starts_with("--fuel=")
            || f.starts_with("--timeout-ms=")
            || f.starts_with("--threads=")
            || f.starts_with("--cache-cap=")
            || f.starts_with("--warm=")
            || f.starts_with("--addr=")
            || f.starts_with("--workers=")
            || f.starts_with("--queue-cap=")
            || f.starts_with("--request-fuel=")
            || f.starts_with("--drain-ms=")
            || f.starts_with("--tenant-fuel-per-sec=")
            || f.starts_with("--tenant-burst=")
            || f.starts_with("--faults=")
            || f.starts_with("--clients=")
            || f.starts_with("--duration-ms=")
            || f.starts_with("--shards=")
            || f.starts_with("--store=")
            || f.starts_with("--compact-threshold=")
            || f.starts_with("--ingest-every-ms=")
            || f.as_str() == "--no-backoff")
    });
    if flags.iter().any(|f| *f == "--trace") {
        if regular_queries::metrics::trace::supported() {
            regular_queries::metrics::trace::install_stderr();
        } else {
            eprintln!("note: --trace requires building with `--features trace`; ignoring");
        }
    }

    let result = match unknown {
        Some(f) => Err(format!("unknown flag {f}\n{}", usage())),
        None => Ok(()),
    }
    .and_then(|()| parse_limits(&flags))
    .and_then(|limits| match positional.as_slice() {
        [cmd, rest @ ..] => match (cmd.as_str(), rest) {
            ("eval", [graph, query]) => cmd_eval(graph, query, from.as_deref(), want_dot),
            ("contain", [q1, q2]) => cmd_contain(q1, q2, want_dot, &limits),
            ("simplify", [query]) => cmd_simplify(query),
            ("datalog", [program, goal, graph]) => cmd_datalog(program, goal, graph, &limits),
            ("recognize", [program]) => cmd_recognize(program),
            ("to-datalog", [query]) => cmd_to_datalog(query),
            ("eval-cq", [graph, query]) => cmd_eval_cq(graph, query),
            ("contain-cq", [q1, q2]) => cmd_contain_cq(q1, q2, &limits),
            ("eval-rq", [graph, query]) => cmd_eval_rq(graph, query, goal.as_deref()),
            ("contain-rq", [q1, q2]) => cmd_contain_rq(q1, q2, &limits),
            ("serve-batch", [graph, queries]) => {
                cmd_serve_batch(graph, queries, &flags, &limits, ServeOutput::Report)
            }
            ("stats", [graph, queries]) => {
                cmd_serve_batch(graph, queries, &flags, &limits, ServeOutput::MetricsOnly)
            }
            ("explain", [graph, query]) => cmd_explain(graph, query, &flags),
            ("lint", [input]) => {
                cmd_lint(input, goal.as_deref(), &limits, want_json, deny_warnings)
            }
            ("convert", [graph, dir]) => cmd_convert(graph, dir, &flags),
            ("compact", [dir]) => cmd_compact(dir, &flags),
            ("ingest", [dir, deltas]) => cmd_ingest(dir, deltas, &flags),
            ("serve", []) => cmd_serve(None, &flags, &limits),
            ("serve", [graph]) => cmd_serve(Some(graph), &flags, &limits),
            ("bench-serve", [graph]) => cmd_bench_serve(graph, None, &flags, &limits),
            ("bench-serve", [graph, queries]) => {
                cmd_bench_serve(graph, Some(queries), &flags, &limits)
            }
            _ => Err(usage()),
        },
        _ => Err(usage()),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage:\n  rqtool eval <graph.txt> <query> [--from=NODE] [--dot]\n  \
     rqtool contain <query1> <query2> [--dot]\n  \
     rqtool simplify <query>\n  \
     rqtool datalog <program.dl> <goal> <graph.txt>\n  \
     rqtool recognize <program.dl>\n  \
     rqtool to-datalog <query>\n  \
     rqtool eval-cq <graph.txt> <query.cq>\n  \
     rqtool contain-cq <query1.cq> <query2.cq>\n  \
     rqtool eval-rq <graph.txt> <query.rq> [--goal=PRED]\n  \
     rqtool contain-rq <query1.rq> <query2.rq>\n  \
     rqtool serve-batch <graph.txt> <queries.txt> [--threads=N] [--cache-cap=N] [--metrics] [--trace]\n  \
     rqtool stats <graph.txt> <queries.txt> [--threads=N] [--cache-cap=N]\n  \
     rqtool explain <graph.txt> <query> [--warm=QUERY] [--threads=N]\n  \
     rqtool lint <query|file|dir> [--goal=PRED] [--json] [--deny-warnings]\n  \
     rqtool serve <graph.txt|store-dir> [--addr=H:P] [--workers=N] [--queue-cap=N] [--request-fuel=N] [--drain-ms=N] [--faults=SPEC]\n  \
     rqtool serve --store=DIR [--addr=H:P] ... (persistent /ingest)\n  \
     rqtool bench-serve <graph.txt|store-dir> [queries.txt] [--clients=N] [--duration-ms=N] [--no-backoff] [--ingest-every-ms=N]\n  \
     rqtool convert <graph.txt> <store-dir> [--shards=N]\n  \
     rqtool compact <store-dir>\n  \
     rqtool ingest <store-dir> <deltas.txt>\n\
     budget flags (contain*, datalog, serve-batch, stats, lint): --fuel=N --timeout-ms=N"
        .to_owned()
}

/// Parse the `--fuel=N` / `--timeout-ms=N` budget flags into [`Limits`].
fn parse_limits(flags: &[&String]) -> Result<Limits, String> {
    let mut limits = Limits::unlimited();
    for f in flags {
        if let Some(v) = f.strip_prefix("--fuel=") {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("--fuel expects an integer, got {v:?}"))?;
            limits = limits.with_fuel(n);
        } else if let Some(v) = f.strip_prefix("--timeout-ms=") {
            let ms: u64 = v
                .parse()
                .map_err(|_| format!("--timeout-ms expects an integer, got {v:?}"))?;
            limits = limits.with_deadline(std::time::Duration::from_millis(ms));
        }
    }
    Ok(limits)
}

/// Print the partial-progress counters of an exhausted / inconclusive
/// verdict so the user sees how far the search got before it stopped.
fn print_partial_progress(out: &Outcome) {
    if let Some(r) = out.report() {
        println!("  partial progress: {}", r.counters);
    }
}

/// Load a graph from either source: a directory is an `rq-storage` store
/// (snapshot load + delta-log replay), anything else the text format.
fn load_graph(path: &str) -> Result<GraphDb, String> {
    if std::path::Path::new(path).is_dir() {
        let (_, db, report) = StorageHandle::open(std::path::Path::new(path), storage_config(&[])?)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "opened store {path}: {} nodes, {} edges, {} replayed deltas in {}us",
            report.nodes, report.edges, report.replayed, report.open_us
        );
        return Ok(db);
    }
    let content = read_input(path)?;
    text::parse(&content).map_err(|e| format!("error[parse]: {path}: {e}"))
}

/// Build the [`StorageConfig`] from `--shards=N` / `--compact-threshold=N`.
fn storage_config(flags: &[&String]) -> Result<StorageConfig, String> {
    let defaults = StorageConfig::default();
    let shards = flag_u64(flags, "shards", u64::from(defaults.shards))?;
    if shards == 0 || shards > 1024 {
        return Err(format!("--shards must be in 1..=1024, got {shards}"));
    }
    Ok(StorageConfig {
        shards: shards as u32,
        compact_threshold: flag_u64(flags, "compact-threshold", defaults.compact_threshold)?,
        ..defaults
    })
}

/// `rqtool convert`: write a text graph into the on-disk snapshot + log
/// format under `dir`.
fn cmd_convert(graph: &str, dir: &str, flags: &[&String]) -> Result<(), String> {
    let config = storage_config(flags)?;
    let content = read_input(graph)?;
    let db = text::parse(&content).map_err(|e| format!("error[parse]: {graph}: {e}"))?;
    std::fs::create_dir_all(dir).map_err(|e| format!("error[io]: cannot create {dir}: {e}"))?;
    let shards = config.shards;
    StorageHandle::create(std::path::Path::new(dir), &db, config).map_err(|e| e.to_string())?;
    println!(
        "converted {graph} -> {dir}: {} nodes, {} labels, {} shards",
        db.num_nodes(),
        db.alphabet().len(),
        shards
    );
    Ok(())
}

/// `rqtool compact`: fold a store's delta log into a fresh snapshot.
fn cmd_compact(dir: &str, flags: &[&String]) -> Result<(), String> {
    let (mut handle, db, report) =
        StorageHandle::open(std::path::Path::new(dir), storage_config(flags)?)
            .map_err(|e| e.to_string())?;
    let folded = report.replayed;
    handle.compact(&db).map_err(|e| e.to_string())?;
    println!(
        "compacted {dir}: folded {folded} log deltas into a snapshot of {} nodes at epoch {}",
        db.num_nodes(),
        handle.epoch()
    );
    Ok(())
}

/// `rqtool ingest`: durably append a file of `add`/`remove` delta lines
/// to a store's log. The deltas are replayed into the graph on the next
/// open; a running `serve --store` ingests via `POST /ingest` instead.
fn cmd_ingest(dir: &str, deltas_path: &str, flags: &[&String]) -> Result<(), String> {
    let content = read_input(deltas_path)?;
    let deltas = Delta::parse_text(&content)
        .map_err(|(line, e)| format!("error[parse]: {deltas_path}:{line}: {e}"))?;
    if deltas.is_empty() {
        return Err(format!("error[io]: no delta lines in {deltas_path}"));
    }
    let (mut handle, mut db, _) =
        StorageHandle::open(std::path::Path::new(dir), storage_config(flags)?)
            .map_err(|e| e.to_string())?;
    handle.append(&deltas).map_err(|e| e.to_string())?;
    let applied = deltas.iter().filter(|d| db.apply_delta(d)).count();
    let mut compacted = false;
    if handle.needs_compaction() {
        handle.compact(&db).map_err(|e| e.to_string())?;
        compacted = true;
    }
    println!(
        "ingested {} deltas into {dir} ({applied} effective, epoch {}{})",
        deltas.len(),
        handle.epoch(),
        if compacted { ", compacted" } else { "" }
    );
    Ok(())
}

/// Read a file, mapping failures to the structured `error[io]:` form so
/// every subcommand exits non-zero with a diagnosable message instead of
/// panicking.
fn read_input(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("error[io]: cannot read {path}: {e}"))
}

fn cmd_eval(graph: &str, query: &str, from: Option<&str>, want_dot: bool) -> Result<(), String> {
    let db = load_graph(graph)?;
    let mut al = db.alphabet().clone();
    let q = TwoRpq::parse(query, &mut al).map_err(|e| e.to_string())?;
    match from {
        Some(name) => {
            let src = db
                .find_node(name)
                .ok_or_else(|| format!("no node named {name}"))?;
            let ans = q.evaluate_from(&db, src);
            println!("{} answers from {name}:", ans.len());
            for n in &ans {
                println!("  {}", db.display_node(*n));
            }
        }
        None => {
            let ans = q.evaluate(&db);
            println!("{} answer pairs:", ans.len());
            for (x, y) in &ans {
                println!("  {} ⇒ {}", db.display_node(*x), db.display_node(*y));
            }
        }
    }
    if want_dot {
        println!("\n{}", to_dot(&db, &DotOptions::default()));
    }
    Ok(())
}

fn cmd_contain(s1: &str, s2: &str, want_dot: bool, limits: &Limits) -> Result<(), String> {
    let mut al = Alphabet::new();
    let q1 = TwoRpq::parse(s1, &mut al).map_err(|e| e.to_string())?;
    let q2 = TwoRpq::parse(s2, &mut al).map_err(|e| e.to_string())?;
    for (label, a, b) in [("Q1 ⊑ Q2", &q1, &q2), ("Q2 ⊑ Q1", &q2, &q1)] {
        let gov = limits.governor();
        let out = match two_rpq::check_governed(a, b, &al, &gov) {
            Ok(out) => out,
            Err(e) => Outcome::exhausted(e),
        };
        println!("{label}: {out}");
        print_partial_progress(&out);
        if let Some(w) = out.witness() {
            if want_dot {
                let dot = to_dot(
                    &w.db,
                    &DotOptions {
                        name: Some("counterexample".into()),
                        highlight: w.tuple.clone(),
                        horizontal: true,
                    },
                );
                println!("{dot}");
            } else {
                for line in text::to_text(&w.db).lines() {
                    println!("    {line}");
                }
            }
        }
    }
    Ok(())
}

fn cmd_simplify(query: &str) -> Result<(), String> {
    let mut al = Alphabet::new();
    let e = regular_queries::automata::regex::parse(query, &mut al).map_err(|e| e.to_string())?;
    let out = simplify(&e);
    println!("{}", out.display(&al));
    if out.size() < e.size() {
        eprintln!("({} → {} AST nodes)", e.size(), out.size());
    }
    Ok(())
}

fn cmd_datalog(program: &str, goal: &str, graph: &str, limits: &Limits) -> Result<(), String> {
    let content = read_input(program)?;
    let p = parse_program(&content).map_err(|e| format!("error[parse]: {program}: {e}"))?;
    validate_program(&p).map_err(|e| format!("error[parse]: {program}: {e}"))?;
    let q = DatalogQuery::new(p, goal);
    let db = load_graph(graph)?;
    let facts = graphdb_to_factdb(&db);
    let gov = limits.governor();
    match regular_queries::datalog::evaluate_governed(&q, &facts, &gov) {
        Ok(rel) => {
            println!("{} facts for {goal}:", rel.len());
            for t in rel.iter() {
                let names: Vec<&str> = t.iter().map(|&v| facts.value_name(v)).collect();
                println!("  {goal}({})", names.join(", "));
            }
        }
        Err(e) => {
            println!("evaluation stopped early: {e}");
            println!("  partial progress: {}", e.counters);
        }
    }
    Ok(())
}

fn cmd_recognize(program: &str) -> Result<(), String> {
    let content = read_input(program)?;
    let p = parse_program(&content).map_err(|e| format!("error[parse]: {program}: {e}"))?;
    validate_program(&p).map_err(|e| format!("error[parse]: {program}: {e}"))?;
    let dg = DepGraph::new(&p);
    println!("predicates : {}", dg.predicates.join(", "));
    println!("recursive  : {}", dg.recursive_predicates().join(", "));
    println!("nonrecursive program? {}", is_nonrecursive(&p));
    println!("Monadic Datalog?      {}", is_monadic(&p));
    match analyze_grq(&p) {
        Ok(a) => {
            println!("GRQ?                  yes");
            for tc in &a.tc_defs {
                println!("  {} = TC({}) [{:?}]", tc.tc_pred, tc.base_pred, tc.step);
            }
        }
        Err(v) => println!("GRQ?                  no — {v}"),
    }
    Ok(())
}

fn cmd_to_datalog(query: &str) -> Result<(), String> {
    let mut al = Alphabet::new();
    let rel = TwoRpq::parse(query, &mut al).map_err(|e| e.to_string())?;
    let q = RqQuery::new(vec!["x".into(), "y".into()], RqExpr::rel2(rel, "x", "y"))
        .map_err(|e| e.to_string())?;
    let dq = regular_queries::core::translate::rq_to_datalog(&q, &al);
    print!("{}", dq.program);
    println!("% goal: {}", dq.goal);
    Ok(())
}

/// What `cmd_serve_batch` prints: the per-query report (optionally
/// followed by the metric exposition when `--metrics` is passed), or the
/// exposition alone (the `stats` subcommand).
#[derive(PartialEq)]
enum ServeOutput {
    Report,
    MetricsOnly,
}

fn cmd_serve_batch(
    graph: &str,
    queries_path: &str,
    flags: &[&String],
    limits: &Limits,
    output: ServeOutput,
) -> Result<(), String> {
    let mut threads = 2usize;
    let mut cache_cap = 64usize;
    for f in flags {
        if let Some(v) = f.strip_prefix("--threads=") {
            threads = v
                .parse()
                .map_err(|_| format!("--threads expects an integer, got {v:?}"))?;
        } else if let Some(v) = f.strip_prefix("--cache-cap=") {
            cache_cap = v
                .parse()
                .map_err(|_| format!("--cache-cap expects an integer, got {v:?}"))?;
        }
    }
    let db = load_graph(graph)?;
    let content = read_input(queries_path)?;
    let texts: Vec<&str> = content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let engine = Engine::new(
        db,
        EngineConfig {
            threads,
            limits: limits.clone(),
            cache: CacheConfig {
                capacity: cache_cap,
                ..CacheConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    let queries: Vec<TwoRpq> = texts
        .iter()
        .map(|t| {
            engine
                .parse(t)
                .map_err(|e| format!("error[parse]: {queries_path}: cannot parse query {t:?}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let start = std::time::Instant::now();
    let report = engine.run_batch(&queries);
    let elapsed = start.elapsed();
    if output == ServeOutput::Report {
        println!(
            "served {} queries on {} threads in {elapsed:.1?}",
            queries.len(),
            engine.threads()
        );
        for item in &report.items {
            match &item.outcome {
                Ok(answer) => println!(
                    "  [{:<10}] {:<24} {} pairs",
                    item.disposition.to_string(),
                    texts[item.index],
                    answer.len()
                ),
                Err(e) => println!("  [stopped   ] {:<24} {e}", texts[item.index]),
            }
        }
        println!("cache: {}", report.stats);
    }
    if output == ServeOutput::MetricsOnly || flags.iter().any(|f| *f == "--metrics") {
        if output == ServeOutput::Report {
            println!();
        }
        print!("{}", regular_queries::metrics::global().render());
    }
    Ok(())
}

/// `rqtool explain`: serve one query under a request-scoped trace and
/// print the rendered span tree (the same per-stage profile the serve
/// front-end inlines for `{"query": ..., "explain": true}` bodies).
fn cmd_explain(graph: &str, query: &str, flags: &[&String]) -> Result<(), String> {
    use regular_queries::metrics::span::{self, TraceContext};
    let engine = serve_engine(graph, flags)?;
    // Warm-up queries run untraced, so the traced query can exercise the
    // cache paths (exact hits, equivalence, probe-ladder subsumption).
    for f in flags {
        if let Some(w) = f.strip_prefix("--warm=") {
            let q = engine
                .parse(w)
                .map_err(|e| format!("error[parse]: warm-up query {w:?}: {e}"))?;
            engine
                .run(&q)
                .map_err(|e| format!("warm-up query {w:?} failed: {e}"))?;
        }
    }
    let q = engine.parse(query).map_err(|e| e.to_string())?;
    let ctx = TraceContext::start();
    let result = {
        let _guard = span::install(&ctx, 0);
        engine.run(&q)
    };
    let outcome = match &result {
        Ok(_) => "ok".to_string(),
        Err(e) => format!("error: {e}"),
    };
    let trace = ctx.finish(&outcome, query);
    match &result {
        Ok(r) => println!("{} [{}]: {} pairs\n", query, r.disposition, r.answer.len()),
        Err(e) => println!("{query}: stopped early: {e}\n"),
    }
    println!("{}", trace.render());
    Ok(())
}

/// Parse a `--name=N` integer flag, or return the default.
fn flag_u64(flags: &[&String], name: &str, default: u64) -> Result<u64, String> {
    let prefix = format!("--{name}=");
    for f in flags {
        if let Some(v) = f.strip_prefix(&prefix) {
            return v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got {v:?}"));
        }
    }
    Ok(default)
}

/// Build the serve configuration shared by `serve` and `bench-serve` from
/// the command-line flags. `--timeout-ms` (the global budget flag) sets
/// the per-request deadline.
fn serve_config(flags: &[&String], limits: &Limits, addr: String) -> Result<ServeConfig, String> {
    let defaults = ServeConfig::default();
    let mut cfg = ServeConfig {
        addr,
        workers: flag_u64(flags, "workers", defaults.workers as u64)? as usize,
        queue_capacity: flag_u64(flags, "queue-cap", defaults.queue_capacity as u64)? as usize,
        request_fuel: flag_u64(flags, "request-fuel", defaults.request_fuel)?,
        drain_deadline: std::time::Duration::from_millis(flag_u64(
            flags,
            "drain-ms",
            defaults.drain_deadline.as_millis() as u64,
        )?),
        quota: TenantQuota {
            fuel_per_sec: flag_u64(flags, "tenant-fuel-per-sec", defaults.quota.fuel_per_sec)?,
            burst_fuel: flag_u64(flags, "tenant-burst", defaults.quota.burst_fuel)?,
        },
        ..defaults
    };
    if let Some(deadline) = limits.deadline {
        cfg.request_timeout = deadline;
    }
    for f in flags {
        if let Some(spec) = f.strip_prefix("--faults=") {
            cfg.faults = FaultPlan::parse(spec).map_err(|e| format!("error[config]: {e}"))?;
            if !regular_queries::serve::faults::compiled() {
                eprintln!(
                    "note: --faults requires building with `--features faults`; the plan is inert"
                );
            }
        }
    }
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

/// Build the engine under a serve front-end (`--threads` sizes its pool).
fn serve_engine(graph: &str, flags: &[&String]) -> Result<Engine, String> {
    let db = load_graph(graph)?;
    let config = EngineConfig {
        threads: flag_u64(flags, "threads", 2)? as usize,
        ..EngineConfig::default()
    };
    config.validate().map_err(|e| e.to_string())?;
    Ok(Engine::new(db, config))
}

/// Open the `--store=DIR` flag's store for serving: the engine is built
/// over the replayed graph and the handle is passed to the server so
/// `POST /ingest` persists.
fn open_serve_store(
    dir: &str,
    flags: &[&String],
) -> Result<(Engine, Option<StorageHandle>), String> {
    let (handle, db, report) =
        StorageHandle::open(std::path::Path::new(dir), storage_config(flags)?)
            .map_err(|e| e.to_string())?;
    eprintln!(
        "opened store {dir}: {} nodes, {} edges, {} replayed deltas in {}us",
        report.nodes, report.edges, report.replayed, report.open_us
    );
    let config = EngineConfig {
        threads: flag_u64(flags, "threads", 2)? as usize,
        ..EngineConfig::default()
    };
    config.validate().map_err(|e| e.to_string())?;
    Ok((Engine::new(db, config), Some(handle)))
}

/// `rqtool serve`: run the front-end until SIGTERM/SIGINT (or `/drainz`),
/// then drain gracefully and flush metrics to stderr.
fn cmd_serve(graph: Option<&str>, flags: &[&String], limits: &Limits) -> Result<(), String> {
    let addr = flags
        .iter()
        .find_map(|f| f.strip_prefix("--addr="))
        .unwrap_or("127.0.0.1:7878")
        .to_string();
    let cfg = serve_config(flags, limits, addr)?;
    let store_flag = flags.iter().find_map(|f| f.strip_prefix("--store="));
    let (engine, store) = match (graph, store_flag) {
        (Some(g), None) => (serve_engine(g, flags)?, None),
        (None, Some(dir)) => open_serve_store(dir, flags)?,
        (Some(_), Some(_)) => {
            return Err("pass either a graph file or --store=DIR, not both".to_owned())
        }
        (None, None) => return Err(usage()),
    };
    let server = Server::start_with_store(engine, cfg, store).map_err(|e| e.to_string())?;
    println!(
        "rq-serve listening on {} ({} workers, {} engine threads); SIGTERM or POST /drainz to drain",
        server.addr(),
        flag_u64(flags, "workers", ServeConfig::default().workers as u64)?,
        server.engine().threads(),
    );
    regular_queries::serve::signal::install();
    while !regular_queries::serve::signal::triggered() && !server.is_draining() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("draining...");
    let report = server.drain();
    eprintln!(
        "drained in {:.2?}: clean={} swept={} cancelled={}",
        report.elapsed, report.clean, report.swept, report.cancelled
    );
    // The final flush: everything a scraper would have seen on /metrics.
    eprint!("{}", report.metrics);
    server.shutdown();
    Ok(())
}

/// `rqtool bench-serve`: start a private server over the graph and drive
/// it closed-loop (experiment E14's harness).
fn cmd_bench_serve(
    graph: &str,
    queries: Option<&str>,
    flags: &[&String],
    limits: &Limits,
) -> Result<(), String> {
    let cfg = serve_config(flags, limits, "127.0.0.1:0".to_string())?;
    let engine = serve_engine(graph, flags)?;
    let server = Server::start(engine, cfg).map_err(|e| e.to_string())?;
    let mut bench = regular_queries::serve::BenchConfig {
        addr: server.addr().to_string(),
        clients: flag_u64(flags, "clients", 4)? as usize,
        duration: std::time::Duration::from_millis(flag_u64(flags, "duration-ms", 5000)?),
        // `--no-backoff` models an abusive client that re-sends the
        // instant it is shed instead of honoring `Retry-After`.
        honor_retry_after: !flags.iter().any(|f| f.as_str() == "--no-backoff"),
        ..regular_queries::serve::BenchConfig::default()
    };
    if let Some(path) = queries {
        let content = read_input(path)?;
        bench.queries = content
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_owned)
            .collect();
        if bench.queries.is_empty() {
            return Err(format!("error[io]: no queries in {path}"));
        }
    }
    println!(
        "bench-serve: {} clients closed-loop for {:?} against {}",
        bench.clients, bench.duration, bench.addr
    );
    // `--ingest-every-ms=N` arms a background writer that POSTs one
    // `a`-labeled edge delta every N ms while the clients run — the
    // ingest-while-serving load of experiment E16. Each batch bumps the
    // graph epoch and invalidates the cached queries over `a`, so the
    // bench measures admitted-request latency under continuous
    // delta-driven cache churn.
    let ingest_every = flag_u64(flags, "ingest-every-ms", 0)?;
    let stop_ingest = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let ingester = if ingest_every > 0 {
        let addr = server.addr().to_string();
        let stop = std::sync::Arc::clone(&stop_ingest);
        Some(std::thread::spawn(move || {
            let mut sent = 0u64;
            let mut client = match regular_queries::serve::Client::connect(
                &addr,
                std::time::Duration::from_secs(10),
            ) {
                Ok(c) => c,
                Err(_) => return 0,
            };
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let body = format!("add ingest_{sent} a ingest_{}\n", sent + 1);
                if client
                    .request("POST", "/ingest", &[], body.as_bytes())
                    .is_ok()
                {
                    sent += 1;
                }
                std::thread::sleep(std::time::Duration::from_millis(ingest_every));
            }
            sent
        }))
    } else {
        None
    };
    let report = regular_queries::serve::run_bench(&bench);
    stop_ingest.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(h) = ingester {
        let sent = h.join().unwrap_or(0);
        println!("ingest load: {sent} delta batches every {ingest_every}ms");
    }
    println!("{}", report.summary());
    server.shutdown();
    Ok(())
}

fn load_uc2rpq(path: &str, al: &mut Alphabet) -> Result<regular_queries::core::Uc2Rpq, String> {
    let content = read_input(path)?;
    regular_queries::core::query_text::parse_uc2rpq(&content, al)
        .map_err(|e| format!("error[parse]: {path}: {e}"))
}

fn cmd_eval_cq(graph: &str, query: &str) -> Result<(), String> {
    let db = load_graph(graph)?;
    let mut al = db.alphabet().clone();
    let q = load_uc2rpq(query, &mut al)?;
    let ans = q.evaluate(&db);
    println!("{} answer tuples:", ans.len());
    for t in &ans {
        let names: Vec<String> = t.iter().map(|&n| db.display_node(n)).collect();
        println!("  ({})", names.join(", "));
    }
    Ok(())
}

fn cmd_contain_cq(p1: &str, p2: &str, limits: &Limits) -> Result<(), String> {
    use regular_queries::core::containment::{uc2rpq, Config};
    let mut al = Alphabet::new();
    let q1 = load_uc2rpq(p1, &mut al)?;
    let q2 = load_uc2rpq(p2, &mut al)?;
    let cfg = Config {
        limits: limits.clone(),
        ..Config::default()
    };
    for (label, a, b) in [("Q1 ⊑ Q2", &q1, &q2), ("Q2 ⊑ Q1", &q2, &q1)] {
        let out = uc2rpq::check(a, b, &al, &cfg);
        println!("{label}: {out}");
        print_partial_progress(&out);
        if let Some(w) = out.witness() {
            for line in text::to_text(&w.db).lines() {
                println!("    {line}");
            }
            let names: Vec<String> = w.tuple.iter().map(|&n| w.db.display_node(n)).collect();
            println!("  distinguished tuple: ({})", names.join(", "));
        }
    }
    Ok(())
}

fn load_rq(path: &str, goal: Option<&str>, al: &mut Alphabet) -> Result<RqQuery, String> {
    let content = read_input(path)?;
    regular_queries::core::rq_text::parse_rq(&content, goal, al)
        .map_err(|e| format!("error[parse]: {path}: {e}"))
}

fn cmd_eval_rq(graph: &str, query: &str, goal: Option<&str>) -> Result<(), String> {
    let db = load_graph(graph)?;
    let mut al = db.alphabet().clone();
    let q = load_rq(query, goal, &mut al)?;
    let ans = q.evaluate(&db);
    println!("{} answer tuples:", ans.len());
    for t in &ans {
        let names: Vec<String> = t.iter().map(|&n| db.display_node(n)).collect();
        println!("  ({})", names.join(", "));
    }
    Ok(())
}

fn cmd_contain_rq(p1: &str, p2: &str, limits: &Limits) -> Result<(), String> {
    use regular_queries::core::containment::{rq, Config};
    let mut al = Alphabet::new();
    let q1 = load_rq(p1, None, &mut al)?;
    let q2 = load_rq(p2, None, &mut al)?;
    let cfg = Config {
        limits: limits.clone(),
        ..Config::default()
    };
    for (label, a, b) in [("Q1 ⊑ Q2", &q1, &q2), ("Q2 ⊑ Q1", &q2, &q1)] {
        let out = rq::check(a, b, &al, &cfg);
        println!("{label}: {out}");
        print_partial_progress(&out);
        if let Some(w) = out.witness() {
            for line in text::to_text(&w.db).lines() {
                println!("    {line}");
            }
        }
    }
    Ok(())
}

/// `rqtool lint`: run the `rq-analyze` passes over an inline 2RPQ, a
/// single file, or every lintable file under a directory.
///
/// Exit is nonzero on any error-level finding, on parse/IO failures,
/// and — under `--deny-warnings` — on any warning-level finding, so
/// lint can gate CI pipelines. Info-level findings never fail the run.
fn cmd_lint(
    input: &str,
    goal: Option<&str>,
    limits: &Limits,
    json: bool,
    deny_warnings: bool,
) -> Result<(), String> {
    let path = std::path::Path::new(input);
    let mut entries: Vec<(String, Report)> = Vec::new();
    if path.is_dir() {
        let mut files = Vec::new();
        collect_lintable(path, &mut files)?;
        files.sort();
        if files.is_empty() {
            return Err(format!(
                "error[io]: no lintable files (.dl/.cq/.rq/.batch) under {input}"
            ));
        }
        for f in &files {
            let origin = f.display().to_string();
            let report = lint_file(&origin, goal, limits)?;
            entries.push((origin, report));
        }
    } else if path.is_file() {
        entries.push((input.to_owned(), lint_file(input, goal, limits)?));
    } else {
        // Not a path on disk: treat the argument as an inline 2RPQ.
        let mut al = Alphabet::new();
        let q = TwoRpq::parse(input, &mut al).map_err(|e| format!("error[parse]: <query>: {e}"))?;
        let mut report = lint_two_rpq_with_source(&q, Some(input), &al, limits);
        report.sort();
        entries.push(("<query>".to_owned(), report));
    }

    let total: usize = entries.iter().map(|(_, r)| r.diagnostics.len()).sum();
    let errors: usize = entries
        .iter()
        .flat_map(|(_, r)| &r.diagnostics)
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings: usize = entries
        .iter()
        .flat_map(|(_, r)| &r.diagnostics)
        .filter(|d| d.severity == Severity::Warning)
        .count();
    if json {
        let arr = Json::Arr(
            entries
                .iter()
                .map(|(origin, report)| {
                    let mut fields = vec![("path".to_owned(), Json::Str(origin.clone()))];
                    if let Json::Obj(rest) = report.to_json() {
                        fields.extend(rest);
                    }
                    Json::Obj(fields)
                })
                .collect(),
        );
        println!("{}", arr.emit());
    } else {
        for (origin, report) in &entries {
            if !report.is_clean() {
                println!("{}", report.render_text(origin));
            }
        }
        println!(
            "{total} finding(s) ({errors} error(s)) across {} input(s)",
            entries.len()
        );
    }
    if errors > 0 {
        Err(format!("error[lint]: {errors} error-level finding(s)"))
    } else if deny_warnings && warnings > 0 {
        Err(format!(
            "error[lint]: {warnings} warning-level finding(s) (--deny-warnings)"
        ))
    } else {
        Ok(())
    }
}

/// Recursively gather `.dl`/`.cq`/`.rq`/`.batch` files under `dir`.
fn collect_lintable(
    dir: &std::path::Path,
    out: &mut Vec<std::path::PathBuf>,
) -> Result<(), String> {
    let listing = std::fs::read_dir(dir)
        .map_err(|e| format!("error[io]: cannot read directory {}: {e}", dir.display()))?;
    for entry in listing {
        let entry = entry
            .map_err(|e| format!("error[io]: cannot read directory {}: {e}", dir.display()))?;
        let p = entry.path();
        if p.is_dir() {
            collect_lintable(&p, out)?;
        } else if matches!(
            p.extension().and_then(|e| e.to_str()),
            Some("dl" | "cq" | "rq" | "batch")
        ) {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint one file, dispatching on its extension. Unknown extensions are
/// treated as a batch file: one 2RPQ per line, `#` comments skipped (the
/// `serve-batch` query format).
fn lint_file(path: &str, goal: Option<&str>, limits: &Limits) -> Result<Report, String> {
    let content = read_input(path)?;
    let ext = std::path::Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let mut report = match ext {
        "dl" => {
            let spanned = parse_program_spanned(&content)
                .map_err(|e| format!("error[parse]: {path}: {e}"))?;
            lint_program(&spanned.program, Some(&spanned.spans), goal)
        }
        "cq" => {
            let mut al = Alphabet::new();
            let q = parse_uc2rpq(&content, &mut al)
                .map_err(|e| format!("error[parse]: {path}: {e}"))?;
            let spans = rule_line_spans(&content);
            lint_uc2rpq(&q, &al, limits, Some(&spans))
        }
        "rq" => {
            let mut al = Alphabet::new();
            let q = regular_queries::core::rq_text::parse_rq(&content, goal, &mut al)
                .map_err(|e| format!("error[parse]: {path}: {e}"))?;
            let mut rels = Vec::new();
            collect_rels(&q.expr, &mut rels);
            let mut r = Report::new();
            for rel in rels {
                r.merge(lint_two_rpq(rel, &al, limits));
            }
            r
        }
        _ => {
            let mut al = Alphabet::new();
            let mut r = Report::new();
            for (i, raw) in content.lines().enumerate() {
                let line = raw.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let q = TwoRpq::parse(line, &mut al)
                    .map_err(|e| format!("error[parse]: {path}:{}: {e}", i + 1))?;
                let mut lr = lint_two_rpq_with_source(&q, Some(line), &al, limits);
                // Single-query spans are relative to the trimmed line
                // text; rebase them onto this line of the batch file.
                let indent = raw.len() - raw.trim_start().len();
                for d in &mut lr.diagnostics {
                    d.span = Some(match d.span {
                        Some(s) => Span::new(i + 1, s.column + indent),
                        None => Span::new(i + 1, 1),
                    });
                }
                r.merge(lr);
            }
            r
        }
    };
    report.sort();
    Ok(report)
}

/// Line/column spans of the rules in a `.cq` file, in parse order
/// (mirrors the `query_text` parser's comment/blank-line skipping).
fn rule_line_spans(content: &str) -> Vec<Span> {
    content
        .lines()
        .enumerate()
        .filter(|(_, raw)| {
            let t = raw.trim();
            !t.is_empty() && !t.starts_with('#') && !t.starts_with('%')
        })
        .map(|(i, raw)| Span::new(i + 1, raw.len() - raw.trim_start().len() + 1))
        .collect()
}

/// Collect every 2RPQ relation atom mentioned in an RQ expression tree.
fn collect_rels<'a>(e: &'a RqExpr, out: &mut Vec<&'a TwoRpq>) {
    match e {
        RqExpr::Rel2 { rel, .. } => out.push(rel),
        RqExpr::Select { inner, .. }
        | RqExpr::Project { inner, .. }
        | RqExpr::Closure { inner, .. } => collect_rels(inner, out),
        RqExpr::Union { left, right } | RqExpr::And { left, right } => {
            collect_rels(left, out);
            collect_rels(right, out);
        }
        RqExpr::Edge { .. } => {}
    }
}
