//! Datalog lints over the dependence graph and the §4.1 GRQ classifier
//! (rule ids `RQD…`).
//!
//! Unlike `rq_datalog::validate::validate_program` (which stops at the
//! first error so evaluation can bail early), these passes report *every*
//! finding, each pinned to the source rule that caused it via the spans
//! from `parse_program_spanned`.

use crate::diag;
use crate::diag::{Report, Span};
use rq_datalog::depgraph::DepGraph;
use rq_datalog::grq::{analyze_grq, GrqViolation, StepShape};
use rq_datalog::Program;
use std::collections::{BTreeMap, BTreeSet};

/// Lint a Datalog program. `spans` optionally locates each rule
/// (`spans[i]` for `program.rules[i]`, as returned by
/// `parse_program_spanned`); `goal` enables the reachability lints
/// (`RQD003`, `RQD004`, `RQD007`), which are meaningless without an
/// answer predicate.
pub fn lint_program(
    program: &Program,
    spans: Option<&[(usize, usize)]>,
    goal: Option<&str>,
) -> Report {
    let mut report = Report::new();
    let span_of = |i: usize| {
        spans
            .and_then(|s| s.get(i))
            .map(|&(line, column)| Span::new(line, column))
    };

    unsafe_rules(program, &span_of, &mut report);
    arity_mismatches(program, &span_of, &mut report);
    if let Some(goal) = goal {
        reachability(program, goal, &span_of, &mut report);
    }
    recursion_class(program, &span_of, &mut report);
    report
}

/// First rule index whose head is `predicate` (for span attribution).
fn first_rule_for(program: &Program, predicate: &str) -> Option<usize> {
    program
        .rules
        .iter()
        .position(|r| r.head.predicate == predicate)
}

/// RQD001 — head variables that never occur in the body (unsafe rules,
/// §2.3). One diagnostic per offending rule, listing every unbound
/// variable.
fn unsafe_rules(program: &Program, span_of: &impl Fn(usize) -> Option<Span>, report: &mut Report) {
    for (i, rule) in program.rules.iter().enumerate() {
        let body_vars: BTreeSet<&str> = rule.body.iter().flat_map(|a| a.variables()).collect();
        let unbound: Vec<&str> = rule
            .head
            .variables()
            .into_iter()
            .filter(|v| !body_vars.contains(v))
            .collect();
        if !unbound.is_empty() {
            let mut d = diag(
                "RQD001",
                format!(
                    "rule `{rule}` is unsafe: head variable(s) {} never occur in the body",
                    unbound
                        .iter()
                        .map(|v| format!("`{v}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            );
            if let Some(span) = span_of(i) {
                d = d.with_span(span);
            }
            report.push(d);
        }
    }
}

/// RQD002 — a predicate used at two different arities. The first
/// occurrence (in rule order, heads before bodies within a rule) fixes
/// the arity; every later clash is reported at its own rule.
fn arity_mismatches(
    program: &Program,
    span_of: &impl Fn(usize) -> Option<Span>,
    report: &mut Report,
) {
    let mut fixed: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, rule) in program.rules.iter().enumerate() {
        for atom in std::iter::once(&rule.head).chain(&rule.body) {
            match fixed.get(atom.predicate.as_str()) {
                None => {
                    fixed.insert(&atom.predicate, atom.arity());
                }
                Some(&first) if first != atom.arity() => {
                    let mut d = diag(
                        "RQD002",
                        format!(
                            "predicate `{}` used with arity {} here but arity {first} at its \
                             first occurrence",
                            atom.predicate,
                            atom.arity()
                        ),
                    );
                    if let Some(span) = span_of(i) {
                        d = d.with_span(span);
                    }
                    report.push(d);
                }
                Some(_) => {}
            }
        }
    }
}

/// RQD003 / RQD004 / RQD007 — reachability from the goal over the
/// dependence graph.
///
/// An edge in [`DepGraph`] points from a body predicate to the head that
/// depends on it, so the set of predicates the goal (transitively)
/// depends on is the backward closure of `{goal}` along those edges.
/// IDB predicates outside that cone split into two disjoint findings:
/// those no rule body ever mentions (`RQD003`, reported once per
/// predicate) and those that are used, but only by other unreachable
/// rules (`RQD004`, reported per rule).
fn reachability(
    program: &Program,
    goal: &str,
    span_of: &impl Fn(usize) -> Option<Span>,
    report: &mut Report,
) {
    let dg = DepGraph::new(program);
    let Some(goal_idx) = dg.predicate_index(goal) else {
        report.push(diag(
            "RQD007",
            format!(
                "goal predicate `{goal}` does not occur in the program, so the query denotes \
                 the empty relation"
            ),
        ));
        return;
    };
    // Backward closure: reverse the body→head edges.
    let n = dg.predicates.len();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (body, heads) in dg.edges.iter().enumerate() {
        for &head in heads {
            rev[head].push(body);
        }
    }
    let mut needed = vec![false; n];
    let mut queue = vec![goal_idx];
    needed[goal_idx] = true;
    while let Some(p) = queue.pop() {
        for &q in &rev[p] {
            if !needed[q] {
                needed[q] = true;
                queue.push(q);
            }
        }
    }
    let mentioned_in_bodies: BTreeSet<&str> = program
        .rules
        .iter()
        .flat_map(|r| r.body.iter().map(|a| a.predicate.as_str()))
        .collect();
    let idb = program.idb_predicates();
    for p in &idb {
        let idx = dg.predicate_index(p).expect("IDB predicates are interned");
        if needed[idx] {
            continue;
        }
        if !mentioned_in_bodies.contains(p) {
            // RQD003: defined, but nothing ever refers to it.
            let mut d = diag(
                "RQD003",
                format!(
                    "IDB predicate `{p}` is unused: no rule body mentions it and it is not the \
                     goal"
                ),
            );
            if let Some(span) = first_rule_for(program, p).and_then(span_of) {
                d = d.with_span(span);
            }
            report.push(d);
        } else {
            // RQD004: referred to, but only from rules the goal can never
            // reach — dead code per rule.
            for (i, rule) in program.rules.iter().enumerate() {
                if rule.head.predicate == *p {
                    let mut d = diag(
                        "RQD004",
                        format!(
                            "rule `{rule}` is unreachable: the goal `{goal}` does not \
                             (transitively) depend on `{p}`"
                        ),
                    );
                    if let Some(span) = span_of(i) {
                        d = d.with_span(span);
                    }
                    report.push(d);
                }
            }
        }
    }
}

/// RQD005 / RQD006 — the §4.1 classifier: is every recursive SCC a plain
/// transitive closure? If yes, the program sits in the GRQ fragment and
/// containment is decidable (Theorem 8) — worth an `Info`. If not, the
/// offending predicate's first rule is pinpointed with the precise
/// violation.
fn recursion_class(
    program: &Program,
    span_of: &impl Fn(usize) -> Option<Span>,
    report: &mut Report,
) {
    match analyze_grq(program) {
        Ok(analysis) => {
            if !analysis.tc_defs.is_empty() {
                let rendered: Vec<String> = analysis
                    .tc_defs
                    .iter()
                    .map(|t| {
                        let shape = match t.step {
                            StepShape::LeftLinear => "left-linear",
                            StepShape::RightLinear => "right-linear",
                            StepShape::Doubling => "doubling",
                        };
                        format!("{} = TC({}) [{shape}]", t.tc_pred, t.base_pred)
                    })
                    .collect();
                report.push(diag(
                    "RQD006",
                    format!(
                        "recursion is transitive-closure-only ({}): the program is in the GRQ \
                         fragment of §4.1, so containment is decidable (Theorem 8)",
                        rendered.join("; ")
                    ),
                ));
            }
        }
        Err(violation) => {
            let predicate = match &violation {
                GrqViolation::MutualRecursion { predicates } => predicates.first().cloned(),
                GrqViolation::NotBinary { predicate, .. }
                | GrqViolation::NotTransitiveClosure { predicate, .. } => Some(predicate.clone()),
            };
            let mut d = diag(
                "RQD005",
                format!(
                    "{violation} — recursion falls outside §4.1's transitive-closure-only \
                     fragment, so the program is not expressible as an RQ/GRQ and containment \
                     is undecidable in general (§2.3)"
                ),
            );
            if let Some(span) = predicate
                .and_then(|p| first_rule_for(program, &p))
                .and_then(span_of)
            {
                d = d.with_span(span);
            }
            report.push(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::parser::parse_program_spanned;

    fn lint_text(text: &str, goal: Option<&str>) -> Report {
        let sp = parse_program_spanned(text).unwrap();
        lint_program(&sp.program, Some(&sp.spans), goal)
    }

    fn rules(r: &Report) -> Vec<&str> {
        r.diagnostics.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn paper_tc_program_is_regular_recursion() {
        let r = lint_text(
            "Tc(X, Y) :- E(X, Y).\nTc(X, Z) :- Tc(X, Y), E(Y, Z).",
            Some("Tc"),
        );
        assert_eq!(rules(&r), ["RQD006"]);
        assert!(r.diagnostics[0].message.contains("Tc = TC(E)"));
        assert!(r.diagnostics[0].message.contains("Theorem 8"));
    }

    #[test]
    fn monadic_recursion_fires_rqd005_with_span() {
        // §2.3's monadic reachability program: recursive but not TC-shaped.
        let r = lint_text("Q(X) :- E(X, Y), P(Y).\nQ(X) :- E(X, Y), Q(Y).", Some("Q"));
        assert_eq!(rules(&r), ["RQD005"]);
        assert!(r.diagnostics[0].message.contains("arity 1"));
        assert_eq!(r.diagnostics[0].span, Some(Span::new(1, 1)));
    }

    #[test]
    fn unsafe_rule_fires_rqd001_per_rule() {
        let r = lint_text("P(X, Y) :- E(X, Z).\nQ(W) :- P(A, B).", None);
        assert_eq!(rules(&r), ["RQD001", "RQD001"]);
        assert!(r.diagnostics[0].message.contains("`Y`"));
        assert_eq!(r.diagnostics[0].span, Some(Span::new(1, 1)));
        assert_eq!(r.diagnostics[1].span, Some(Span::new(2, 1)));
    }

    #[test]
    fn arity_mismatch_fires_rqd002() {
        let r = lint_text("P(X, Y) :- E(X, Y).\nAns(X) :- P(X).", None);
        assert_eq!(rules(&r), ["RQD002"]);
        assert!(r.diagnostics[0].message.contains("arity 1"));
        assert_eq!(r.diagnostics[0].span, Some(Span::new(2, 1)));
    }

    #[test]
    fn unused_predicate_fires_rqd003() {
        let r = lint_text(
            "Ans(X, Y) :- E(X, Y).\nOrphan(X, Y) :- E(X, Y).",
            Some("Ans"),
        );
        assert_eq!(rules(&r), ["RQD003"]);
        assert!(r.diagnostics[0].message.contains("`Orphan`"));
    }

    #[test]
    fn unreachable_rule_fires_rqd004_not_rqd003() {
        // Dead is *used* (by Deader) but the goal never depends on either,
        // so Dead's rule is unreachable rather than unused; Deader is
        // unused.
        let r = lint_text(
            "Ans(X, Y) :- E(X, Y).\n\
             Dead(X, Y) :- E(X, Y).\n\
             Deader(X, Y) :- Dead(X, Y).",
            Some("Ans"),
        );
        let mut ids = rules(&r);
        ids.sort_unstable();
        assert_eq!(ids, ["RQD003", "RQD004"]);
    }

    #[test]
    fn unknown_goal_fires_rqd007() {
        let r = lint_text("P(X, Y) :- E(X, Y).", Some("Answer"));
        assert_eq!(rules(&r), ["RQD007"]);
        assert!(r.has_errors());
    }

    #[test]
    fn goalless_lint_skips_reachability() {
        let r = lint_text("Ans(X, Y) :- E(X, Y).\nOrphan(X, Y) :- E(X, Y).", None);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn mutual_recursion_names_the_scc() {
        let r = lint_text(
            "A(X, Y) :- E(X, Y).\n\
             A(X, Z) :- B(X, Y), E(Y, Z).\n\
             B(X, Y) :- E(X, Y).\n\
             B(X, Z) :- A(X, Y), E(Y, Z).",
            Some("A"),
        );
        assert_eq!(rules(&r), ["RQD005"]);
        assert!(r.diagnostics[0].message.contains("mutually recursive"));
    }
}
