//! A minimal JSON value type with an emitter and a recursive-descent
//! parser.
//!
//! The workspace's vendored `serde` is a marker-trait stub (no derive, no
//! `serde_json`), so the diagnostic reports hand-roll their JSON here.
//! The dialect is the full RFC 8259 value grammar minus two liberties we
//! never need: numbers are emitted from `u64`/`i64` only (diagnostics
//! carry line/column positions and counts, never floats), and parsing
//! accepts fractional/exponent forms but folds them through `f64`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Numbers are stored as `f64`; every number the analyzer emits is a
    /// non-negative integer well inside `f64`'s exact range.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object entries in insertion order (no deduplication).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact string.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = JsonParser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub position: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            self.expect(b',')?;
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.parse_value()?));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            self.expect(b',')?;
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            // Decode at the char level so multibyte UTF-8 passes through.
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| self.error("invalid UTF-8 in string"))?;
            let Some(c) = rest.chars().next() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(s),
                '\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // the emitter never produces them (it escapes
                            // only control characters).
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            s.push(c);
                        }
                        _ => return Err(self.error("unknown escape character")),
                    }
                }
                c if (c as u32) < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                c => s.push(c),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::Obj(vec![
            ("rule".into(), Json::Str("RQA001".into())),
            ("line".into(), Json::Num(3.0)),
            ("ok".into(), Json::Bool(true)),
            (
                "notes".into(),
                Json::Arr(vec![Json::Str("a \"b\"\n".into()), Json::Null]),
            ),
        ]);
        let text = v.emit();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn emits_integers_without_decimal_point() {
        assert_eq!(Json::Num(42.0).emit(), "42");
        assert_eq!(Json::Num(0.0).emit(), "0");
    }

    #[test]
    fn escapes_and_unescapes() {
        let v = Json::Str("tab\there \\ \"quoted\" \u{1}".into());
        let text = v.emit();
        assert!(text.contains("\\t"));
        assert!(text.contains("\\u0001"));
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(
            Json::parse(r#""\u00e9 caf\u00e9""#).unwrap(),
            Json::Str("é café".into())
        );
    }

    #[test]
    fn accepts_unicode_passthrough() {
        let v = Json::Str("état → final".into());
        assert_eq!(Json::parse(&v.emit()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{'a':1}",
            "[1,]",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(Json::parse("-3").unwrap(), Json::Num(-3.0));
        assert_eq!(Json::parse("2.5e1").unwrap(), Json::Num(25.0));
        assert_eq!(Json::parse("17").unwrap().as_u64(), Some(17));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }
}
