//! Engine pre-flight normalization.
//!
//! Two sound rewrites run before a query reaches the canonical cache:
//!
//! 1. **Empty short-circuit.** If `L(Q) = ∅` the answer is ∅ on every
//!    database (§2.1) — no evaluation, no cache traffic.
//! 2. **Subsumed-branch elimination.** For a top-level union, any branch
//!    `rᵢ` with `L(rᵢ) ⊆ L(rⱼ)` for a *kept* sibling `rⱼ` (decided by the
//!    containment facade's quick ladder, Lemmas 2–4) is dropped: branch
//!    answers satisfy `Qᵢ(D) ⊆ Qⱼ(D)` on every `D`, so the union's
//!    answers are unchanged. Dropping *is* visible at the word-language
//!    level (e.g. `p | p p⁻ p` becomes `p p⁻ p`), which is exactly why it
//!    helps: syntactically different but answer-equivalent requests now
//!    collide on the same canonical cache key.
//!
//! Soundness of the kept-loop: containment is transitive, so a branch is
//! only ever dropped in favor of a sibling that itself survives (or is
//! later dropped in favor of something even larger).

use crate::metrics;
use rq_automata::{Alphabet, Limits, Regex};
use rq_core::containment::facade::check_quick;
use rq_core::TwoRpq;

/// What pre-flight did to a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreflightAction {
    /// `L(Q) = ∅`: the engine should answer ∅ without evaluating.
    Empty,
    /// At least one subsumed union branch was dropped; evaluate the
    /// rewritten query instead.
    Rewritten,
    /// Nothing to do; evaluate the query as given.
    Unchanged,
}

impl PreflightAction {
    /// Stable name used as the `action` metric label.
    pub fn name(self) -> &'static str {
        match self {
            PreflightAction::Empty => "empty",
            PreflightAction::Rewritten => "rewritten",
            PreflightAction::Unchanged => "unchanged",
        }
    }
}

/// Result of [`preflight`]: the (possibly rewritten) query to evaluate
/// and what happened.
#[derive(Debug, Clone)]
pub struct Preflight {
    pub query: TwoRpq,
    pub action: PreflightAction,
}

/// For each union branch, the index of the kept sibling that subsumes it
/// (`None` for branches that survive). `limits` governs each containment
/// probe; an `Unknown` outcome keeps the branch (sound: we only drop on
/// proof).
pub(crate) fn subsumed_branches(
    parts: &[Regex],
    alphabet: &Alphabet,
    limits: &Limits,
) -> Vec<Option<usize>> {
    let compiled: Vec<TwoRpq> = parts.iter().map(|p| TwoRpq::new(p.clone())).collect();
    let mut dropped: Vec<Option<usize>> = vec![None; parts.len()];
    for i in 0..parts.len() {
        if dropped[i].is_some() {
            continue;
        }
        for j in 0..parts.len() {
            if i == j || dropped[j].is_some() {
                continue;
            }
            if check_quick(&compiled[i], &compiled[j], alphabet, limits).is_contained() {
                dropped[i] = Some(j);
                break;
            }
        }
    }
    dropped
}

/// Run the pre-flight analysis on a query. Records the outcome in the
/// `rq_analyze_preflight_total` metric family and opens an
/// `analyze.preflight` trace span annotated with the action taken and,
/// when a rewrite fired, a `rules` field naming the rule behind it with
/// its firing count (`RQA001:1` for the empty short-circuit,
/// `RQA005:<n>` for `n` dropped branches) — so `rqtool explain` shows
/// *which* rules rewrote a query. The ladder probes each dropped-branch
/// decision runs appear as its child `ladder.*` spans.
pub fn preflight(q: &TwoRpq, alphabet: &Alphabet, limits: &Limits) -> Preflight {
    let mut span = rq_metrics::span::start("analyze.preflight");
    let mut action = move |a: PreflightAction, rules: Option<String>, query: TwoRpq| {
        span.record("action", a.name());
        if let Some(rules) = rules {
            span.record("rules", rules);
        }
        metrics::preflight(a);
        Preflight { query, action: a }
    };
    if q.regex().is_empty_language() {
        return action(
            PreflightAction::Empty,
            Some("RQA001:1".to_owned()),
            q.clone(),
        );
    }
    let Regex::Union(parts) = q.regex() else {
        return action(PreflightAction::Unchanged, None, q.clone());
    };
    let dropped = subsumed_branches(parts, alphabet, limits);
    let n_dropped = dropped.iter().filter(|d| d.is_some()).count();
    if n_dropped == 0 {
        return action(PreflightAction::Unchanged, None, q.clone());
    }
    let kept = parts
        .iter()
        .zip(&dropped)
        .filter(|(_, d)| d.is_none())
        .map(|(p, _)| p.clone());
    action(
        PreflightAction::Rewritten,
        Some(format!("RQA005:{n_dropped}")),
        TwoRpq::new(Regex::union(kept)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Alphabet, Limits) {
        (Alphabet::from_names(["p", "q"]), Limits::default())
    }

    fn parse(alphabet: &mut Alphabet, text: &str) -> TwoRpq {
        TwoRpq::parse(text, alphabet).unwrap()
    }

    #[test]
    fn empty_short_circuits() {
        let (mut alphabet, limits) = setup();
        let q = parse(&mut alphabet, "∅");
        let p = preflight(&q, &alphabet, &limits);
        assert_eq!(p.action, PreflightAction::Empty);
    }

    #[test]
    fn fold_subsumed_branch_is_dropped() {
        let (mut alphabet, limits) = setup();
        // Lemma 2: p ⊑ p p⁻ p, so the `p` branch is redundant and the
        // normalized query collides with plain `p p- p` on cache keys.
        let q = parse(&mut alphabet, "p | p p- p");
        let target = parse(&mut alphabet, "p p- p");
        let p = preflight(&q, &alphabet, &limits);
        assert_eq!(p.action, PreflightAction::Rewritten);
        assert_eq!(p.query.regex(), target.regex());
    }

    #[test]
    fn incomparable_branches_survive() {
        let (mut alphabet, limits) = setup();
        let q = parse(&mut alphabet, "p | q");
        let p = preflight(&q, &alphabet, &limits);
        assert_eq!(p.action, PreflightAction::Unchanged);
        assert_eq!(p.query.regex(), q.regex());
    }

    #[test]
    fn preflight_span_names_the_firing_rules() {
        use rq_metrics::span;
        let rules_field = |text: &str| {
            let ctx = span::TraceContext::start();
            let (mut alphabet, limits) = setup();
            let q = parse(&mut alphabet, text);
            {
                let _g = span::install(&ctx, 0);
                preflight(&q, &alphabet, &limits);
            }
            let t = ctx.finish("ok", "");
            let s = t
                .spans
                .iter()
                .find(|s| s.name == "analyze.preflight")
                .expect("preflight span");
            s.fields
                .iter()
                .find(|(k, _)| *k == "rules")
                .map(|(_, v)| v.clone())
        };
        assert_eq!(rules_field("p | p p- p").as_deref(), Some("RQA005:1"));
        assert_eq!(rules_field("∅").as_deref(), Some("RQA001:1"));
        assert_eq!(rules_field("p | q"), None, "no rewrite, no rules field");
    }

    #[test]
    fn mutually_equivalent_branches_collapse_to_one() {
        let (mut alphabet, limits) = setup();
        // Raw union with two equivalent-but-not-equal branches (the smart
        // constructor only dedups syntactic equality).
        let a = parse(&mut alphabet, "p p*").regex().clone();
        let b = parse(&mut alphabet, "p+").regex().clone();
        let q = TwoRpq::new(Regex::Union(vec![a, b]));
        let p = preflight(&q, &alphabet, &limits);
        assert_eq!(p.action, PreflightAction::Rewritten);
        assert!(
            !matches!(p.query.regex(), Regex::Union(_)),
            "one of the two equivalent branches must survive: {:?}",
            p.query.regex()
        );
    }
}
