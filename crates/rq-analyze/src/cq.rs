//! Conjunctive-level lints on UC2RPQs (rule ids `RQC…`).

use crate::diag;
use crate::diag::{Report, Span};
use rq_automata::{Alphabet, Limits};
use rq_core::containment::facade::check_quick;
use rq_core::{C2Rpq, TwoRpq, Uc2Rpq};

/// Lint a UC2RPQ. `spans` optionally locates each disjunct in the source
/// text (one entry per disjunct, as produced by re-scanning the
/// `query_text` rule lines); `limits` governs the containment probes
/// behind `RQC004`.
pub fn lint_uc2rpq(
    q: &Uc2Rpq,
    alphabet: &Alphabet,
    limits: &Limits,
    spans: Option<&[Span]>,
) -> Report {
    let mut report = Report::new();
    let span_of = |i: usize| spans.and_then(|s| s.get(i)).copied();

    unsatisfiable_atoms(q, alphabet, &span_of, &mut report);
    disconnected_bodies(q, &span_of, &mut report);
    let duplicate = duplicate_disjuncts(q, &span_of, &mut report);
    subsumed_disjuncts(q, alphabet, limits, &duplicate, &span_of, &mut report);
    report
}

/// RQC001 — an atom whose relation denotes ∅ can never match, making the
/// whole disjunct unsatisfiable.
fn unsatisfiable_atoms(
    q: &Uc2Rpq,
    alphabet: &Alphabet,
    span_of: &impl Fn(usize) -> Option<Span>,
    report: &mut Report,
) {
    for (i, d) in q.disjuncts.iter().enumerate() {
        for a in &d.atoms {
            if a.rel.regex().is_empty_language() {
                let mut diag = diag(
                    "RQC001",
                    format!(
                        "atom [{}]({}, {}) in disjunct #{i} is unsatisfiable: its language is ∅, \
                         so the whole disjunct returns no answers",
                        a.rel.regex().display(alphabet),
                        a.from,
                        a.to
                    ),
                );
                if let Some(span) = span_of(i) {
                    diag = diag.with_span(span);
                }
                report.push(diag);
            }
        }
    }
}

/// The connected components of a disjunct's variable graph (atoms are
/// edges `from — to`), each sorted, in order of first variable.
fn variable_components(d: &C2Rpq) -> Vec<Vec<String>> {
    let vars: Vec<&str> = d.variables();
    let index = |v: &str| vars.iter().position(|x| *x == v).expect("var interned");
    // Union-find over variable indices.
    let mut parent: Vec<usize> = (0..vars.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for a in &d.atoms {
        let (x, y) = (
            find(&mut parent, index(&a.from)),
            find(&mut parent, index(&a.to)),
        );
        parent[x] = y;
    }
    let mut components: Vec<Vec<String>> = Vec::new();
    let mut root_of: Vec<(usize, usize)> = Vec::new(); // (root, component idx)
    for (i, v) in vars.iter().enumerate() {
        let r = find(&mut parent, i);
        let c = match root_of.iter().find(|(root, _)| *root == r) {
            Some((_, c)) => *c,
            None => {
                root_of.push((r, components.len()));
                components.push(Vec::new());
                components.len() - 1
            }
        };
        components[c].push((*v).to_owned());
    }
    components
}

/// RQC002 — a disjunct whose variable graph falls into several connected
/// components computes a Cartesian product of independent patterns.
fn disconnected_bodies(q: &Uc2Rpq, span_of: &impl Fn(usize) -> Option<Span>, report: &mut Report) {
    for (i, d) in q.disjuncts.iter().enumerate() {
        let components = variable_components(d);
        if components.len() > 1 {
            let rendered: Vec<String> = components
                .iter()
                .map(|c| format!("{{{}}}", c.join(", ")))
                .collect();
            let mut diag = diag(
                "RQC002",
                format!(
                    "disjunct #{i}'s variables fall into {} disconnected components: {} — the \
                     disjunct is a Cartesian product of independent patterns",
                    components.len(),
                    rendered.join(", ")
                ),
            );
            if let Some(span) = span_of(i) {
                diag = diag.with_span(span);
            }
            report.push(diag);
        }
    }
}

/// RQC003 — syntactically identical disjuncts (union is idempotent).
/// Returns, per disjunct, whether it duplicates an earlier one, so
/// `RQC004` can skip those pairs.
fn duplicate_disjuncts(
    q: &Uc2Rpq,
    span_of: &impl Fn(usize) -> Option<Span>,
    report: &mut Report,
) -> Vec<bool> {
    let mut duplicate = vec![false; q.disjuncts.len()];
    for (i, dup) in duplicate.iter_mut().enumerate() {
        if let Some(j) = (0..i).find(|&j| q.disjuncts[i] == q.disjuncts[j]) {
            *dup = true;
            let mut diag = diag(
                "RQC003",
                format!("disjunct #{i} duplicates disjunct #{j} (union is idempotent)"),
            );
            if let Some(span) = span_of(i) {
                diag = diag.with_span(span);
            }
            report.push(diag);
        }
    }
    duplicate
}

/// RQC004 — a disjunct whose answers a sibling provably contains. Only
/// chain-shaped disjuncts (those [`C2Rpq::collapse_chain`] can turn into
/// a single 2RPQ) are probed, so this is a budgeted best-effort pass:
/// silence does not certify minimality.
fn subsumed_disjuncts(
    q: &Uc2Rpq,
    alphabet: &Alphabet,
    limits: &Limits,
    duplicate: &[bool],
    span_of: &impl Fn(usize) -> Option<Span>,
    report: &mut Report,
) {
    let chains: Vec<Option<TwoRpq>> = q.disjuncts.iter().map(C2Rpq::collapse_chain).collect();
    let n = q.disjuncts.len();
    let mut dropped: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        let Some(ci) = &chains[i] else { continue };
        if duplicate[i] || dropped[i].is_some() {
            continue;
        }
        for j in 0..n {
            if i == j || duplicate[j] || dropped[j].is_some() {
                continue;
            }
            let Some(cj) = &chains[j] else { continue };
            if q.disjuncts[i] == q.disjuncts[j] {
                continue; // RQC003's territory
            }
            if check_quick(ci, cj, alphabet, limits).is_contained() {
                dropped[i] = Some(j);
                break;
            }
        }
    }
    for (i, subsumer) in dropped.iter().enumerate() {
        let Some(j) = subsumer else { continue };
        let mut diag = diag(
            "RQC004",
            format!(
                "disjunct #{i} (chain `{}`) is subsumed by disjunct #{j} (chain `{}`): it never \
                 adds answers",
                chains[i]
                    .as_ref()
                    .expect("dropped disjuncts collapsed")
                    .regex()
                    .display(alphabet),
                chains[*j]
                    .as_ref()
                    .expect("subsumers collapsed")
                    .regex()
                    .display(alphabet)
            ),
        )
        .with_note("containment proven via chain collapse + the 2NFA quick ladder (Lemmas 2–4)");
        if let Some(span) = span_of(i) {
            diag = diag.with_span(span);
        }
        report.push(diag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_core::query_text::parse_uc2rpq;

    fn lint_text(text: &str) -> Report {
        let mut alphabet = Alphabet::new();
        let q = parse_uc2rpq(text, &mut alphabet).unwrap();
        lint_uc2rpq(&q, &alphabet, &Limits::default(), None)
    }

    fn rules(r: &Report) -> Vec<&str> {
        r.diagnostics.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn clean_ucq_stays_clean() {
        let r = lint_text(
            "Q(x, y) :- [a+](x, m), [b c-](m, y).\n\
             Q(x, y) :- [d](x, y).\n",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn unsatisfiable_atom_fires_rqc001() {
        let r = lint_text("Q(x, y) :- [a ∅](x, y).");
        assert_eq!(rules(&r), ["RQC001"]);
        assert!(r.has_errors());
    }

    #[test]
    fn disconnected_body_fires_rqc002() {
        let r = lint_text("Q(x, z) :- [a](x, y), [b](z, w).");
        assert_eq!(rules(&r), ["RQC002"]);
        assert!(r.diagnostics[0]
            .message
            .contains("2 disconnected components"));
    }

    #[test]
    fn duplicate_disjunct_fires_rqc003_once() {
        let r = lint_text(
            "Q(x, y) :- [a](x, y).\n\
             Q(x, y) :- [a](x, y).\n",
        );
        assert_eq!(rules(&r), ["RQC003"]);
    }

    #[test]
    fn subsumed_disjunct_fires_rqc004() {
        // Disjunct 0 (a) ⊑ disjunct 1 (a|b); both are chains.
        let r = lint_text(
            "Q(x, y) :- [a](x, y).\n\
             Q(x, y) :- [a|b](x, y).\n",
        );
        assert_eq!(rules(&r), ["RQC004"]);
        assert!(r.diagnostics[0].message.contains("disjunct #0"));
    }

    #[test]
    fn spans_attach_to_disjuncts() {
        let mut alphabet = Alphabet::new();
        let q = parse_uc2rpq(
            "Q(x, y) :- [a](x, y).\nQ(x, y) :- [a](x, y).",
            &mut alphabet,
        )
        .unwrap();
        let spans = [Span::new(1, 1), Span::new(2, 1)];
        let r = lint_uc2rpq(&q, &alphabet, &Limits::default(), Some(&spans));
        assert_eq!(r.diagnostics[0].span, Some(Span::new(2, 1)));
    }

    #[test]
    fn multi_atom_chain_subsumption() {
        // Chain collapse: [a](x,m),[b](m,y) ⊑ [a (a|b)* | a b](x,y)? The
        // chain a b is contained in a b | c.
        let r = lint_text(
            "Q(x, y) :- [a](x, m), [b](m, y).\n\
             Q(x, y) :- [a b | c](x, y).\n",
        );
        assert_eq!(rules(&r), ["RQC004"]);
    }
}
