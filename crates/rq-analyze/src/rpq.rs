//! Automata-level lints on RPQs and 2RPQs (rule ids `RQA…`).

use crate::diag;
use crate::diag::{Report, Span};
use crate::normalize::subsumed_branches;
use rq_automata::regex::parse_with_spans;
use rq_automata::simple::classify;
use rq_automata::{Alphabet, LabelId, Letter, Limits, Nfa, Regex};
use rq_core::TwoRpq;

/// Lint one (2)RPQ. `limits` governs the containment probes behind
/// `RQA005` (subsumed union branches).
pub fn lint_two_rpq(q: &TwoRpq, alphabet: &Alphabet, limits: &Limits) -> Report {
    lint_two_rpq_with_source(q, None, alphabet, limits)
}

/// [`lint_two_rpq`] with the query's source text, when the caller still
/// has it. The text is only used to attach source spans to diagnostics
/// whose witness is a subterm — currently `RQA007`, whose offending
/// subterm is located by re-parsing `source` with a span trace.
pub fn lint_two_rpq_with_source(
    q: &TwoRpq,
    source: Option<&str>,
    alphabet: &Alphabet,
    limits: &Limits,
) -> Report {
    let mut report = Report::new();
    let regex = q.regex();

    // RQA001 — the whole query denotes ∅. Everything else would be noise
    // on top of that, so stop here.
    if regex.is_empty_language() {
        report.push(
            diag(
                "RQA001",
                format!(
                    "`{}` denotes the empty language: it returns no answers on any database",
                    regex.display(alphabet)
                ),
            )
            .with_note("every subexpression of a ∅-language query is unreachable (§2.1)"),
        );
        return report;
    }

    vacuous_union_branches(regex, alphabet, &mut report);
    dead_occurrences(regex, alphabet, &mut report);
    fold_redundant_inverses(regex, alphabet, &mut report);
    subsumed_union_branches(regex, alphabet, limits, &mut report);
    simple_fragment(regex, source, alphabet, &mut report);
    report
}

/// RQA002 — a union branch that itself denotes ∅ (contributes nothing).
/// Only constructible programmatically: the text parser's smart
/// constructors erase ∅ branches on the way in.
fn vacuous_union_branches(e: &Regex, alphabet: &Alphabet, report: &mut Report) {
    if let Regex::Union(parts) = e {
        for (i, p) in parts.iter().enumerate() {
            if p.is_empty_language() {
                report.push(diag(
                    "RQA002",
                    format!(
                        "union branch #{i} (`{}`) denotes ∅ and contributes nothing",
                        p.display(alphabet)
                    ),
                ));
            }
        }
    }
    match e {
        Regex::Concat(v) | Regex::Union(v) => {
            for p in v {
                vacuous_union_branches(p, alphabet, report);
            }
        }
        Regex::Star(p) | Regex::Plus(p) | Regex::Optional(p) => {
            vacuous_union_branches(p, alphabet, report);
        }
        _ => {}
    }
}

/// RQA003 — letter occurrences no accepting run can read.
///
/// Naively diffing state counts before/after [`Nfa::trim`] is pure noise:
/// Thompson construction plus ε-elimination always leaves unreachable
/// states, even for pristine queries. Instead we mark every letter
/// *occurrence* with a fresh label ([`Regex::map_letters`] with a counter
/// closure — a position automaton), compile, trim, and read off which
/// marks survive: a mark that vanished is an occurrence outside every
/// accepting run.
fn dead_occurrences(e: &Regex, alphabet: &Alphabet, report: &mut Report) {
    let mut names: Vec<String> = Vec::new();
    let marked = e.map_letters(&mut |l| {
        let mark = Letter::forward(LabelId(names.len() as u32));
        names.push(alphabet.letter_name(l));
        mark
    });
    let trimmed = Nfa::from_regex(&marked).eliminate_epsilon().trim();
    let live: Vec<bool> = {
        let surviving = trimmed.letters();
        (0..names.len())
            .map(|i| surviving.contains(&Letter::forward(LabelId(i as u32))))
            .collect()
    };
    let dead: Vec<String> = names
        .iter()
        .zip(&live)
        .enumerate()
        .filter(|(_, (_, alive))| !**alive)
        .map(|(i, (name, _))| format!("#{i} (`{name}`)"))
        .collect();
    if !dead.is_empty() {
        report.push(
            diag(
                "RQA003",
                format!(
                    "{} of {} letter occurrence(s) are dead — no accepting run reads {}",
                    dead.len(),
                    names.len(),
                    dead.join(", ")
                ),
            )
            .with_note(format!(
                "dead occurrences bloat the compiled NFA, and the Lemma 3 fold 2NFA inflates \
                 every NFA state into |Σ±|+1 = {} states, so the containment checker pays \
                 {}-fold for each one",
                alphabet.sigma_pm_len() + 1,
                alphabet.sigma_pm_len() + 1,
            )),
        );
    }
}

/// RQA004 — a concatenation window `r r⁻ r` (a fold detour). Warning
/// only: by Lemma 2 the containment `r ⊑ r r⁻ r` is *strict*, so this is
/// not an equivalence-preserving rewrite — the detour admits extra
/// zig-zag answers, which is usually unintended but never rewritten
/// automatically.
fn fold_redundant_inverses(e: &Regex, alphabet: &Alphabet, report: &mut Report) {
    if let Regex::Concat(v) = e {
        for (i, w) in v.windows(3).enumerate() {
            if w[1] == w[0].inverse() && w[2] == w[0] {
                report.push(
                    diag(
                        "RQA004",
                        format!(
                            "concatenation steps #{}–#{} spell the fold detour `r r- r` with r = `{}`",
                            i,
                            i + 2,
                            w[0].display(alphabet)
                        ),
                    )
                    .with_note(
                        "by fold containment (Lemma 2) r ⊑ r r⁻ r strictly — the detour admits \
                         extra zig-zag answers; if the plain step was intended, write just r",
                    ),
                );
            }
        }
    }
    match e {
        Regex::Concat(v) | Regex::Union(v) => {
            for p in v {
                fold_redundant_inverses(p, alphabet, report);
            }
        }
        Regex::Star(p) | Regex::Plus(p) | Regex::Optional(p) => {
            fold_redundant_inverses(p, alphabet, report);
        }
        _ => {}
    }
}

/// RQA005 — a top-level union branch whose language a kept sibling
/// provably contains (the exact rewrite the engine's pre-flight applies).
fn subsumed_union_branches(e: &Regex, alphabet: &Alphabet, limits: &Limits, report: &mut Report) {
    let Regex::Union(parts) = e else {
        return;
    };
    for (i, subsumer) in subsumed_branches(parts, alphabet, limits)
        .iter()
        .enumerate()
    {
        let Some(j) = subsumer else { continue };
        report.push(
            diag(
                "RQA005",
                format!(
                    "union branch #{i} (`{}`) is subsumed by branch #{j} (`{}`)",
                    parts[i].display(alphabet),
                    parts[*j].display(alphabet)
                ),
            )
            .with_note(
                "containment proven by the quick ladder (Lemmas 2–4); the engine's pre-flight \
                 drops such branches before cache keying",
            ),
        );
    }
}

/// RQA006 / RQA007 — membership in the simple (SCRPQ) fragment. Info
/// either way: RQA006 announces that the polynomial containment fast
/// paths apply; RQA007 pinpoints the first subterm that forces probes
/// back onto the exact (EXPSPACE-bound) machinery. Runs on the query as
/// written, which is also what lets the witness subterm be located in
/// `source` when the caller still has the text.
fn simple_fragment(e: &Regex, source: Option<&str>, alphabet: &Alphabet, report: &mut Report) {
    match classify(e) {
        Ok(s) => {
            report.push(diag(
                "RQA006",
                format!(
                    "query is in the simple fragment ({}) — containment/boundedness fast \
                     paths apply",
                    s.display(alphabet)
                ),
            ));
        }
        Err(v) => {
            let mut d = diag(
                "RQA007",
                format!(
                    "query is outside the simple fragment: {}",
                    v.display(alphabet)
                ),
            )
            .with_note(
                "containment probes for this query escalate past the ladder's polynomial \
                 simple rung to the exact 2NFA checker",
            );
            if let Some(span) = source.and_then(|src| locate_subterm(src, &v.subterm, alphabet)) {
                d = d.with_span(span);
            }
            report.push(d);
        }
    }
}

/// Find the narrowest source span whose parse result equals `subterm`,
/// by re-parsing `source` with a span trace against a scratch copy of
/// the alphabet (existing labels keep their ids, so structural equality
/// is meaningful). Byte offsets become 1-based columns on line 1; batch
/// front-ends rebase the line.
fn locate_subterm(source: &str, subterm: &Regex, alphabet: &Alphabet) -> Option<Span> {
    let mut scratch = alphabet.clone();
    let (_, trace) = parse_with_spans(source, &mut scratch).ok()?;
    trace
        .iter()
        .filter(|(sub, _, _)| sub == subterm)
        .min_by_key(|(_, start, end)| end - start)
        .map(|(_, start, _)| Span::new(1, start + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Alphabet, Limits) {
        (Alphabet::from_names(["a", "b"]), Limits::default())
    }

    fn lint_text(text: &str) -> Report {
        let (mut alphabet, limits) = setup();
        let q = TwoRpq::parse(text, &mut alphabet).unwrap();
        lint_two_rpq(&q, &alphabet, &limits)
    }

    fn rules(r: &Report) -> Vec<&str> {
        r.diagnostics.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn clean_queries_draw_only_fragment_info() {
        // No warning-or-worse finding; the only diagnostics are the
        // always-on RQA006/RQA007 fragment classification (info).
        for text in ["a", "(a|b)*", "a b- a*", "a+ (b | a b)"] {
            let r = lint_text(text);
            assert!(
                r.diagnostics
                    .iter()
                    .all(|d| d.severity == crate::Severity::Info),
                "{text}: {:?}",
                r.diagnostics
            );
            assert!(
                r.diagnostics
                    .iter()
                    .all(|d| d.rule == "RQA006" || d.rule == "RQA007"),
                "{text}: {:?}",
                r.diagnostics
            );
        }
    }

    #[test]
    fn simple_fragment_fires_rqa006_with_the_atom_decomposition() {
        let r = lint_text("a (a|b)*");
        assert_eq!(rules(&r), ["RQA006"]);
        assert!(
            r.diagnostics[0].message.contains("D(a)·St(a+b)"),
            "{}",
            r.diagnostics[0].message
        );
    }

    #[test]
    fn non_simple_query_fires_rqa007_with_a_witness_span() {
        let (mut alphabet, limits) = setup();
        let source = "a (b c)* a";
        let q = TwoRpq::parse(source, &mut alphabet).unwrap();
        let r = lint_two_rpq_with_source(&q, Some(source), &alphabet, &limits);
        assert_eq!(rules(&r), ["RQA007"]);
        let d = &r.diagnostics[0];
        // The offending subterm is the star's body `b c`, which starts
        // at byte 3 → column 4.
        assert_eq!(d.span, Some(Span::new(1, 4)), "{:?}", d);
        assert!(d.message.contains("repetition"), "{}", d.message);
        // Without source text the diagnostic still fires, just span-less.
        let r = lint_two_rpq(&q, &alphabet, &limits);
        assert_eq!(r.diagnostics[0].span, None);
    }

    #[test]
    fn inverse_letters_exclude_the_simple_fragment() {
        let r = lint_text("a b- a*");
        assert_eq!(rules(&r), ["RQA007"]);
        assert!(
            r.diagnostics[0].message.contains("inverse"),
            "{}",
            r.diagnostics[0].message
        );
    }

    #[test]
    fn empty_language_is_an_error_and_short_circuits() {
        let r = lint_text("a ∅ b");
        assert_eq!(rules(&r), ["RQA001"]);
        assert!(r.has_errors());
    }

    #[test]
    fn raw_vacuous_branch_fires_rqa002_and_rqa003() {
        // The text parser erases ∅ branches; build the raw tree.
        let (mut alphabet, limits) = setup();
        let a = TwoRpq::parse("a", &mut alphabet).unwrap().regex().clone();
        let dead = Regex::Concat(vec![
            TwoRpq::parse("b", &mut alphabet).unwrap().regex().clone(),
            Regex::Empty,
        ]);
        let q = TwoRpq::new(Regex::Union(vec![a, dead]));
        let r = lint_two_rpq(&q, &alphabet, &limits);
        assert!(rules(&r).contains(&"RQA002"), "{:?}", r.diagnostics);
        // The `b` inside the dead branch is also a dead occurrence.
        assert!(rules(&r).contains(&"RQA003"), "{:?}", r.diagnostics);
    }

    #[test]
    fn fold_detour_fires_rqa004() {
        let r = lint_text("a a- a");
        assert_eq!(rules(&r), ["RQA004", "RQA007"]);
        assert!(r.diagnostics[0].notes[0].contains("Lemma 2"));
        // Nested occurrence is found too.
        let r = lint_text("b (a a- a)+");
        assert_eq!(rules(&r), ["RQA004", "RQA007"]);
    }

    #[test]
    fn subsumed_branch_fires_rqa005() {
        // a ⊑ a? — branch 0 is subsumed (a? also matches ε).
        let r = lint_text("a | a?");
        assert_eq!(rules(&r), ["RQA005", "RQA007"]);
        assert!(r.diagnostics[0].message.contains("branch #0"));
        // Fold subsumption through the ladder: a ⊑ a a- a. The detour
        // branch itself also (correctly) draws the RQA004 fold warning.
        let r = lint_text("a | a a- a");
        assert_eq!(rules(&r), ["RQA004", "RQA005", "RQA007"]);
    }

    #[test]
    fn dead_occurrence_position_marking_has_no_false_positives() {
        // Every occurrence in these is live even though Thompson
        // construction leaves unreachable *states* behind.
        for text in ["(a|b)* a", "a? b+", "((a b)+ | b)*"] {
            let r = lint_text(text);
            assert!(
                !rules(&r).contains(&"RQA003"),
                "{text}: {:?}",
                r.diagnostics
            );
        }
    }
}
