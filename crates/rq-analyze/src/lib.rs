//! # rq-analyze
//!
//! Static analysis and lint passes for the regular-query tower. The
//! paper's containment machinery (Lemmas 1–4, Theorems 5–8, the §4.1
//! RQ-in-Datalog classifier) is itself static analysis of queries; this
//! crate turns those decision procedures into developer-facing
//! diagnostics instead of only yes/no containment answers.
//!
//! Three pass families, one per query class:
//!
//! * [`rpq::lint_two_rpq`] — automata-level lints on (2)RPQs: empty
//!   language, vacuous union branches, dead letter occurrences (via a
//!   position automaton), fold-redundant inverse detours (Lemma 2), and
//!   union branches subsumed by siblings (decided with the containment
//!   facade's `check_quick`).
//! * [`cq::lint_uc2rpq`] — conjunctive-level lints on UC2RPQs:
//!   unsatisfiable atoms, disconnected body variables, duplicate and
//!   subsumed disjuncts.
//! * [`datalog::lint_program`] — Datalog lints over the dependency
//!   graph: unsafe rules, arity clashes, unused predicates, unreachable
//!   rules, and the §4.1 classifier reporting whether recursion is
//!   transitive-closure-only (decidable containment, Theorem 8) with the
//!   offending rule pinpointed when not.
//!
//! [`normalize::preflight`] is the engine-facing entry point: it
//! short-circuits provably-empty queries and drops union branches that a
//! sibling subsumes, so semantically equivalent requests collide on the
//! same canonical cache key more often. Every pass records into the
//! `rq_analyze_*` metric family.

pub mod cq;
pub mod datalog;
pub mod diag;
pub mod json;
pub mod normalize;
pub mod rpq;

pub use cq::lint_uc2rpq;
pub use datalog::lint_program;
pub use diag::{Diagnostic, Report, Severity, Span};
pub use json::Json;
pub use normalize::{preflight, Preflight, PreflightAction};
pub use rpq::{lint_two_rpq, lint_two_rpq_with_source};

/// Static description of one lint rule: identifier, slug, severity, the
/// query class it applies to, the paper result justifying it, and its
/// asymptotic cost (`n` = regex/program size, `c` = a containment call's
/// governed budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    pub id: &'static str,
    pub slug: &'static str,
    pub severity: Severity,
    /// Query class the rule inspects: `"automata"`, `"uc2rpq"`, or
    /// `"datalog"`.
    pub class: &'static str,
    /// The lemma/theorem (or classical fact) that justifies the finding.
    pub justification: &'static str,
    /// Asymptotic cost of the pass that checks the rule.
    pub complexity: &'static str,
}

/// The complete rule table, in rule-id order. `docs/ALGORITHMS.md`
/// mirrors this table.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "RQA001",
        slug: "empty-language",
        severity: Severity::Error,
        class: "automata",
        justification: "L(Q) = ∅ ⇒ Q(D) = ∅ on every database (§2.1); emptiness is syntactic for regex",
        complexity: "O(n)",
    },
    RuleInfo {
        id: "RQA002",
        slug: "vacuous-union-branch",
        severity: Severity::Warning,
        class: "automata",
        justification: "L(r ∪ ∅) = L(r): the ∅ branch contributes nothing",
        complexity: "O(n)",
    },
    RuleInfo {
        id: "RQA003",
        slug: "dead-occurrence",
        severity: Severity::Warning,
        class: "automata",
        justification: "position automaton: an occurrence no accepting run reads never matches an edge; dead states also inflate the Lemma 3 fold 2NFA by a factor of |Σ±|+1",
        complexity: "O(n²)",
    },
    RuleInfo {
        id: "RQA004",
        slug: "fold-redundant-inverse",
        severity: Severity::Warning,
        class: "automata",
        justification: "fold containment (Lemma 2): r ⊑ r r⁻ r strictly, so the detour admits extra zig-zag answers",
        complexity: "O(n)",
    },
    RuleInfo {
        id: "RQA005",
        slug: "subsumed-union-branch",
        severity: Severity::Warning,
        class: "automata",
        justification: "if L(rᵢ) ⊆ L(rⱼ) (decided via the 2NFA containment ladder, Lemmas 2–4) the branch rᵢ is redundant",
        complexity: "O(k²·c) for k branches",
    },
    RuleInfo {
        id: "RQA006",
        slug: "simple-fragment",
        severity: Severity::Info,
        class: "automata",
        justification: "the query is in the SCRPQ fragment (Figueira et al. 2020): containment drops from EXPSPACE to polynomial and the ladder's simple rung decides probes without the 2NFA pipeline",
        complexity: "O(n)",
    },
    RuleInfo {
        id: "RQA007",
        slug: "non-simple-subterm",
        severity: Severity::Info,
        class: "automata",
        justification: "one subterm excludes the query from the SCRPQ fragment, so containment probes fall back to the exact (EXPSPACE-bound) machinery; the witness pinpoints the offending subterm",
        complexity: "O(n)",
    },
    RuleInfo {
        id: "RQC001",
        slug: "unsatisfiable-atom",
        severity: Severity::Error,
        class: "uc2rpq",
        justification: "an atom with L(r) = ∅ can never be matched, so its whole disjunct is unsatisfiable (§2.2)",
        complexity: "O(n)",
    },
    RuleInfo {
        id: "RQC002",
        slug: "disconnected-body",
        severity: Severity::Warning,
        class: "uc2rpq",
        justification: "a disjunct whose variable graph is disconnected is a Cartesian product of independent patterns — usually unintended",
        complexity: "O(n·α(n))",
    },
    RuleInfo {
        id: "RQC003",
        slug: "duplicate-disjunct",
        severity: Severity::Warning,
        class: "uc2rpq",
        justification: "union is idempotent: Q ∪ Q ≡ Q",
        complexity: "O(k²·n)",
    },
    RuleInfo {
        id: "RQC004",
        slug: "subsumed-disjunct",
        severity: Severity::Warning,
        class: "uc2rpq",
        justification: "if disjunct δᵢ ⊑ δⱼ (via chain collapse + 2NFA containment) then δᵢ never adds answers",
        complexity: "O(k²·c)",
    },
    RuleInfo {
        id: "RQD001",
        slug: "unsafe-rule",
        severity: Severity::Error,
        class: "datalog",
        justification: "safety (§2.3): every head variable must occur in the body, else the rule derives unbounded facts",
        complexity: "O(n)",
    },
    RuleInfo {
        id: "RQD002",
        slug: "arity-mismatch",
        severity: Severity::Error,
        class: "datalog",
        justification: "predicates denote fixed-arity relations (§2.3)",
        complexity: "O(n)",
    },
    RuleInfo {
        id: "RQD003",
        slug: "unused-predicate",
        severity: Severity::Warning,
        class: "datalog",
        justification: "an IDB predicate the goal never (transitively) depends on cannot affect the answer",
        complexity: "O(n)",
    },
    RuleInfo {
        id: "RQD004",
        slug: "unreachable-rule",
        severity: Severity::Warning,
        class: "datalog",
        justification: "rules for predicates outside the goal's dependency cone are dead code",
        complexity: "O(n)",
    },
    RuleInfo {
        id: "RQD005",
        slug: "non-regular-recursion",
        severity: Severity::Warning,
        class: "datalog",
        justification: "§4.1: recursion beyond transitive closure leaves the RQ fragment; containment of full recursive Datalog is undecidable (§2.3)",
        complexity: "O(n)",
    },
    RuleInfo {
        id: "RQD006",
        slug: "regular-recursion",
        severity: Severity::Info,
        class: "datalog",
        justification: "§4.1 + Theorem 8: transitive-closure-only recursion is expressible as an RQ, so containment is decidable (EXPSPACE)",
        complexity: "O(n)",
    },
    RuleInfo {
        id: "RQD007",
        slug: "unknown-goal",
        severity: Severity::Error,
        class: "datalog",
        justification: "a goal predicate that never occurs in the program denotes the empty relation",
        complexity: "O(n)",
    },
];

/// Look up a rule's static description by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Build a [`Diagnostic`] for a rule id from the [`RULES`] table.
///
/// Panics if `id` is not in the table — rule ids are compile-time
/// constants in this crate, so an unknown id is a bug, not an input
/// error.
pub(crate) fn diag(id: &str, message: impl Into<String>) -> Diagnostic {
    let info = rule(id).unwrap_or_else(|| panic!("unknown lint rule id {id:?}"));
    Diagnostic {
        rule: info.id.to_owned(),
        slug: info.slug.to_owned(),
        severity: info.severity,
        message: message.into(),
        span: None,
        notes: Vec::new(),
    }
}

/// The `rq_analyze_*` metric family.
pub(crate) mod metrics {
    use crate::{PreflightAction, Severity};
    use rq_metrics::{global, Counter};
    use std::sync::{Arc, OnceLock};

    const SEVERITIES: [Severity; 3] = [Severity::Error, Severity::Warning, Severity::Info];

    /// Count one emitted diagnostic, labeled by severity.
    pub(crate) fn diagnostic(severity: Severity) {
        static CELLS: OnceLock<[Arc<Counter>; 3]> = OnceLock::new();
        let cells = CELLS.get_or_init(|| {
            SEVERITIES.map(|s| {
                global().counter_with(
                    "rq_analyze_diagnostics_total",
                    &[("severity", s.name())],
                    "lint diagnostics emitted by rq-analyze, by severity",
                )
            })
        });
        let i = SEVERITIES
            .iter()
            .position(|s| *s == severity)
            .expect("every severity has a cell");
        cells[i].inc();
    }

    /// Count one engine pre-flight outcome, labeled by action.
    pub(crate) fn preflight(action: PreflightAction) {
        static CELLS: OnceLock<[Arc<Counter>; 3]> = OnceLock::new();
        const ACTIONS: [PreflightAction; 3] = [
            PreflightAction::Empty,
            PreflightAction::Rewritten,
            PreflightAction::Unchanged,
        ];
        let cells = CELLS.get_or_init(|| {
            ACTIONS.map(|a| {
                global().counter_with(
                    "rq_analyze_preflight_total",
                    &[("action", a.name())],
                    "engine pre-flight normalization outcomes",
                )
            })
        });
        let i = ACTIONS
            .iter()
            .position(|a| *a == action)
            .expect("every action has a cell");
        cells[i].inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_table_is_consistent() {
        assert!(RULES.len() >= 8, "acceptance needs ≥8 distinct rule ids");
        for (i, r) in RULES.iter().enumerate() {
            // Ids are unique, table is sorted, classes are known.
            assert!(
                RULES.iter().filter(|s| s.id == r.id).count() == 1,
                "{}",
                r.id
            );
            if i > 0 {
                assert!(RULES[i - 1].id < r.id, "table sorted by id");
            }
            assert!(matches!(r.class, "automata" | "uc2rpq" | "datalog"));
            assert!(!r.justification.is_empty() && !r.complexity.is_empty());
        }
        assert_eq!(rule("RQA001").unwrap().slug, "empty-language");
        assert_eq!(rule("nope"), None);
    }

    #[test]
    fn diag_builder_pulls_from_table() {
        let d = diag("RQD005", "mutual recursion through P and Q");
        assert_eq!(d.rule, "RQD005");
        assert_eq!(d.slug, "non-regular-recursion");
        assert_eq!(d.severity, Severity::Warning);
    }
}
