//! Diagnostic records and reports: severities, source spans, and both the
//! human text rendering and the JSON round-trip used by `rqtool lint
//! --json`.

use crate::json::{Json, JsonError};
use std::fmt;

/// How bad a finding is. The derived order puts `Error` first so sorting
/// a report ascending surfaces the most severe findings at the top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The query or program is degenerate or ill-formed: it cannot mean
    /// what was written (empty language, unsafe rule, arity clash).
    Error,
    /// Legal but suspicious: redundant structure, dead automaton parts,
    /// recursion outside the decidable fragment.
    Warning,
    /// A positive classification worth surfacing (e.g. "this recursion is
    /// transitive-closure-only, so containment is decidable").
    Info,
}

impl Severity {
    /// Stable lowercase name used in text and JSON renderings.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }

    fn from_name(name: &str) -> Option<Severity> {
        match name {
            "error" => Some(Severity::Error),
            "warning" => Some(Severity::Warning),
            "info" => Some(Severity::Info),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A 1-based source position, as reported by the `query_text` and Datalog
/// parsers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    pub line: usize,
    pub column: usize,
}

impl Span {
    pub fn new(line: usize, column: usize) -> Span {
        Span { line, column }
    }
}

/// One finding: a rule id (`RQA001`…), its slug, a severity, a message,
/// an optional source span and free-form notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `RQA004`.
    pub rule: String,
    /// Human-readable rule slug, e.g. `fold-redundant-inverse`.
    pub slug: String,
    pub severity: Severity,
    pub message: String,
    pub span: Option<Span>,
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Attach a span (builder-style).
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attach a note (builder-style).
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Render as `origin:line:col: severity[RULE] slug: message` plus
    /// indented notes.
    pub fn render_text(&self, origin: &str) -> String {
        let mut out = String::new();
        out.push_str(origin);
        if let Some(span) = self.span {
            out.push_str(&format!(":{}:{}", span.line, span.column));
        }
        out.push_str(&format!(
            ": {}[{}] {}: {}",
            self.severity, self.rule, self.slug, self.message
        ));
        for note in &self.notes {
            out.push_str(&format!("\n    note: {note}"));
        }
        out
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("rule".to_owned(), Json::Str(self.rule.clone())),
            ("slug".to_owned(), Json::Str(self.slug.clone())),
            (
                "severity".to_owned(),
                Json::Str(self.severity.name().to_owned()),
            ),
            ("message".to_owned(), Json::Str(self.message.clone())),
        ];
        if let Some(span) = self.span {
            fields.push((
                "span".to_owned(),
                Json::Obj(vec![
                    ("line".to_owned(), Json::Num(span.line as f64)),
                    ("column".to_owned(), Json::Num(span.column as f64)),
                ]),
            ));
        }
        if !self.notes.is_empty() {
            fields.push((
                "notes".to_owned(),
                Json::Arr(self.notes.iter().cloned().map(Json::Str).collect()),
            ));
        }
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<Diagnostic, String> {
        let field_str = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("diagnostic is missing string field {key:?}"))
        };
        let severity_name = field_str("severity")?;
        let severity = Severity::from_name(&severity_name)
            .ok_or_else(|| format!("unknown severity {severity_name:?}"))?;
        let span = match v.get("span") {
            None => None,
            Some(s) => {
                let dim = |key: &str| {
                    s.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("span is missing numeric field {key:?}"))
                };
                Some(Span::new(dim("line")? as usize, dim("column")? as usize))
            }
        };
        let notes = match v.get("notes") {
            None => Vec::new(),
            Some(n) => n
                .as_arr()
                .ok_or("notes must be an array")?
                .iter()
                .map(|x| x.as_str().map(str::to_owned).ok_or("note must be a string"))
                .collect::<Result<_, _>>()?,
        };
        Ok(Diagnostic {
            rule: field_str("rule")?,
            slug: field_str("slug")?,
            severity,
            message: field_str("message")?,
            span,
            notes,
        })
    }
}

/// An ordered collection of diagnostics produced by one lint run over one
/// input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new() -> Report {
        Report::default()
    }

    /// Append a finding, recording it in the `rq_analyze_diagnostics_total`
    /// metric family.
    pub fn push(&mut self, d: Diagnostic) {
        crate::metrics::diagnostic(d.severity);
        self.diagnostics.push(d);
    }

    /// Append every finding from another report.
    pub fn merge(&mut self, other: Report) {
        // Findings were already counted when pushed into `other`.
        self.diagnostics.extend(other.diagnostics);
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Sort findings by severity (errors first), then by span.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (a.severity, a.span, &a.rule).cmp(&(b.severity, b.span, &b.rule)));
    }

    /// Render all findings, one block per diagnostic, prefixed by
    /// `origin` (typically a file path or `<query>`).
    pub fn render_text(&self, origin: &str) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.render_text(origin))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// JSON value form: `{"diagnostics":[…]}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![(
            "diagnostics".to_owned(),
            Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
        )])
    }

    /// Parse a report back from its JSON text (inverse of
    /// [`Report::to_json`] + [`Json::emit`]). Does not touch metrics.
    pub fn from_json_text(text: &str) -> Result<Report, String> {
        let v = Json::parse(text).map_err(|e: JsonError| e.to_string())?;
        let arr = v
            .get("diagnostics")
            .and_then(Json::as_arr)
            .ok_or("report is missing the \"diagnostics\" array")?;
        let diagnostics = arr
            .iter()
            .map(Diagnostic::from_json)
            .collect::<Result<_, _>>()?;
        Ok(Report { diagnostics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(Diagnostic {
            rule: "RQA001".into(),
            slug: "empty-language".into(),
            severity: Severity::Error,
            message: "the query denotes the empty language".into(),
            span: Some(Span::new(3, 14)),
            notes: vec!["note with \"quotes\" and\nnewline".into()],
        });
        r.push(Diagnostic {
            rule: "RQD006".into(),
            slug: "regular-recursion".into(),
            severity: Severity::Info,
            message: "recursion is transitive-closure-only".into(),
            span: None,
            notes: vec![],
        });
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let text = r.to_json().emit();
        let back = Report::from_json_text(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn text_rendering_includes_span_and_notes() {
        let r = sample();
        let text = r.render_text("queries.cq");
        assert!(text.contains("queries.cq:3:14: error[RQA001] empty-language:"));
        assert!(text.contains("\n    note: note with"));
        assert!(text.contains("queries.cq: info[RQD006]"), "{text}");
    }

    #[test]
    fn severity_orders_errors_first() {
        let mut r = sample();
        r.diagnostics.reverse();
        r.sort();
        assert_eq!(r.diagnostics[0].rule, "RQA001");
        assert!(r.has_errors());
        assert!(!r.is_clean());
    }

    #[test]
    fn from_json_rejects_malformed_reports() {
        for bad in [
            "{}",
            r#"{"diagnostics":[{}]}"#,
            r#"{"diagnostics":[{"rule":"X","slug":"s","severity":"fatal","message":"m"}]}"#,
            r#"{"diagnostics":[{"rule":"X","slug":"s","severity":"error","message":"m","span":{"line":1}}]}"#,
        ] {
            assert!(Report::from_json_text(bad).is_err(), "{bad:?}");
        }
    }
}
