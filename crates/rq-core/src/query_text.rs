//! Textual syntax for (unions of) conjunctive 2RPQs.
//!
//! One rule per line; rules with the same head predicate form a union:
//!
//! ```text
//! Q(x, y) :- [a+](x, m), [b c-](m, y).
//! Q(x, y) :- [d](x, y).
//! # comments and blank lines are skipped
//! ```
//!
//! Atom bodies are regular expressions over Σ± in square brackets (the
//! same syntax as [`rq_automata::regex::parse`]); variables are plain
//! identifiers. The head's variable list fixes the answer-tuple order.

use crate::crpq::{C2Rpq, C2RpqAtom, Uc2Rpq};
use crate::rpq::TwoRpq;
use rq_automata::Alphabet;
use std::fmt;

/// Error raised by [`parse_uc2rpq`], with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTextError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for QueryTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for QueryTextError {}

/// Parse a UC2RPQ from the rule syntax above, interning labels into
/// `alphabet`. All rules must share the same head predicate and arity.
pub fn parse_uc2rpq(input: &str, alphabet: &mut Alphabet) -> Result<Uc2Rpq, QueryTextError> {
    let mut head_name: Option<String> = None;
    let mut disjuncts = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let err = |message: String| QueryTextError {
            line: lineno + 1,
            message,
        };
        let line = line
            .strip_suffix('.')
            .ok_or_else(|| err("rules must end with '.'".into()))?;
        let (head, body) = line
            .split_once(":-")
            .ok_or_else(|| err("expected `Head(vars) :- body`".into()))?;
        // Head: Name(v1, ..., vk).
        let head = head.trim();
        let (name, rest) = head
            .split_once('(')
            .ok_or_else(|| err("head must be `Name(vars)`".into()))?;
        let name = name.trim();
        let vars_str = rest
            .strip_suffix(')')
            .ok_or_else(|| err("unclosed head variable list".into()))?;
        let head_vars: Vec<String> = vars_str
            .split(',')
            .map(|v| v.trim().to_owned())
            .filter(|v| !v.is_empty())
            .collect();
        match &head_name {
            None => head_name = Some(name.to_owned()),
            Some(prev) if prev != name => {
                return Err(err(format!(
                    "all rules must share one head predicate (saw {prev} and {name})"
                )))
            }
            _ => {}
        }
        // Body: comma-separated atoms [regex](v1, v2); commas inside the
        // brackets belong to the regex (none in our syntax, but parentheses
        // do occur), so split carefully.
        let mut atoms = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            rest = rest.trim_start_matches(',').trim();
            if rest.is_empty() {
                break;
            }
            if !rest.starts_with('[') {
                return Err(err(format!("expected `[regex](x, y)` atom at: {rest}")));
            }
            let close = rest
                .find(']')
                .ok_or_else(|| err("unclosed regex bracket".into()))?;
            let regex_src = &rest[1..close];
            let after = rest[close + 1..].trim_start();
            if !after.starts_with('(') {
                return Err(err("atom needs a variable pair `(x, y)`".into()));
            }
            let vclose = after
                .find(')')
                .ok_or_else(|| err("unclosed atom variable list".into()))?;
            let pair: Vec<&str> = after[1..vclose].split(',').map(str::trim).collect();
            let [from, to] = pair.as_slice() else {
                return Err(err("atoms take exactly two variables".into()));
            };
            let rel = TwoRpq::parse(regex_src, alphabet)
                .map_err(|e| err(format!("bad regex {regex_src:?}: {e}")))?;
            atoms.push(C2RpqAtom::new(rel, *from, *to));
            rest = after[vclose + 1..].trim_start();
        }
        let conj = C2Rpq::new(head_vars, atoms).map_err(|e| err(e.to_string()))?;
        disjuncts.push(conj);
    }
    if disjuncts.is_empty() {
        return Err(QueryTextError {
            line: 0,
            message: "no rules found".into(),
        });
    }
    Uc2Rpq::new(disjuncts).map_err(|e| QueryTextError {
        line: 0,
        message: e.to_string(),
    })
}

/// Render a UC2RPQ back to the rule syntax (parse ∘ render = id up to
/// whitespace).
pub fn render_uc2rpq(q: &Uc2Rpq, name: &str, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    for d in &q.disjuncts {
        out.push_str(name);
        out.push('(');
        out.push_str(&d.head.join(", "));
        out.push_str(") :- ");
        for (i, a) in d.atoms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('[');
            out.push_str(&a.rel.regex().display(alphabet).to_string());
            out.push_str("](");
            out.push_str(&a.from);
            out.push_str(", ");
            out.push_str(&a.to);
            out.push(')');
        }
        out.push_str(".\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_graph::generate;

    #[test]
    fn parses_union_of_rules() {
        let mut al = Alphabet::new();
        let q = parse_uc2rpq(
            "Q(x, y) :- [a+](x, m), [b c-](m, y).\n\
             # second disjunct\n\
             Q(x, y) :- [d](x, y).\n",
            &mut al,
        )
        .unwrap();
        assert_eq!(q.disjuncts.len(), 2);
        assert_eq!(q.disjuncts[0].atoms.len(), 2);
        assert_eq!(q.disjuncts[0].head, vec!["x", "y"]);
        assert_eq!(q.disjuncts[1].atoms.len(), 1);
    }

    #[test]
    fn regex_with_parens_and_unions() {
        let mut al = Alphabet::new();
        let q = parse_uc2rpq("P(v) :- [(a|b)* c](v, w).", &mut al).unwrap();
        assert_eq!(q.arity(), 1);
    }

    #[test]
    fn render_roundtrip() {
        let mut al = Alphabet::new();
        let text = "Q(x, y) :- [a+](x, m), [b](m, y).\nQ(x, y) :- [c-](x, y).\n";
        let q = parse_uc2rpq(text, &mut al).unwrap();
        let rendered = render_uc2rpq(&q, "Q", &al);
        let mut al2 = al.clone();
        let q2 = parse_uc2rpq(&rendered, &mut al2).unwrap();
        assert_eq!(q, q2);
        // And they evaluate identically.
        let db = generate::random_gnm(6, 14, &["a", "b", "c"], 3);
        assert_eq!(q.evaluate(&db), q2.evaluate(&db));
    }

    #[test]
    fn error_positions() {
        let mut al = Alphabet::new();
        let err = parse_uc2rpq("Q(x) :- [a](x, y)", &mut al).unwrap_err();
        assert_eq!(err.line, 1); // missing period
        let err = parse_uc2rpq("Q(x) :- [a](x, y).\nR(x) :- [a](x, y).", &mut al).unwrap_err();
        assert_eq!(err.line, 2); // mixed head predicates
        let err = parse_uc2rpq("Q(x) :- [a(x, y).", &mut al).unwrap_err();
        assert_eq!(err.line, 1); // unclosed bracket
        assert!(parse_uc2rpq("", &mut al).is_err());
    }

    #[test]
    fn head_safety_is_enforced() {
        let mut al = Alphabet::new();
        let err = parse_uc2rpq("Q(z) :- [a](x, y).", &mut al).unwrap_err();
        assert!(err.message.contains("head variable"));
    }
}
