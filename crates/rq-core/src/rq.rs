//! The class RQ of Regular Queries (§3.4).
//!
//! "We define the class RQ of regular queries by simply closing UC2RPQ
//! under transitive closure. That is, RQ consists of the class of queries
//! one can form from atomic queries r(x, y) using the following operations:
//! selection, projection, disjunction, conjunction, and transitive
//! closure."
//!
//! [`RqExpr`] is that algebra (plus 2RPQ atoms, which RQ subsumes — any
//! regular expression is expressible with union/composition/TC, so
//! admitting κ(x, y) atoms changes nothing semantically and keeps queries
//! readable). [`RqQuery::evaluate`] computes answers directly, with
//! semi-naive iteration for transitive closures. [`RqQuery::unfold`]
//! produces UC2RPQ *under-approximations* by unrolling each TC to a depth,
//! and [`RqQuery::collapse_exact`] eliminates closures *exactly* when their
//! bodies are chain-shaped (the fragment where RQ collapses back to 2RPQs)
//! — both are the database-theoretic half of the containment checker.
//!
//! ## Example
//!
//! ```
//! use rq_core::rq::{RqExpr, RqQuery};
//! use rq_graph::GraphDb;
//!
//! let mut db = GraphDb::new();
//! let r = db.label("r");
//! let (a, b, c) = (db.node("a"), db.node("b"), db.node("c"));
//! db.add_edge(a, r, b);
//! db.add_edge(b, r, c);
//!
//! // TC(r)(x, y), built from the algebra's five operations.
//! let q = RqQuery::new(
//!     vec!["x".into(), "y".into()],
//!     RqExpr::edge(r, "x", "y").closure("x", "y"),
//! ).unwrap();
//! assert!(q.evaluate(&db).contains(&vec![a, c]));
//! ```

use crate::crpq::{C2Rpq, C2RpqAtom, Uc2Rpq};
use crate::rpq::TwoRpq;
use rq_automata::{Alphabet, LabelId, Letter, Regex};
use rq_graph::{GraphDb, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The RQ algebra over named variables.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RqExpr {
    /// An atomic query `r(from, to)`.
    Edge {
        label: LabelId,
        from: String,
        to: String,
    },
    /// A 2RPQ atom `κ(from, to)` (syntactic sugar; RQ subsumes UC2RPQ).
    Rel2 {
        rel: TwoRpq,
        from: String,
        to: String,
    },
    /// Selection `inner ∧ v1 = v2` (both variables stay free).
    Select {
        inner: Box<RqExpr>,
        v1: String,
        v2: String,
    },
    /// Projection `∃ var . inner`.
    Project { inner: Box<RqExpr>, var: String },
    /// Disjunction; both sides must have the same free variables.
    Union {
        left: Box<RqExpr>,
        right: Box<RqExpr>,
    },
    /// Conjunction (natural join on shared variables).
    And {
        left: Box<RqExpr>,
        right: Box<RqExpr>,
    },
    /// Transitive closure `inner⁺` of a binary query with free variables
    /// exactly `{from, to}`.
    Closure {
        inner: Box<RqExpr>,
        from: String,
        to: String,
    },
}

impl RqExpr {
    /// Atomic edge query.
    pub fn edge(label: LabelId, from: impl Into<String>, to: impl Into<String>) -> RqExpr {
        RqExpr::Edge {
            label,
            from: from.into(),
            to: to.into(),
        }
    }

    /// 2RPQ atom.
    pub fn rel2(rel: TwoRpq, from: impl Into<String>, to: impl Into<String>) -> RqExpr {
        RqExpr::Rel2 {
            rel,
            from: from.into(),
            to: to.into(),
        }
    }

    /// Selection `self ∧ v1 = v2`.
    pub fn select_eq(self, v1: impl Into<String>, v2: impl Into<String>) -> RqExpr {
        RqExpr::Select {
            inner: Box::new(self),
            v1: v1.into(),
            v2: v2.into(),
        }
    }

    /// Projection `∃ var . self`.
    pub fn project(self, var: impl Into<String>) -> RqExpr {
        RqExpr::Project {
            inner: Box::new(self),
            var: var.into(),
        }
    }

    /// Disjunction.
    pub fn or(self, other: RqExpr) -> RqExpr {
        RqExpr::Union {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Conjunction.
    pub fn and(self, other: RqExpr) -> RqExpr {
        RqExpr::And {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Transitive closure of a binary query with free variables
    /// `{from, to}`.
    pub fn closure(self, from: impl Into<String>, to: impl Into<String>) -> RqExpr {
        RqExpr::Closure {
            inner: Box::new(self),
            from: from.into(),
            to: to.into(),
        }
    }

    /// The free variables.
    pub fn free_vars(&self) -> BTreeSet<&str> {
        match self {
            RqExpr::Edge { from, to, .. } | RqExpr::Rel2 { from, to, .. } => {
                [from.as_str(), to.as_str()].into_iter().collect()
            }
            RqExpr::Select { inner, .. } => inner.free_vars(),
            RqExpr::Project { inner, var } => {
                let mut v = inner.free_vars();
                v.remove(var.as_str());
                v
            }
            RqExpr::Union { left, .. } => left.free_vars(),
            RqExpr::And { left, right } => {
                let mut v = left.free_vars();
                v.extend(right.free_vars());
                v
            }
            RqExpr::Closure { from, to, .. } => [from.as_str(), to.as_str()].into_iter().collect(),
        }
    }

    /// Number of `Closure` nodes.
    pub fn closure_count(&self) -> usize {
        match self {
            RqExpr::Edge { .. } | RqExpr::Rel2 { .. } => 0,
            RqExpr::Select { inner, .. } | RqExpr::Project { inner, .. } => inner.closure_count(),
            RqExpr::Union { left, right } | RqExpr::And { left, right } => {
                left.closure_count() + right.closure_count()
            }
            RqExpr::Closure { inner, .. } => 1 + inner.closure_count(),
        }
    }

    /// Uniformly rename every variable occurrence (free and bound) through
    /// `f`. With an injective `f` this is α-renaming plus head renaming;
    /// used by the containment machinery to put two queries in disjoint
    /// variable spaces before composing them.
    pub fn rename_all(&self, f: &dyn Fn(&str) -> String) -> RqExpr {
        match self {
            RqExpr::Edge { label, from, to } => RqExpr::Edge {
                label: *label,
                from: f(from),
                to: f(to),
            },
            RqExpr::Rel2 { rel, from, to } => RqExpr::Rel2 {
                rel: rel.clone(),
                from: f(from),
                to: f(to),
            },
            RqExpr::Select { inner, v1, v2 } => RqExpr::Select {
                inner: Box::new(inner.rename_all(f)),
                v1: f(v1),
                v2: f(v2),
            },
            RqExpr::Project { inner, var } => RqExpr::Project {
                inner: Box::new(inner.rename_all(f)),
                var: f(var),
            },
            RqExpr::Union { left, right } => RqExpr::Union {
                left: Box::new(left.rename_all(f)),
                right: Box::new(right.rename_all(f)),
            },
            RqExpr::And { left, right } => RqExpr::And {
                left: Box::new(left.rename_all(f)),
                right: Box::new(right.rename_all(f)),
            },
            RqExpr::Closure { inner, from, to } => RqExpr::Closure {
                inner: Box::new(inner.rename_all(f)),
                from: f(from),
                to: f(to),
            },
        }
    }

    /// Validate the algebraic constraints.
    fn validate(&self) -> Result<(), RqError> {
        match self {
            RqExpr::Edge { .. } | RqExpr::Rel2 { .. } => Ok(()),
            RqExpr::Select { inner, v1, v2 } => {
                inner.validate()?;
                let free = inner.free_vars();
                for v in [v1, v2] {
                    if !free.contains(v.as_str()) {
                        return Err(RqError::UnknownVariable {
                            variable: v.clone(),
                        });
                    }
                }
                Ok(())
            }
            RqExpr::Project { inner, var } => {
                inner.validate()?;
                if !inner.free_vars().contains(var.as_str()) {
                    return Err(RqError::UnknownVariable {
                        variable: var.clone(),
                    });
                }
                Ok(())
            }
            RqExpr::Union { left, right } => {
                left.validate()?;
                right.validate()?;
                if left.free_vars() != right.free_vars() {
                    return Err(RqError::UnionMismatch);
                }
                Ok(())
            }
            RqExpr::And { left, right } => {
                left.validate()?;
                right.validate()
            }
            RqExpr::Closure { inner, from, to } => {
                inner.validate()?;
                if from == to {
                    return Err(RqError::ClosureNotBinary);
                }
                let expected: BTreeSet<&str> = [from.as_str(), to.as_str()].into_iter().collect();
                if inner.free_vars() != expected {
                    return Err(RqError::ClosureNotBinary);
                }
                Ok(())
            }
        }
    }
}

/// Errors building or unfolding an [`RqQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RqError {
    /// A selection/projection variable is not free in the operand.
    UnknownVariable { variable: String },
    /// Union operands have different free-variable sets.
    UnionMismatch,
    /// A closure's operand is not binary over two distinct variables.
    ClosureNotBinary,
    /// Head variables must be exactly the free variables, without repeats.
    BadHead,
    /// The unfolding budget was exceeded.
    UnfoldBudget { budget: usize },
}

impl fmt::Display for RqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RqError::UnknownVariable { variable } => {
                write!(f, "variable {variable} is not free in the operand")
            }
            RqError::UnionMismatch => {
                write!(f, "union operands must have identical free variables")
            }
            RqError::ClosureNotBinary => write!(
                f,
                "transitive closure applies to binary queries over two distinct free variables"
            ),
            RqError::BadHead => write!(
                f,
                "the head must list exactly the free variables, each once"
            ),
            RqError::UnfoldBudget { budget } => {
                write!(f, "unfolding exceeded the budget of {budget} disjuncts")
            }
        }
    }
}

impl std::error::Error for RqError {}

/// A regular query: an [`RqExpr`] with an ordered output tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RqQuery {
    pub head: Vec<String>,
    pub expr: RqExpr,
}

impl RqQuery {
    /// Build and validate: `head` must list exactly the free variables of
    /// `expr`, each once.
    pub fn new(head: Vec<String>, expr: RqExpr) -> Result<RqQuery, RqError> {
        expr.validate()?;
        let free = expr.free_vars();
        let head_set: BTreeSet<&str> = head.iter().map(String::as_str).collect();
        if head_set.len() != head.len() || head_set != free {
            return Err(RqError::BadHead);
        }
        Ok(RqQuery { head, expr })
    }

    /// Evaluate directly on a graph database (TC by semi-naive iteration).
    pub fn evaluate(&self, db: &GraphDb) -> BTreeSet<Vec<NodeId>> {
        let (cols, rel) = eval_expr(&self.expr, db);
        let positions: Vec<usize> = self
            .head
            .iter()
            .map(|h| {
                cols.iter()
                    .position(|c| c == h)
                    .expect("head ⊆ free vars by validation")
            })
            .collect();
        rel.into_iter()
            .map(|t| positions.iter().map(|&p| t[p]).collect())
            .collect()
    }

    /// Unfold into a UC2RPQ that *under-approximates* the query: every
    /// transitive closure is unrolled to at most `depth` steps. If the
    /// expression has no closures the result is exactly equivalent.
    pub fn unfold(&self, depth: usize, budget: usize) -> Result<Uc2Rpq, RqError> {
        let mut ctx = UnfoldCtx {
            counter: 0,
            budget,
            exact: true,
            depth,
        };
        let disjuncts = ctx.unfold(&self.expr)?;
        Ok(finish_unfold(disjuncts, &self.head))
    }

    /// Like [`RqQuery::unfold`], also reporting whether the result is
    /// exact (true iff every closure collapsed exactly or no closure was
    /// unrolled approximately).
    pub fn unfold_with_exactness(
        &self,
        depth: usize,
        budget: usize,
    ) -> Result<(Uc2Rpq, bool), RqError> {
        let mut ctx = UnfoldCtx {
            counter: 0,
            budget,
            exact: true,
            depth,
        };
        let disjuncts = ctx.unfold(&self.expr)?;
        let exact = ctx.exact;
        Ok((finish_unfold(disjuncts, &self.head), exact))
    }

    /// Produce an *exactly* equivalent UC2RPQ by eliminating closures whose
    /// unfolded bodies are chain-shaped (`TC(κ(x,y)) = κ⁺(x,y)`). Returns
    /// `None` when some closure body is genuinely conjunctive (the RQ ∖
    /// UC2RPQ territory, like the paper's transitive closure of the
    /// triangle query).
    pub fn collapse_exact(&self) -> Option<Uc2Rpq> {
        let mut ctx = UnfoldCtx {
            counter: 0,
            budget: 200_000,
            exact: true,
            depth: 0,
        };
        let disjuncts = ctx.collapse(&self.expr)?;
        Some(finish_unfold(disjuncts, &self.head))
    }

    /// Closure count of the expression.
    pub fn closure_count(&self) -> usize {
        self.expr.closure_count()
    }
}

// ---------------------------------------------------------------------
// Direct evaluation
// ---------------------------------------------------------------------

type Cols = Vec<String>;
type Rel = BTreeSet<Vec<NodeId>>;

fn eval_expr(expr: &RqExpr, db: &GraphDb) -> (Cols, Rel) {
    match expr {
        RqExpr::Edge { label, from, to } => {
            if from == to {
                let rel = db
                    .edges(*label)
                    .iter()
                    .filter(|(x, y)| x == y)
                    .map(|&(x, _)| vec![x])
                    .collect();
                (vec![from.clone()], rel)
            } else {
                let rel = db.edges(*label).iter().map(|&(x, y)| vec![x, y]).collect();
                (vec![from.clone(), to.clone()], rel)
            }
        }
        RqExpr::Rel2 { rel, from, to } => {
            let pairs = rel.evaluate(db);
            if from == to {
                (
                    vec![from.clone()],
                    pairs
                        .into_iter()
                        .filter(|(x, y)| x == y)
                        .map(|(x, _)| vec![x])
                        .collect(),
                )
            } else {
                (
                    vec![from.clone(), to.clone()],
                    pairs.into_iter().map(|(x, y)| vec![x, y]).collect(),
                )
            }
        }
        RqExpr::Select { inner, v1, v2 } => {
            let (cols, rel) = eval_expr(inner, db);
            let p1 = cols.iter().position(|c| c == v1).expect("validated");
            let p2 = cols.iter().position(|c| c == v2).expect("validated");
            (cols, rel.into_iter().filter(|t| t[p1] == t[p2]).collect())
        }
        RqExpr::Project { inner, var } => {
            let (cols, rel) = eval_expr(inner, db);
            let p = cols.iter().position(|c| c == var).expect("validated");
            let new_cols: Cols = cols
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != p)
                .map(|(_, c)| c.clone())
                .collect();
            let new_rel = rel
                .into_iter()
                .map(|t| {
                    t.into_iter()
                        .enumerate()
                        .filter(|&(i, _)| i != p)
                        .map(|(_, v)| v)
                        .collect()
                })
                .collect();
            (new_cols, new_rel)
        }
        RqExpr::Union { left, right } => {
            let (lc, lr) = eval_expr(left, db);
            let (rc, rr) = eval_expr(right, db);
            // Align the right relation to the left's column order.
            let perm: Vec<usize> = lc
                .iter()
                .map(|c| rc.iter().position(|r| r == c).expect("validated"))
                .collect();
            let mut rel = lr;
            for t in rr {
                rel.insert(perm.iter().map(|&p| t[p]).collect());
            }
            (lc, rel)
        }
        RqExpr::And { left, right } => {
            let (lc, lr) = eval_expr(left, db);
            let (rc, rr) = eval_expr(right, db);
            natural_join(lc, lr, rc, rr)
        }
        RqExpr::Closure { inner, from, to } => {
            let (cols, rel) = eval_expr(inner, db);
            let pf = cols.iter().position(|c| c == from).expect("validated");
            let pt = cols.iter().position(|c| c == to).expect("validated");
            let base: BTreeSet<(NodeId, NodeId)> =
                rel.into_iter().map(|t| (t[pf], t[pt])).collect();
            let closed = transitive_closure(&base);
            (
                vec![from.clone(), to.clone()],
                closed.into_iter().map(|(x, y)| vec![x, y]).collect(),
            )
        }
    }
}

/// Natural join of two named relations.
fn natural_join(lc: Cols, lr: Rel, rc: Cols, rr: Rel) -> (Cols, Rel) {
    let shared: Vec<(usize, usize)> = lc
        .iter()
        .enumerate()
        .filter_map(|(i, c)| rc.iter().position(|r| r == c).map(|j| (i, j)))
        .collect();
    let right_extra: Vec<usize> = (0..rc.len())
        .filter(|j| !shared.iter().any(|&(_, sj)| sj == *j))
        .collect();
    let mut cols = lc.clone();
    for &j in &right_extra {
        cols.push(rc[j].clone());
    }
    // Hash the right side by shared-key.
    let mut index: BTreeMap<Vec<NodeId>, Vec<&Vec<NodeId>>> = BTreeMap::new();
    for t in &rr {
        let key: Vec<NodeId> = shared.iter().map(|&(_, j)| t[j]).collect();
        index.entry(key).or_default().push(t);
    }
    let mut rel = BTreeSet::new();
    for lt in &lr {
        let key: Vec<NodeId> = shared.iter().map(|&(i, _)| lt[i]).collect();
        if let Some(matches) = index.get(&key) {
            for rt in matches {
                let mut t = lt.clone();
                for &j in &right_extra {
                    t.push(rt[j]);
                }
                rel.insert(t);
            }
        }
    }
    (cols, rel)
}

/// Semi-naive transitive closure of a binary relation.
pub fn transitive_closure(base: &BTreeSet<(NodeId, NodeId)>) -> BTreeSet<(NodeId, NodeId)> {
    let mut by_from: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for &(x, y) in base {
        by_from.entry(x).or_default().push(y);
    }
    let mut total = base.clone();
    let mut delta: Vec<(NodeId, NodeId)> = base.iter().copied().collect();
    while !delta.is_empty() {
        let mut next = Vec::new();
        for &(x, y) in &delta {
            if let Some(zs) = by_from.get(&y) {
                for &z in zs {
                    if total.insert((x, z)) {
                        next.push((x, z));
                    }
                }
            }
        }
        delta = next;
    }
    total
}

// ---------------------------------------------------------------------
// Unfolding to UC2RPQ
// ---------------------------------------------------------------------

/// A conjunct under construction: atoms plus the current name of every
/// free variable (selection may alias two frees to one name).
#[derive(Debug, Clone)]
struct Conj {
    atoms: Vec<C2RpqAtom>,
    /// free variable → current representative name.
    frees: BTreeMap<String, String>,
}

struct UnfoldCtx {
    counter: usize,
    budget: usize,
    exact: bool,
    depth: usize,
}

impl UnfoldCtx {
    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("_{prefix}{}", self.counter)
    }

    /// Unfold with closure unrolling to `self.depth` (collapsing exactly
    /// where possible). Sets `self.exact = false` whenever an unrolled
    /// closure was approximated.
    fn unfold(&mut self, expr: &RqExpr) -> Result<Vec<Conj>, RqError> {
        self.transform(expr, false)
    }

    /// Exact collapse; `None` if some closure body is not chain-shaped.
    fn collapse(&mut self, expr: &RqExpr) -> Option<Vec<Conj>> {
        self.transform(expr, true).ok().filter(|_| self.exact)
    }

    fn transform(&mut self, expr: &RqExpr, require_exact: bool) -> Result<Vec<Conj>, RqError> {
        let out = match expr {
            RqExpr::Edge { label, from, to } => {
                let rel = TwoRpq::new(Regex::Letter(Letter::forward(*label)));
                vec![Conj {
                    atoms: vec![C2RpqAtom::new(rel, from.clone(), to.clone())],
                    frees: identity_frees([from, to]),
                }]
            }
            RqExpr::Rel2 { rel, from, to } => vec![Conj {
                atoms: vec![C2RpqAtom::new(rel.clone(), from.clone(), to.clone())],
                frees: identity_frees([from, to]),
            }],
            RqExpr::Select { inner, v1, v2 } => {
                let disjuncts = self.transform(inner, require_exact)?;
                disjuncts
                    .into_iter()
                    .map(|mut c| {
                        let r1 = c.frees[v1.as_str()].clone();
                        let r2 = c.frees[v2.as_str()].clone();
                        if r1 != r2 {
                            // Substitute r2 := r1 everywhere.
                            for a in &mut c.atoms {
                                if a.from == r2 {
                                    a.from = r1.clone();
                                }
                                if a.to == r2 {
                                    a.to = r1.clone();
                                }
                            }
                            for rep in c.frees.values_mut() {
                                if *rep == r2 {
                                    *rep = r1.clone();
                                }
                            }
                        }
                        c
                    })
                    .collect()
            }
            RqExpr::Project { inner, var } => {
                let disjuncts = self.transform(inner, require_exact)?;
                disjuncts
                    .into_iter()
                    .map(|mut c| {
                        // The variable becomes existential; drop it from the
                        // free map. Its representative may still serve other
                        // frees (after selection), in which case it stays
                        // present through them.
                        c.frees.remove(var.as_str());
                        c
                    })
                    .collect()
            }
            RqExpr::Union { left, right } => {
                let mut l = self.transform(left, require_exact)?;
                let r = self.transform(right, require_exact)?;
                l.extend(r);
                l
            }
            RqExpr::And { left, right } => {
                let l = self.transform(left, require_exact)?;
                let r = self.transform(right, require_exact)?;
                let mut out = Vec::new();
                for cl in &l {
                    for cr in &r {
                        out.push(self.conjoin(cl, cr));
                        if out.len() > self.budget {
                            return Err(RqError::UnfoldBudget {
                                budget: self.budget,
                            });
                        }
                    }
                }
                out
            }
            RqExpr::Closure { inner, from, to } => {
                let body = self.transform(inner, require_exact)?;
                // Try the exact collapse first: every body disjunct
                // chain-shaped from `from` to `to`.
                if let Some(two) = collapse_body(&body, from, to) {
                    let rel = TwoRpq::new(two.regex().clone().plus());
                    vec![Conj {
                        atoms: vec![C2RpqAtom::new(rel, from.clone(), to.clone())],
                        frees: identity_frees([from, to]),
                    }]
                } else if require_exact {
                    self.exact = false;
                    return Err(RqError::UnfoldBudget {
                        budget: self.budget,
                    });
                } else {
                    // Approximate: unroll 1..=depth compositions.
                    self.exact = false;
                    let mut out = Vec::new();
                    // paths[j] = conjuncts for the j-step composition.
                    let mut current: Vec<Conj> = body
                        .iter()
                        .map(|c| self.instantiate(c, from, to, from, to))
                        .collect();
                    out.extend(current.iter().cloned());
                    for _ in 2..=self.depth {
                        let mut next = Vec::new();
                        for prefix in &current {
                            for step in &body {
                                let mid = self.fresh("z");
                                // prefix: from → mid', step: mid' → to.
                                let renamed_prefix = self.rename_free(prefix, to, &mid);
                                let renamed_step = self.instantiate(step, from, to, &mid, to);
                                let mut composed = self.conjoin(&renamed_prefix, &renamed_step);
                                // The composition's endpoints are the
                                // prefix's `from` and the step's `to`; the
                                // junction variable is existential.
                                composed.frees = BTreeMap::from([
                                    (from.clone(), renamed_prefix.frees[from.as_str()].clone()),
                                    (to.clone(), renamed_step.frees[to.as_str()].clone()),
                                ]);
                                next.push(composed);
                                if out.len() + next.len() > self.budget {
                                    return Err(RqError::UnfoldBudget {
                                        budget: self.budget,
                                    });
                                }
                            }
                        }
                        out.extend(next.iter().cloned());
                        current = next;
                    }
                    out
                }
            }
        };
        if out.len() > self.budget {
            return Err(RqError::UnfoldBudget {
                budget: self.budget,
            });
        }
        Ok(out)
    }

    /// Conjoin two conjuncts: rename the right side's non-free variables
    /// apart, join on shared free variables.
    fn conjoin(&mut self, l: &Conj, r: &Conj) -> Conj {
        // Free representatives visible on each side.
        let l_reps: BTreeSet<&str> = l.frees.values().map(String::as_str).collect();
        let r_reps: BTreeSet<&str> = r.frees.values().map(String::as_str).collect();
        // Map the right side's variables: free vars shared with the left
        // must keep identical representatives — they do if both sides used
        // the source names; existential (non-free) right variables that
        // collide with anything on the left are renamed fresh.
        let mut rename: BTreeMap<String, String> = BTreeMap::new();
        let l_all: BTreeSet<&str> = l
            .atoms
            .iter()
            .flat_map(|a| [a.from.as_str(), a.to.as_str()])
            .chain(l_reps.iter().copied())
            .collect();
        for a in &r.atoms {
            for v in [&a.from, &a.to] {
                if !r_reps.contains(v.as_str())
                    && l_all.contains(v.as_str())
                    && !rename.contains_key(v)
                {
                    let f = self.fresh("e");
                    rename.insert(v.clone(), f);
                }
            }
        }
        let mut atoms = l.atoms.clone();
        for a in &r.atoms {
            let map = |v: &String| rename.get(v).cloned().unwrap_or_else(|| v.clone());
            atoms.push(C2RpqAtom::new(a.rel.clone(), map(&a.from), map(&a.to)));
        }
        let mut frees = l.frees.clone();
        for (k, v) in &r.frees {
            frees.entry(k.clone()).or_insert_with(|| v.clone());
        }
        Conj { atoms, frees }
    }

    /// Instantiate a closure-body conjunct with its `from`/`to` free
    /// variables renamed to `nf`/`nt` and every other variable fresh.
    fn instantiate(&mut self, c: &Conj, from: &str, to: &str, nf: &str, nt: &str) -> Conj {
        let rep_from = c.frees[from].clone();
        let rep_to = c.frees[to].clone();
        let mut rename: BTreeMap<String, String> = BTreeMap::new();
        rename.insert(rep_from.clone(), nf.to_owned());
        // If selection aliased from==to, both map to nf; the caller's nt
        // then coincides semantically via the join below.
        rename
            .entry(rep_to.clone())
            .or_insert_with(|| nt.to_owned());
        let mut atoms = Vec::new();
        for a in &c.atoms {
            let mut map = |v: &String| {
                if let Some(r) = rename.get(v) {
                    return r.clone();
                }
                let f = self.fresh("t");
                rename.insert(v.clone(), f.clone());
                f
            };
            let from2 = map(&a.from);
            let to2 = map(&a.to);
            atoms.push(C2RpqAtom::new(a.rel.clone(), from2, to2));
        }
        let mut frees = BTreeMap::new();
        frees.insert(from.to_owned(), rename[&rep_from].clone());
        frees.insert(to.to_owned(), rename[&rep_to].clone());
        Conj { atoms, frees }
    }

    /// Rename one free representative in a conjunct (used to chain
    /// compositions).
    fn rename_free(&mut self, c: &Conj, free: &str, new_rep: &str) -> Conj {
        let old = c.frees[free].clone();
        let mut out = c.clone();
        if old == new_rep {
            return out;
        }
        for a in &mut out.atoms {
            if a.from == old {
                a.from = new_rep.to_owned();
            }
            if a.to == old {
                a.to = new_rep.to_owned();
            }
        }
        for rep in out.frees.values_mut() {
            if *rep == old {
                *rep = new_rep.to_owned();
            }
        }
        out
    }
}

fn identity_frees<'a>(vars: impl IntoIterator<Item = &'a String>) -> BTreeMap<String, String> {
    vars.into_iter().map(|v| (v.clone(), v.clone())).collect()
}

/// Try to collapse every body disjunct of a closure into a single 2RPQ
/// from `from` to `to`; union them.
fn collapse_body(body: &[Conj], from: &str, to: &str) -> Option<TwoRpq> {
    let mut parts = Vec::new();
    for c in body {
        let rep_from = c.frees.get(from)?.clone();
        let rep_to = c.frees.get(to)?.clone();
        if rep_from == rep_to {
            return None;
        }
        let as_c2rpq = C2Rpq::new(vec![rep_from, rep_to], c.atoms.clone()).ok()?;
        parts.push(as_c2rpq.collapse_chain()?.regex().clone());
    }
    Some(TwoRpq::new(Regex::union(parts)))
}

/// Convert finished conjuncts into a [`Uc2Rpq`] with the requested head.
fn finish_unfold(disjuncts: Vec<Conj>, head: &[String]) -> Uc2Rpq {
    let c2rpqs: Vec<C2Rpq> = disjuncts
        .into_iter()
        .map(|c| {
            let head_reps: Vec<String> = head
                .iter()
                .map(|h| c.frees.get(h).cloned().unwrap_or_else(|| h.clone()))
                .collect();
            let mut atoms = c.atoms;
            if atoms.is_empty() {
                // Cannot happen for validated queries (atoms are the only
                // leaves), but keep the invariant for C2Rpq::new.
                atoms.push(C2RpqAtom::new(
                    TwoRpq::new(Regex::Epsilon),
                    head_reps.first().cloned().unwrap_or_else(|| "x".into()),
                    head_reps.first().cloned().unwrap_or_else(|| "x".into()),
                ));
            }
            C2Rpq {
                head: head_reps,
                atoms,
            }
        })
        .collect();
    Uc2Rpq { disjuncts: c2rpqs }
}

/// Parse helper: build an RQ query whose expression is a single 2RPQ atom
/// (the embedding of 2RPQs into RQ).
pub fn rq_from_two_rpq(re: &str, alphabet: &mut Alphabet) -> Result<RqQuery, String> {
    let rel = TwoRpq::parse(re, alphabet).map_err(|e| e.to_string())?;
    RqQuery::new(vec!["x".into(), "y".into()], RqExpr::rel2(rel, "x", "y"))
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_graph::generate;

    fn label(db: &mut GraphDb, name: &str) -> LabelId {
        db.label(name)
    }

    #[test]
    fn validation_rules() {
        let mut db = GraphDb::new();
        let r = label(&mut db, "r");
        // Union free-var mismatch.
        let bad = RqExpr::edge(r, "x", "y").or(RqExpr::edge(r, "x", "z"));
        assert_eq!(
            RqQuery::new(vec!["x".into(), "y".into()], bad).unwrap_err(),
            RqError::UnionMismatch
        );
        // Closure over a non-binary operand.
        let tri = RqExpr::edge(r, "x", "y").and(RqExpr::edge(r, "y", "z"));
        assert!(matches!(
            RqQuery::new(vec!["x".into(), "y".into()], tri.closure("x", "y")),
            Err(RqError::ClosureNotBinary)
        ));
        // Head must equal free vars.
        let e = RqExpr::edge(r, "x", "y");
        assert!(matches!(
            RqQuery::new(vec!["x".into()], e.clone()),
            Err(RqError::BadHead)
        ));
        assert!(RqQuery::new(vec!["y".into(), "x".into()], e).is_ok());
    }

    #[test]
    fn closure_of_edge_is_tc() {
        let db = generate::chain(5, "r");
        let mut db = db;
        let r = db.alphabet().get("r").unwrap();
        let q = RqQuery::new(
            vec!["x".into(), "y".into()],
            RqExpr::edge(r, "x", "y").closure("x", "y"),
        )
        .unwrap();
        let ans = q.evaluate(&db);
        assert_eq!(ans.len(), 10); // 4+3+2+1
        let _ = label(&mut db, "r");
    }

    #[test]
    fn paper_triangle_tc_is_evaluable() {
        // The paper's Q+ of the triangle query — not in UC2RPQ, but RQ
        // evaluates it fine.
        let mut db = GraphDb::new();
        let r = label(&mut db, "r");
        // Two triangles sharing a vertex chain: t1 = (a,b,c), t2 = (b,d,e)
        // arranged so Q(a,b) and Q(b,d) hold, hence Q+(a,d).
        let a = db.node("a");
        let b = db.node("b");
        let c = db.node("c");
        let d = db.node("d");
        let e = db.node("e");
        for (x, y) in [(a, b), (b, c), (c, a), (b, d), (d, e), (e, b)] {
            db.add_edge(x, r, y);
        }
        // Q(x,y) = r(x,y) & r(y,z) & r(z,x), projected to (x,y).
        let q_xy = RqExpr::edge(r, "x", "y")
            .and(RqExpr::edge(r, "y", "z"))
            .and(RqExpr::edge(r, "z", "x"))
            .project("z");
        let q = RqQuery::new(vec!["x".into(), "y".into()], q_xy.clone().closure("x", "y")).unwrap();
        let ans = q.evaluate(&db);
        assert!(ans.contains(&vec![a, b]));
        assert!(ans.contains(&vec![b, d]));
        assert!(ans.contains(&vec![a, d]), "composition through TC");
        // Base Q alone does not relate a to d.
        let base = RqQuery::new(vec!["x".into(), "y".into()], q_xy).unwrap();
        assert!(!base.evaluate(&db).contains(&vec![a, d]));
    }

    #[test]
    fn selection_and_projection() {
        let mut db = GraphDb::new();
        let r = label(&mut db, "r");
        let x = db.node("x");
        let y = db.node("y");
        db.add_edge(x, r, y);
        db.add_edge(y, r, y);
        // Select from = to over r(a,b) ≡ self-loops.
        let q = RqQuery::new(
            vec!["a".into(), "b".into()],
            RqExpr::edge(r, "a", "b").select_eq("a", "b"),
        )
        .unwrap();
        let ans = q.evaluate(&db);
        assert_eq!(ans, BTreeSet::from([vec![y, y]]));
        // Project out b: nodes with an outgoing edge.
        let q = RqQuery::new(vec!["a".into()], RqExpr::edge(r, "a", "b").project("b")).unwrap();
        assert_eq!(q.evaluate(&db), BTreeSet::from([vec![x], vec![y]]));
    }

    #[test]
    fn union_reorders_columns() {
        let mut db = GraphDb::new();
        let r = label(&mut db, "r");
        let s = label(&mut db, "s");
        let x = db.node("x");
        let y = db.node("y");
        db.add_edge(x, r, y);
        db.add_edge(y, s, x);
        // r(a,b) ∨ s(b,a): both have frees {a,b}.
        let q = RqQuery::new(
            vec!["a".into(), "b".into()],
            RqExpr::edge(r, "a", "b").or(RqExpr::edge(s, "b", "a")),
        )
        .unwrap();
        let ans = q.evaluate(&db);
        assert_eq!(ans, BTreeSet::from([vec![x, y]]));
    }

    #[test]
    fn unfold_without_closure_is_exact() {
        let db = generate::random_gnm(10, 25, &["r", "s"], 21);
        let al = db.alphabet().clone();
        let r = al.get("r").unwrap();
        let s = al.get("s").unwrap();
        let expr = RqExpr::edge(r, "x", "y")
            .and(RqExpr::edge(s, "y", "z").project("z"))
            .or(RqExpr::edge(s, "x", "y"));
        let q = RqQuery::new(vec!["x".into(), "y".into()], expr).unwrap();
        let (u, exact) = q.unfold_with_exactness(3, 1000).unwrap();
        assert!(exact);
        assert_eq!(q.evaluate(&db), u.evaluate(&db));
    }

    #[test]
    fn chain_shaped_closure_unfolds_exactly() {
        // TC of a 2-step hop collapses exactly to (r r)+ — no unrolling.
        let db = generate::chain(7, "r");
        let mut db = db;
        let r = db.alphabet().get("r").unwrap();
        let hop2 = RqExpr::edge(r, "x", "m")
            .and(RqExpr::edge(r, "m", "y"))
            .project("m");
        let q = RqQuery::new(vec!["x".into(), "y".into()], hop2.closure("x", "y")).unwrap();
        let full = q.evaluate(&db);
        let (u, exact) = q.unfold_with_exactness(2, 10_000).unwrap();
        assert!(exact, "chain bodies collapse without approximation");
        assert_eq!(full, u.evaluate(&db));
        // Distances {2,4,6}: 5+3+1 = 9 pairs on the 7-chain.
        assert_eq!(full.len(), 9);
        let _ = db.label("r");
    }

    #[test]
    fn unfold_closure_under_approximates() {
        // TC of the (genuinely conjunctive) triangle query: a chain of
        // triangles needs depth 3; depth-2 unrolling misses the far pair.
        let mut db = GraphDb::new();
        let r = db.label("r");
        let a: Vec<NodeId> = (0..4).map(|i| db.node(&format!("a{i}"))).collect();
        for i in 0..3 {
            let c = db.node(&format!("c{i}"));
            db.add_edge(a[i], r, a[i + 1]);
            db.add_edge(a[i + 1], r, c);
            db.add_edge(c, r, a[i]);
        }
        let body = RqExpr::edge(r, "x", "y")
            .and(RqExpr::edge(r, "y", "z"))
            .and(RqExpr::edge(r, "z", "x"))
            .project("z");
        let q = RqQuery::new(vec!["x".into(), "y".into()], body.closure("x", "y")).unwrap();
        let full = q.evaluate(&db);
        assert!(full.contains(&vec![a[0], a[3]]), "depth-3 composition");
        let (u, exact) = q.unfold_with_exactness(2, 100_000).unwrap();
        assert!(!exact);
        let approx = u.evaluate(&db);
        for t in &approx {
            assert!(full.contains(t), "under-approximation must be sound");
        }
        assert!(
            approx.contains(&vec![a[0], a[2]]),
            "depth-2 composition kept"
        );
        assert!(
            !approx.contains(&vec![a[0], a[3]]),
            "depth-3 composition missed"
        );
    }

    #[test]
    fn collapse_exact_on_chain_closure() {
        // TC(r(x,y)) collapses exactly to r+.
        let db = generate::random_gnm(10, 30, &["r"], 9);
        let mut al = db.alphabet().clone();
        let r = al.get("r").unwrap();
        let q = RqQuery::new(
            vec!["x".into(), "y".into()],
            RqExpr::edge(r, "x", "y").closure("x", "y"),
        )
        .unwrap();
        let u = q.collapse_exact().expect("edge closure collapses");
        assert_eq!(u.disjuncts.len(), 1);
        assert_eq!(q.evaluate(&db), u.evaluate(&db));
        // And it matches the RPQ r+.
        let rp = crate::rpq::Rpq::parse("r+", &mut al).unwrap();
        let via: BTreeSet<Vec<NodeId>> = rp
            .evaluate(&db)
            .into_iter()
            .map(|(a, b)| vec![a, b])
            .collect();
        assert_eq!(q.evaluate(&db), via);
    }

    #[test]
    fn collapse_exact_rejects_triangle_closure() {
        let mut db = GraphDb::new();
        let r = label(&mut db, "r");
        let q_xy = RqExpr::edge(r, "x", "y")
            .and(RqExpr::edge(r, "y", "z"))
            .and(RqExpr::edge(r, "z", "x"))
            .project("z");
        let q = RqQuery::new(vec!["x".into(), "y".into()], q_xy.closure("x", "y")).unwrap();
        assert!(q.collapse_exact().is_none());
    }

    #[test]
    fn nested_closures_collapse() {
        // TC(TC(r)) = r+ as well.
        let db = generate::random_gnm(8, 20, &["r"], 4);
        let mut db = db;
        let r = label(&mut db, "r");
        let inner = RqExpr::edge(r, "x", "y").closure("x", "y");
        let q = RqQuery::new(vec!["x".into(), "y".into()], inner.closure("x", "y")).unwrap();
        let u = q.collapse_exact().expect("nested chain closure collapses");
        assert_eq!(q.evaluate(&db), u.evaluate(&db));
    }

    #[test]
    fn unfold_matches_semantics_on_random_dbs() {
        // Exactness check with a closure that collapses: union body.
        for seed in [1u64, 2, 3] {
            let db = generate::random_gnm(9, 22, &["a", "b"], seed);
            let al = db.alphabet().clone();
            let a = al.get("a").unwrap();
            let b = al.get("b").unwrap();
            let body = RqExpr::edge(a, "x", "y").or(RqExpr::edge(b, "x", "y"));
            let q = RqQuery::new(vec!["x".into(), "y".into()], body.closure("x", "y")).unwrap();
            let (u, exact) = q.unfold_with_exactness(3, 10_000).unwrap();
            assert!(exact, "union-of-edges closure collapses to (a|b)+");
            assert_eq!(q.evaluate(&db), u.evaluate(&db), "seed={seed}");
        }
    }
}
