//! Containment-driven minimization of UC2RPQs.
//!
//! The practical payoff of a containment checker (§1: query optimization
//! "requires us to transform a query Q to an equivalent query Q′ that is
//! easier to evaluate"):
//!
//! * [`minimize_uc2rpq`] — drop disjuncts absorbed by the rest of the
//!   union, then drop redundant atoms inside each surviving conjunct
//!   (removing an atom only ever *relaxes* a conjunct, so the rewrite is
//!   an equivalence exactly when the relaxed query is still contained in
//!   the original — decided by the hybrid checker);
//! * [`simplify_atoms`] — run the containment-verified regex simplifier
//!   over every atom.
//!
//! Because the UC2RPQ checker is budgeted, minimization is *conservative*:
//! a rewrite is applied only on a definite `Contained` verdict; `Unknown`
//! keeps the query unchanged. The result is therefore always equivalent
//! to the input (property-tested on random databases).

use crate::containment::{uc2rpq, Config};
use crate::crpq::{C2Rpq, Uc2Rpq};
use crate::rpq::TwoRpq;
use rq_automata::regex::simplify;
use rq_automata::Alphabet;

/// Statistics from a minimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimizeStats {
    pub disjuncts_removed: usize,
    pub atoms_removed: usize,
    pub atoms_simplified: usize,
}

/// Minimize `q` by disjunct absorption and redundant-atom elimination.
/// The result is equivalent to the input (conservative under `Unknown`).
pub fn minimize_uc2rpq(q: &Uc2Rpq, alphabet: &Alphabet, cfg: &Config) -> (Uc2Rpq, MinimizeStats) {
    let mut stats = MinimizeStats::default();

    // 1. Disjunct absorption: d is redundant if d ⊑ (union without d).
    let mut kept: Vec<C2Rpq> = Vec::new();
    let mut remaining: Vec<C2Rpq> = q.disjuncts.clone();
    let mut i = 0;
    while i < remaining.len() {
        if remaining.len() == 1 {
            break;
        }
        let candidate = remaining[i].clone();
        let others: Vec<C2Rpq> = remaining
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, d)| d.clone())
            .collect();
        let single = Uc2Rpq {
            disjuncts: vec![candidate.clone()],
        };
        let rest = Uc2Rpq {
            disjuncts: others.clone(),
        };
        if uc2rpq::check(&single, &rest, alphabet, cfg).is_contained() {
            stats.disjuncts_removed += 1;
            remaining.remove(i);
        } else {
            i += 1;
        }
    }
    kept.extend(remaining);

    // 2. Atom elimination inside each conjunct: removing an atom relaxes
    // the conjunct, so equivalence holds iff relaxed ⊑ original.
    let mut out: Vec<C2Rpq> = Vec::new();
    for d in kept {
        let mut cur = d;
        let mut k = 0;
        while cur.atoms.len() > 1 && k < cur.atoms.len() {
            let mut candidate = cur.clone();
            candidate.atoms.remove(k);
            // Head variables must survive.
            let vars = candidate.variables();
            if !cur.head.iter().all(|h| vars.contains(&h.as_str())) {
                k += 1;
                continue;
            }
            let relaxed = Uc2Rpq {
                disjuncts: vec![candidate.clone()],
            };
            let original = Uc2Rpq {
                disjuncts: vec![cur.clone()],
            };
            if uc2rpq::check(&relaxed, &original, alphabet, cfg).is_contained() {
                stats.atoms_removed += 1;
                cur = candidate;
            } else {
                k += 1;
            }
        }
        out.push(cur);
    }

    // 3. Regex simplification per atom (always an equivalence).
    let mut simplified = Vec::new();
    for mut d in out {
        for a in &mut d.atoms {
            let before = a.rel.regex().clone();
            let after = simplify(&before);
            if after != before {
                stats.atoms_simplified += 1;
                a.rel = TwoRpq::new(after);
            }
        }
        simplified.push(d);
    }

    (
        Uc2Rpq {
            disjuncts: simplified,
        },
        stats,
    )
}

/// Simplify every atom's regular expression without structural rewrites.
pub fn simplify_atoms(q: &Uc2Rpq) -> Uc2Rpq {
    let disjuncts = q
        .disjuncts
        .iter()
        .map(|d| {
            let atoms = d
                .atoms
                .iter()
                .map(|a| {
                    let mut a = a.clone();
                    a.rel = TwoRpq::new(simplify(a.rel.regex()));
                    a
                })
                .collect();
            C2Rpq {
                head: d.head.clone(),
                atoms,
            }
        })
        .collect();
    Uc2Rpq { disjuncts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_text::parse_uc2rpq;
    use rq_graph::generate;

    fn assert_equivalent_on_random_dbs(a: &Uc2Rpq, b: &Uc2Rpq, labels: &[&str]) {
        for seed in 0..12u64 {
            let db = generate::random_gnm(5, 11, labels, seed);
            assert_eq!(a.evaluate(&db), b.evaluate(&db), "seed {seed}");
        }
    }

    #[test]
    fn absorbed_disjunct_is_dropped() {
        let mut al = Alphabet::new();
        let q = parse_uc2rpq("Q(x, y) :- [a a](x, y).\nQ(x, y) :- [a+](x, y).", &mut al).unwrap();
        let (m, stats) = minimize_uc2rpq(&q, &al, &Config::default());
        assert_eq!(stats.disjuncts_removed, 1);
        assert_eq!(m.disjuncts.len(), 1);
        assert_equivalent_on_random_dbs(&q, &m, &["a"]);
    }

    #[test]
    fn redundant_atom_is_dropped() {
        // The second atom a(x, z) is implied by the first (pick z = y's
        // witness): ∃y a(x,y) ∧ ∃z a(x,z) ≡ ∃y a(x,y).
        let mut al = Alphabet::new();
        let q = parse_uc2rpq("Q(x) :- [a](x, y), [a](x, z).", &mut al).unwrap();
        let (m, stats) = minimize_uc2rpq(&q, &al, &Config::default());
        assert_eq!(stats.atoms_removed, 1);
        assert_eq!(m.disjuncts[0].atoms.len(), 1);
        assert_equivalent_on_random_dbs(&q, &m, &["a"]);
    }

    #[test]
    fn necessary_atoms_are_kept() {
        let mut al = Alphabet::new();
        let q = parse_uc2rpq("Q(x) :- [a](x, y), [b](x, z).", &mut al).unwrap();
        let (m, stats) = minimize_uc2rpq(&q, &al, &Config::default());
        assert_eq!(stats.atoms_removed, 0);
        assert_eq!(m.disjuncts[0].atoms.len(), 2);
        assert_equivalent_on_random_dbs(&q, &m, &["a", "b"]);
    }

    #[test]
    fn atom_regexes_are_simplified() {
        let mut al = Alphabet::new();
        let q = parse_uc2rpq("Q(x, y) :- [a* a*](x, y).", &mut al).unwrap();
        let (m, stats) = minimize_uc2rpq(&q, &al, &Config::default());
        assert_eq!(stats.atoms_simplified, 1);
        let shown = m.disjuncts[0].atoms[0].rel.regex().display(&al).to_string();
        assert_eq!(shown, "a*");
        assert_equivalent_on_random_dbs(&q, &m, &["a"]);
    }

    #[test]
    fn minimization_is_idempotent() {
        let mut al = Alphabet::new();
        let q = parse_uc2rpq(
            "Q(x, y) :- [a a](x, y), [a](x, m).\nQ(x, y) :- [a+](x, y).\nQ(x, y) :- [b](x, y).",
            &mut al,
        )
        .unwrap();
        let (m1, _) = minimize_uc2rpq(&q, &al, &Config::default());
        let (m2, stats2) = minimize_uc2rpq(&m1, &al, &Config::default());
        assert_eq!(m1, m2);
        assert_eq!(stats2, MinimizeStats::default());
        assert_equivalent_on_random_dbs(&q, &m1, &["a", "b"]);
    }

    #[test]
    fn triangle_pattern_is_untouched() {
        // No atom of the triangle is redundant.
        let mut al = Alphabet::new();
        let q = parse_uc2rpq("Q(x, y) :- [r](x, y), [r](y, z), [r](z, x).", &mut al).unwrap();
        let (m, stats) = minimize_uc2rpq(&q, &al, &Config::default());
        assert_eq!(stats.atoms_removed, 0);
        assert_eq!(m.disjuncts[0].atoms.len(), 3);
    }
}
