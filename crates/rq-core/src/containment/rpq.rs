//! RPQ containment (Lemma 1 + the §3.2 algorithm).
//!
//! `Q1 ⊑ Q2` iff `L(Q1) ⊆ L(Q2)` — containment of regular path queries
//! *is* containment of regular languages, decided here by the paper's
//! steps 1–4 with the product constructed on the fly (PSPACE).

use super::{semipath_db, Certificate, Outcome, Witness};
use crate::rpq::Rpq;
use rq_automata::containment::check_on_the_fly_governed;
use rq_automata::governor::expect_unlimited;
use rq_automata::{Alphabet, Exhaustion, Governor};

/// Decide `q1 ⊑ q2`. Always returns a definite verdict; a `NotContained`
/// witness is the path database of a *shortest* counterexample word.
pub fn check(q1: &Rpq, q2: &Rpq, alphabet: &Alphabet) -> Outcome {
    expect_unlimited(check_governed(q1, q2, alphabet, &Governor::unlimited()))
}

/// [`check`] under a resource governor: every product-state expansion is
/// metered, and a tripped budget surfaces as `Err`.
pub fn check_governed(
    q1: &Rpq,
    q2: &Rpq,
    alphabet: &Alphabet,
    gov: &Governor,
) -> Result<Outcome, Exhaustion> {
    let run = check_on_the_fly_governed(q1.as_two_rpq().nfa(), q2.as_two_rpq().nfa(), gov)?;
    if run.contained {
        return Ok(Outcome::Contained(Certificate::LanguageContainment {
            states_explored: run.states_explored,
        }));
    }
    let Some(word) = run.counterexample else {
        return Ok(Outcome::unknown_with(
            "non-containment reported without a counterexample word",
            gov,
        ));
    };
    let (db, s, t) = semipath_db(&word, alphabet);
    let description = format!(
        "path database of the word {} (in L(Q1) − L(Q2))",
        alphabet.word_to_string(&word)
    );
    Ok(Outcome::NotContained(Box::new(Witness {
        db,
        tuple: vec![s, t],
        description,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rpq(s: &str, al: &mut Alphabet) -> Rpq {
        Rpq::parse(s, al).unwrap()
    }

    #[test]
    fn containment_mirrors_language_containment() {
        let mut al = Alphabet::new();
        let cases = [
            ("a", "a|b", true),
            ("(a b)*", "(a|b)*", true),
            ("a+", "a*", true),
            ("a*", "a+", false),
            ("a b", "a b|b a", true),
            ("(a|b)*", "(a b)*", false),
        ];
        for (s1, s2, expect) in cases {
            let q1 = rpq(s1, &mut al);
            let q2 = rpq(s2, &mut al);
            let out = check(&q1, &q2, &al);
            assert_eq!(out.decided(), Some(expect), "{s1} vs {s2}");
        }
    }

    #[test]
    fn witness_is_a_real_counterexample() {
        let mut al = Alphabet::new();
        let q1 = rpq("a(a|b)*", &mut al);
        let q2 = rpq("a a*", &mut al);
        let out = check(&q1, &q2, &al);
        let w = out.witness().expect("not contained");
        // The tuple is answered by q1 but not by q2 on the witness db.
        let (x, y) = (w.tuple[0], w.tuple[1]);
        assert!(q1.contains_pair(&w.db, x, y));
        assert!(!q2.contains_pair(&w.db, x, y));
    }

    #[test]
    fn equivalence_via_two_containments() {
        let mut al = Alphabet::new();
        let q1 = rpq("(a|b)*", &mut al);
        let q2 = rpq("(a*b*)*", &mut al);
        assert!(check(&q1, &q2, &al).is_contained());
        assert!(check(&q2, &q1, &al).is_contained());
    }

    #[test]
    fn governed_check_exhausts_and_matches() {
        use rq_automata::{Limits, Resource};
        let mut al = Alphabet::new();
        let q1 = rpq("(a b)*", &mut al);
        let q2 = rpq("(a|b)*", &mut al);
        // A starvation budget trips with a structured report.
        let gov = Limits::unlimited().with_fuel(2).governor();
        let e = check_governed(&q1, &q2, &al, &gov).unwrap_err();
        assert_eq!(e.resource, Resource::Fuel);
        // Ample budget matches the ungoverned verdict.
        let gov = Limits::unlimited().with_fuel(1_000_000).governor();
        let out = check_governed(&q1, &q2, &al, &gov).unwrap();
        assert_eq!(out.decided(), check(&q1, &q2, &al).decided());
    }

    #[test]
    fn empty_query_is_contained_in_everything() {
        let mut al = Alphabet::new();
        let q1 = rpq("∅", &mut al);
        let q2 = rpq("a", &mut al);
        assert!(check(&q1, &q2, &al).is_contained());
        assert!(check(&q2, &q1, &al).is_not_contained());
    }
}
