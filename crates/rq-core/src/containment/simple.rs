//! Polynomial containment for the simple-RPQ (SCRPQ) fragment.
//!
//! For queries classified into the simple fragment by
//! [`rq_automata::simple::classify`] — concatenations of letter
//! disjunctions `D(S)` and starred disjunctions `St(S)`, forward letters
//! only (Figueira et al. 2020, arXiv:2003.04411) — query containment
//! coincides with word-language containment (the Lemma 1 reduction for
//! forward RPQs), so `Q1 ⊑ Q2` can be decided on the *expressions*
//! without ever building the fold/2NFA machinery of
//! [`super::two_rpq`]. This module is the fast rung the `check_quick`
//! ladder inserts before the exact stage.
//!
//! ## Procedure
//!
//! A simple expression with `n` atoms is an NFA over its *boundary
//! states* `0..=n`: state `k` means "the first `k` atoms are matched".
//! From `k`, letter `x` moves to `k+1` when atom `k+1 = D(S)` with
//! `x ∈ S`, loops at `k` when atom `k+1 = St(S)` with `x ∈ S`, and an
//! ε-move skips a starred atom (`k → k+1` when atom `k+1` is `St`).
//! State `k` accepts when every atom after it is starred.
//!
//! Inclusion `L(Q1) ⊆ L(Q2)` is then a product search: explore pairs
//! `(l, R)` of one left boundary state and the *set* of right boundary
//! states (a `u64` bitmask, kept ε-closed) reachable on the same word.
//! A pair with `l` accepting and `R` disjoint from the right accept set
//! yields a counterexample word, materialized as a [`Witness`] over its
//! semipath database (sound in *both* directions precisely because the
//! fragment is forward-only: on a directed-path database the only walk
//! between the endpoints spells the word itself). Exploration is pruned
//! with the antichain rule — a pair `(l, R')` is subsumed by a visited
//! `(l, R)` with `R ⊆ R'`, since the step function is monotone in `R`
//! and any counterexample from the superset is one from the subset.
//!
//! The checker never returns [`Outcome::Unknown`]: either it decides,
//! or it *declines* (`None`) when an expression exceeds [`MAX_ATOMS`]
//! boundary states or the pair search exceeds [`DEFAULT_STATE_CAP`]
//! visited pairs — the ladder then falls through to the exact checker,
//! so declining costs completeness nothing.

use super::{semipath_db, Certificate, Outcome, Witness};
use rq_automata::simple::{SimpleAtom, SimpleRe};
use rq_automata::{Alphabet, LabelId, Letter};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Largest per-side atom count the checker accepts: right boundary
/// states `0..=n` must fit a `u64` bitmask.
pub const MAX_ATOMS: usize = 63;

/// Default cap on visited `(left state, right set)` pairs before the
/// checker declines. The product has at most `(n+1) · 2^(m+1)` pairs in
/// theory, but the antichain keeps real workloads far below this.
pub const DEFAULT_STATE_CAP: usize = 4096;

/// Decide `left ⊑ right` as word languages (= as queries, for this
/// forward-only fragment). Returns the verdict and the number of
/// explored product pairs, or `None` when the instance is declined
/// (too many atoms, or the [`DEFAULT_STATE_CAP`] pair cap tripped).
/// Never returns [`Outcome::Unknown`].
pub fn check_simple(
    left: &SimpleRe,
    right: &SimpleRe,
    alphabet: &Alphabet,
) -> Option<(Outcome, usize)> {
    check_simple_capped(left, right, alphabet, DEFAULT_STATE_CAP)
}

/// [`check_simple`] with an explicit visited-pair cap (for tests).
pub fn check_simple_capped(
    left: &SimpleRe,
    right: &SimpleRe,
    alphabet: &Alphabet,
    cap: usize,
) -> Option<(Outcome, usize)> {
    if left.atoms.len() > MAX_ATOMS || right.atoms.len() > MAX_ATOMS {
        return None;
    }
    let lm = Boundaries::new(&left.atoms);
    let rm = RightSets::new(&right.atoms);

    // BFS over (left boundary state, ε-closed right state set), with
    // parent pointers for counterexample reconstruction.
    struct Node {
        left: usize,
        right: u64,
        parent: usize,
        letter: Option<LabelId>,
    }
    let mut nodes: Vec<Node> = vec![Node {
        left: 0,
        right: rm.closure[0],
        parent: usize::MAX,
        letter: None,
    }];
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    // Antichain of visited right sets per left state: a new pair is
    // subsumed when some visited set is a subset of its right set.
    let mut seen: HashMap<usize, Vec<u64>> = HashMap::new();
    seen.insert(0, vec![rm.closure[0]]);

    while let Some(idx) = queue.pop_front() {
        let (l, r) = (nodes[idx].left, nodes[idx].right);
        if lm.accepts(l) && r & rm.accept_mask == 0 {
            // Reconstruct the separating word from the parent chain.
            let mut word = Vec::new();
            let mut cur = idx;
            while let Some(label) = nodes[cur].letter {
                word.push(Letter::forward(label));
                cur = nodes[cur].parent;
            }
            word.reverse();
            let (db, src, dst) = semipath_db(&word, alphabet);
            let description = format!(
                "word `{}` matches Q1 but not Q2 (simple-fragment checker)",
                if word.is_empty() {
                    "ε".to_owned()
                } else {
                    alphabet.word_to_string(&word)
                }
            );
            let witness = Witness {
                db,
                tuple: vec![src, dst],
                description,
            };
            return Some((Outcome::NotContained(Box::new(witness)), nodes.len()));
        }
        // Only letters the left side can actually read extend a potential
        // counterexample; anything else kills the left run.
        for &x in &lm.candidates(l) {
            let r_next = rm.step(r, x);
            for l_next in lm.successors(l, x) {
                let masks = seen.entry(l_next).or_default();
                if masks.iter().any(|&m| m | r_next == r_next) {
                    continue; // subsumed by a visited subset
                }
                masks.retain(|&m| m & r_next != r_next); // drop strict supersets
                masks.push(r_next);
                if nodes.len() >= cap {
                    return None;
                }
                nodes.push(Node {
                    left: l_next,
                    right: r_next,
                    parent: idx,
                    letter: Some(x),
                });
                queue.push_back(nodes.len() - 1);
            }
        }
    }
    let states_explored = nodes.len();
    Some((
        Outcome::Contained(Certificate::LanguageContainment { states_explored }),
        states_explored,
    ))
}

/// The left side's boundary-state NFA, explored state-by-state.
struct Boundaries<'a> {
    atoms: &'a [SimpleAtom],
    /// `close_end[k]`: the last boundary state reachable from `k` by
    /// ε-moves alone (skipping the maximal run of starred atoms).
    close_end: Vec<usize>,
}

impl<'a> Boundaries<'a> {
    fn new(atoms: &'a [SimpleAtom]) -> Boundaries<'a> {
        let n = atoms.len();
        let mut close_end = vec![0; n + 1];
        close_end[n] = n;
        for k in (0..n).rev() {
            close_end[k] = if atoms[k].nullable() {
                close_end[k + 1]
            } else {
                k
            };
        }
        Boundaries { atoms, close_end }
    }

    /// `k` accepts iff every remaining atom is starred.
    fn accepts(&self, k: usize) -> bool {
        self.close_end[k] == self.atoms.len()
    }

    /// Letters that progress the left run from `k` (through ε-closure).
    fn candidates(&self, k: usize) -> BTreeSet<LabelId> {
        (k..=self.close_end[k])
            .filter(|&i| i < self.atoms.len())
            .flat_map(|i| self.atoms[i].labels().iter().copied())
            .collect()
    }

    /// Successor boundary states on letter `x` (through ε-closure).
    fn successors(&self, k: usize, x: LabelId) -> Vec<usize> {
        let mut out = Vec::new();
        for i in k..=self.close_end[k] {
            if i >= self.atoms.len() || !self.atoms[i].labels().contains(&x) {
                continue;
            }
            let next = match self.atoms[i] {
                SimpleAtom::Disj(_) => i + 1,
                SimpleAtom::Star(_) => i,
            };
            if !out.contains(&next) {
                out.push(next);
            }
        }
        out
    }
}

/// The right side's boundary NFA, determinized on the fly into ε-closed
/// `u64` state sets.
struct RightSets<'a> {
    atoms: &'a [SimpleAtom],
    /// `closure[k]`: bitmask of the ε-closure of state `k`.
    closure: Vec<u64>,
    /// Accepting states; any ε-closed set intersecting it accepts.
    accept_mask: u64,
}

impl<'a> RightSets<'a> {
    fn new(atoms: &'a [SimpleAtom]) -> RightSets<'a> {
        let n = atoms.len();
        let mut closure = vec![0u64; n + 1];
        closure[n] = 1 << n;
        for k in (0..n).rev() {
            closure[k] = (1 << k)
                | if atoms[k].nullable() {
                    closure[k + 1]
                } else {
                    0
                };
        }
        // A state accepts iff its ε-closure reaches the final boundary,
        // so on ε-closed sets the final bit alone detects acceptance.
        RightSets {
            atoms,
            closure,
            accept_mask: 1 << n,
        }
    }

    /// One letter step on an ε-closed set; the result is ε-closed.
    fn step(&self, set: u64, x: LabelId) -> u64 {
        let mut out = 0u64;
        for (i, atom) in self.atoms.iter().enumerate() {
            if set & (1 << i) == 0 || !atom.labels().contains(&x) {
                continue;
            }
            out |= match atom {
                SimpleAtom::Disj(_) => self.closure[i + 1],
                SimpleAtom::Star(_) => self.closure[i],
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::two_rpq;
    use crate::rpq::TwoRpq;
    use rq_automata::simple::classify;

    fn run(l: &str, r: &str) -> Option<(Outcome, usize)> {
        let mut al = Alphabet::from_names(["a", "b", "c"]);
        let lq = rq_automata::regex::parse(l, &mut al).unwrap();
        let rq = rq_automata::regex::parse(r, &mut al).unwrap();
        check_simple(&classify(&lq).unwrap(), &classify(&rq).unwrap(), &al)
    }

    fn verdict(l: &str, r: &str) -> bool {
        run(l, r).unwrap().0.is_contained()
    }

    #[test]
    fn textbook_inclusions_hold() {
        assert!(verdict("a", "a"));
        assert!(verdict("a", "a*"));
        assert!(verdict("a a", "a*"));
        assert!(verdict("a a*", "a* a")); // the classic NFA-overlap case
        assert!(verdict("a* a", "a a*"));
        assert!(verdict("(a|b)", "(a|b)*"));
        assert!(verdict("a (a|b)* b", "(a|b)*"));
        assert!(verdict("a+ b", "a a* b"));
        assert!(verdict("ε", "a*"));
    }

    #[test]
    fn textbook_non_inclusions_fail_with_witnesses() {
        for (l, r) in [
            ("a*", "a"),
            ("a", "b"),
            ("(a|b)*", "a*"),
            ("a b", "a a"),
            ("a*", "a* b"),
            ("ε", "a"),
        ] {
            let (out, _) = run(l, r).unwrap();
            let w = out
                .witness()
                .unwrap_or_else(|| panic!("{l} ⊑ {r} decided wrong"));
            // Re-verify the counterexample by evaluation, both directions.
            let mut al = Alphabet::from_names(["a", "b", "c"]);
            let lq = TwoRpq::parse(l, &mut al).unwrap();
            let rq = TwoRpq::parse(r, &mut al).unwrap();
            assert!(
                lq.contains_pair(&w.db, w.tuple[0], w.tuple[1]),
                "{l} ⊑ {r}: witness not in Q1"
            );
            assert!(
                !rq.contains_pair(&w.db, w.tuple[0], w.tuple[1]),
                "{l} ⊑ {r}: witness in Q2"
            );
        }
    }

    #[test]
    fn empty_word_counterexample_uses_a_single_node() {
        let (out, _) = run("a*", "a a*").unwrap();
        let w = out.witness().expect("ε separates a* from a⁺");
        assert_eq!(w.tuple[0], w.tuple[1]);
        assert_eq!(w.db.num_nodes(), 1);
    }

    #[test]
    fn agrees_with_the_exact_checker_on_handpicked_pairs() {
        let pairs = [
            ("a (a|b)*", "(a|b)*"),
            ("(a|b)* a", "(a|b)+"),
            ("a* b a*", "(a|b)*"),
            ("(a|b)+", "(a|b)* b"),
            ("a b* c", "a (b|c)*"),
            ("a+ b+", "a* b*"),
        ];
        let al = Alphabet::from_names(["a", "b", "c"]);
        for (l, r) in pairs {
            let mut al2 = al.clone();
            let lq = TwoRpq::parse(l, &mut al2).unwrap();
            let rq = TwoRpq::parse(r, &mut al2).unwrap();
            let exact = two_rpq::check(&lq, &rq, &al2);
            let fast = run(l, r).expect("in-fragment pair declined");
            assert_eq!(
                fast.0.decided(),
                exact.decided(),
                "{l} ⊑ {r}: fast {} vs exact {exact}",
                fast.0
            );
        }
    }

    #[test]
    fn oversized_instances_are_declined_not_guessed() {
        let atoms = vec![SimpleAtom::Disj(BTreeSet::from([LabelId(0)])); 64];
        let big = SimpleRe { atoms };
        let small = SimpleRe {
            atoms: vec![SimpleAtom::Star(BTreeSet::from([LabelId(0)]))],
        };
        let al = Alphabet::from_names(["a"]);
        assert!(check_simple(&big, &small, &al).is_none());
        assert!(check_simple(&small, &big, &al).is_none());
    }

    #[test]
    fn tiny_cap_declines_instead_of_answering() {
        let mut al = Alphabet::from_names(["a", "b"]);
        let l =
            classify(&rq_automata::regex::parse("(a|b) (a|b) (a|b)", &mut al).unwrap()).unwrap();
        let r = classify(&rq_automata::regex::parse("a (a|b)*", &mut al).unwrap()).unwrap();
        assert!(check_simple_capped(&l, &r, &al, 1).is_none());
    }
}
