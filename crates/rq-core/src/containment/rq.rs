//! RQ containment (Theorem 7 territory — 2EXPSPACE-complete).
//!
//! The hybrid procedure layers, from cheapest to most speculative:
//!
//! 1. **exact closure elimination** — when every transitive closure on
//!    both sides has a chain-shaped body, both queries collapse to
//!    UC2RPQs and the [`super::uc2rpq`] checker takes over (itself exact
//!    when those collapse further to 2RPQs, Theorem 5);
//! 2. **refutation** — unroll the left query's closures to a depth (a
//!    *sound under-approximation*: every unfolding is contained in the
//!    query) and search its canonical expansions; the right query is
//!    evaluated *semantically* — transitive closure and all — so any
//!    missing head tuple is a genuine counterexample database;
//! 3. **proof by induction** — for a left query `P⁺`: if `P ⊑ R` and
//!    `R ∘ P ⊑ R` then `P⁺ ⊑ R` (induction on the number of `P`-steps);
//!    the side conditions recurse into this checker with a depth guard;
//! 4. **proof by under-approximating the right side** — if the left
//!    query is exactly a UC2RPQ, proving it contained in an *unfolding*
//!    of the right query is sound (`unfold(Q2) ⊑ Q2`);
//! 5. otherwise **Unknown** with the exhausted budget.

use super::{Certificate, Config, Outcome};
use crate::rq::{RqExpr, RqQuery};
use rq_automata::{Alphabet, Exhaustion, Governor};

/// Decide `q1 ⊑ q2` (same head arity; positional comparison of answers)
/// under the budgets in `cfg` (including [`Config::limits`]: a tripped
/// resource budget yields [`Outcome::Unknown`] with an exhaustion report).
pub fn check(q1: &RqQuery, q2: &RqQuery, alphabet: &Alphabet, cfg: &Config) -> Outcome {
    let gov = cfg.limits.governor();
    match check_governed(q1, q2, alphabet, cfg, &gov) {
        Ok(out) => out,
        Err(e) => Outcome::exhausted(e),
    }
}

/// [`check`] against a caller-owned governor; a tripped budget surfaces
/// as `Err`.
pub fn check_governed(
    q1: &RqQuery,
    q2: &RqQuery,
    alphabet: &Alphabet,
    cfg: &Config,
    gov: &Governor,
) -> Result<Outcome, Exhaustion> {
    check_depth(q1, q2, alphabet, cfg, cfg.induction_depth, gov)
}

fn check_depth(
    q1: &RqQuery,
    q2: &RqQuery,
    alphabet: &Alphabet,
    cfg: &Config,
    depth: usize,
    gov: &Governor,
) -> Result<Outcome, Exhaustion> {
    // Coarse boundary: one wall-clock poll per (recursive) check entry.
    gov.check_wall()?;
    gov.tick()?;
    if q1.head.len() != q2.head.len() {
        return Ok(Outcome::unknown(format!(
            "head arities differ ({} vs {}); the queries are incomparable",
            q1.head.len(),
            q2.head.len()
        )));
    }
    // 0. Syntactic identity (common for reflexivity checks).
    if q1.head == q2.head && q1.expr == q2.expr {
        return Ok(Outcome::Contained(Certificate::Homomorphism {
            description: "syntactically identical queries".into(),
        }));
    }
    // 1. Exact closure elimination on both sides.
    let c1 = q1.collapse_exact();
    let c2 = q2.collapse_exact();
    if let (Some(u1), Some(u2)) = (&c1, &c2) {
        return super::uc2rpq::check_governed(u1, u2, alphabet, cfg, gov);
    }

    // 2. Refutation: expansions of a sound under-approximation of q1,
    // against the semantic evaluation of q2.
    let u1_under = match &c1 {
        Some(u1) => Some(u1.clone()),
        None => q1.unfold(cfg.unfold_depth, cfg.unfold_budget).ok(),
    };
    if let Some(u1) = &u1_under {
        if let Some(w) =
            super::uc2rpq::refute_governed(u1, alphabet, cfg, gov, |db| q2.evaluate(db))?
        {
            return Ok(Outcome::NotContained(Box::new(w)));
        }
    }

    // 3. Induction for a top-level closure on the left.
    if depth > 0 && !cfg.disable_induction {
        if let RqExpr::Closure { inner, from, to } = &q1.expr {
            if let Ok(p) = RqQuery::new(vec![from.clone(), to.clone()], inner.as_ref().clone()) {
                // Heads must be aligned with q1's output order.
                let p = align_head(&p, &q1.head, from, to);
                let base = check_depth(&p, q2, alphabet, cfg, depth - 1, gov)?;
                if base.is_contained() {
                    let comp = compose(q2, &p);
                    let step = check_depth(&comp, q2, alphabet, cfg, depth - 1, gov)?;
                    if step.is_contained() {
                        return Ok(Outcome::Contained(Certificate::Induction {
                            description:
                                "P ⊑ R and R∘P ⊑ R, hence P⁺ ⊑ R by induction on path length".into(),
                        }));
                    }
                }
            }
        }
    }

    // 4. Left exactly a UC2RPQ: prove against an under-approximation of q2.
    if let Some(u1) = &c1 {
        if let Ok(u2_under) = q2.unfold(cfg.unfold_depth, cfg.unfold_budget) {
            if super::uc2rpq::prove_governed(u1, &u2_under, alphabet, cfg, gov)? {
                return Ok(Outcome::Contained(Certificate::Homomorphism {
                    description: format!(
                        "left side contained in the depth-{} unfolding of the right side",
                        cfg.unfold_depth
                    ),
                }));
            }
        }
    }

    Ok(Outcome::unknown_with(
        format!(
            "closure bodies are genuinely conjunctive; no counterexample among depth-{} \
             unfoldings and no inductive certificate within depth {}",
            cfg.unfold_depth, cfg.induction_depth
        ),
        gov,
    ))
}

/// Reorder a binary query's head to match `target` (which is a permutation
/// of `{from, to}`).
fn align_head(p: &RqQuery, target: &[String], from: &str, to: &str) -> RqQuery {
    if target.len() == 2 && target[0] == to && target[1] == from {
        RqQuery {
            head: vec![to.to_owned(), from.to_owned()],
            expr: p.expr.clone(),
        }
    } else {
        p.clone()
    }
}

/// The composition `R ∘ P` for binary queries `R(a, b)` and `P(x, y)`:
/// `∃m. R(a, m) ∧ P(m, y)`, with head `(a, y)`. Variable spaces are made
/// disjoint by prefixing.
fn compose(r: &RqQuery, p: &RqQuery) -> RqQuery {
    assert_eq!(r.head.len(), 2);
    assert_eq!(p.head.len(), 2);
    let lrename = |v: &str| format!("L_{v}");
    let rrename = |v: &str| format!("R_{v}");
    let left = r.expr.rename_all(&lrename);
    let right = p.expr.rename_all(&rrename);
    let l_out = lrename(&r.head[1]); // R's target = junction
    let r_in = rrename(&p.head[0]); // P's source = junction
    let expr = left
        .and(right)
        .select_eq(l_out.clone(), r_in.clone())
        .project(l_out)
        .project(r_in);
    RqQuery::new(vec![lrename(&r.head[0]), rrename(&p.head[1])], expr)
        .expect("composition of valid binary queries is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_automata::LabelId;
    use rq_graph::generate;
    use std::collections::BTreeSet;

    fn edge_closure(r: LabelId) -> RqQuery {
        RqQuery::new(
            vec!["x".into(), "y".into()],
            RqExpr::edge(r, "x", "y").closure("x", "y"),
        )
        .unwrap()
    }

    fn rel2_query(re: &str, al: &mut Alphabet) -> RqQuery {
        crate::rq::rq_from_two_rpq(re, al).unwrap()
    }

    fn triangle_closure(r: LabelId) -> RqQuery {
        let body = RqExpr::edge(r, "x", "y")
            .and(RqExpr::edge(r, "y", "z"))
            .and(RqExpr::edge(r, "z", "x"))
            .project("z");
        RqQuery::new(vec!["x".into(), "y".into()], body.closure("x", "y")).unwrap()
    }

    #[test]
    fn collapsible_closures_are_exact() {
        let mut al = Alphabet::new();
        let r = al.intern("r");
        let q1 = edge_closure(r);
        let q2 = rel2_query("r+", &mut al);
        let cfg = Config::default();
        assert!(check(&q1, &q2, &al, &cfg).is_contained());
        assert!(check(&q2, &q1, &al, &cfg).is_contained());
        // r+ ⋢ r with a length-2 witness.
        let q3 = rel2_query("r", &mut al);
        let out = check(&q1, &q3, &al, &cfg);
        let w = out.witness().expect("r+ ⋢ r");
        assert_eq!(w.db.num_edges(), 2);
    }

    #[test]
    fn even_closure_in_full_closure() {
        let mut al = Alphabet::new();
        let r = al.intern("r");
        // TC(r·r) ⊑ TC(r) but not conversely.
        let hop2 = RqExpr::edge(r, "x", "m")
            .and(RqExpr::edge(r, "m", "y"))
            .project("m");
        let q1 = RqQuery::new(vec!["x".into(), "y".into()], hop2.closure("x", "y")).unwrap();
        let q2 = edge_closure(r);
        let cfg = Config::default();
        assert!(check(&q1, &q2, &al, &cfg).is_contained());
        let out = check(&q2, &q1, &al, &cfg);
        let w = out.witness().expect("TC(r) ⋢ TC(rr)");
        // Shortest counterexample: a single edge.
        assert_eq!(w.db.num_edges(), 1);
    }

    #[test]
    fn triangle_closure_contained_in_reachability_by_induction() {
        // TC(triangle) ⊑ r⁺: the closure body is genuinely conjunctive
        // (not UC2RPQ-collapsible), so this exercises the inductive prover.
        let mut al = Alphabet::new();
        let r = al.intern("r");
        let q1 = triangle_closure(r);
        let q2 = rel2_query("r+", &mut al);
        let cfg = Config::default();
        let out = check(&q1, &q2, &al, &cfg);
        assert!(
            matches!(&out, Outcome::Contained(Certificate::Induction { .. })),
            "expected induction certificate, got {out}"
        );
    }

    #[test]
    fn triangle_closure_not_contained_in_triangle() {
        let mut al = Alphabet::new();
        let r = al.intern("r");
        let q1 = triangle_closure(r);
        // Base triangle query (no closure).
        let body = RqExpr::edge(r, "x", "y")
            .and(RqExpr::edge(r, "y", "z"))
            .and(RqExpr::edge(r, "z", "x"))
            .project("z");
        let q2 = RqQuery::new(vec!["x".into(), "y".into()], body).unwrap();
        let cfg = Config::default();
        let out = check(&q1, &q2, &al, &cfg);
        let w = out.witness().expect("TC(triangle) ⋢ triangle");
        // Verify the witness semantically.
        assert!(q1.evaluate(&w.db).contains(&w.tuple));
        assert!(!q2.evaluate(&w.db).contains(&w.tuple));
        // And the base is contained in its closure, of course.
        let out = check(&q2, &q1, &al, &cfg);
        assert!(out.is_contained(), "{out}");
    }

    #[test]
    fn definite_verdicts_match_random_semantics() {
        let mut al = Alphabet::new();
        let r = al.intern("r");
        let queries = vec![
            edge_closure(r),
            rel2_query("r+", &mut al),
            rel2_query("r", &mut al),
            rel2_query("r r", &mut al),
            triangle_closure(r),
        ];
        let cfg = Config::default();
        for q1 in &queries {
            for q2 in &queries {
                let out = check(q1, q2, &al, &cfg);
                match out.decided() {
                    Some(true) => {
                        for seed in 0..20u64 {
                            let db = generate::random_gnm(5, 9, &["r"], seed);
                            let a1: BTreeSet<_> = q1.evaluate(&db);
                            let a2: BTreeSet<_> = q2.evaluate(&db);
                            assert!(
                                a1.is_subset(&a2),
                                "claimed contained but seed {seed} refutes"
                            );
                        }
                    }
                    Some(false) => {
                        let w = out.witness().unwrap();
                        assert!(q1.evaluate(&w.db).contains(&w.tuple));
                        assert!(!q2.evaluate(&w.db).contains(&w.tuple));
                    }
                    None => {}
                }
            }
        }
    }

    #[test]
    fn deadline_starvation_yields_structured_unknown() {
        use rq_automata::{Limits, Resource};
        use std::time::Duration;
        let mut al = Alphabet::new();
        let r = al.intern("r");
        let q1 = triangle_closure(r);
        let q2 = rel2_query("r+", &mut al);
        let cfg = Config {
            limits: Limits::unlimited().with_deadline(Duration::ZERO),
            ..Config::default()
        };
        let out = check(&q1, &q2, &al, &cfg);
        let rep = out.report().expect("zero deadline must surface as Unknown");
        assert_eq!(
            rep.exhaustion.as_ref().unwrap().resource,
            Resource::Deadline
        );
        // The same instance decides fine without a deadline.
        assert!(check(&q1, &q2, &al, &Config::default()).is_contained());
    }

    #[test]
    fn unknown_is_reported_for_hard_instances() {
        // TC(two-triangles-pattern) ⊑ TC(triangle): plausibly true but
        // beyond the prover's reach — must NOT return a definite wrong
        // answer. (Either Unknown or a verified definite verdict.)
        let mut al = Alphabet::new();
        let r = al.intern("r");
        let q1 = triangle_closure(r);
        let q2 = triangle_closure(r);
        let out = check(&q1, &q2, &al, &Config::default());
        // Reflexive containment: a definite `false` here would be unsound.
        assert!(!out.is_not_contained(), "{out}");
    }
}
