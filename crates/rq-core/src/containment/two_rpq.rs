//! 2RPQ containment (Lemmas 2–4, Theorem 5).
//!
//! `Q1 ⊑ Q2` iff `L(Q1) ⊆ fold(L(Q2))` (Lemma 2). The pipeline:
//!
//! 1. compile both queries to NFAs (linear);
//! 2. build the Lemma 3 2NFA for `fold(L(Q2))` with `n·(|Σ±|+1)` states;
//! 3. decide `L(Q1) ⊆ L(fold-2NFA)` on the fly against the lazily
//!    determinized two-way automaton (Shepherdson tables — the
//!    production stand-in for the Lemma 4 complementation, cross-validated
//!    against it in `rq-automata`);
//! 4. a BFS counterexample word `w` yields the canonical semipath database
//!    on which `(n0, n|w|) ∈ Q1 − Q2` — exactly the Lemma 2 construction.
//!
//! PSPACE-complete; always returns a definite verdict.

use super::{semipath_db, Certificate, Outcome, Witness};
use crate::rpq::TwoRpq;
use rq_automata::fold::fold_twonfa;
use rq_automata::governor::expect_unlimited;
use rq_automata::shepherdson::nfa_in_twonfa_governed;
use rq_automata::{Alphabet, Exhaustion, Governor, Letter};
use std::collections::BTreeSet;

/// Decide `q1 ⊑ q2`.
pub fn check(q1: &TwoRpq, q2: &TwoRpq, alphabet: &Alphabet) -> Outcome {
    expect_unlimited(check_governed(q1, q2, alphabet, &Governor::unlimited()))
}

/// [`check`] under a resource governor: Shepherdson table constructions
/// and product-state expansions are metered, and a tripped budget surfaces
/// as `Err`.
pub fn check_governed(
    q1: &TwoRpq,
    q2: &TwoRpq,
    alphabet: &Alphabet,
    gov: &Governor,
) -> Result<Outcome, Exhaustion> {
    // Σ± universe: all labels either query mentions, both polarities.
    // (The fold walk may guess any letter occurring in a candidate
    // counterexample word, and those words come from L(Q1).)
    let labels: BTreeSet<_> = q1
        .regex()
        .letters()
        .into_iter()
        .chain(q2.regex().letters())
        .map(|l| l.label)
        .collect();
    let sigma_pm: Vec<Letter> = labels
        .iter()
        .copied()
        .flat_map(|l| [Letter::forward(l), Letter::backward(l)])
        .collect();
    let fold2 = fold_twonfa(q2.nfa(), &sigma_pm);
    let run = nfa_in_twonfa_governed(q1.nfa(), &fold2, gov)?;
    if run.contained {
        return Ok(Outcome::Contained(Certificate::FoldContainment {
            states_explored: run.states_explored,
        }));
    }
    let Some(word) = run.counterexample else {
        return Ok(Outcome::unknown_with(
            "non-containment reported without a counterexample word",
            gov,
        ));
    };
    let (db, s, t) = semipath_db(&word, alphabet);
    let description = format!(
        "semipath database of the word {} (in L(Q1) − fold(L(Q2)))",
        alphabet.word_to_string(&word)
    );
    Ok(Outcome::NotContained(Box::new(Witness {
        db,
        tuple: vec![s, t],
        description,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str, al: &mut Alphabet) -> TwoRpq {
        TwoRpq::parse(s, al).unwrap()
    }

    #[test]
    fn paper_example_p_in_ppinvp() {
        // The paper's example: p ⊑ p p⁻ p even though L(p) ⊄ L(p p⁻ p).
        let mut al = Alphabet::new();
        let q1 = q("p", &mut al);
        let q2 = q("p p- p", &mut al);
        assert!(check(&q1, &q2, &al).is_contained());
        // The converse fails: a semipath x→a, b→a, b→y matches p p⁻ p
        // without any direct p-edge from x to y (p p⁻ p does not fold
        // onto p when the zigzag visits distinct nodes).
        let out = check(&q2, &q1, &al);
        let w = out.witness().expect("p p⁻ p ⋢ p");
        assert!(q2.contains_pair(&w.db, w.tuple[0], w.tuple[1]));
        assert!(!q1.contains_pair(&w.db, w.tuple[0], w.tuple[1]));
    }

    #[test]
    fn plain_language_containment_still_works() {
        let mut al = Alphabet::new();
        let q1 = q("a b", &mut al);
        let q2 = q("a (b|c)", &mut al);
        assert!(check(&q1, &q2, &al).is_contained());
        assert!(check(&q2, &q1, &al).is_not_contained());
    }

    #[test]
    fn witnesses_are_real_counterexamples() {
        let mut al = Alphabet::new();
        let cases = [
            ("a a", "a"),
            ("a b-", "a b"),
            ("(a|b)(a|b)", "a a|b b"),
            ("a-", "a"),
        ];
        for (s1, s2) in cases {
            let q1 = q(s1, &mut al);
            let q2 = q(s2, &mut al);
            let out = check(&q1, &q2, &al);
            let w = out
                .witness()
                .unwrap_or_else(|| panic!("{s1} ⊑ {s2} should fail"));
            let (x, y) = (w.tuple[0], w.tuple[1]);
            assert!(q1.contains_pair(&w.db, x, y), "{s1} on witness");
            assert!(!q2.contains_pair(&w.db, x, y), "{s2} on witness");
        }
    }

    #[test]
    fn fold_aware_containments() {
        let mut al = Alphabet::new();
        // a ⊑ a a⁻ a and a ⊑ (a a⁻)* a.
        let q1 = q("a", &mut al);
        for s2 in ["a a- a", "(a a-)* a", "a (a- a)*"] {
            let q2 = q(s2, &mut al);
            assert!(check(&q1, &q2, &al).is_contained(), "a ⊑ {s2}");
        }
        // But a ⊄ a a a⁻ a⁻ a (needs a 2-path to fold over).
        let q2 = q("a a a- a- a", &mut al);
        let out = check(&q1, &q2, &al);
        assert!(out.is_not_contained());
    }

    #[test]
    fn inverse_rewritings_are_equivalent() {
        let mut al = Alphabet::new();
        // (a b)⁻ written directly vs as b⁻ a⁻.
        let q1 = q("b- a-", &mut al);
        let q2 = q("b- a-", &mut al);
        assert!(check(&q1, &q2, &al).is_contained());
        // x y y⁻ x vs x x: incomparable. The zigzag's y-edges may hang off
        // *different* nodes, so x y y⁻ x ⋢ x x; and x x has no y-edge at
        // all, so x x ⋢ x y y⁻ x.
        let q1 = q("x y y- x", &mut al);
        let q2 = q("x x", &mut al);
        for (a, b) in [(&q1, &q2), (&q2, &q1)] {
            let out = check(a, b, &al);
            let w = out.witness().expect("incomparable pair");
            assert!(a.contains_pair(&w.db, w.tuple[0], w.tuple[1]));
            assert!(!b.contains_pair(&w.db, w.tuple[0], w.tuple[1]));
        }
        // With the zigzag forced through the same midpoint the containment
        // does hold: x (y y⁻)? x ⊒ x x.
        let q3 = q("x (y y-)? x", &mut al);
        assert!(check(&q2, &q3, &al).is_contained());
    }

    #[test]
    fn governed_check_exhausts_and_matches() {
        use rq_automata::{Limits, Resource};
        let mut al = Alphabet::new();
        let q1 = q("p", &mut al);
        let q2 = q("p p- p", &mut al);
        // Shepherdson table builds alone outrun a two-step fuel budget.
        let gov = Limits::unlimited().with_fuel(2).governor();
        let e = check_governed(&q1, &q2, &al, &gov).unwrap_err();
        assert_eq!(e.resource, Resource::Fuel);
        assert!(e.counters.fuel_spent > 2);
        // Ample budget matches the ungoverned verdict, both directions.
        let gov = Limits::unlimited().with_fuel(1_000_000).governor();
        assert!(check_governed(&q1, &q2, &al, &gov).unwrap().is_contained());
        assert!(check_governed(&q2, &q1, &al, &gov)
            .unwrap()
            .is_not_contained());
    }

    #[test]
    fn epsilon_cases() {
        let mut al = Alphabet::new();
        let eps = q("ε", &mut al);
        let astar = q("a*", &mut al);
        let aplus = q("a+", &mut al);
        assert!(check(&eps, &astar, &al).is_contained());
        assert!(check(&eps, &aplus, &al).is_not_contained());
        // a a⁻ ⊑ ε fails: a a⁻ relates any two nodes sharing an a-target
        // (not just (x,x)!), while ε relates only (x,x). The witness is
        // the semipath database of a a⁻: a(n0,n1), a(n2,n1) with the
        // distinct pair (n0, n2).
        let aainv = q("a a-", &mut al);
        let out = check(&aainv, &eps, &al);
        let w = out.witness().expect("a a⁻ ⋢ ε");
        assert_ne!(w.tuple[0], w.tuple[1]);
        assert!(aainv.contains_pair(&w.db, w.tuple[0], w.tuple[1]));
        assert!(!eps.contains_pair(&w.db, w.tuple[0], w.tuple[1]));
        // But a a⁻ ⊑ ε | a a⁻ holds trivially.
        let union = q("ε|a a-", &mut al);
        assert!(check(&aainv, &union, &al).is_contained());
    }
}
