//! A cheap-first containment facade for the serving path.
//!
//! The exact 2RPQ checker ([`super::two_rpq`]) is PSPACE machinery
//! (Lemmas 2–4 / Theorem 5); an engine probing its cache for subsuming
//! queries cannot afford to open with it. [`check_quick`] runs a ladder of
//! successively more expensive tests, each sound on its own:
//!
//! 1. syntactic equality of the simplified expressions;
//! 2. empty left-hand language (`∅ ⊑ Q` always — [`Certificate::EmptyLeft`]);
//! 3. canonical-key equality (same minimal DFA ⟹ same word language ⟹
//!    containment both ways), metered;
//! 4. the polynomial simple-fragment checker ([`super::simple`]), when
//!    both sides classify into the SCRPQ fragment — exact in both
//!    directions, never `Unknown` (it declines oversized instances
//!    instead, falling through);
//! 5. the exact fold-based checker, metered.
//!
//! Every rung runs under the caller's [`Limits`]; a budget tripped anywhere
//! surfaces as [`Outcome::Unknown`], which cache callers treat as "no
//! subsumption found" — the cache degrades to exact-match instead of
//! stalling the request.

use super::{simple, two_rpq, Certificate, Outcome};
use crate::canonical::canonical_key_governed;
use crate::rpq::TwoRpq;
use rq_automata::governor::{Governor, Limits};
use rq_automata::regex::simplify;
use rq_automata::simple::classify;
use rq_automata::Alphabet;
use rq_metrics::span;

/// Decide `q1 ⊑ q2` cheaply first, escalating to the exact 2RPQ checker
/// only when the fast rungs are inconclusive. All work is metered by a
/// governor spawned from `limits`.
pub fn check_quick(q1: &TwoRpq, q2: &TwoRpq, alphabet: &Alphabet, limits: &Limits) -> Outcome {
    check_quick_governed(q1, q2, alphabet, &Governor::new(limits.clone()))
}

/// [`check_quick`] against a caller-owned governor, so callers (the
/// semantic cache) can read back how much budget the probe actually spent
/// from [`Governor::counters`]. Each rung records which stage of the
/// ladder decided the check in the `rq_containment_ladder_total` metric,
/// and opens a trace span (`ladder.*`, see ALGORITHMS.md) annotated with
/// the rung's verdict — `contained` / `not_contained` / `unknown` when it
/// decided, `pass` when it was inconclusive and the ladder escalated.
pub fn check_quick_governed(
    q1: &TwoRpq,
    q2: &TwoRpq,
    alphabet: &Alphabet,
    gov: &Governor,
) -> Outcome {
    let r1 = simplify(q1.regex());
    {
        let mut s = span::start("ladder.empty_left");
        if r1.is_empty_language() {
            s.record("verdict", "contained");
            metrics::ladder_stage(metrics::Stage::EmptyLeft);
            return Outcome::Contained(Certificate::EmptyLeft);
        }
        s.record("verdict", "pass");
    }
    let r2 = simplify(q2.regex());
    {
        let mut s = span::start("ladder.syntactic_eq");
        if r1 == r2 {
            s.record("verdict", "contained");
            metrics::ladder_stage(metrics::Stage::SyntacticEq);
            return Outcome::Contained(Certificate::LanguageContainment { states_explored: 0 });
        }
        s.record("verdict", "pass");
    }
    {
        let mut s = span::start("ladder.canonical_key");
        let fuel_before = gov.fuel_spent();
        let keys = (
            canonical_key_governed(q1, alphabet, gov),
            canonical_key_governed(q2, alphabet, gov),
        );
        if s.active() {
            s.record("fuel", gov.fuel_spent() - fuel_before);
        }
        match keys {
            (Ok(k1), Ok(k2)) if k1 == k2 => {
                s.record("verdict", "contained");
                metrics::ladder_stage(metrics::Stage::CanonicalKey);
                return Outcome::Contained(Certificate::LanguageContainment { states_explored: 0 });
            }
            (Err(e), _) | (_, Err(e)) => {
                s.record("verdict", "unknown");
                metrics::ladder_stage(metrics::Stage::Exhausted);
                return Outcome::exhausted(e);
            }
            _ => s.record("verdict", "pass"),
        }
    }
    {
        // The polynomial SCRPQ rung: exact (never Unknown) when both
        // sides classify simple; declines — rather than guesses — when
        // an instance is outside the fragment or over the size caps.
        // Unmetered: its work is bounded by the simple checker's own
        // state cap, not the caller's fuel budget.
        let mut s = span::start("ladder.simple");
        match (classify(&r1), classify(&r2)) {
            (Ok(sl), Ok(sr)) => match simple::check_simple(&sl, &sr, alphabet) {
                Some((outcome, states)) => {
                    s.record("states", states);
                    s.record(
                        "verdict",
                        if outcome.is_contained() {
                            "contained"
                        } else {
                            "not_contained"
                        },
                    );
                    metrics::ladder_stage(metrics::Stage::Simple);
                    metrics::simple_result(outcome.is_contained());
                    return outcome;
                }
                None => {
                    s.record("verdict", "pass");
                    s.record("reason", "capped");
                    metrics::simple_skipped(true);
                }
            },
            _ => {
                s.record("verdict", "pass");
                s.record("reason", "not_simple");
                metrics::simple_skipped(false);
            }
        }
    }
    let mut s = span::start("ladder.full_check");
    let fuel_before = gov.fuel_spent();
    let result = two_rpq::check_governed(q1, q2, alphabet, gov);
    if s.active() {
        s.record("fuel", gov.fuel_spent() - fuel_before);
    }
    match result {
        Ok(outcome) => {
            s.record(
                "verdict",
                match &outcome {
                    Outcome::Contained(_) => "contained",
                    Outcome::NotContained(_) => "not_contained",
                    Outcome::Unknown(_) => "unknown",
                },
            );
            metrics::ladder_stage(metrics::Stage::FullCheck);
            outcome
        }
        Err(e) => {
            s.record("verdict", "unknown");
            metrics::ladder_stage(metrics::Stage::Exhausted);
            Outcome::exhausted(e)
        }
    }
}

/// Which rung of the cheap-first ladder settled each `check_quick` call:
/// the language-level fast paths (`empty_left`, `syntactic_eq`,
/// `canonical_key`), the polynomial SCRPQ rung (`simple`), the full
/// fold/2NFA pipeline (`full_check`), or a tripped budget (`exhausted`).
mod metrics {
    use rq_metrics::{global, Counter};
    use std::sync::{Arc, OnceLock};

    #[derive(Clone, Copy)]
    pub(super) enum Stage {
        EmptyLeft = 0,
        SyntacticEq = 1,
        CanonicalKey = 2,
        Simple = 3,
        FullCheck = 4,
        Exhausted = 5,
    }

    pub(super) fn ladder_stage(stage: Stage) {
        static CELLS: OnceLock<[Arc<Counter>; 6]> = OnceLock::new();
        let cells = CELLS.get_or_init(|| {
            [
                "empty_left",
                "syntactic_eq",
                "canonical_key",
                "simple",
                "full_check",
                "exhausted",
            ]
            .map(|s| {
                global().counter_with(
                    "rq_containment_ladder_total",
                    &[("stage", s)],
                    "check_quick ladder outcomes, by deciding stage",
                )
            })
        });
        cells[stage as usize].inc();
    }

    /// Verdicts produced by the simple-fragment rung.
    pub(super) fn simple_result(contained: bool) {
        static CELLS: OnceLock<[Arc<Counter>; 2]> = OnceLock::new();
        let cells = CELLS.get_or_init(|| {
            ["contained", "not_contained"].map(|s| {
                global().counter_with(
                    "rq_containment_simple_total",
                    &[("result", s)],
                    "simple-fragment fast-path verdicts, by result",
                )
            })
        });
        cells[if contained { 0 } else { 1 }].inc();
    }

    /// Checks the simple rung passed on: the pair was outside the
    /// fragment, or the checker declined at its size caps.
    pub(super) fn simple_skipped(capped: bool) {
        static CELLS: OnceLock<[Arc<Counter>; 2]> = OnceLock::new();
        let cells = CELLS.get_or_init(|| {
            ["not_simple", "capped"].map(|s| {
                global().counter_with(
                    "rq_containment_simple_skipped_total",
                    &[("reason", s)],
                    "simple-fragment rung pass-throughs, by reason",
                )
            })
        });
        cells[if capped { 1 } else { 0 }].inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_automata::Regex;

    #[test]
    fn empty_left_short_circuits() {
        let mut al = Alphabet::new();
        let empty = TwoRpq::new(Regex::Empty);
        let q = TwoRpq::parse("a*", &mut al).unwrap();
        let out = check_quick(&empty, &q, &al, &Limits::unlimited());
        assert!(matches!(out, Outcome::Contained(Certificate::EmptyLeft)));
    }

    #[test]
    fn syntactic_and_canonical_equality_are_free() {
        let mut al = Alphabet::new();
        let a = TwoRpq::parse("a b | a c", &mut al).unwrap();
        let b = TwoRpq::parse("a(b|c)", &mut al).unwrap();
        // Different syntax, same minimal DFA — rung 3 decides it even under
        // a budget far too small for the exact checker.
        let out = check_quick(&a, &b, &al, &Limits::unlimited().with_fuel(200));
        assert!(out.is_contained(), "{out}");
    }

    #[test]
    fn escalates_to_the_exact_checker() {
        let mut al = Alphabet::new();
        let p = TwoRpq::parse("p", &mut al).unwrap();
        let zigzag = TwoRpq::parse("p p- p", &mut al).unwrap();
        // Fold containment: only the exact checker can prove this.
        assert!(check_quick(&p, &zigzag, &al, &Limits::unlimited()).is_contained());
        assert!(check_quick(&zigzag, &p, &al, &Limits::unlimited()).is_not_contained());
    }

    #[test]
    fn ladder_stages_open_annotated_spans() {
        let ctx = span::TraceContext::start();
        let mut al = Alphabet::new();
        let a = TwoRpq::parse("a b | a c", &mut al).unwrap();
        let b = TwoRpq::parse("a(b|c)", &mut al).unwrap();
        {
            let _g = span::install(&ctx, 0);
            assert!(check_quick(&a, &b, &al, &Limits::unlimited()).is_contained());
        }
        let t = ctx.finish("ok", "");
        let verdict = |name: &str| {
            t.spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing span {name}"))
                .fields
                .iter()
                .find(|(k, _)| *k == "verdict")
                .map(|(_, v)| v.clone())
        };
        assert_eq!(verdict("ladder.empty_left").as_deref(), Some("pass"));
        assert_eq!(verdict("ladder.syntactic_eq").as_deref(), Some("pass"));
        assert_eq!(
            verdict("ladder.canonical_key").as_deref(),
            Some("contained")
        );
        let canonical = t
            .spans
            .iter()
            .find(|s| s.name == "ladder.canonical_key")
            .unwrap();
        assert!(
            canonical.fields.iter().any(|(k, _)| *k == "fuel"),
            "metered rung records its fuel: {:?}",
            canonical.fields
        );
        assert!(
            !t.spans.iter().any(|s| s.name == "ladder.full_check"),
            "decided at rung 3 — the exact checker never ran"
        );
    }

    #[test]
    fn simple_pairs_decide_before_the_exact_checker() {
        let ctx = span::TraceContext::start();
        let mut al = Alphabet::new();
        let q = TwoRpq::parse("a a", &mut al).unwrap();
        let star = TwoRpq::parse("a*", &mut al).unwrap();
        {
            let _g = span::install(&ctx, 0);
            // Containment needs more than key equality, but both sides
            // are simple — rung 4 decides without the 2NFA pipeline.
            assert!(check_quick(&q, &star, &al, &Limits::unlimited()).is_contained());
        }
        let t = ctx.finish("ok", "");
        let simple = t
            .spans
            .iter()
            .find(|s| s.name == "ladder.simple")
            .expect("simple rung opened a span");
        let field = |k: &str| {
            simple
                .fields
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(field("verdict").as_deref(), Some("contained"));
        assert!(field("states").is_some(), "rung records its state count");
        assert!(
            !t.spans.iter().any(|s| s.name == "ladder.full_check"),
            "decided at the simple rung — the exact checker never ran"
        );
    }

    #[test]
    fn non_simple_pairs_fall_through_with_a_reason() {
        let ctx = span::TraceContext::start();
        let mut al = Alphabet::new();
        let p = TwoRpq::parse("p", &mut al).unwrap();
        let zigzag = TwoRpq::parse("p p- p", &mut al).unwrap();
        {
            let _g = span::install(&ctx, 0);
            assert!(check_quick(&p, &zigzag, &al, &Limits::unlimited()).is_contained());
        }
        let t = ctx.finish("ok", "");
        let simple = t
            .spans
            .iter()
            .find(|s| s.name == "ladder.simple")
            .expect("simple rung opened a span");
        assert!(simple
            .fields
            .iter()
            .any(|(k, v)| *k == "reason" && v == "not_simple"));
        assert!(
            t.spans.iter().any(|s| s.name == "ladder.full_check"),
            "the inverse letter forces the exact checker"
        );
    }

    #[test]
    fn simple_rung_refutes_with_a_checkable_witness() {
        let mut al = Alphabet::new();
        let star = TwoRpq::parse("a*", &mut al).unwrap();
        let q = TwoRpq::parse("a a", &mut al).unwrap();
        let out = check_quick(&star, &q, &al, &Limits::unlimited());
        let w = out.witness().expect("a* ⋢ a a");
        assert!(star.contains_pair(&w.db, w.tuple[0], w.tuple[1]));
        assert!(!q.contains_pair(&w.db, w.tuple[0], w.tuple[1]));
    }

    #[test]
    fn tight_budget_degrades_to_unknown() {
        let mut al = Alphabet::new();
        let p = TwoRpq::parse("p", &mut al).unwrap();
        let zigzag = TwoRpq::parse("p p- p", &mut al).unwrap();
        let out = check_quick(&p, &zigzag, &al, &Limits::unlimited().with_fuel(2));
        assert!(out.is_unknown(), "{out}");
    }
}
