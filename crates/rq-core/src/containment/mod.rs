//! The query-containment checker suite.
//!
//! "Query containment is a key database-theoretic problem" (§1): `Q1 ⊑ Q2`
//! iff `Q1(D) ⊆ Q2(D)` for every database `D`. The checkers here follow
//! the paper's ladder:
//!
//! * [`rpq`] — Lemma 1, exact (PSPACE algorithm, on the fly);
//! * [`two_rpq`] — Lemmas 2–4 / Theorem 5, exact (fold + two-way
//!   determinization, on the fly);
//! * [`uc2rpq`] — Theorem 6 territory (EXPSPACE-complete): a *budgeted
//!   exact* procedure;
//! * [`rq`] — Theorem 7 territory (2EXPSPACE-complete): likewise;
//! * GRQ containment (Theorem 8) reduces to [`rq`] via
//!   [`crate::translate`].
//!
//! Budgeted checkers never guess: [`Outcome::Contained`] carries a
//! [`Certificate`], [`Outcome::NotContained`] carries a concrete
//! counterexample database ([`Witness`]) that callers can re-verify by
//! evaluation, and exhausted budgets surface as [`Outcome::Unknown`].
//!
//! ## Example
//!
//! ```
//! use rq_automata::Alphabet;
//! use rq_core::rpq::TwoRpq;
//! use rq_core::containment::two_rpq;
//!
//! let mut al = Alphabet::new();
//! let p = TwoRpq::parse("p", &mut al).unwrap();
//! let zigzag = TwoRpq::parse("p p- p", &mut al).unwrap();
//! // The paper's flagship example: containment holds through folding.
//! assert!(two_rpq::check(&p, &zigzag, &al).is_contained());
//! // The converse fails, with a machine-checkable witness database.
//! let out = two_rpq::check(&zigzag, &p, &al);
//! let w = out.witness().unwrap();
//! assert!(zigzag.contains_pair(&w.db, w.tuple[0], w.tuple[1]));
//! assert!(!p.contains_pair(&w.db, w.tuple[0], w.tuple[1]));
//! ```

pub mod facade;
pub mod rpq;
pub mod rq;
pub mod simple;
pub mod two_rpq;
pub mod uc2rpq;

use rq_automata::{Alphabet, Counters, Exhaustion, Governor, Letter, Limits};
use rq_graph::{GraphDb, NodeId};
use std::fmt;

/// A concrete counterexample to a containment `Q1 ⊑ Q2`: a database and a
/// tuple in `Q1(db) − Q2(db)`.
#[derive(Debug, Clone)]
pub struct Witness {
    pub db: GraphDb,
    pub tuple: Vec<NodeId>,
    pub description: String,
}

/// Evidence for a `Contained` verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// Word-language containment `L(Q1) ⊆ L(Q2)` (Lemma 1).
    LanguageContainment { states_explored: usize },
    /// Fold-language containment `L(Q1) ⊆ fold(L(Q2))` (Lemma 2).
    FoldContainment { states_explored: usize },
    /// A per-disjunct homomorphism into atom paths with fold-containment
    /// on each mapped atom.
    Homomorphism { description: String },
    /// An inductive certificate for a transitive closure:
    /// `P ⊑ R` and `R ∘ P ⊑ R` imply `P⁺ ⊑ R`.
    Induction { description: String },
    /// The left query has the empty answer on every database.
    EmptyLeft,
}

/// A structured account of why a check gave up: the human-readable
/// reason, the governor budget that tripped (if one did), and the
/// counter snapshot — states explored, words enumerated, fuel spent,
/// elapsed wall-clock — at the moment the search stopped.
#[derive(Debug, Clone)]
pub struct ExhaustionReport {
    /// What the checker was missing (a proof, a counterexample, a budget).
    pub reason: String,
    /// The resource budget that ran out, when the stop was governor-driven.
    pub exhaustion: Option<Exhaustion>,
    /// Snapshot of the governor's counters when the search stopped.
    pub counters: Counters,
}

impl fmt::Display for ExhaustionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Exhaustion's own Display already embeds the counters.
        if self.exhaustion.is_none() && self.counters != Counters::default() {
            write!(f, "{}; {}", self.reason, self.counters)
        } else {
            f.write_str(&self.reason)
        }
    }
}

/// The verdict of a containment check.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// `Q1 ⊑ Q2`, with evidence.
    Contained(Certificate),
    /// `Q1 ⋢ Q2`, with a counterexample database.
    NotContained(Box<Witness>),
    /// The search budget was exhausted before either a certificate or a
    /// counterexample was found (the problem is EXPSPACE/2EXPSPACE-complete;
    /// raise the [`Config`] budgets to push further). Carries a structured
    /// [`ExhaustionReport`] with the search counters.
    Unknown(Box<ExhaustionReport>),
}

impl Outcome {
    /// An `Unknown` verdict with a reason but no search counters (used for
    /// precondition failures such as arity mismatches or translation
    /// errors, where no search ran).
    pub fn unknown(reason: impl Into<String>) -> Outcome {
        Outcome::Unknown(Box::new(ExhaustionReport {
            reason: reason.into(),
            exhaustion: None,
            counters: Counters::default(),
        }))
    }

    /// An `Unknown` verdict snapshotting `gov`'s counters: the search ran
    /// to completion within budget but was inconclusive.
    pub fn unknown_with(reason: impl Into<String>, gov: &Governor) -> Outcome {
        Outcome::Unknown(Box::new(ExhaustionReport {
            reason: reason.into(),
            exhaustion: None,
            counters: gov.counters(),
        }))
    }

    /// An `Unknown` verdict from a tripped resource budget.
    pub fn exhausted(e: Exhaustion) -> Outcome {
        Outcome::Unknown(Box::new(ExhaustionReport {
            reason: e.to_string(),
            counters: e.counters,
            exhaustion: Some(e),
        }))
    }

    /// The exhaustion report of an `Unknown` verdict.
    pub fn report(&self) -> Option<&ExhaustionReport> {
        match self {
            Outcome::Unknown(r) => Some(r),
            _ => None,
        }
    }
    /// `Some(true)` / `Some(false)` for definite verdicts, `None` for
    /// `Unknown`.
    pub fn decided(&self) -> Option<bool> {
        match self {
            Outcome::Contained(_) => Some(true),
            Outcome::NotContained(_) => Some(false),
            Outcome::Unknown(_) => None,
        }
    }

    /// Whether the verdict is `Contained`.
    pub fn is_contained(&self) -> bool {
        matches!(self, Outcome::Contained(_))
    }

    /// Whether the verdict is `NotContained`.
    pub fn is_not_contained(&self) -> bool {
        matches!(self, Outcome::NotContained(_))
    }

    /// Whether the verdict is `Unknown`.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Outcome::Unknown(_))
    }

    /// The witness of a `NotContained` verdict.
    pub fn witness(&self) -> Option<&Witness> {
        match self {
            Outcome::NotContained(w) => Some(w),
            _ => None,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Contained(c) => write!(f, "contained ({c:?})"),
            Outcome::NotContained(w) => write!(f, "not contained ({})", w.description),
            Outcome::Unknown(r) => write!(f, "unknown ({r})"),
        }
    }
}

/// Budgets for the hybrid (UC2RPQ / RQ) checkers.
///
/// Setting every budget to the theoretical bounds from [48] would make the
/// procedures complete; the defaults are laptop-scale and resolve all
/// non-adversarial instances in the test suite and benches.
#[derive(Debug, Clone)]
pub struct Config {
    /// Max word length enumerated per atom during expansion search.
    pub max_word_len: usize,
    /// Max words enumerated per atom.
    pub words_per_atom: usize,
    /// Max expansions per disjunct.
    pub max_expansions: usize,
    /// Max walk length tried by the homomorphism prover.
    pub max_hom_path_len: usize,
    /// Transitive-closure unrolling depth for RQ refutation.
    pub unfold_depth: usize,
    /// Max disjuncts produced by unfolding.
    pub unfold_budget: usize,
    /// Recursion guard for the inductive TC prover.
    pub induction_depth: usize,
    /// Ablation: disable the chain-collapse fast path (UC2RPQ checker).
    pub disable_chain_collapse: bool,
    /// Ablation: disable the homomorphism prover (UC2RPQ checker).
    pub disable_hom_prover: bool,
    /// Ablation: disable the inductive TC prover (RQ checker).
    pub disable_induction: bool,
    /// Resource budgets (fuel, states, wall-clock deadline) enforced by a
    /// [`Governor`] spawned per check. Unlimited by default; when a budget
    /// trips, the verdict is [`Outcome::Unknown`] with an
    /// [`ExhaustionReport`].
    pub limits: Limits,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_word_len: 4,
            words_per_atom: 24,
            max_expansions: 4000,
            max_hom_path_len: 4,
            unfold_depth: 3,
            unfold_budget: 3000,
            induction_depth: 2,
            disable_chain_collapse: false,
            disable_hom_prover: false,
            disable_induction: false,
            limits: Limits::unlimited(),
        }
    }
}

/// Build the canonical semipath database of a word `w` over `alphabet`:
/// nodes `n0..n|w|`, with the i-th edge forward (`nᵢ₋₁ → nᵢ`) for a plain
/// letter and backward (`nᵢ → nᵢ₋₁`) for an inverse letter. Returns the
/// database and the endpoint nodes.
///
/// This is the Lemma 2 construction: `Q` answers `(n0, n|w|)` on this
/// database iff `w ∈ fold(L(Q))`.
pub fn semipath_db(word: &[Letter], alphabet: &Alphabet) -> (GraphDb, NodeId, NodeId) {
    let mut db = GraphDb::with_alphabet(alphabet.clone());
    let first = db.node("n0");
    let mut prev = first;
    for (i, &l) in word.iter().enumerate() {
        let next = db.node(&format!("n{}", i + 1));
        if l.inverse {
            db.add_edge(next, l.label, prev);
        } else {
            db.add_edge(prev, l.label, next);
        }
        prev = next;
    }
    (db, first, prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpq::TwoRpq;

    #[test]
    fn semipath_db_realizes_fold_semantics() {
        // On the semipath db of w = p p⁻ p, the query p answers the
        // endpoints (since p ∈ fold-language sense: p p⁻ p ∈ fold(L... the
        // other way: the db of w admits exactly the foldings of w as
        // endpoint-connecting semipaths.
        let mut al = Alphabet::new();
        let q2 = TwoRpq::parse("p p- p", &mut al).unwrap();
        let q1 = TwoRpq::parse("p", &mut al).unwrap();
        let p = al.get("p").unwrap();
        let w = vec![Letter::forward(p)];
        let (db, s, t) = semipath_db(&w, &al);
        // Single p-edge: both p and p p⁻ p answer (s, t).
        assert!(q1.contains_pair(&db, s, t));
        assert!(q2.contains_pair(&db, s, t));
        // On the semipath db of w = p p (two forward edges), p p⁻ p does
        // not answer the endpoints.
        let w = vec![Letter::forward(p), Letter::forward(p)];
        let (db, s, t) = semipath_db(&w, &al);
        assert!(!q2.contains_pair(&db, s, t));
    }

    #[test]
    fn semipath_db_with_inverse_letters() {
        let mut al = Alphabet::new();
        let p = al.intern("p");
        let w = vec![Letter::forward(p), Letter::backward(p)];
        let (db, s, t) = semipath_db(&w, &al);
        assert_eq!(db.num_nodes(), 3);
        assert_eq!(db.num_edges(), 2);
        let q = TwoRpq::parse("p p-", &mut al).unwrap();
        assert!(q.contains_pair(&db, s, t));
        let q = TwoRpq::parse("p p", &mut al).unwrap();
        assert!(!q.contains_pair(&db, s, t));
    }

    #[test]
    fn outcome_accessors() {
        let o = Outcome::Contained(Certificate::EmptyLeft);
        assert_eq!(o.decided(), Some(true));
        assert!(o.is_contained() && !o.is_unknown());
        let o = Outcome::unknown("budget");
        assert_eq!(o.decided(), None);
        assert!(o.witness().is_none());
        let r = o.report().expect("unknown carries a report");
        assert_eq!(r.reason, "budget");
        assert!(r.exhaustion.is_none());
    }

    #[test]
    fn exhausted_outcome_carries_the_report() {
        use rq_automata::Resource;
        let gov = Limits::unlimited().with_fuel(1).governor();
        gov.tick().unwrap();
        let e = gov.tick().unwrap_err();
        let o = Outcome::exhausted(e);
        assert!(o.is_unknown());
        let r = o.report().unwrap();
        assert_eq!(r.exhaustion.as_ref().unwrap().resource, Resource::Fuel);
        assert_eq!(r.counters.fuel_spent, 2);
        assert!(o.to_string().contains("fuel exhausted"), "{o}");
    }
}
