//! UC2RPQ containment (Theorem 6 territory — EXPSPACE-complete).
//!
//! The checker combines, as the paper prescribes, "automata-theoretic
//! techniques … with the homomorphism-based techniques developed in
//! [18, 50]":
//!
//! * **exact fast path** — when every disjunct on both sides collapses to
//!   a single 2RPQ chain, the problem *is* 2RPQ containment (Theorem 5),
//!   decided exactly;
//! * **proof** — a per-disjunct homomorphism: map the right conjunct's
//!   variables into the left conjunct's, and discharge each mapped atom
//!   `λ(u, v)` by finding a walk through the left conjunct's atoms whose
//!   concatenated language is fold-contained in `L(λ)` (each such test is
//!   an exact 2RPQ containment). Sound; incomplete in general;
//! * **refutation** — enumerate canonical expansions of each left
//!   disjunct (shortlex words per atom, budgeted) and evaluate the right
//!   query on them; a missing head tuple is a *sound* counterexample by
//!   the canonical-database property. Complete given the theoretical
//!   (doubly exponential) word-length bound; budgeted here;
//! * otherwise **Unknown**, with the budget that ran out.

use super::{Certificate, Config, Outcome, Witness};
use crate::crpq::{C2Rpq, Uc2Rpq};
use crate::expansion::{enumerate_word_choices, expand};
use crate::rpq::TwoRpq;
use rq_automata::governor::expect_unlimited;
use rq_automata::{Alphabet, Exhaustion, Governor, Regex};
use rq_graph::{GraphDb, NodeId};
use std::collections::BTreeSet;

/// Decide `q1 ⊑ q2` under the budgets in `cfg` (including
/// [`Config::limits`]: a tripped resource budget yields
/// [`Outcome::Unknown`] with an exhaustion report).
pub fn check(q1: &Uc2Rpq, q2: &Uc2Rpq, alphabet: &Alphabet, cfg: &Config) -> Outcome {
    let gov = cfg.limits.governor();
    match check_governed(q1, q2, alphabet, cfg, &gov) {
        Ok(out) => out,
        Err(e) => Outcome::exhausted(e),
    }
}

/// [`check`] against a caller-owned governor (shared across phases or
/// checks); a tripped budget surfaces as `Err`.
pub fn check_governed(
    q1: &Uc2Rpq,
    q2: &Uc2Rpq,
    alphabet: &Alphabet,
    cfg: &Config,
    gov: &Governor,
) -> Result<Outcome, Exhaustion> {
    // Coarse boundary: one wall-clock poll per check entry.
    gov.check_wall()?;
    if q1.arity() != q2.arity() {
        return Ok(Outcome::unknown(format!(
            "head arities differ ({} vs {}); the queries are incomparable",
            q1.arity(),
            q2.arity()
        )));
    }
    // Syntactic identity (reflexivity).
    if q1 == q2 {
        return Ok(Outcome::Contained(Certificate::Homomorphism {
            description: "syntactically identical queries".into(),
        }));
    }
    // Exact path: both sides collapse to single 2RPQs.
    if !cfg.disable_chain_collapse {
        if let (Some(t1), Some(t2)) = (q1.collapse_chains(), q2.collapse_chains()) {
            return super::two_rpq::check_governed(&t1, &t2, alphabet, gov);
        }
    }
    // Sound proof.
    if !cfg.disable_hom_prover && prove_governed(q1, q2, alphabet, cfg, gov)? {
        return Ok(Outcome::Contained(Certificate::Homomorphism {
            description: "per-disjunct atom-walk homomorphism".into(),
        }));
    }
    // Sound refutation by expansion search.
    for phi in &q1.disjuncts {
        if let Some(w) = refute_conjunct_governed(phi, alphabet, cfg, gov, |db| q2.evaluate(db))? {
            return Ok(Outcome::NotContained(Box::new(w)));
        }
    }
    Ok(Outcome::unknown_with(
        format!(
            "no homomorphism proof (walks ≤ {}) and no counterexample among expansions \
             (words ≤ {}, {} per atom, {} expansions per disjunct)",
            cfg.max_hom_path_len, cfg.max_word_len, cfg.words_per_atom, cfg.max_expansions
        ),
        gov,
    ))
}

/// Sound proof attempt: `true` implies `q1 ⊑ q2`.
pub fn prove(q1: &Uc2Rpq, q2: &Uc2Rpq, alphabet: &Alphabet, cfg: &Config) -> bool {
    expect_unlimited(prove_governed(
        q1,
        q2,
        alphabet,
        cfg,
        &Governor::unlimited(),
    ))
}

/// [`prove`] under a resource governor.
pub fn prove_governed(
    q1: &Uc2Rpq,
    q2: &Uc2Rpq,
    alphabet: &Alphabet,
    cfg: &Config,
    gov: &Governor,
) -> Result<bool, Exhaustion> {
    for phi in &q1.disjuncts {
        if !prove_disjunct(phi, q2, alphabet, cfg, gov)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Sound refutation attempt over all left disjuncts: a returned witness
/// refutes `q1 ⊑ eval-query`.
pub fn refute<F>(q1: &Uc2Rpq, alphabet: &Alphabet, cfg: &Config, eval2: F) -> Option<Witness>
where
    F: Fn(&GraphDb) -> BTreeSet<Vec<NodeId>>,
{
    expect_unlimited(refute_governed(
        q1,
        alphabet,
        cfg,
        &Governor::unlimited(),
        eval2,
    ))
}

/// [`refute`] under a resource governor: each enumerated expansion is
/// metered as one word.
pub fn refute_governed<F>(
    q1: &Uc2Rpq,
    alphabet: &Alphabet,
    cfg: &Config,
    gov: &Governor,
    eval2: F,
) -> Result<Option<Witness>, Exhaustion>
where
    F: Fn(&GraphDb) -> BTreeSet<Vec<NodeId>>,
{
    for phi in &q1.disjuncts {
        if let Some(w) = refute_conjunct_governed(phi, alphabet, cfg, gov, &eval2)? {
            return Ok(Some(w));
        }
    }
    Ok(None)
}

/// Whether a single left disjunct is provably contained in the union.
fn prove_disjunct(
    phi: &C2Rpq,
    q2: &Uc2Rpq,
    alphabet: &Alphabet,
    cfg: &Config,
    gov: &Governor,
) -> Result<bool, Exhaustion> {
    // An empty-language atom makes the disjunct unsatisfiable.
    if phi.atoms.iter().any(|a| a.rel.nfa().is_empty()) {
        return Ok(true);
    }
    // Exact pair decision when both conjuncts collapse.
    let phi_collapsed = if cfg.disable_chain_collapse {
        None
    } else {
        phi.collapse_chain()
    };
    for psi in &q2.disjuncts {
        if let (Some(t1), Some(t2)) = (&phi_collapsed, psi.collapse_chain()) {
            if super::two_rpq::check_governed(t1, &t2, alphabet, gov)?.is_contained() {
                return Ok(true);
            }
        }
        if hom_into(phi, psi, alphabet, cfg, gov)? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Search for a homomorphism from `psi`'s variables into `phi`'s, mapping
/// heads positionally, such that every `psi` atom is discharged by a walk
/// in `phi` (see module docs). Sound for `phi ⊑ psi`.
fn hom_into(
    phi: &C2Rpq,
    psi: &C2Rpq,
    alphabet: &Alphabet,
    cfg: &Config,
    gov: &Governor,
) -> Result<bool, Exhaustion> {
    let phi_vars: Vec<&str> = phi.variables();
    // Seed the mapping with head correspondence.
    let mut map: Vec<(String, String)> = Vec::new();
    for (pv, fv) in psi.head.iter().zip(&phi.head) {
        match map.iter().find(|(k, _)| k == pv) {
            Some((_, prev)) if prev != fv => return Ok(false),
            Some(_) => {}
            None => map.push((pv.clone(), fv.clone())),
        }
    }
    let psi_vars: Vec<&str> = psi
        .variables()
        .into_iter()
        .filter(|v| !map.iter().any(|(k, _)| k == v))
        .collect();
    assign(
        phi, psi, &phi_vars, &psi_vars, 0, &mut map, alphabet, cfg, gov,
    )
}

#[allow(clippy::too_many_arguments)]
fn assign(
    phi: &C2Rpq,
    psi: &C2Rpq,
    phi_vars: &[&str],
    psi_vars: &[&str],
    next: usize,
    map: &mut Vec<(String, String)>,
    alphabet: &Alphabet,
    cfg: &Config,
    gov: &Governor,
) -> Result<bool, Exhaustion> {
    gov.tick()?;
    // Check all atoms whose endpoints are both mapped.
    let lookup = |v: &str, map: &Vec<(String, String)>| -> Option<String> {
        map.iter().find(|(k, _)| k == v).map(|(_, t)| t.clone())
    };
    for atom in &psi.atoms {
        if let (Some(u), Some(v)) = (lookup(&atom.from, map), lookup(&atom.to, map)) {
            if !atom_discharged(phi, &u, &v, &atom.rel, alphabet, cfg, gov)? {
                return Ok(false);
            }
        }
    }
    let Some(var) = psi_vars.get(next) else {
        return Ok(true);
    };
    for target in phi_vars {
        map.push(((*var).to_owned(), (*target).to_owned()));
        if assign(
            phi,
            psi,
            phi_vars,
            psi_vars,
            next + 1,
            map,
            alphabet,
            cfg,
            gov,
        )? {
            return Ok(true);
        }
        map.pop();
    }
    Ok(false)
}

/// Whether some walk `u → v` through `phi`'s atoms has its concatenated
/// language fold-contained in `L(lambda)`.
#[allow(clippy::too_many_arguments)]
fn atom_discharged(
    phi: &C2Rpq,
    u: &str,
    v: &str,
    lambda: &TwoRpq,
    alphabet: &Alphabet,
    cfg: &Config,
    gov: &Governor,
) -> Result<bool, Exhaustion> {
    for walk_re in walks(phi, u, v, cfg.max_hom_path_len) {
        let walk_q = TwoRpq::new(walk_re);
        if super::two_rpq::check_governed(&walk_q, lambda, alphabet, gov)?.is_contained() {
            return Ok(true);
        }
    }
    Ok(false)
}

/// All walk languages from `u` to `v` through `phi`'s atoms, up to
/// `max_len` atom traversals (each atom may be reused; both directions).
fn walks(phi: &C2Rpq, u: &str, v: &str, max_len: usize) -> Vec<Regex> {
    let mut out = Vec::new();
    if u == v {
        out.push(Regex::Epsilon);
    }
    // BFS over (current var, regex-so-far) up to max_len steps.
    let mut frontier: Vec<(String, Vec<Regex>)> = vec![(u.to_owned(), Vec::new())];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for (cur, parts) in &frontier {
            for a in &phi.atoms {
                let steps: &[(&String, &String, bool)] =
                    &[(&a.from, &a.to, true), (&a.to, &a.from, false)];
                for &(from, to, fwd) in steps {
                    if from != cur {
                        continue;
                    }
                    let mut p = parts.clone();
                    p.push(if fwd {
                        a.rel.regex().clone()
                    } else {
                        a.rel.regex().inverse()
                    });
                    if to == v {
                        out.push(Regex::concat(p.clone()));
                    }
                    next.push((to.clone(), p));
                }
            }
        }
        frontier = next;
        if out.len() > 256 {
            break; // plenty of candidates; keep the prover bounded
        }
    }
    out
}

/// Expansion-search refutation of `phi ⊑ eval2-query`: returns a witness
/// database on which `phi` answers the head tuple but `eval2` does not.
pub fn refute_conjunct<F>(
    phi: &C2Rpq,
    alphabet: &Alphabet,
    cfg: &Config,
    eval2: F,
) -> Option<Witness>
where
    F: Fn(&GraphDb) -> BTreeSet<Vec<NodeId>>,
{
    expect_unlimited(refute_conjunct_governed(
        phi,
        alphabet,
        cfg,
        &Governor::unlimited(),
        eval2,
    ))
}

/// [`refute_conjunct`] under a resource governor: each enumerated
/// expansion is metered as one word (plus one fuel).
pub fn refute_conjunct_governed<F>(
    phi: &C2Rpq,
    alphabet: &Alphabet,
    cfg: &Config,
    gov: &Governor,
    eval2: F,
) -> Result<Option<Witness>, Exhaustion>
where
    F: Fn(&GraphDb) -> BTreeSet<Vec<NodeId>>,
{
    for words in enumerate_word_choices(
        phi,
        cfg.max_word_len,
        cfg.words_per_atom,
        cfg.max_expansions,
    ) {
        gov.count_word()?;
        let Some(e) = expand(phi, &words, alphabet) else {
            return Ok(None);
        };
        debug_assert!(
            phi.evaluate(&e.db).contains(&e.head_nodes),
            "an expansion must satisfy its own conjunct"
        );
        let answers = eval2(&e.db);
        if !answers.contains(&e.head_nodes) {
            let words_str: Vec<String> = words.iter().map(|w| alphabet.word_to_string(w)).collect();
            return Ok(Some(Witness {
                db: e.db,
                tuple: e.head_nodes,
                description: format!(
                    "canonical expansion with atom words [{}]",
                    words_str.join(", ")
                ),
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_graph::generate;

    #[allow(clippy::type_complexity)]
    fn u(disjuncts: &[(&[&str], &[(&str, &str, &str)])], al: &mut Alphabet) -> Uc2Rpq {
        Uc2Rpq::new(
            disjuncts
                .iter()
                .map(|(h, atoms)| C2Rpq::parse(h, atoms, al).unwrap())
                .collect(),
        )
        .unwrap()
    }

    /// Brute-force cross-validation: containment on a set of random small
    /// databases (refutes only; used to sanity-check Contained verdicts).
    fn no_random_counterexample(q1: &Uc2Rpq, q2: &Uc2Rpq, labels: &[&str]) -> bool {
        for seed in 0..30u64 {
            let db = generate::random_gnm(4, 7, labels, seed);
            let a1 = q1.evaluate(&db);
            let a2 = q2.evaluate(&db);
            if !a1.is_subset(&a2) {
                return false;
            }
        }
        true
    }

    #[test]
    fn chain_collapse_exact_path() {
        let mut al = Alphabet::new();
        // (x)-a->(m)-b->(y) ⊑ (x)-a b|c->(y).
        let q1 = u(
            &[(&["x", "y"], &[("a", "x", "m"), ("b", "m", "y")])],
            &mut al,
        );
        let q2 = u(&[(&["x", "y"], &[("a b|c", "x", "y")])], &mut al);
        let out = check(&q1, &q2, &al, &Config::default());
        assert!(out.is_contained(), "{out}");
        let out = check(&q2, &q1, &al, &Config::default());
        assert!(out.is_not_contained(), "{out}");
    }

    #[test]
    fn homomorphism_proof_for_branching_queries() {
        let mut al = Alphabet::new();
        // φ: x has both an a-child and a b-child; ψ: x has an a-child.
        let q1 = u(&[(&["x"], &[("a", "x", "y"), ("b", "x", "z")])], &mut al);
        let q2 = u(&[(&["x"], &[("a", "x", "y")])], &mut al);
        let out = check(&q1, &q2, &al, &Config::default());
        assert!(out.is_contained(), "{out}");
        assert!(no_random_counterexample(&q1, &q2, &["a", "b"]));
        // Converse fails: witness must be produced by expansion search.
        let out = check(&q2, &q1, &al, &Config::default());
        let w = out.witness().expect("not contained");
        assert!(q2.evaluate(&w.db).contains(&w.tuple));
        assert!(!q1.evaluate(&w.db).contains(&w.tuple));
    }

    #[test]
    fn union_absorbs_disjuncts() {
        let mut al = Alphabet::new();
        let q1 = u(&[(&["x", "y"], &[("a a", "x", "y")])], &mut al);
        let q2 = u(
            &[
                (&["x", "y"], &[("a", "x", "m"), ("a", "m", "y")]),
                (&["x", "y"], &[("b", "x", "y")]),
            ],
            &mut al,
        );
        let out = check(&q1, &q2, &al, &Config::default());
        assert!(out.is_contained(), "{out}");
    }

    #[test]
    fn triangle_queries_from_the_paper() {
        let mut al = Alphabet::new();
        // The triangle query is contained in the single-edge query.
        let tri = u(
            &[(
                &["x", "y"],
                &[("r", "x", "y"), ("r", "x", "z"), ("r", "y", "z")],
            )],
            &mut al,
        );
        let edge = u(&[(&["x", "y"], &[("r", "x", "y")])], &mut al);
        let out = check(&tri, &edge, &al, &Config::default());
        assert!(out.is_contained(), "{out}");
        // Converse fails.
        let out = check(&edge, &tri, &al, &Config::default());
        let w = out.witness().expect("edge ⋢ triangle");
        assert!(!tri.evaluate(&w.db).contains(&w.tuple));
    }

    #[test]
    fn fold_containment_through_conjuncts() {
        let mut al = Alphabet::new();
        // p(x,y) ⊑ ∃z: p(x,z) ∧ p(y,z)-ish? Use the paper's folding:
        // p(x,y) ⊑ p p⁻ p as chains (exercises the exact path through
        // conjuncts written with explicit middles).
        let q1 = u(&[(&["x", "y"], &[("p", "x", "y")])], &mut al);
        let q2 = u(
            &[(
                &["x", "y"],
                &[("p", "x", "m1"), ("p", "m2", "m1"), ("p", "m2", "y")],
            )],
            &mut al,
        );
        let out = check(&q1, &q2, &al, &Config::default());
        assert!(out.is_contained(), "{out}");
        assert!(no_random_counterexample(&q1, &q2, &["p"]));
    }

    #[test]
    fn unsatisfiable_left_disjunct_is_contained() {
        let mut al = Alphabet::new();
        let q1 = u(&[(&["x", "y"], &[("∅", "x", "y")])], &mut al);
        let q2 = u(&[(&["x", "y"], &[("a", "x", "y")])], &mut al);
        assert!(check(&q1, &q2, &al, &Config::default()).is_contained());
    }

    #[test]
    fn arity_mismatch_is_unknown() {
        let mut al = Alphabet::new();
        let q1 = u(&[(&["x"], &[("a", "x", "y")])], &mut al);
        let q2 = u(&[(&["x", "y"], &[("a", "x", "y")])], &mut al);
        assert!(check(&q1, &q2, &al, &Config::default()).is_unknown());
    }

    #[test]
    fn config_limits_surface_as_structured_unknown() {
        use rq_automata::{Limits, Resource};
        let mut al = Alphabet::new();
        let q1 = u(&[(&["x"], &[("a", "x", "y"), ("b", "x", "z")])], &mut al);
        let q2 = u(&[(&["x"], &[("a", "x", "y")])], &mut al);
        let cfg = Config {
            limits: Limits::unlimited().with_fuel(1),
            ..Config::default()
        };
        let out = check(&q1, &q2, &al, &cfg);
        let r = out
            .report()
            .expect("fuel starvation must surface as Unknown");
        assert_eq!(r.exhaustion.as_ref().unwrap().resource, Resource::Fuel);
        assert!(r.counters.fuel_spent > 0);
        // Unlimited default limits keep the definite verdict.
        assert!(check(&q1, &q2, &al, &Config::default()).is_contained());
    }

    #[test]
    fn refutation_finds_star_length_counterexamples() {
        let mut al = Alphabet::new();
        // a* ⊑ a|ε fails with witness word aa.
        let q1 = u(&[(&["x", "y"], &[("a*", "x", "y")])], &mut al);
        let q2 = u(&[(&["x", "y"], &[("a|ε", "x", "y")])], &mut al);
        let out = check(&q1, &q2, &al, &Config::default());
        let w = out.witness().expect("not contained");
        assert_eq!(w.db.num_edges(), 2, "shortest counterexample word is aa");
    }

    #[test]
    fn cyclic_conjunct_refutation() {
        let mut al = Alphabet::new();
        // "x on an a-cycle of length 2" vs "x has an a-self-loop".
        let cyc2 = u(&[(&["x"], &[("a", "x", "y"), ("a", "y", "x")])], &mut al);
        let selfloop = u(&[(&["x"], &[("a", "x", "x")])], &mut al);
        // cyc2 ⋢ selfloop (two distinct nodes beat it).
        let out = check(&cyc2, &selfloop, &al, &Config::default());
        assert!(out.is_not_contained(), "{out}");
        // selfloop ⊑ cyc2 (take y = x).
        let out = check(&selfloop, &cyc2, &al, &Config::default());
        assert!(out.is_contained(), "{out}");
    }

    #[test]
    fn definite_answers_agree_with_random_semantics() {
        // Fuzz: every definite verdict must be consistent with evaluation
        // on random databases.
        let mut al = Alphabet::new();
        let queries = [
            u(&[(&["x", "y"], &[("a+", "x", "y")])], &mut al),
            u(&[(&["x", "y"], &[("a", "x", "y")])], &mut al),
            u(&[(&["x", "y"], &[("a a*", "x", "y")])], &mut al),
            u(
                &[(&["x", "y"], &[("a", "x", "m"), ("a*", "m", "y")])],
                &mut al,
            ),
            u(
                &[(&["x", "y"], &[("a", "x", "y"), ("b", "x", "w")])],
                &mut al,
            ),
        ];
        let cfg = Config::default();
        for (i, q1) in queries.iter().enumerate() {
            for (j, q2) in queries.iter().enumerate() {
                let out = check(q1, q2, &al, &cfg);
                match out.decided() {
                    Some(true) => {
                        assert!(
                            no_random_counterexample(q1, q2, &["a", "b"]),
                            "claimed {i} ⊑ {j} but random db refutes"
                        );
                    }
                    Some(false) => {
                        let w = out.witness().unwrap();
                        assert!(q1.evaluate(&w.db).contains(&w.tuple), "{i} vs {j}");
                        assert!(!q2.evaluate(&w.db).contains(&w.tuple), "{i} vs {j}");
                    }
                    None => {}
                }
            }
        }
    }
}
