//! GRQ → RQ translation and GRQ containment (Theorem 8).
//!
//! A GRQ program's recursion is exactly transitive closure, so it maps
//! back into the RQ algebra: nonrecursive predicates become
//! union-of-conjunction expressions, each TC pair becomes a `Closure`
//! node. Combined with the arity encoding ([`super::arity`]) this gives
//! the paper's Theorem 8 reduction: "the query-containment problem for
//! GRQ is 2EXPSPACE-complete", decided through the RQ checker.

use super::arity::encode_query;
use crate::containment::{Config, Outcome};
use crate::rpq::TwoRpq;
use crate::rq::{RqExpr, RqQuery};
use rq_automata::{Alphabet, Regex};
use rq_datalog::ast::{Query, Rule, Term};
use rq_datalog::depgraph::DepGraph;
use rq_datalog::grq::{analyze_grq, GrqViolation};
use rq_datalog::validate::{validate_query, ValidationError};
use std::collections::BTreeMap;
use std::fmt;

/// Errors of the GRQ → RQ translation.
#[derive(Debug, Clone, PartialEq)]
pub enum GrqToRqError {
    /// The program fails Datalog validation.
    Invalid(ValidationError),
    /// The program is not in the GRQ fragment.
    NotGrq(GrqViolation),
    /// An EDB predicate is not binary (apply [`encode_query`] first).
    NonBinaryEdb { predicate: String, arity: usize },
    /// Rules with constants are outside the RQ algebra.
    ConstantsUnsupported { constant: String },
    /// The goal predicate has no definition.
    UnknownGoal { goal: String },
}

impl fmt::Display for GrqToRqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrqToRqError::Invalid(e) => write!(f, "invalid program: {e}"),
            GrqToRqError::NotGrq(v) => write!(f, "not a GRQ program: {v}"),
            GrqToRqError::NonBinaryEdb { predicate, arity } => write!(
                f,
                "EDB predicate {predicate} has arity {arity}; apply the arity encoding first"
            ),
            GrqToRqError::ConstantsUnsupported { constant } => {
                write!(
                    f,
                    "constant \"{constant}\" cannot be expressed in the RQ algebra"
                )
            }
            GrqToRqError::UnknownGoal { goal } => write!(f, "unknown goal {goal}"),
        }
    }
}

impl std::error::Error for GrqToRqError {}

struct FromGrq<'a> {
    alphabet: &'a mut Alphabet,
    defs: BTreeMap<String, RqQuery>,
    counter: usize,
}

impl<'a> FromGrq<'a> {
    fn fresh(&mut self, tag: &str) -> String {
        self.counter += 1;
        format!("_{tag}{}", self.counter)
    }

    /// The expression for `pred(args)`.
    fn atom_expr(&mut self, pred: &str, args: &[String]) -> Result<RqExpr, GrqToRqError> {
        if let Some(def) = self.defs.get(pred).cloned() {
            return Ok(self.instantiate(&def, args));
        }
        // EDB: must be binary.
        if args.len() != 2 {
            return Err(GrqToRqError::NonBinaryEdb {
                predicate: pred.to_owned(),
                arity: args.len(),
            });
        }
        let label = self.alphabet.intern(pred);
        Ok(RqExpr::edge(label, args[0].clone(), args[1].clone()))
    }

    /// Instantiate a predicate definition at the given argument names.
    fn instantiate(&mut self, def: &RqQuery, args: &[String]) -> RqExpr {
        debug_assert_eq!(def.head.len(), args.len());
        // α-rename the definition into a private variable space.
        self.counter += 1;
        let tag = self.counter;
        let prefixed = |v: &str| format!("_i{tag}_{v}");
        let mut expr = def.expr.rename_all(&prefixed);
        let heads: Vec<String> = def.head.iter().map(|h| prefixed(h)).collect();
        // First occurrence of each arg: plain rename; duplicates: equate
        // by selection and project the extra column away.
        let mut assigned: BTreeMap<&str, usize> = BTreeMap::new();
        let mut dup_cols: Vec<String> = Vec::new();
        for (i, arg) in args.iter().enumerate() {
            if let Some(&_first) = assigned.get(arg.as_str()) {
                dup_cols.push(heads[i].clone());
            } else {
                assigned.insert(arg, i);
                let from = heads[i].clone();
                let to = arg.clone();
                expr = expr.rename_all(&move |v: &str| {
                    if v == from {
                        to.clone()
                    } else {
                        v.to_owned()
                    }
                });
            }
        }
        for (i, arg) in args.iter().enumerate() {
            if heads[i] != args[i] && dup_cols.contains(&heads[i]) {
                expr = expr
                    .select_eq(arg.clone(), heads[i].clone())
                    .project(heads[i].clone());
            }
        }
        expr
    }

    /// The expression of one rule body, projected to the rule's head
    /// variables renamed to the canonical `g0..gk-1`.
    fn rule_expr(&mut self, rule: &Rule, canon: &[String]) -> Result<RqExpr, GrqToRqError> {
        // Reject constants.
        for atom in std::iter::once(&rule.head).chain(&rule.body) {
            for t in &atom.terms {
                if let Term::Const(c) = t {
                    return Err(GrqToRqError::ConstantsUnsupported {
                        constant: c.clone(),
                    });
                }
            }
        }
        // Private variable space for this rule.
        let tag = self.fresh("r");
        let rv = |v: &str| format!("{tag}_{v}");
        // Conjunction of body atoms.
        let mut expr: Option<RqExpr> = None;
        for atom in &rule.body {
            let args: Vec<String> = atom
                .terms
                .iter()
                .map(|t| rv(t.as_var().expect("constants rejected above")))
                .collect();
            let a = self.atom_expr(&atom.predicate, &args)?;
            expr = Some(match expr {
                None => a,
                Some(e) => e.and(a),
            });
        }
        let mut expr = expr.expect("validated rules have nonempty bodies");
        // Project out existential variables.
        let head_vars: Vec<String> = rule
            .head
            .terms
            .iter()
            .map(|t| rv(t.as_var().expect("constants rejected above")))
            .collect();
        for v in rule
            .body
            .iter()
            .flat_map(|a| a.variables())
            .map(rv)
            .collect::<std::collections::BTreeSet<String>>()
        {
            if !head_vars.contains(&v) {
                expr = expr.project(v);
            }
        }
        // Rename head variables to the canonical names; duplicates get an
        // ε-atom to materialize the extra equal column.
        let mut named: BTreeMap<String, String> = BTreeMap::new();
        for (i, hv) in head_vars.iter().enumerate() {
            if let Some(first_canon) = named.get(hv) {
                // hv already bound to a canonical name: add an ε-atom tying
                // the new canonical column to the first.
                let eps = TwoRpq::new(Regex::Epsilon);
                expr = expr.and(RqExpr::rel2(eps, first_canon.clone(), canon[i].clone()));
            } else {
                let from = hv.clone();
                let to = canon[i].clone();
                expr = expr.rename_all(&move |v: &str| {
                    if v == from {
                        to.clone()
                    } else {
                        v.to_owned()
                    }
                });
                named.insert(hv.clone(), canon[i].clone());
            }
        }
        Ok(expr)
    }
}

/// Translate a GRQ query over binary EDB relations into the RQ algebra.
///
/// Labels are interned into `alphabet`; the resulting query has canonical
/// head variables `g0..gk-1` and answers exactly the Datalog query's goal
/// relation on the corresponding graph database
/// ([`super::bridge::factdb_to_graphdb`]).
pub fn grq_to_rq(query: &Query, alphabet: &mut Alphabet) -> Result<RqQuery, GrqToRqError> {
    validate_query(query).map_err(GrqToRqError::Invalid)?;
    let analysis = analyze_grq(&query.program).map_err(GrqToRqError::NotGrq)?;
    let tc_of: BTreeMap<&str, &rq_datalog::grq::TcDef> = analysis
        .tc_defs
        .iter()
        .map(|d| (d.tc_pred.as_str(), d))
        .collect();
    let dg = DepGraph::new(&query.program);
    let arities = query.program.predicate_arities();
    let idb = query.program.idb_predicates();
    let mut tr = FromGrq {
        alphabet,
        defs: BTreeMap::new(),
        counter: 0,
    };

    for scc in &dg.sccs {
        for &pi in scc {
            let pred = dg.predicates[pi].clone();
            if !idb.contains(pred.as_str()) {
                continue;
            }
            let k = arities[pred.as_str()];
            let canon: Vec<String> = (0..k).map(|i| format!("g{i}")).collect();
            let def = if let Some(tc) = tc_of.get(pred.as_str()) {
                // Closure over the base predicate.
                let from = tr.fresh("tcx");
                let to = tr.fresh("tcy");
                let base = tr.atom_expr(&tc.base_pred.clone(), &[from.clone(), to.clone()])?;
                let expr = base.closure(from.clone(), to.clone());
                // Canonicalize head names.
                let expr = expr.rename_all(&{
                    let (f, t) = (from.clone(), to.clone());
                    let (c0, c1) = (canon[0].clone(), canon[1].clone());
                    move |v: &str| {
                        if v == f {
                            c0.clone()
                        } else if v == t {
                            c1.clone()
                        } else {
                            v.to_owned()
                        }
                    }
                });
                RqQuery::new(canon.clone(), expr).expect("closure definition is well-formed")
            } else {
                let mut branches = Vec::new();
                for rule in query.program.rules_for(&pred) {
                    branches.push(tr.rule_expr(rule, &canon)?);
                }
                let expr = branches
                    .into_iter()
                    .reduce(RqExpr::or)
                    .expect("IDB predicates have at least one rule");
                RqQuery::new(canon.clone(), expr).map_err(|e| {
                    GrqToRqError::Invalid(ValidationError::UnsafeRule {
                        rule: format!("definition of {pred}"),
                        variable: e.to_string(),
                    })
                })?
            };
            tr.defs.insert(pred, def);
        }
    }

    match tr.defs.get(query.goal.as_str()) {
        Some(def) => Ok(def.clone()),
        None => {
            // EDB goal: the identity query.
            let k = arities.get(query.goal.as_str()).copied().ok_or_else(|| {
                GrqToRqError::UnknownGoal {
                    goal: query.goal.clone(),
                }
            })?;
            if k != 2 {
                return Err(GrqToRqError::NonBinaryEdb {
                    predicate: query.goal.clone(),
                    arity: k,
                });
            }
            let label = tr.alphabet.intern(&query.goal);
            Ok(RqQuery::new(
                vec!["g0".into(), "g1".into()],
                RqExpr::edge(label, "g0", "g1"),
            )
            .expect("edge query is well-formed"))
        }
    }
}

/// Decide containment of two GRQ queries (Theorem 8): apply the arity
/// encoding, translate both to RQ over a shared alphabet, and run the RQ
/// checker.
pub fn grq_containment(q1: &Query, q2: &Query, cfg: &Config) -> Outcome {
    let e1 = encode_query(q1);
    let e2 = encode_query(q2);
    let mut alphabet = Alphabet::new();
    let r1 = match grq_to_rq(&e1, &mut alphabet) {
        Ok(r) => r,
        Err(e) => return Outcome::unknown(format!("left query: {e}")),
    };
    let r2 = match grq_to_rq(&e2, &mut alphabet) {
        Ok(r) => r,
        Err(e) => return Outcome::unknown(format!("right query: {e}")),
    };
    crate::containment::rq::check(&r1, &r2, &alphabet, cfg)
}

/// Re-export for callers that need to encode fact databases alongside
/// [`grq_containment`]'s encoded queries.
pub use super::arity::encode_factdb as encode_facts;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::bridge::factdb_to_graphdb;
    use rq_datalog::parser::parse_program;
    use rq_datalog::{evaluate, FactDb};
    use std::collections::BTreeSet;

    fn chain_edb(n: usize) -> FactDb {
        let mut db = FactDb::new();
        for i in 0..n - 1 {
            db.add_fact("e", &[&format!("v{i}"), &format!("v{}", i + 1)]);
        }
        db
    }

    /// Compare Datalog evaluation with RQ evaluation of the translation.
    fn assert_equivalent(q: &Query, edb: &FactDb) {
        let mut al = Alphabet::new();
        let rq = grq_to_rq(q, &mut al).expect("translation");
        let gdb = factdb_to_graphdb(edb).expect("binary database");
        let datalog: BTreeSet<Vec<String>> = evaluate(q, edb)
            .iter()
            .map(|t| t.iter().map(|&v| edb.value_name(v).to_owned()).collect())
            .collect();
        let rq_ans: BTreeSet<Vec<String>> = rq
            .evaluate(&gdb)
            .into_iter()
            .map(|t| t.into_iter().map(|n| gdb.display_node(n)).collect())
            .collect();
        assert_eq!(datalog, rq_ans);
    }

    #[test]
    fn tc_program_roundtrips() {
        let p = parse_program("T(X, Y) :- e(X, Y).\nT(X, Z) :- T(X, Y), e(Y, Z).").unwrap();
        let q = Query::new(p, "T");
        assert_equivalent(&q, &chain_edb(6));
    }

    #[test]
    fn layered_grq_roundtrips() {
        // TC over a defined base (join of two relations), plus projection.
        let p = parse_program(
            "Hop(X, Z) :- e(X, Y), f(Y, Z).\n\
             T(X, Y) :- Hop(X, Y).\n\
             T(X, Z) :- T(X, Y), Hop(Y, Z).\n\
             Ans(X) :- T(X, Y).",
        )
        .unwrap();
        let q = Query::new(p, "Ans");
        let mut edb = FactDb::new();
        for i in 0..4 {
            edb.add_fact("e", &[&format!("a{i}"), &format!("b{i}")]);
            edb.add_fact("f", &[&format!("b{i}"), &format!("a{}", i + 1)]);
        }
        assert_equivalent(&q, &edb);
    }

    #[test]
    fn repeated_head_variables_roundtrip() {
        let p = parse_program("Diag(X, X) :- e(X, Y).").unwrap();
        let q = Query::new(p, "Diag");
        assert_equivalent(&q, &chain_edb(4));
    }

    #[test]
    fn repeated_atom_arguments_roundtrip() {
        // Self-loops through an IDB definition.
        let p = parse_program("E2(X, Y) :- e(X, Y).\nLoopy(X) :- E2(X, X).").unwrap();
        let q = Query::new(p, "Loopy");
        let mut edb = FactDb::new();
        edb.add_fact("e", &["a", "a"]);
        edb.add_fact("e", &["a", "b"]);
        assert_equivalent(&q, &edb);
    }

    #[test]
    fn non_grq_is_rejected() {
        let p = parse_program("Q(X) :- e(X, Y), Q(Y).\nQ(X) :- p(X, X).").unwrap();
        let q = Query::new(p, "Q");
        let mut al = Alphabet::new();
        assert!(matches!(
            grq_to_rq(&q, &mut al),
            Err(GrqToRqError::NotGrq(_))
        ));
    }

    #[test]
    fn constants_are_rejected() {
        let p = parse_program("Q(X) :- e(X, alice).").unwrap();
        let q = Query::new(p, "Q");
        let mut al = Alphabet::new();
        assert!(matches!(
            grq_to_rq(&q, &mut al),
            Err(GrqToRqError::ConstantsUnsupported { .. })
        ));
    }

    #[test]
    fn grq_containment_basic() {
        let cfg = Config::default();
        let tc = Query::new(
            parse_program("T(X, Y) :- e(X, Y).\nT(X, Z) :- T(X, Y), e(Y, Z).").unwrap(),
            "T",
        );
        let edge = Query::new(parse_program("P(X, Y) :- e(X, Y).").unwrap(), "P");
        // edge ⊑ TC(edge).
        let out = grq_containment(&edge, &tc, &cfg);
        assert!(out.is_contained(), "{out}");
        // TC(edge) ⋢ edge.
        let out = grq_containment(&tc, &edge, &cfg);
        assert!(out.is_not_contained(), "{out}");
    }

    #[test]
    fn grq_containment_with_ternary_edb() {
        let cfg = Config::default();
        // Reachability over a ternary flight relation (exercises the
        // Theorem 8 arity encoding).
        let reach = Query::new(
            parse_program(
                "Hop(X, Y) :- flight(X, C, Y).\n\
                 T(X, Y) :- Hop(X, Y).\n\
                 T(X, Z) :- T(X, Y), Hop(Y, Z).",
            )
            .unwrap(),
            "T",
        );
        let hop = Query::new(
            parse_program("Hop(X, Y) :- flight(X, C, Y).").unwrap(),
            "Hop",
        );
        let out = grq_containment(&hop, &reach, &cfg);
        assert!(out.is_contained(), "{out}");
        let out = grq_containment(&reach, &hop, &cfg);
        assert!(out.is_not_contained(), "{out}");
    }
}
