//! GraphDb ⇆ FactDb conversion.
//!
//! "A graph database can be seen as a (finite) relational structure over
//! the set Σ of binary relational symbols" (§3.1). The bridge also emits a
//! unary `node` relation listing every object, so that translated queries
//! whose regular expressions accept ε (which answer `(x, x)` for *every*
//! object, including isolated ones) keep exactly the same semantics.

use rq_datalog::FactDb;
use rq_graph::{GraphDb, NodeId};

/// The reserved unary predicate listing all objects.
pub const NODE_PREDICATE: &str = "node";

/// The constant name used for `node` in the relational view.
pub fn node_constant(db: &GraphDb, node: NodeId) -> String {
    match db.node_name(node) {
        Some(n) => n.to_owned(),
        None => format!("_n{}", node.0),
    }
}

/// View a graph database as a relational database: one binary relation per
/// edge label plus the unary [`NODE_PREDICATE`].
pub fn graphdb_to_factdb(db: &GraphDb) -> FactDb {
    let mut out = FactDb::new();
    for n in db.nodes() {
        let name = node_constant(db, n);
        out.add_fact(NODE_PREDICATE, &[&name]);
    }
    for label in db.alphabet().labels() {
        let lname = db.alphabet().name(label).to_owned();
        for &(s, d) in db.edges(label) {
            out.add_fact(&lname, &[&node_constant(db, s), &node_constant(db, d)]);
        }
    }
    out
}

/// View a relational database with only unary/binary relations as a graph
/// database: binary relations become edge labels; the [`NODE_PREDICATE`]
/// relation (if present) and the endpoints of every edge become nodes.
/// Returns `None` if any relation has arity > 2.
pub fn factdb_to_graphdb(db: &FactDb) -> Option<GraphDb> {
    let mut out = GraphDb::new();
    for (pred, rel) in db.relations() {
        match rel.arity() {
            1 => {
                for t in rel.iter() {
                    out.node(db.value_name(t[0]));
                }
            }
            2 => {
                let label = out.label(pred);
                for t in rel.iter() {
                    let s = out.node(db.value_name(t[0]));
                    let d = out.node(db.value_name(t[1]));
                    out.add_edge(s, label, d);
                }
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_graph::generate;

    #[test]
    fn graph_to_facts_roundtrip() {
        let mut db = generate::random_gnm(10, 20, &["r", "s"], 42);
        let iso = db.add_node(); // isolated node must survive
        let facts = graphdb_to_factdb(&db);
        assert_eq!(
            facts.relation(NODE_PREDICATE).unwrap().len(),
            db.num_nodes()
        );
        let back = factdb_to_graphdb(&facts).unwrap();
        assert_eq!(back.num_nodes(), db.num_nodes());
        assert_eq!(back.num_edges(), db.num_edges());
        let _ = iso;
    }

    #[test]
    fn ternary_relations_are_rejected() {
        let mut facts = FactDb::new();
        facts.add_fact("t", &["a", "b", "c"]);
        assert!(factdb_to_graphdb(&facts).is_none());
    }

    #[test]
    fn edge_multiplicity_is_set_semantics_both_ways() {
        let mut db = GraphDb::new();
        let x = db.node("x");
        let y = db.node("y");
        let r = db.label("r");
        db.add_edge(x, r, y);
        db.add_edge(x, r, y);
        let facts = graphdb_to_factdb(&db);
        assert_eq!(facts.relation("r").unwrap().len(), 1);
    }
}
