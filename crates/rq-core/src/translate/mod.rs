//! Bridges between the RQ algebra, Datalog, and the two database models.
//!
//! * [`bridge`] — [`GraphDb`](rq_graph::GraphDb) ⇆
//!   [`FactDb`](rq_datalog::FactDb) conversion;
//! * [`to_datalog`] — the §4.1 embedding of RQ into Datalog, where
//!   "recursion can be used only to define transitive closure of binary
//!   relations" (the output is always GRQ, tested);
//! * [`from_grq`] — the converse: GRQ programs over binary EDBs back into
//!   the RQ algebra, plus GRQ containment via reduction to RQ containment
//!   (Theorem 8);
//! * [`arity`] — the arity-reduction encoding ("it is possible to encode
//!   relations of arbitrary arity by binary relations [48]") that lifts
//!   the reduction to k-ary EDBs.

pub mod arity;
pub mod bridge;
pub mod from_grq;
pub mod to_datalog;

pub use arity::{encode_factdb, encode_query};
pub use bridge::{factdb_to_graphdb, graphdb_to_factdb, node_constant};
pub use from_grq::{grq_containment, grq_to_rq, GrqToRqError};
pub use to_datalog::rq_to_datalog;
