//! The §4.1 embedding of RQ into Datalog.
//!
//! Each operator becomes the rule schema the paper lists — atoms, selection,
//! projection, union, conjunction, and transitive closure (the only
//! recursion) — so the output is always a **GRQ** program (asserted by the
//! tests via the `rq-datalog` recognizer). 2RPQ atoms are compiled
//! structurally: concatenation chains rules, union adds rules, `+`
//! generates a transitive-closure pair, and `*`/`?` add an ε case through
//! the `Node` (active-domain) predicate backed by the bridge's unary
//! `node` relation.

use crate::rq::{RqExpr, RqQuery};
use rq_automata::{Alphabet, Regex};
use rq_datalog::ast::{Atom, Program, Query, Rule, Term};

/// Mangle an RQ variable into a Datalog variable (Datalog's concrete
/// syntax requires an uppercase start).
fn dvar(v: &str) -> Term {
    Term::Var(format!("V_{v}"))
}

fn fresh_vars(n: usize, tag: &str) -> Vec<Term> {
    (0..n).map(|i| Term::Var(format!("{tag}{i}"))).collect()
}

struct Translator<'a> {
    alphabet: &'a Alphabet,
    rules: Vec<Rule>,
    counter: usize,
    node_pred_used: bool,
}

impl<'a> Translator<'a> {
    fn fresh_pred(&mut self, tag: &str) -> String {
        self.counter += 1;
        format!("{tag}{}", self.counter)
    }

    /// Translate an expression; returns `(predicate, columns)` where
    /// `columns` names the RQ variable of each predicate position.
    fn expr(&mut self, e: &RqExpr) -> (String, Vec<String>) {
        match e {
            RqExpr::Edge { label, from, to } => {
                let p = self.fresh_pred("Q");
                let lname = self.alphabet.name(*label).to_owned();
                if from == to {
                    self.rules.push(Rule::new(
                        Atom {
                            predicate: p.clone(),
                            terms: vec![dvar(from)],
                        },
                        vec![Atom {
                            predicate: lname,
                            terms: vec![dvar(from), dvar(from)],
                        }],
                    ));
                    (p, vec![from.clone()])
                } else {
                    self.rules.push(Rule::new(
                        Atom {
                            predicate: p.clone(),
                            terms: vec![dvar(from), dvar(to)],
                        },
                        vec![Atom {
                            predicate: lname,
                            terms: vec![dvar(from), dvar(to)],
                        }],
                    ));
                    (p, vec![from.clone(), to.clone()])
                }
            }
            RqExpr::Rel2 { rel, from, to } => {
                let inner = self.regex(rel.regex());
                let p = self.fresh_pred("Q");
                if from == to {
                    self.rules.push(Rule::new(
                        Atom {
                            predicate: p.clone(),
                            terms: vec![dvar(from)],
                        },
                        vec![Atom {
                            predicate: inner,
                            terms: vec![dvar(from), dvar(from)],
                        }],
                    ));
                    (p, vec![from.clone()])
                } else {
                    self.rules.push(Rule::new(
                        Atom {
                            predicate: p.clone(),
                            terms: vec![dvar(from), dvar(to)],
                        },
                        vec![Atom {
                            predicate: inner,
                            terms: vec![dvar(from), dvar(to)],
                        }],
                    ));
                    (p, vec![from.clone(), to.clone()])
                }
            }
            RqExpr::Select { inner, v1, v2 } => {
                let (ip, cols) = self.expr(inner);
                let p = self.fresh_pred("Q");
                // Body uses v1's variable wherever v2's column sits; the
                // head repeats it so the arity is preserved.
                let body_terms: Vec<Term> = cols
                    .iter()
                    .map(|c| if c == v2 { dvar(v1) } else { dvar(c) })
                    .collect();
                self.rules.push(Rule::new(
                    Atom {
                        predicate: p.clone(),
                        terms: body_terms.clone(),
                    },
                    vec![Atom {
                        predicate: ip,
                        terms: body_terms,
                    }],
                ));
                (p, cols)
            }
            RqExpr::Project { inner, var } => {
                let (ip, cols) = self.expr(inner);
                let p = self.fresh_pred("Q");
                let kept: Vec<String> = cols.iter().filter(|c| *c != var).cloned().collect();
                self.rules.push(Rule::new(
                    Atom {
                        predicate: p.clone(),
                        terms: kept.iter().map(|c| dvar(c)).collect(),
                    },
                    vec![Atom {
                        predicate: ip,
                        terms: cols.iter().map(|c| dvar(c)).collect(),
                    }],
                ));
                (p, kept)
            }
            RqExpr::Union { left, right } => {
                let (lp, lcols) = self.expr(left);
                let (rp, rcols) = self.expr(right);
                let p = self.fresh_pred("Q");
                let head = Atom {
                    predicate: p.clone(),
                    terms: lcols.iter().map(|c| dvar(c)).collect(),
                };
                self.rules.push(Rule::new(
                    head.clone(),
                    vec![Atom {
                        predicate: lp,
                        terms: lcols.iter().map(|c| dvar(c)).collect(),
                    }],
                ));
                // The right side's columns are the same variables, possibly
                // in another order.
                self.rules.push(Rule::new(
                    head,
                    vec![Atom {
                        predicate: rp,
                        terms: rcols.iter().map(|c| dvar(c)).collect(),
                    }],
                ));
                (p, lcols)
            }
            RqExpr::And { left, right } => {
                let (lp, lcols) = self.expr(left);
                let (rp, rcols) = self.expr(right);
                let p = self.fresh_pred("Q");
                let mut cols = lcols.clone();
                for c in &rcols {
                    if !cols.contains(c) {
                        cols.push(c.clone());
                    }
                }
                self.rules.push(Rule::new(
                    Atom {
                        predicate: p.clone(),
                        terms: cols.iter().map(|c| dvar(c)).collect(),
                    },
                    vec![
                        Atom {
                            predicate: lp,
                            terms: lcols.iter().map(|c| dvar(c)).collect(),
                        },
                        Atom {
                            predicate: rp,
                            terms: rcols.iter().map(|c| dvar(c)).collect(),
                        },
                    ],
                ));
                (p, cols)
            }
            RqExpr::Closure { inner, from, to } => {
                let (ip, cols) = self.expr(inner);
                // Base predicate aligned to (from, to).
                let b = self.fresh_pred("B");
                let (x, y, z) = (
                    Term::Var("Tx".into()),
                    Term::Var("Ty".into()),
                    Term::Var("Tz".into()),
                );
                let aligned: Vec<Term> = cols
                    .iter()
                    .map(|c| if c == from { x.clone() } else { y.clone() })
                    .collect();
                self.rules.push(Rule::new(
                    Atom {
                        predicate: b.clone(),
                        terms: vec![x.clone(), y.clone()],
                    },
                    vec![Atom {
                        predicate: ip,
                        terms: aligned,
                    }],
                ));
                // The §4.1 transitive-closure pair.
                let t = self.fresh_pred("T");
                self.rules.push(Rule::new(
                    Atom {
                        predicate: t.clone(),
                        terms: vec![x.clone(), y.clone()],
                    },
                    vec![Atom {
                        predicate: b.clone(),
                        terms: vec![x.clone(), y.clone()],
                    }],
                ));
                self.rules.push(Rule::new(
                    Atom {
                        predicate: t.clone(),
                        terms: vec![x.clone(), z.clone()],
                    },
                    vec![
                        Atom {
                            predicate: t.clone(),
                            terms: vec![x.clone(), y.clone()],
                        },
                        Atom {
                            predicate: b,
                            terms: vec![y.clone(), z.clone()],
                        },
                    ],
                ));
                // Re-expose with the RQ variable names.
                let p = self.fresh_pred("Q");
                self.rules.push(Rule::new(
                    Atom {
                        predicate: p.clone(),
                        terms: vec![dvar(from), dvar(to)],
                    },
                    vec![Atom {
                        predicate: t,
                        terms: vec![dvar(from), dvar(to)],
                    }],
                ));
                (p, vec![from.clone(), to.clone()])
            }
        }
    }

    /// Compile a regular expression to a binary predicate.
    fn regex(&mut self, re: &Regex) -> String {
        match re {
            Regex::Empty => {
                let p = self.fresh_pred("R");
                // Defer to a reserved EDB predicate that is never
                // populated: the relation is empty, and the rule is
                // non-recursive (a self-referential rule would break the
                // GRQ property of the translation).
                let (x, y) = (Term::Var("X".into()), Term::Var("Y".into()));
                self.rules.push(Rule::new(
                    Atom {
                        predicate: p.clone(),
                        terms: vec![x.clone(), y.clone()],
                    },
                    vec![Atom {
                        predicate: "__empty".into(),
                        terms: vec![x, y],
                    }],
                ));
                p
            }
            Regex::Epsilon => {
                let p = self.fresh_pred("R");
                self.node_pred_used = true;
                let x = Term::Var("X".into());
                self.rules.push(Rule::new(
                    Atom {
                        predicate: p.clone(),
                        terms: vec![x.clone(), x.clone()],
                    },
                    vec![Atom {
                        predicate: "Node".into(),
                        terms: vec![x],
                    }],
                ));
                p
            }
            Regex::Letter(l) => {
                let p = self.fresh_pred("R");
                let lname = self.alphabet.name(l.label).to_owned();
                let (x, y) = (Term::Var("X".into()), Term::Var("Y".into()));
                let body = if l.inverse {
                    Atom {
                        predicate: lname,
                        terms: vec![y.clone(), x.clone()],
                    }
                } else {
                    Atom {
                        predicate: lname,
                        terms: vec![x.clone(), y.clone()],
                    }
                };
                self.rules.push(Rule::new(
                    Atom {
                        predicate: p.clone(),
                        terms: vec![x, y],
                    },
                    vec![body],
                ));
                p
            }
            Regex::Concat(parts) => {
                let inner: Vec<String> = parts.iter().map(|e| self.regex(e)).collect();
                let p = self.fresh_pred("R");
                let vars = fresh_vars(parts.len() + 1, "X");
                let body = inner
                    .iter()
                    .enumerate()
                    .map(|(i, ip)| Atom {
                        predicate: ip.clone(),
                        terms: vec![vars[i].clone(), vars[i + 1].clone()],
                    })
                    .collect();
                self.rules.push(Rule::new(
                    Atom {
                        predicate: p.clone(),
                        terms: vec![vars[0].clone(), vars[parts.len()].clone()],
                    },
                    body,
                ));
                p
            }
            Regex::Union(parts) => {
                let inner: Vec<String> = parts.iter().map(|e| self.regex(e)).collect();
                let p = self.fresh_pred("R");
                let (x, y) = (Term::Var("X".into()), Term::Var("Y".into()));
                for ip in inner {
                    self.rules.push(Rule::new(
                        Atom {
                            predicate: p.clone(),
                            terms: vec![x.clone(), y.clone()],
                        },
                        vec![Atom {
                            predicate: ip,
                            terms: vec![x.clone(), y.clone()],
                        }],
                    ));
                }
                p
            }
            Regex::Star(e) => {
                let plus = self.regex(&e.as_ref().clone().plus());
                let p = self.fresh_pred("R");
                self.node_pred_used = true;
                let (x, y) = (Term::Var("X".into()), Term::Var("Y".into()));
                self.rules.push(Rule::new(
                    Atom {
                        predicate: p.clone(),
                        terms: vec![x.clone(), y.clone()],
                    },
                    vec![Atom {
                        predicate: plus,
                        terms: vec![x.clone(), y.clone()],
                    }],
                ));
                self.rules.push(Rule::new(
                    Atom {
                        predicate: p.clone(),
                        terms: vec![x.clone(), x.clone()],
                    },
                    vec![Atom {
                        predicate: "Node".into(),
                        terms: vec![x],
                    }],
                ));
                p
            }
            Regex::Plus(e) => {
                let base = self.regex(e);
                let t = self.fresh_pred("T");
                let (x, y, z) = (
                    Term::Var("X".into()),
                    Term::Var("Y".into()),
                    Term::Var("Z".into()),
                );
                self.rules.push(Rule::new(
                    Atom {
                        predicate: t.clone(),
                        terms: vec![x.clone(), y.clone()],
                    },
                    vec![Atom {
                        predicate: base.clone(),
                        terms: vec![x.clone(), y.clone()],
                    }],
                ));
                self.rules.push(Rule::new(
                    Atom {
                        predicate: t.clone(),
                        terms: vec![x.clone(), z.clone()],
                    },
                    vec![
                        Atom {
                            predicate: t.clone(),
                            terms: vec![x.clone(), y.clone()],
                        },
                        Atom {
                            predicate: base,
                            terms: vec![y.clone(), z.clone()],
                        },
                    ],
                ));
                t
            }
            Regex::Optional(e) => {
                let inner = self.regex(e);
                let p = self.fresh_pred("R");
                self.node_pred_used = true;
                let (x, y) = (Term::Var("X".into()), Term::Var("Y".into()));
                self.rules.push(Rule::new(
                    Atom {
                        predicate: p.clone(),
                        terms: vec![x.clone(), y.clone()],
                    },
                    vec![Atom {
                        predicate: inner,
                        terms: vec![x.clone(), y.clone()],
                    }],
                ));
                self.rules.push(Rule::new(
                    Atom {
                        predicate: p.clone(),
                        terms: vec![x.clone(), x.clone()],
                    },
                    vec![Atom {
                        predicate: "Node".into(),
                        terms: vec![x],
                    }],
                ));
                p
            }
        }
    }
}

/// Translate a regular query into an equivalent Datalog query over the
/// binary edge relations (named by `alphabet`) plus the unary `node`
/// relation of [`super::bridge::graphdb_to_factdb`].
///
/// The output is a **GRQ** program: its only recursion is the §4.1
/// transitive-closure rule pair.
pub fn rq_to_datalog(q: &RqQuery, alphabet: &Alphabet) -> Query {
    let mut tr = Translator {
        alphabet,
        rules: Vec::new(),
        counter: 0,
        node_pred_used: false,
    };
    let (top, cols) = tr.expr(&q.expr);
    let goal = "Goal".to_owned();
    tr.rules.push(Rule::new(
        Atom {
            predicate: goal.clone(),
            terms: q.head.iter().map(|h| dvar(h)).collect(),
        },
        vec![Atom {
            predicate: top,
            terms: cols.iter().map(|c| dvar(c)).collect(),
        }],
    ));
    if tr.node_pred_used {
        tr.rules.push(Rule::new(
            Atom::new("Node", &["X"]),
            vec![Atom::new(super::bridge::NODE_PREDICATE, &["X"])],
        ));
    }
    Query::new(Program::new(tr.rules), goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpq::TwoRpq;
    use crate::translate::bridge::{graphdb_to_factdb, node_constant};
    use rq_datalog::grq::is_grq;
    use rq_datalog::validate::validate_query;
    use rq_graph::generate;
    use std::collections::BTreeSet;

    /// Evaluate both sides on the same database and compare answer sets.
    fn assert_equivalent(q: &RqQuery, db: &rq_graph::GraphDb, alphabet: &Alphabet) {
        let dq = rq_to_datalog(q, alphabet);
        validate_query(&dq).expect("translation must be valid Datalog");
        assert!(is_grq(&dq.program), "translation must land in GRQ (§4.1)");
        let facts = graphdb_to_factdb(db);
        let rel = rq_datalog::evaluate(&dq, &facts);
        let datalog_answers: BTreeSet<Vec<String>> = rel
            .iter()
            .map(|t| t.iter().map(|&v| facts.value_name(v).to_owned()).collect())
            .collect();
        let rq_answers: BTreeSet<Vec<String>> = q
            .evaluate(db)
            .into_iter()
            .map(|t| t.into_iter().map(|n| node_constant(db, n)).collect())
            .collect();
        assert_eq!(rq_answers, datalog_answers);
    }

    #[test]
    fn edge_and_closure_translate() {
        let db = generate::random_gnm(8, 16, &["r"], 3);
        let al = db.alphabet().clone();
        let r = al.get("r").unwrap();
        let q = RqQuery::new(
            vec!["x".into(), "y".into()],
            RqExpr::edge(r, "x", "y").closure("x", "y"),
        )
        .unwrap();
        assert_equivalent(&q, &db, &al);
    }

    #[test]
    fn regex_atoms_translate() {
        let db = generate::random_gnm(7, 14, &["a", "b"], 11);
        let mut al = db.alphabet().clone();
        for re in ["a b", "a|b", "a+", "a*", "a?", "a b-", "(a|b)* a"] {
            let rel = TwoRpq::parse(re, &mut al).unwrap();
            let q =
                RqQuery::new(vec!["x".into(), "y".into()], RqExpr::rel2(rel, "x", "y")).unwrap();
            assert_equivalent(&q, &db, &al);
        }
    }

    #[test]
    fn star_handles_isolated_nodes() {
        // The ε case must cover isolated objects via the node relation.
        let mut db = generate::chain(3, "r");
        db.add_node(); // isolated
        let mut al = db.alphabet().clone();
        let rel = TwoRpq::parse("r*", &mut al).unwrap();
        let q = RqQuery::new(vec!["x".into(), "y".into()], RqExpr::rel2(rel, "x", "y")).unwrap();
        assert_equivalent(&q, &db, &al);
    }

    #[test]
    fn full_algebra_translates() {
        let db = generate::random_gnm(8, 20, &["a", "b"], 23);
        let al = db.alphabet().clone();
        let a = al.get("a").unwrap();
        let b = al.get("b").unwrap();
        // (∃z: a(x,z) ∧ b(z,y)) ∨ (a(x,y) with x=y kept) … exercise every
        // operator incl. selection and a closure.
        let left = RqExpr::edge(a, "x", "z")
            .and(RqExpr::edge(b, "z", "y"))
            .project("z");
        let right = RqExpr::edge(a, "x", "y");
        let body = left.or(right).closure("x", "y");
        let q = RqQuery::new(vec!["x".into(), "y".into()], body).unwrap();
        assert_equivalent(&q, &db, &al);

        let sel = RqExpr::edge(a, "x", "y").select_eq("x", "y");
        let q = RqQuery::new(vec!["x".into(), "y".into()], sel).unwrap();
        assert_equivalent(&q, &db, &al);
    }

    #[test]
    fn triangle_closure_translates() {
        let db = generate::random_gnm(7, 18, &["r"], 31);
        let al = db.alphabet().clone();
        let r = al.get("r").unwrap();
        let body = RqExpr::edge(r, "x", "y")
            .and(RqExpr::edge(r, "y", "z"))
            .and(RqExpr::edge(r, "z", "x"))
            .project("z");
        let q = RqQuery::new(vec!["x".into(), "y".into()], body.closure("x", "y")).unwrap();
        assert_equivalent(&q, &db, &al);
    }

    #[test]
    fn empty_regex_translates_to_empty_relation() {
        let db = generate::chain(3, "r");
        let mut al = db.alphabet().clone();
        let rel = TwoRpq::parse("∅", &mut al).unwrap();
        let q = RqQuery::new(vec!["x".into(), "y".into()], RqExpr::rel2(rel, "x", "y")).unwrap();
        assert_equivalent(&q, &db, &al);
    }
}
