//! Arity reduction: encoding k-ary EDB relations by binary ones.
//!
//! "It is possible to encode relations of arbitrary arity by binary
//! relations [48]" (§4.1) — this is what lifts the RQ containment result
//! from graph Datalog to full GRQ (Theorem 8). A fact `p(a₁, …, aₖ)` with
//! `k ≠ 2` becomes a fresh *tuple object* `e` with binary projection edges
//! `p__i(e, aᵢ)`; a body atom `p(t₁, …, tₖ)` becomes
//! `∃e. p__1(e, t₁) ∧ … ∧ p__k(e, tₖ)`.
//!
//! The encoding is *compositional*: on any graph database `G` the encoded
//! query computes exactly the original query over the decoded relations
//! `p = {(a₁…aₖ) : ∃e. p__i(e, aᵢ)}`, so containment is preserved in both
//! directions.

use rq_datalog::ast::{Atom, Program, Query, Rule, Term};
use rq_datalog::relation::FactDb;
use std::collections::BTreeMap;

/// The binary projection predicate for position `i` (1-based) of `pred`.
pub fn projection_pred(pred: &str, i: usize) -> String {
    format!("{pred}__{i}")
}

/// Rewrite every *EDB* atom of non-binary arity into its binary encoding.
/// Binary EDB atoms and all IDB atoms are left untouched (the RQ algebra
/// handles k-ary IDB predicates natively). Zero-ary EDB atoms are not
/// supported and are left unchanged.
pub fn encode_query(q: &Query) -> Query {
    let idb = q.program.idb_predicates();
    let idb: std::collections::BTreeSet<String> = idb.into_iter().map(str::to_owned).collect();
    let mut counter = 0usize;
    let rules = q
        .program
        .rules
        .iter()
        .map(|r| {
            let mut body = Vec::new();
            for a in &r.body {
                let arity = a.arity();
                if idb.contains(&a.predicate) || arity == 2 || arity == 0 {
                    body.push(a.clone());
                    continue;
                }
                counter += 1;
                let e = Term::Var(format!("Enc{counter}"));
                for (i, t) in a.terms.iter().enumerate() {
                    body.push(Atom {
                        predicate: projection_pred(&a.predicate, i + 1),
                        terms: vec![e.clone(), t.clone()],
                    });
                }
            }
            Rule::new(r.head.clone(), body)
        })
        .collect();
    Query::new(Program::new(rules), q.goal.clone())
}

/// Encode the facts of every non-binary relation accordingly, introducing
/// one fresh tuple constant per fact. Binary relations pass through.
pub fn encode_factdb(db: &FactDb) -> FactDb {
    let mut out = FactDb::new();
    // Preserve the constant interning order for stable names.
    for v in db.domain() {
        out.value(db.value_name(v));
    }
    let mut fact_counter: BTreeMap<String, usize> = BTreeMap::new();
    for (pred, rel) in db.relations() {
        if rel.arity() == 2 || rel.arity() == 0 {
            for t in rel.iter() {
                let named: Vec<&str> = t.iter().map(|&v| db.value_name(v)).collect();
                out.add_fact(pred, &named);
            }
            continue;
        }
        for t in rel.iter() {
            let n = fact_counter.entry(pred.to_owned()).or_insert(0);
            *n += 1;
            let tuple_obj = format!("__t_{pred}_{n}");
            for (i, &v) in t.iter().enumerate() {
                out.add_fact(
                    &projection_pred(pred, i + 1),
                    &[&tuple_obj, db.value_name(v)],
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::parser::parse_program;
    use rq_datalog::{evaluate, grq::is_grq};

    #[test]
    fn ternary_reachability_is_preserved() {
        // Flights with a carrier column: reachable(x,y) via any carrier.
        let p = parse_program(
            "Hop(X, Y) :- Flight(X, C, Y).\n\
             Reach(X, Y) :- Hop(X, Y).\n\
             Reach(X, Z) :- Reach(X, Y), Hop(Y, Z).",
        )
        .unwrap();
        let q = Query::new(p, "Reach");
        assert!(is_grq(&q.program));
        let mut db = FactDb::new();
        db.add_fact("Flight", &["jfk", "aa", "lhr"]);
        db.add_fact("Flight", &["lhr", "ba", "cdg"]);
        db.add_fact("Flight", &["cdg", "af", "fra"]);

        let plain = evaluate(&q, &db);
        let eq = encode_query(&q);
        assert!(is_grq(&eq.program), "encoding must stay in GRQ");
        let edb = encode_factdb(&db);
        let encoded = evaluate(&eq, &edb);
        // Compare by constant names (ids differ between databases).
        let names =
            |db: &FactDb, rel: &rq_datalog::Relation| -> std::collections::BTreeSet<Vec<String>> {
                rel.iter()
                    .map(|t| t.iter().map(|&v| db.value_name(v).to_owned()).collect())
                    .collect()
            };
        assert_eq!(names(&db, &plain), names(&edb, &encoded));
        assert_eq!(plain.len(), 6);
    }

    #[test]
    fn binary_and_idb_atoms_pass_through() {
        let p =
            parse_program("P(X, Y) :- E(X, Y), Q3(X, Y, Z).\nQ3(X, Y, Z) :- T(X, Y, Z).").unwrap();
        let q = Query::new(p, "P");
        let eq = encode_query(&q);
        // E stays; Q3 (an IDB) stays; T (ternary EDB) is encoded.
        let body0 = &eq.program.rules[0].body;
        assert!(body0.iter().any(|a| a.predicate == "E"));
        assert!(body0.iter().any(|a| a.predicate == "Q3"));
        let body1 = &eq.program.rules[1].body;
        assert_eq!(body1.len(), 3);
        assert!(body1.iter().all(|a| a.predicate.starts_with("T__")));
        assert!(body1.iter().all(|a| a.arity() == 2));
    }

    #[test]
    fn unary_relations_are_encoded() {
        let p = parse_program("P(X) :- Color(X), E(X, Y).").unwrap();
        let q = Query::new(p, "P");
        let eq = encode_query(&q);
        let mut db = FactDb::new();
        db.add_fact("Color", &["a"]);
        db.add_fact("E", &["a", "b"]);
        db.add_fact("E", &["c", "d"]);
        let plain = evaluate(&q, &db);
        let encoded = evaluate(&eq, &encode_factdb(&db));
        assert_eq!(plain.len(), 1);
        assert_eq!(encoded.len(), 1);
    }
}
