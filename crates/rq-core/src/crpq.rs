//! Conjunctive 2RPQs and their unions (§3.3).
//!
//! "A C2RPQ is a conjunctive query where instead of atoms r(x, y) we have
//! atoms κ(x, y), where κ is a 2RPQ. To evaluate a C2RPQ Q over a graph
//! database D we first evaluate all the 2RPQs appearing in Q, instantiating
//! each as a binary relation over the elements of D, and then evaluate Q as
//! a conjunctive query over this collection of relations."
//!
//! [`Uc2Rpq`] is the class UC2RPQ: unions of C2RPQs — "not only natural as
//! the graph-database analog of UCQ, but also well-motivated by
//! graph-database applications".

use crate::rpq::TwoRpq;
use rq_automata::{Alphabet, Regex};
use rq_graph::{GraphDb, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An atom `κ(x, y)`: a 2RPQ between two variables (which may coincide).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct C2RpqAtom {
    pub rel: TwoRpq,
    pub from: String,
    pub to: String,
}

impl C2RpqAtom {
    /// Build an atom.
    pub fn new(rel: TwoRpq, from: impl Into<String>, to: impl Into<String>) -> Self {
        C2RpqAtom {
            rel,
            from: from.into(),
            to: to.into(),
        }
    }
}

/// A conjunctive 2RPQ with distinguished (head) variables.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct C2Rpq {
    /// Distinguished variables, in answer-tuple order.
    pub head: Vec<String>,
    pub atoms: Vec<C2RpqAtom>,
}

/// Error building a [`C2Rpq`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum C2RpqError {
    /// A head variable does not occur in any atom.
    UnsafeHead { variable: String },
    /// The body is empty.
    EmptyBody,
}

impl fmt::Display for C2RpqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            C2RpqError::UnsafeHead { variable } => {
                write!(f, "head variable {variable} does not occur in any atom")
            }
            C2RpqError::EmptyBody => write!(f, "a C2RPQ needs at least one atom"),
        }
    }
}

impl std::error::Error for C2RpqError {}

impl C2Rpq {
    /// Build and validate.
    pub fn new(head: Vec<String>, atoms: Vec<C2RpqAtom>) -> Result<C2Rpq, C2RpqError> {
        if atoms.is_empty() {
            return Err(C2RpqError::EmptyBody);
        }
        let vars: BTreeSet<&str> = atoms
            .iter()
            .flat_map(|a| [a.from.as_str(), a.to.as_str()])
            .collect();
        for h in &head {
            if !vars.contains(h.as_str()) {
                return Err(C2RpqError::UnsafeHead {
                    variable: h.clone(),
                });
            }
        }
        Ok(C2Rpq { head, atoms })
    }

    /// Convenience constructor from `(regex-text, from, to)` triples.
    pub fn parse(
        head: &[&str],
        atoms: &[(&str, &str, &str)],
        alphabet: &mut Alphabet,
    ) -> Result<C2Rpq, String> {
        let atoms = atoms
            .iter()
            .map(|(re, from, to)| {
                TwoRpq::parse(re, alphabet)
                    .map(|rel| C2RpqAtom::new(rel, *from, *to))
                    .map_err(|e| e.to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        C2Rpq::new(head.iter().map(|s| (*s).to_string()).collect(), atoms)
            .map_err(|e| e.to_string())
    }

    /// All variables, in first-occurrence order.
    pub fn variables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for a in &self.atoms {
            for v in [a.from.as_str(), a.to.as_str()] {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Existential variables: those not in the head.
    pub fn existential_variables(&self) -> Vec<&str> {
        self.variables()
            .into_iter()
            .filter(|v| !self.head.iter().any(|h| h == v))
            .collect()
    }

    /// Evaluate: materialize each atom's binary relation, then join.
    pub fn evaluate(&self, db: &GraphDb) -> BTreeSet<Vec<NodeId>> {
        // Materialize atoms.
        let rels: Vec<BTreeSet<(NodeId, NodeId)>> =
            self.atoms.iter().map(|a| a.rel.evaluate(db)).collect();
        // Greedy join order: repeatedly pick the atom with the most bound
        // variables (ties: smallest relation).
        let mut order: Vec<usize> = Vec::new();
        let mut used = vec![false; self.atoms.len()];
        let mut bound: BTreeSet<&str> = BTreeSet::new();
        while order.len() < self.atoms.len() {
            let mut best: Option<(isize, usize, usize)> = None;
            for (i, a) in self.atoms.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let b = i32::from(bound.contains(a.from.as_str()))
                    + i32::from(bound.contains(a.to.as_str()));
                let key = (-(b as isize), rels[i].len(), i);
                if best.is_none_or(|k| key < k) {
                    best = Some(key);
                }
            }
            let (_, _, i) = best.expect("an unused atom remains");
            used[i] = true;
            bound.insert(self.atoms[i].from.as_str());
            bound.insert(self.atoms[i].to.as_str());
            order.push(i);
        }
        // Index relations by first column for bound-from lookups, and by
        // second column for bound-to lookups.
        let mut by_from: Vec<BTreeMap<NodeId, Vec<NodeId>>> = Vec::new();
        let mut by_to: Vec<BTreeMap<NodeId, Vec<NodeId>>> = Vec::new();
        for rel in &rels {
            let mut f: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
            let mut t: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
            for &(x, y) in rel {
                f.entry(x).or_default().push(y);
                t.entry(y).or_default().push(x);
            }
            by_from.push(f);
            by_to.push(t);
        }

        let mut out = BTreeSet::new();
        let mut bindings: BTreeMap<&str, NodeId> = BTreeMap::new();
        self.join(
            db,
            &order,
            0,
            &rels,
            &by_from,
            &by_to,
            &mut bindings,
            &mut out,
        );
        out
    }

    #[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
    fn join<'a>(
        &'a self,
        db: &GraphDb,
        order: &[usize],
        depth: usize,
        rels: &[BTreeSet<(NodeId, NodeId)>],
        by_from: &[BTreeMap<NodeId, Vec<NodeId>>],
        by_to: &[BTreeMap<NodeId, Vec<NodeId>>],
        bindings: &mut BTreeMap<&'a str, NodeId>,
        out: &mut BTreeSet<Vec<NodeId>>,
    ) {
        if depth == order.len() {
            let tuple: Vec<NodeId> = self
                .head
                .iter()
                .map(|h| *bindings.get(h.as_str()).expect("head variables are safe"))
                .collect();
            out.insert(tuple);
            return;
        }
        let i = order[depth];
        let atom = &self.atoms[i];
        let (bf, bt) = (
            bindings.get(atom.from.as_str()).copied(),
            bindings.get(atom.to.as_str()).copied(),
        );
        // Candidate pairs under current bindings.
        let candidates: Vec<(NodeId, NodeId)> = match (bf, bt) {
            (Some(x), Some(y)) => {
                if rels[i].contains(&(x, y)) {
                    vec![(x, y)]
                } else {
                    vec![]
                }
            }
            (Some(x), None) => by_from[i]
                .get(&x)
                .into_iter()
                .flatten()
                .map(|&y| (x, y))
                .collect(),
            (None, Some(y)) => by_to[i]
                .get(&y)
                .into_iter()
                .flatten()
                .map(|&x| (x, y))
                .collect(),
            (None, None) => rels[i].iter().copied().collect(),
        };
        for (x, y) in candidates {
            // Respect κ(v, v) atoms: both endpoints share a variable.
            if atom.from == atom.to && x != y {
                continue;
            }
            let mut fresh: Vec<&str> = Vec::new();
            if bf.is_none() {
                bindings.insert(&atom.from, x);
                fresh.push(&atom.from);
            }
            if bindings.get(atom.to.as_str()) != Some(&y) {
                if bindings.contains_key(atom.to.as_str()) {
                    for v in fresh {
                        bindings.remove(v);
                    }
                    continue;
                }
                bindings.insert(&atom.to, y);
                fresh.push(&atom.to);
            }
            self.join(db, order, depth + 1, rels, by_from, by_to, bindings, out);
            for v in fresh {
                bindings.remove(v);
            }
        }
    }

    /// Chain collapsing: if the body is a simple path of atoms between the
    /// two head variables (binary head `(x, y)`, `x ≠ y`, every internal
    /// variable existential and of degree exactly 2, no branching), the
    /// whole conjunct is equivalent to the single 2RPQ obtained by
    /// concatenating the atom expressions along the path (inverting atoms
    /// traversed backwards). Returns that 2RPQ, or `None` if the conjunct
    /// is not chain-shaped.
    ///
    /// This is what lets the containment checker treat 2RPQ compositions
    /// exactly (Theorem 5) instead of falling back to the hybrid procedure.
    pub fn collapse_chain(&self) -> Option<TwoRpq> {
        if self.head.len() != 2 || self.head[0] == self.head[1] {
            return None;
        }
        let (src, dst) = (self.head[0].as_str(), self.head[1].as_str());
        // Occurrence counts; every variable's degree (counting κ(v,v) twice).
        let mut degree: BTreeMap<&str, usize> = BTreeMap::new();
        for a in &self.atoms {
            *degree.entry(&a.from).or_insert(0) += 1;
            *degree.entry(&a.to).or_insert(0) += 1;
        }
        if degree.get(src) != Some(&1) || degree.get(dst) != Some(&1) {
            return None;
        }
        for (v, d) in &degree {
            if *v != src && *v != dst {
                if *d != 2 {
                    return None;
                }
                if self.head.iter().any(|h| h == v) {
                    return None; // internal variables must be existential
                }
            }
        }
        // Walk the path.
        let mut used = vec![false; self.atoms.len()];
        let mut cur = src;
        let mut parts: Vec<Regex> = Vec::new();
        for _ in 0..self.atoms.len() {
            let (i, forward) = self.atoms.iter().enumerate().find_map(|(i, a)| {
                if used[i] {
                    return None;
                }
                if a.from == cur && a.from != a.to {
                    Some((i, true))
                } else if a.to == cur && a.from != a.to {
                    Some((i, false))
                } else {
                    None
                }
            })?;
            used[i] = true;
            let a = &self.atoms[i];
            if forward {
                parts.push(a.rel.regex().clone());
                cur = &a.to;
            } else {
                parts.push(a.rel.regex().inverse());
                cur = &a.from;
            }
        }
        if cur != dst {
            return None;
        }
        Some(TwoRpq::new(Regex::concat(parts)))
    }
}

impl fmt::Display for C2Rpq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q({})", self.head.join(", "))?;
        write!(f, " :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "[{:?}]({}, {})", a.rel.regex(), a.from, a.to)?;
        }
        Ok(())
    }
}

/// A union of C2RPQs with equal head arity (the class UC2RPQ).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Uc2Rpq {
    pub disjuncts: Vec<C2Rpq>,
}

/// Error building a [`Uc2Rpq`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Uc2RpqError {
    /// Head arities differ across disjuncts.
    MixedArity,
    /// No disjuncts.
    Empty,
}

impl fmt::Display for Uc2RpqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Uc2RpqError::MixedArity => write!(f, "disjuncts have different head arities"),
            Uc2RpqError::Empty => write!(f, "a UC2RPQ needs at least one disjunct"),
        }
    }
}

impl std::error::Error for Uc2RpqError {}

impl Uc2Rpq {
    /// Build and validate.
    pub fn new(disjuncts: Vec<C2Rpq>) -> Result<Uc2Rpq, Uc2RpqError> {
        let Some(first) = disjuncts.first() else {
            return Err(Uc2RpqError::Empty);
        };
        let arity = first.head.len();
        if disjuncts.iter().any(|d| d.head.len() != arity) {
            return Err(Uc2RpqError::MixedArity);
        }
        Ok(Uc2Rpq { disjuncts })
    }

    /// A single-disjunct union.
    pub fn single(c: C2Rpq) -> Uc2Rpq {
        Uc2Rpq { disjuncts: vec![c] }
    }

    /// Head arity.
    pub fn arity(&self) -> usize {
        self.disjuncts[0].head.len()
    }

    /// Evaluate as the union of the disjuncts' answers.
    pub fn evaluate(&self, db: &GraphDb) -> BTreeSet<Vec<NodeId>> {
        let mut out = BTreeSet::new();
        for d in &self.disjuncts {
            out.extend(d.evaluate(db));
        }
        out
    }

    /// Collapse every disjunct to a single 2RPQ if possible (all disjuncts
    /// chain-shaped between the *same* head pair orientation).
    pub fn collapse_chains(&self) -> Option<TwoRpq> {
        let mut union = Vec::new();
        for d in &self.disjuncts {
            union.push(d.collapse_chain()?.regex().clone());
        }
        Some(TwoRpq::new(Regex::union(union)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_graph::generate;

    #[test]
    fn paper_example_triangle_queries() {
        // Example 1 of the paper.
        let mut al = Alphabet::new();
        let q1 = C2Rpq::parse(
            &["x", "y"],
            &[("r", "x", "y"), ("r", "x", "z"), ("r", "y", "z")],
            &mut al,
        )
        .unwrap();
        let mut db = GraphDb::new();
        let a = db.node("a");
        let b = db.node("b");
        let c = db.node("c");
        let r = db.label("r");
        db.add_edge(a, r, b);
        db.add_edge(a, r, c);
        db.add_edge(b, r, c);
        let ans = q1.evaluate(&db);
        assert!(ans.contains(&vec![a, b]));
        assert_eq!(ans.len(), 1);

        // Adding the cyclic-triangle disjunct gives a UC2RPQ.
        let q2 = C2Rpq::parse(
            &["x", "y"],
            &[("r", "x", "y"), ("r", "y", "z"), ("r", "z", "x")],
            &mut al,
        )
        .unwrap();
        let u = Uc2Rpq::new(vec![q1, q2]).unwrap();
        let mut db2 = GraphDb::new();
        let x = db2.node("x");
        let y = db2.node("y");
        let z = db2.node("z");
        let r2 = db2.label("r");
        db2.add_edge(x, r2, y);
        db2.add_edge(y, r2, z);
        db2.add_edge(z, r2, x);
        let ans = u.evaluate(&db2);
        // Cyclic triangle: every directed edge pair is an answer of the
        // second disjunct.
        assert!(ans.contains(&vec![x, y]));
        assert!(ans.contains(&vec![y, z]));
        assert!(ans.contains(&vec![z, x]));
    }

    #[test]
    fn conjunction_differs_from_intersection() {
        // §3.3: Q1(x,y) ∧ Q2(x,y) wants two (possibly different) paths,
        // while the intersection wants a single path matching both.
        let mut db = GraphDb::new();
        let x = db.node("x");
        let y = db.node("y");
        let a = db.label("a");
        let b = db.label("b");
        db.add_edge(x, a, y);
        db.add_edge(x, b, y);
        let mut al = db.alphabet().clone();
        let conj = C2Rpq::parse(&["x", "y"], &[("a", "x", "y"), ("b", "x", "y")], &mut al).unwrap();
        // Two different paths exist, so the conjunction holds...
        assert!(conj.evaluate(&db).contains(&vec![x, y]));
        // ...but no single edge is labeled both a and b: the "intersection"
        // RPQ a ∩ b would be empty (regular languages a and b are disjoint).
    }

    #[test]
    fn shared_variable_atoms() {
        // κ(v, v): a self-loop constraint.
        let mut db = GraphDb::new();
        let x = db.node("x");
        let y = db.node("y");
        let r = db.label("r");
        db.add_edge(x, r, x);
        db.add_edge(x, r, y);
        let mut al = db.alphabet().clone();
        let q = C2Rpq::parse(&["v"], &[("r", "v", "v")], &mut al).unwrap();
        let ans = q.evaluate(&db);
        assert_eq!(ans, BTreeSet::from([vec![x]]));
    }

    #[test]
    fn chain_collapse_forward_and_backward() {
        let mut al = Alphabet::new();
        // x -a-> m <-b- y collapses to a . b⁻ from x to y.
        let q = C2Rpq::parse(&["x", "y"], &[("a", "x", "m"), ("b", "y", "m")], &mut al).unwrap();
        let collapsed = q.collapse_chain().unwrap();
        let expect = TwoRpq::parse("a b-", &mut al).unwrap();
        assert_eq!(collapsed.regex(), expect.regex());

        // Semantics agree on random databases.
        let db = generate::random_gnm(10, 25, &["a", "b"], 3);
        let direct: BTreeSet<Vec<NodeId>> = q.evaluate(&db);
        let via: BTreeSet<Vec<NodeId>> = collapsed
            .evaluate(&db)
            .into_iter()
            .map(|(s, t)| vec![s, t])
            .collect();
        assert_eq!(direct, via);
    }

    #[test]
    fn chain_collapse_rejects_branching() {
        let mut al = Alphabet::new();
        let q = C2Rpq::parse(
            &["x", "y"],
            &[("a", "x", "y"), ("a", "x", "z"), ("a", "y", "z")],
            &mut al,
        )
        .unwrap();
        assert!(q.collapse_chain().is_none());
        // Head variable in the middle is fine only at the ends.
        let q = C2Rpq::parse(&["x", "y"], &[("a", "x", "m"), ("b", "m", "y")], &mut al).unwrap();
        assert!(q.collapse_chain().is_some());
        // Non-binary heads don't collapse.
        let q = C2Rpq::parse(&["x"], &[("a", "x", "m")], &mut al).unwrap();
        assert!(q.collapse_chain().is_none());
    }

    #[test]
    fn collapse_chains_of_union() {
        let mut al = Alphabet::new();
        let d1 = C2Rpq::parse(&["x", "y"], &[("a", "x", "y")], &mut al).unwrap();
        let d2 = C2Rpq::parse(&["x", "y"], &[("b", "x", "m"), ("c", "m", "y")], &mut al).unwrap();
        let u = Uc2Rpq::new(vec![d1, d2]).unwrap();
        let t = u.collapse_chains().unwrap();
        let db = generate::random_gnm(12, 30, &["a", "b", "c"], 17);
        let direct = u.evaluate(&db);
        let via: BTreeSet<Vec<NodeId>> = t
            .evaluate(&db)
            .into_iter()
            .map(|(s, t)| vec![s, t])
            .collect();
        assert_eq!(direct, via);
    }

    #[test]
    fn ucq_semantics_on_random_graphs() {
        // Cross-check the join against a brute-force evaluation.
        let db = generate::random_gnm(8, 16, &["a", "b"], 5);
        let mut al = db.alphabet().clone();
        let q = C2Rpq::parse(
            &["x", "z"],
            &[("a+", "x", "y"), ("b", "y", "z"), ("a", "z", "w")],
            &mut al,
        )
        .unwrap();
        let fast = q.evaluate(&db);
        // Brute force over all variable assignments.
        let aplus = TwoRpq::parse("a+", &mut al).unwrap().evaluate(&db);
        let bb = TwoRpq::parse("b", &mut al).unwrap().evaluate(&db);
        let aa = TwoRpq::parse("a", &mut al).unwrap().evaluate(&db);
        let mut slow = BTreeSet::new();
        for x in db.nodes() {
            for y in db.nodes() {
                for z in db.nodes() {
                    for w in db.nodes() {
                        if aplus.contains(&(x, y)) && bb.contains(&(y, z)) && aa.contains(&(z, w)) {
                            slow.insert(vec![x, z]);
                        }
                    }
                }
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn validation_errors() {
        let mut al = Alphabet::new();
        assert!(C2Rpq::parse(&["x"], &[], &mut al).is_err());
        let atom = C2RpqAtom::new(TwoRpq::parse("a", &mut al).unwrap(), "x", "y");
        assert!(matches!(
            C2Rpq::new(vec!["zz".into()], vec![atom.clone()]),
            Err(C2RpqError::UnsafeHead { .. })
        ));
        let ok = C2Rpq::new(vec!["x".into(), "y".into()], vec![atom.clone()]).unwrap();
        assert!(Uc2Rpq::new(vec![]).is_err());
        let unary = C2Rpq::new(vec!["x".into()], vec![atom]).unwrap();
        assert!(matches!(
            Uc2Rpq::new(vec![ok, unary]),
            Err(Uc2RpqError::MixedArity)
        ));
    }
}
