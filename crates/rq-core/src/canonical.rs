//! Canonical cache keys for 2RPQs.
//!
//! The semantic cache in `rq-engine` keys materialized answers by a
//! *canonical form* of the query so that syntactically different but
//! equivalent queries (`p`, `(p)`, `p | p`, `∅ | p`) share one entry. The
//! canonical form is the minimal complete DFA of the (folded-as-written)
//! regular language over Σ±, which is unique up to state numbering — we fix
//! the numbering by a BFS in sorted-letter order and serialize transitions
//! through label *names*, so the key is independent of both the regex's
//! syntax and the interning order of the alphabet.
//!
//! Two caveats keep this honest at serving time:
//!
//! * determinization is the paper's exponential step (§3.2), so
//!   [`canonical_key_governed`] meters it; callers fall back to the
//!   syntactic key ([`syntactic_key`]) on exhaustion, degrading the cache
//!   to exact-match rather than stalling the request path;
//! * the key canonicalizes the *language* of the expression, not its
//!   fold-closure — queries equivalent only over databases (like `p` and
//!   `p p- p`) get distinct keys and are instead related by the containment
//!   probes in [`crate::containment::facade`].

use crate::rpq::TwoRpq;
use rq_automata::governor::{expect_unlimited, Exhaustion, Governor};
use rq_automata::regex::simplify;
use rq_automata::{Alphabet, Dfa, Letter, Nfa};
use std::fmt::Write as _;

/// The canonical key of the empty-language query.
pub const EMPTY_KEY: &str = "dfa:empty";

/// Canonical key of `q` over `alphabet` (ungoverned; see
/// [`canonical_key_governed`] for the metered variant the engine uses).
pub fn canonical_key(q: &TwoRpq, alphabet: &Alphabet) -> String {
    expect_unlimited(canonical_key_governed(q, alphabet, &Governor::unlimited()))
}

/// Canonical key of `q`, with the subset construction metered by `gov`.
pub fn canonical_key_governed(
    q: &TwoRpq,
    alphabet: &Alphabet,
    gov: &Governor,
) -> Result<String, Exhaustion> {
    let regex = simplify(q.regex());
    if regex.is_empty_language() {
        return Ok(EMPTY_KEY.to_string());
    }
    // Sort the mentioned letters by (label name, direction) so the DFA's
    // column order — and hence the BFS renumbering below — is stable across
    // alphabets that intern the same names in different orders.
    let mut letters: Vec<Letter> = regex.letters().into_iter().collect();
    letters.sort_by_key(|l| (alphabet.name(l.label).to_string(), l.inverse));
    let nfa = Nfa::from_regex(&regex).eliminate_epsilon().trim();
    let dfa = Dfa::determinize_governed(&nfa, &letters, gov)?.minimize();
    Ok(serialize(&dfa, alphabet))
}

/// The syntactic fallback key: the simplified regex rendered through label
/// names. Exact-match only, but never more expensive than simplification.
pub fn syntactic_key(q: &TwoRpq, alphabet: &Alphabet) -> String {
    format!("re:{}", simplify(q.regex()).display(alphabet))
}

/// Serialize a minimal complete DFA into a canonical string: states are
/// renumbered by BFS from the initial state in sorted-letter column order,
/// transitions into non-co-reachable (sink) states are dropped, and letters
/// are written as label names.
fn serialize(dfa: &Dfa, alphabet: &Alphabet) -> String {
    let n = dfa.num_states();
    // Co-reachable states: those from which some accepting state is
    // reachable. Dropping the rest erases the sink class `minimize`
    // materializes, so queries over different letter sets still agree.
    let mut live = vec![false; n];
    loop {
        let mut changed = false;
        for s in 0..n {
            if live[s] {
                continue;
            }
            let reaches = dfa.is_final(s)
                || (0..dfa.letters().len()).any(|k| {
                    let t = dfa.next_by_index(s, k);
                    t < n && live[t]
                });
            if reaches {
                live[s] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if !live[dfa.initial()] {
        return EMPTY_KEY.to_string();
    }
    // BFS renumbering over live states only, in column (sorted-letter) order.
    let mut number = vec![usize::MAX; n];
    let mut order = vec![dfa.initial()];
    number[dfa.initial()] = 0;
    let mut i = 0;
    while i < order.len() {
        let s = order[i];
        for k in 0..dfa.letters().len() {
            let t = dfa.next_by_index(s, k);
            if t < n && live[t] && number[t] == usize::MAX {
                number[t] = order.len();
                order.push(t);
            }
        }
        i += 1;
    }
    let mut out = format!("dfa:{};", order.len());
    for (new, &s) in order.iter().enumerate() {
        if dfa.is_final(s) {
            let _ = write!(out, "f{new};");
        }
    }
    for &s in &order {
        for (k, &l) in dfa.letters().iter().enumerate() {
            let t = dfa.next_by_index(s, k);
            if t < n && live[t] {
                let _ = write!(
                    out,
                    "{}-{}{}>{};",
                    number[s],
                    alphabet.name(l.label),
                    if l.inverse { "~" } else { "" },
                    number[t]
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_automata::{Limits, Resource};

    fn key(s: &str, al: &mut Alphabet) -> String {
        canonical_key(&TwoRpq::parse(s, al).unwrap(), al)
    }

    #[test]
    fn equivalent_syntax_shares_a_key() {
        let mut al = Alphabet::new();
        let base = key("a b", &mut al);
        assert_eq!(key("(a)(b)", &mut al), base);
        assert_eq!(key("a b | a b", &mut al), base);
        assert_eq!(key("(a|a)b", &mut al), base);
        assert_ne!(key("b a", &mut al), base);
        assert_ne!(key("a b-", &mut al), base);
    }

    #[test]
    fn key_ignores_interning_order() {
        let mut al1 = Alphabet::from_names(["a", "b"]);
        let mut al2 = Alphabet::from_names(["z", "b", "a"]);
        assert_eq!(key("a* b", &mut al1), key("a* b", &mut al2));
    }

    #[test]
    fn star_unrollings_collapse() {
        let mut al = Alphabet::new();
        let base = key("a*", &mut al);
        assert_eq!(key("(a a)* a?", &mut al), base);
        assert_eq!(key("a* a*", &mut al), base);
        assert_ne!(key("a+", &mut al), base);
    }

    #[test]
    fn empty_language_is_the_empty_key() {
        let al = Alphabet::new();
        let q = TwoRpq::new(rq_automata::Regex::union([]));
        assert_eq!(canonical_key(&q, &al), EMPTY_KEY);
    }

    #[test]
    fn fold_equivalence_is_not_canonicalized() {
        // `p` and `p p- p` answer the same pairs on every database but have
        // different word languages — the cache finds them via containment
        // probes, not via the key.
        let mut al = Alphabet::new();
        assert_ne!(key("p", &mut al), key("p p- p", &mut al));
    }

    #[test]
    fn governed_key_exhausts_gracefully() {
        let mut al = Alphabet::new();
        let q = TwoRpq::parse("(a|b)(a|b)(a|b)(a|b)", &mut al).unwrap();
        let gov = Limits::unlimited().with_fuel(3).governor();
        let e = canonical_key_governed(&q, &al, &gov).unwrap_err();
        assert_eq!(e.resource, Resource::Fuel);
        // The fallback key is still available and deterministic.
        assert_eq!(syntactic_key(&q, &al), syntactic_key(&q, &al));
    }
}
