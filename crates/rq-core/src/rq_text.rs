//! A rule-based textual syntax for full Regular Queries.
//!
//! RQ = UC2RPQ closed under transitive closure, so the natural concrete
//! syntax is a *nonrecursive* rule program over 2RPQ atoms in which
//! recursion is only available through an explicit `tc[...]` operator —
//! exactly the §4.1 shape, but with regex atoms:
//!
//! ```text
//! Step(a, b)  :- [r](a, m), [r](m, b).      # a conjunct over 2RPQ atoms
//! Step(a, b)  :- [s+](a, b).                # more rules = union
//! Ans(x, y)   :- tc[Step](x, y), [t?](y, w).
//! ```
//!
//! * atoms are `[regex](v1, v2)` (2RPQ), `Pred(v1, …, vk)` (a defined
//!   predicate), or `tc[Pred](v1, v2)` (transitive closure of a *binary*
//!   defined predicate);
//! * predicate definitions may not be recursive — all recursion goes
//!   through `tc[...]`, which is what keeps every program in RQ;
//! * the program's *last-defined* predicate is the query unless a goal is
//!   chosen explicitly.
//!
//! [`parse_rq`] elaborates a program into an [`RqQuery`] bottom-up,
//! reusing the same instantiation machinery as the GRQ → RQ translation.

use crate::crpq::{C2Rpq, C2RpqAtom, Uc2Rpq};
use crate::query_text::{parse_uc2rpq, QueryTextError};
use crate::rpq::TwoRpq;
use crate::rq::{RqExpr, RqQuery};
use rq_automata::{Alphabet, Regex};
use std::collections::BTreeMap;
use std::fmt;

/// Error from [`parse_rq`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RqTextError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for RqTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RQ parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RqTextError {}

/// One parsed body atom.
#[derive(Debug, Clone)]
enum BodyAtom {
    Rel(TwoRpq, String, String),
    Pred(String, Vec<String>),
    Tc(String, String, String),
}

#[derive(Debug, Clone)]
struct ParsedRule {
    line: usize,
    head_vars: Vec<String>,
    body: Vec<BodyAtom>,
}

/// Parse a full-RQ rule program into an [`RqQuery`] for `goal` (or the
/// last-defined predicate when `goal` is `None`).
pub fn parse_rq(
    input: &str,
    goal: Option<&str>,
    alphabet: &mut Alphabet,
) -> Result<RqQuery, RqTextError> {
    // ---- parse rules ----------------------------------------------------
    let mut rules: BTreeMap<String, Vec<ParsedRule>> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let err = |message: String| RqTextError {
            line: lineno + 1,
            message,
        };
        let line = line
            .strip_suffix('.')
            .ok_or_else(|| err("rules must end with '.'".into()))?;
        let (head, body_src) = line
            .split_once(":-")
            .ok_or_else(|| err("expected `Head(vars) :- body`".into()))?;
        let (name, head_vars) = parse_head(head).map_err(&err)?;
        let body = parse_body(body_src, alphabet).map_err(err)?;
        if !rules.contains_key(&name) {
            order.push(name.clone());
        }
        rules.entry(name).or_default().push(ParsedRule {
            line: lineno + 1,
            head_vars,
            body,
        });
    }
    if order.is_empty() {
        return Err(RqTextError {
            line: 0,
            message: "no rules found".into(),
        });
    }

    // ---- elaborate bottom-up (definition order; no forward references
    // means no recursion outside tc[...]) --------------------------------
    let mut defs: BTreeMap<String, RqQuery> = BTreeMap::new();
    let mut counter = 0usize;
    for name in &order {
        let these = &rules[name];
        let arity = these[0].head_vars.len();
        let canon: Vec<String> = (0..arity).map(|i| format!("g{i}")).collect();
        let mut branches: Vec<RqExpr> = Vec::new();
        for rule in these {
            let err = |message: String| RqTextError {
                line: rule.line,
                message,
            };
            if rule.head_vars.len() != arity {
                return Err(err(format!("{name} used with inconsistent arities")));
            }
            branches.push(
                elaborate_rule(rule, name, &canon, &defs, &mut counter, alphabet).map_err(err)?,
            );
        }
        let expr = branches
            .into_iter()
            .reduce(RqExpr::or)
            .expect("each predicate has ≥1 rule");
        let def = RqQuery::new(canon.clone(), expr).map_err(|e| RqTextError {
            line: these[0].line,
            message: format!("definition of {name} is not well-formed: {e}"),
        })?;
        defs.insert(name.clone(), def);
    }

    let goal_name = match goal {
        Some(g) => g.to_owned(),
        None => order.last().expect("nonempty").clone(),
    };
    defs.remove(&goal_name).ok_or_else(|| RqTextError {
        line: 0,
        message: format!("goal predicate {goal_name} is not defined"),
    })
}

fn parse_head(head: &str) -> Result<(String, Vec<String>), String> {
    let head = head.trim();
    let (name, rest) = head
        .split_once('(')
        .ok_or_else(|| "head must be `Name(vars)`".to_owned())?;
    let vars_str = rest
        .strip_suffix(')')
        .ok_or_else(|| "unclosed head variable list".to_owned())?;
    let vars: Vec<String> = vars_str
        .split(',')
        .map(|v| v.trim().to_owned())
        .filter(|v| !v.is_empty())
        .collect();
    Ok((name.trim().to_owned(), vars))
}

fn parse_body(src: &str, alphabet: &mut Alphabet) -> Result<Vec<BodyAtom>, String> {
    let mut atoms = Vec::new();
    let mut rest = src.trim();
    while !rest.is_empty() {
        rest = rest.trim_start_matches(',').trim();
        if rest.is_empty() {
            break;
        }
        if let Some(r) = rest.strip_prefix("tc[") {
            let close = r.find(']').ok_or("unclosed tc[...]")?;
            let pred = r[..close].trim().to_owned();
            let after = r[close + 1..].trim_start();
            let (vars, remaining) = parse_var_list(after)?;
            let [x, y] = vars.as_slice() else {
                return Err("tc[...] takes exactly two variables".into());
            };
            atoms.push(BodyAtom::Tc(pred, x.clone(), y.clone()));
            rest = remaining;
        } else if let Some(r) = rest.strip_prefix('[') {
            let close = r.find(']').ok_or("unclosed regex bracket")?;
            let regex_src = &r[..close];
            let rel = TwoRpq::parse(regex_src, alphabet)
                .map_err(|e| format!("bad regex {regex_src:?}: {e}"))?;
            let after = r[close + 1..].trim_start();
            let (vars, remaining) = parse_var_list(after)?;
            let [x, y] = vars.as_slice() else {
                return Err("2RPQ atoms take exactly two variables".into());
            };
            atoms.push(BodyAtom::Rel(rel, x.clone(), y.clone()));
            rest = remaining;
        } else {
            // Pred(args)
            let open = rest.find('(').ok_or("expected an atom")?;
            let name = rest[..open].trim().to_owned();
            if name.is_empty() || !name.chars().next().is_some_and(char::is_alphabetic) {
                return Err(format!("bad atom at: {rest}"));
            }
            let (vars, remaining) = parse_var_list(&rest[open..])?;
            atoms.push(BodyAtom::Pred(name, vars));
            rest = remaining;
        }
    }
    if atoms.is_empty() {
        return Err("empty rule body".into());
    }
    Ok(atoms)
}

/// Parse `(v1, v2, …)` and return the variables plus the remaining input.
fn parse_var_list(src: &str) -> Result<(Vec<String>, &str), String> {
    let src = src.trim_start();
    let inner = src
        .strip_prefix('(')
        .ok_or("expected a variable list `( … )`")?;
    let close = inner.find(')').ok_or("unclosed variable list")?;
    let vars: Vec<String> = inner[..close]
        .split(',')
        .map(|v| v.trim().to_owned())
        .filter(|v| !v.is_empty())
        .collect();
    Ok((vars, &inner[close + 1..]))
}

fn elaborate_rule(
    rule: &ParsedRule,
    defining: &str,
    canon: &[String],
    defs: &BTreeMap<String, RqQuery>,
    counter: &mut usize,
    _alphabet: &Alphabet,
) -> Result<RqExpr, String> {
    *counter += 1;
    let tag = format!("_r{counter}");
    let rv = |v: &str| format!("{tag}_{v}");
    let mut conj: Option<RqExpr> = None;
    let mut body_vars: Vec<String> = Vec::new();
    let push_var = |v: &String, body_vars: &mut Vec<String>| {
        if !body_vars.contains(v) {
            body_vars.push(v.clone());
        }
    };
    for atom in &rule.body {
        let expr = match atom {
            BodyAtom::Rel(rel, x, y) => {
                let (x, y) = (rv(x), rv(y));
                push_var(&x, &mut body_vars);
                push_var(&y, &mut body_vars);
                RqExpr::rel2(rel.clone(), x, y)
            }
            BodyAtom::Pred(name, args) => {
                if name == defining {
                    return Err(format!(
                        "predicate {name} refers to itself; recursion is only \
                         available through tc[{name}]"
                    ));
                }
                let def = defs.get(name).ok_or_else(|| {
                    format!("predicate {name} is not defined yet (no forward references)")
                })?;
                if def.head.len() != args.len() {
                    return Err(format!(
                        "{name} has arity {}, used with {} arguments",
                        def.head.len(),
                        args.len()
                    ));
                }
                let args: Vec<String> = args.iter().map(|a| rv(a)).collect();
                for a in &args {
                    push_var(a, &mut body_vars);
                }
                instantiate(def, &args, counter)
            }
            BodyAtom::Tc(name, x, y) => {
                if name == defining {
                    return Err(format!(
                        "tc[{name}] inside the definition of {name} would be recursive"
                    ));
                }
                let def = defs.get(name).ok_or_else(|| {
                    format!("predicate {name} is not defined yet (no forward references)")
                })?;
                if def.head.len() != 2 {
                    return Err(format!(
                        "tc[{name}] needs a binary predicate; {name} has arity {}",
                        def.head.len()
                    ));
                }
                *counter += 1;
                let (f, t) = (format!("_tcx{counter}"), format!("_tcy{counter}"));
                let inner = instantiate(def, &[f.clone(), t.clone()], counter);
                let closed = inner.closure(f.clone(), t.clone());
                // Rename the closure's endpoints to the rule variables.
                let (x, y) = (rv(x), rv(y));
                push_var(&x, &mut body_vars);
                push_var(&y, &mut body_vars);
                let (xc, yc) = (x.clone(), y.clone());
                closed.rename_all(&move |v: &str| {
                    if v == f {
                        xc.clone()
                    } else if v == t {
                        yc.clone()
                    } else {
                        v.to_owned()
                    }
                })
            }
        };
        conj = Some(match conj {
            None => expr,
            Some(prev) => prev.and(expr),
        });
    }
    let mut expr = conj.expect("nonempty body");
    // Project out existentials, then rename head variables to canon
    // (duplicates equated through an ε-atom, as in the GRQ translation).
    let head_rv: Vec<String> = rule.head_vars.iter().map(|v| rv(v)).collect();
    for v in &body_vars {
        if !head_rv.contains(v) {
            expr = expr.project(v.clone());
        }
    }
    for hv in &head_rv {
        if !body_vars.contains(hv) {
            return Err(format!("head variable {} does not occur in the body", hv));
        }
    }
    let mut named: BTreeMap<String, String> = BTreeMap::new();
    for (i, hv) in head_rv.iter().enumerate() {
        if let Some(first) = named.get(hv) {
            let eps = TwoRpq::new(Regex::Epsilon);
            expr = expr.and(RqExpr::rel2(eps, first.clone(), canon[i].clone()));
        } else {
            let (from, to) = (hv.clone(), canon[i].clone());
            expr = expr.rename_all(&move |v: &str| {
                if v == from {
                    to.clone()
                } else {
                    v.to_owned()
                }
            });
            named.insert(hv.clone(), canon[i].clone());
        }
    }
    Ok(expr)
}

/// α-rename `def` apart and substitute its head variables by `args`
/// (duplicates equated by selection + projection).
fn instantiate(def: &RqQuery, args: &[String], counter: &mut usize) -> RqExpr {
    *counter += 1;
    let tag = *counter;
    let prefixed = |v: &str| format!("_i{tag}_{v}");
    let mut expr = def.expr.rename_all(&prefixed);
    let heads: Vec<String> = def.head.iter().map(|h| prefixed(h)).collect();
    let mut assigned: BTreeMap<&str, usize> = BTreeMap::new();
    let mut dup_cols: Vec<String> = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        if assigned.contains_key(arg.as_str()) {
            dup_cols.push(heads[i].clone());
        } else {
            assigned.insert(arg, i);
            let (from, to) = (heads[i].clone(), arg.clone());
            expr = expr.rename_all(&move |v: &str| {
                if v == from {
                    to.clone()
                } else {
                    v.to_owned()
                }
            });
        }
    }
    for (i, arg) in args.iter().enumerate() {
        if dup_cols.contains(&heads[i]) {
            expr = expr
                .select_eq(arg.clone(), heads[i].clone())
                .project(heads[i].clone());
        }
    }
    expr
}

/// Convenience: when a program has no `tc[...]` and a single predicate, it
/// is a plain UC2RPQ; parse it as such (shares the grammar with
/// [`parse_uc2rpq`]).
pub fn parse_rq_or_uc2rpq(
    input: &str,
    alphabet: &mut Alphabet,
) -> Result<Result<RqQuery, Uc2Rpq>, RqTextError> {
    if input.contains("tc[") {
        return parse_rq(input, None, alphabet).map(Ok);
    }
    match parse_uc2rpq(input, alphabet) {
        Ok(u) => Ok(Err(u)),
        Err(QueryTextError { line, message }) => Err(RqTextError { line, message }),
    }
}

/// Build the UC2RPQ view of a conjunct list (test helper shared with the
/// benches; re-exported for symmetry with [`parse_uc2rpq`]).
pub fn uc2rpq_from_conjuncts(disjuncts: Vec<(Vec<String>, Vec<C2RpqAtom>)>) -> Option<Uc2Rpq> {
    let ds: Option<Vec<C2Rpq>> = disjuncts
        .into_iter()
        .map(|(head, atoms)| C2Rpq::new(head, atoms).ok())
        .collect();
    Uc2Rpq::new(ds?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_graph::generate;
    use std::collections::BTreeSet;

    #[test]
    fn parses_the_module_example() {
        let mut al = Alphabet::new();
        let q = parse_rq(
            "Step(a, b)  :- [r](a, m), [r](m, b).\n\
             Step(a, b)  :- [s+](a, b).\n\
             Ans(x, y)   :- tc[Step](x, y), [t?](y, w).",
            None,
            &mut al,
        )
        .unwrap();
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.closure_count(), 1);
    }

    #[test]
    fn tc_of_edge_equals_plus() {
        let mut al = Alphabet::new();
        let q = parse_rq(
            "E2(a, b) :- [r](a, b).\nAns(x, y) :- tc[E2](x, y).",
            None,
            &mut al,
        )
        .unwrap();
        let db = generate::random_gnm(8, 20, &["r"], 5);
        let mut al2 = db.alphabet().clone();
        let rp = crate::rpq::Rpq::parse("r+", &mut al2).unwrap();
        let expect: BTreeSet<Vec<_>> = rp
            .evaluate(&db)
            .into_iter()
            .map(|(x, y)| vec![x, y])
            .collect();
        assert_eq!(q.evaluate(&db), expect);
    }

    #[test]
    fn triangle_closure_program() {
        // The paper's flagship RQ ∖ UC2RPQ example, now in concrete syntax.
        let mut al = Alphabet::new();
        let q = parse_rq(
            "Tri(x, y) :- [r](x, y), [r](y, z), [r](z, x).\n\
             Ans(x, y) :- tc[Tri](x, y).",
            None,
            &mut al,
        )
        .unwrap();
        assert!(
            q.collapse_exact().is_none(),
            "genuinely conjunctive closure"
        );
        // Semantics: two triangles sharing a vertex compose.
        let mut db = rq_graph::GraphDb::new();
        let r = db.label("r");
        let names = ["a", "b", "c", "d", "e"];
        let n: Vec<_> = names.iter().map(|s| db.node(s)).collect();
        for (x, y) in [(0, 1), (1, 2), (2, 0), (1, 3), (3, 4), (4, 1)] {
            db.add_edge(n[x], r, n[y]);
        }
        let ans = q.evaluate(&db);
        assert!(ans.contains(&vec![n[0], n[3]]), "a →tri b →tri d");
    }

    #[test]
    fn predicate_reuse_and_projection() {
        let mut al = Alphabet::new();
        let q = parse_rq(
            "Hop(a, b) :- [r](a, b).\n\
             Two(a, c) :- Hop(a, b), Hop(b, c).\n\
             Ans(x)    :- Two(x, y).",
            None,
            &mut al,
        )
        .unwrap();
        assert_eq!(q.head.len(), 1);
        let db = generate::chain(4, "r");
        assert_eq!(q.evaluate(&db).len(), 2); // v0 and v1 start 2-hops
    }

    #[test]
    fn recursion_outside_tc_is_rejected() {
        let mut al = Alphabet::new();
        let err = parse_rq("P(a, b) :- [r](a, m), P(m, b).", None, &mut al).unwrap_err();
        assert!(err.message.contains("tc["), "{err}");
        let err =
            parse_rq("P(a, b) :- [r](a, b).\nQ(a, b) :- R(a, b).", None, &mut al).unwrap_err();
        assert!(err.message.contains("not defined"), "{err}");
    }

    #[test]
    fn goal_selection() {
        let mut al = Alphabet::new();
        let text = "A(x, y) :- [r](x, y).\nB(x, y) :- [s](x, y).";
        let qa = parse_rq(text, Some("A"), &mut al).unwrap();
        let qb = parse_rq(text, Some("B"), &mut al).unwrap();
        let db = generate::random_gnm(6, 12, &["r", "s"], 2);
        assert_ne!(qa.evaluate(&db), qb.evaluate(&db));
        assert!(parse_rq(text, Some("C"), &mut al).is_err());
    }

    #[test]
    fn duplicate_arguments_and_head_vars() {
        let mut al = Alphabet::new();
        // Self-loop detection through predicate instantiation P(v, v).
        let q = parse_rq("P(a, b) :- [r](a, b).\nLoopy(v) :- P(v, v).", None, &mut al).unwrap();
        let mut db = rq_graph::GraphDb::new();
        let r = db.label("r");
        let x = db.node("x");
        let y = db.node("y");
        db.add_edge(x, r, x);
        db.add_edge(x, r, y);
        assert_eq!(q.evaluate(&db), BTreeSet::from([vec![x]]));

        // Duplicate head variables: Diag(v, v).
        let q = parse_rq("Diag(v, v) :- [r](v, w).", None, &mut al).unwrap();
        assert_eq!(q.evaluate(&db), BTreeSet::from([vec![x, x]]));
    }

    #[test]
    fn dispatch_helper() {
        let mut al = Alphabet::new();
        assert!(matches!(
            parse_rq_or_uc2rpq("Q(x, y) :- [a](x, y).", &mut al),
            Ok(Err(_))
        ));
        assert!(matches!(
            parse_rq_or_uc2rpq("P(a, b) :- [r](a, b).\nQ(x, y) :- tc[P](x, y).", &mut al),
            Ok(Ok(_))
        ));
    }
}
