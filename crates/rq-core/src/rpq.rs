//! Regular path queries and their two-way extension.
//!
//! "The answer Q(D) to an RPQ Q over D is the set of pairs of objects
//! connected in D by a directed path traversing a sequence of edges forming
//! a word in the regular language L(Q)" (§3.1); a 2RPQ answers pairs
//! connected by a *semipath* conforming to a regular language over Σ±.
//!
//! Evaluation is by BFS over the product of the database with the query
//! automaton — `O(|V| · (|V| + |E|) · |Q|)` for all pairs, the standard
//! product-graph algorithm.

use rq_automata::governor::{expect_unlimited, Exhaustion, Governor};
use rq_automata::regex::{parse, ParseError};
use rq_automata::{Alphabet, Letter, Nfa, Regex};
use rq_graph::{frontier, GraphDb, NodeId, Semipath};
use std::collections::{BTreeSet, VecDeque};

/// A two-way regular path query: a regular expression over Σ±, compiled to
/// an ε-free NFA.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TwoRpq {
    regex: Regex,
    nfa: Nfa,
}

impl TwoRpq {
    /// Compile a regex into a 2RPQ.
    pub fn new(regex: Regex) -> TwoRpq {
        let nfa = Nfa::from_regex(&regex).eliminate_epsilon().trim();
        TwoRpq { regex, nfa }
    }

    /// Parse the textual syntax (`knows.worksAt-`, `p p- p`, …), interning
    /// labels into `alphabet`.
    pub fn parse(input: &str, alphabet: &mut Alphabet) -> Result<TwoRpq, ParseError> {
        Ok(TwoRpq::new(parse(input, alphabet)?))
    }

    /// The query's regular expression.
    pub fn regex(&self) -> &Regex {
        &self.regex
    }

    /// The compiled ε-free automaton.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Whether the query uses only forward letters (i.e., is an RPQ).
    pub fn is_forward_only(&self) -> bool {
        self.regex.is_forward_only()
    }

    /// The 2RPQ for the inverse relation: `(x,y) ∈ Q(D)` iff
    /// `(y,x) ∈ Q.inverse()(D)`.
    pub fn inverse(&self) -> TwoRpq {
        TwoRpq::new(self.regex.inverse())
    }

    /// Whether ε ∈ L(Q) — in which case `Q(D)` contains `(x,x)` for every
    /// object `x` (the trivial semipath).
    pub fn nullable(&self) -> bool {
        self.nfa.accepts(&[])
    }

    /// Objects reachable from `source` by a conforming semipath.
    pub fn evaluate_from(&self, db: &GraphDb, source: NodeId) -> BTreeSet<NodeId> {
        expect_unlimited(self.evaluate_from_governed(db, source, &Governor::unlimited()))
    }

    /// Governed single-source evaluation: the product BFS spends one fuel
    /// unit per product-edge expansion and polls the deadline/cancellation
    /// flag, so a `serve-batch` worker can be cut off mid-search.
    pub fn evaluate_from_governed(
        &self,
        db: &GraphDb,
        source: NodeId,
        gov: &Governor,
    ) -> Result<BTreeSet<NodeId>, Exhaustion> {
        frontier::reachable_governed(db, &self.nfa, source, gov)
    }

    /// The full answer `Q(D)` as a set of pairs.
    pub fn evaluate(&self, db: &GraphDb) -> BTreeSet<(NodeId, NodeId)> {
        expect_unlimited(self.evaluate_governed(db, &Governor::unlimited()))
    }

    /// Governed all-pairs evaluation (sequential; the parallel engine in
    /// `rq-engine` partitions the same per-source searches across threads).
    pub fn evaluate_governed(
        &self,
        db: &GraphDb,
        gov: &Governor,
    ) -> Result<BTreeSet<(NodeId, NodeId)>, Exhaustion> {
        frontier::all_pairs_governed(db, &self.nfa, gov)
    }

    /// Whether `(x, y) ∈ Q(D)`.
    pub fn contains_pair(&self, db: &GraphDb, x: NodeId, y: NodeId) -> bool {
        expect_unlimited(self.contains_pair_governed(db, x, y, &Governor::unlimited()))
    }

    /// Governed membership re-check for one pair, with early exit on the
    /// first witnessing product state (the semantic cache filters a
    /// subsuming query's materialized answer through this).
    pub fn contains_pair_governed(
        &self,
        db: &GraphDb,
        x: NodeId,
        y: NodeId,
        gov: &Governor,
    ) -> Result<bool, Exhaustion> {
        frontier::pair_reachable_governed(db, &self.nfa, x, y, gov)
    }

    /// A shortest conforming semipath witnessing `(x, y) ∈ Q(D)`, if any.
    pub fn witness_semipath(&self, db: &GraphDb, x: NodeId, y: NodeId) -> Option<Semipath> {
        let ns = self.nfa.num_states();
        let mut pred: Vec<Option<(NodeId, usize, Letter)>> = vec![None; db.num_nodes() * ns];
        let mut seen = vec![false; db.num_nodes() * ns];
        let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
        for s in self.nfa.initial_states() {
            seen[x.index() * ns + s] = true;
            queue.push_back((x, s));
        }
        let mut hit: Option<(NodeId, usize)> = None;
        'bfs: while let Some((node, state)) = queue.pop_front() {
            if node == y && self.nfa.is_final(state) {
                hit = Some((node, state));
                break 'bfs;
            }
            for &(l, t) in self.nfa.transitions_from(state) {
                for n2 in db.step(node, l) {
                    let key = n2.index() * ns + t;
                    if !seen[key] {
                        seen[key] = true;
                        pred[key] = Some((node, state, l));
                        queue.push_back((n2, t));
                    }
                }
            }
        }
        let (mut node, mut state) = hit?;
        let mut nodes = vec![node];
        let mut word = Vec::new();
        while let Some((pn, ps, l)) = pred[node.index() * ns + state] {
            word.push(l);
            nodes.push(pn);
            node = pn;
            state = ps;
        }
        nodes.reverse();
        word.reverse();
        Some(Semipath::new(nodes, word))
    }
}

/// A (one-way) regular path query: a [`TwoRpq`] restricted to forward
/// letters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rpq(TwoRpq);

/// Error building an [`Rpq`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpqError {
    /// The expression contains an inverse letter — use [`TwoRpq`].
    NotForwardOnly,
    /// The expression failed to parse.
    Parse(ParseError),
}

impl std::fmt::Display for RpqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpqError::NotForwardOnly => {
                write!(
                    f,
                    "RPQs are forward-only; the expression uses an inverse letter"
                )
            }
            RpqError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RpqError {}

impl Rpq {
    /// Compile a forward-only regex into an RPQ.
    pub fn new(regex: Regex) -> Result<Rpq, RpqError> {
        if !regex.is_forward_only() {
            return Err(RpqError::NotForwardOnly);
        }
        Ok(Rpq(TwoRpq::new(regex)))
    }

    /// Parse the textual syntax, rejecting inverse letters.
    pub fn parse(input: &str, alphabet: &mut Alphabet) -> Result<Rpq, RpqError> {
        let regex = parse(input, alphabet).map_err(RpqError::Parse)?;
        Rpq::new(regex)
    }

    /// The underlying two-way query (every RPQ is a 2RPQ).
    pub fn as_two_rpq(&self) -> &TwoRpq {
        &self.0
    }

    /// The query's regular expression.
    pub fn regex(&self) -> &Regex {
        self.0.regex()
    }

    /// The full answer `Q(D)`.
    pub fn evaluate(&self, db: &GraphDb) -> BTreeSet<(NodeId, NodeId)> {
        self.0.evaluate(db)
    }

    /// Objects reachable from `source` by a conforming path.
    pub fn evaluate_from(&self, db: &GraphDb, source: NodeId) -> BTreeSet<NodeId> {
        self.0.evaluate_from(db, source)
    }

    /// Whether `(x, y) ∈ Q(D)`.
    pub fn contains_pair(&self, db: &GraphDb, x: NodeId, y: NodeId) -> bool {
        self.0.contains_pair(db, x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_graph::generate;

    fn social() -> (GraphDb, NodeId, NodeId, NodeId, NodeId) {
        let mut db = GraphDb::new();
        let a = db.node("alice");
        let b = db.node("bob");
        let c = db.node("carol");
        let d = db.node("dave");
        let knows = db.label("knows");
        let works = db.label("worksAt");
        db.add_edge(a, knows, b);
        db.add_edge(b, knows, c);
        db.add_edge(c, knows, d);
        let acme = db.node("acme");
        db.add_edge(a, works, acme);
        db.add_edge(c, works, acme);
        (db, a, b, c, d)
    }

    #[test]
    fn rpq_plus_on_chain() {
        let (db, a, b, c, d) = social();
        let mut al = db.alphabet().clone();
        let q = Rpq::parse("knows+", &mut al).unwrap();
        let ans = q.evaluate(&db);
        assert!(ans.contains(&(a, b)));
        assert!(ans.contains(&(a, d)));
        assert!(ans.contains(&(b, d)));
        assert!(!ans.contains(&(d, a)));
        assert_eq!(ans.len(), 6);
        let _ = c;
    }

    #[test]
    fn rpq_star_includes_trivial_pairs() {
        let (db, a, ..) = social();
        let mut al = db.alphabet().clone();
        let q = Rpq::parse("knows*", &mut al).unwrap();
        let ans = q.evaluate(&db);
        // Every node is knows*-related to itself.
        for n in db.nodes() {
            assert!(ans.contains(&(n, n)));
        }
        assert!(ans.contains(&(a, a)));
    }

    #[test]
    fn two_rpq_coworker_query() {
        // Colleagues: worksAt . worksAt⁻ relates people sharing an employer.
        let (db, a, _, c, d) = social();
        let mut al = db.alphabet().clone();
        let q = TwoRpq::parse("worksAt worksAt-", &mut al).unwrap();
        let ans = q.evaluate(&db);
        assert!(ans.contains(&(a, c)));
        assert!(ans.contains(&(c, a)));
        assert!(ans.contains(&(a, a)));
        assert!(!ans.contains(&(a, d)));
    }

    #[test]
    fn rpq_rejects_inverse() {
        let mut al = Alphabet::new();
        assert!(matches!(
            Rpq::parse("a-", &mut al),
            Err(RpqError::NotForwardOnly)
        ));
        assert!(TwoRpq::parse("a-", &mut al).is_ok());
    }

    #[test]
    fn paper_pp_inverse_p_equals_p_on_databases() {
        // Q1 = p and Q2 = p p⁻ p answer the same pairs on every database
        // where p-edges exist — the motivating 2RPQ containment example.
        let (p_db, _, _, _, _) = {
            let db = generate::random_gnm(12, 20, &["p"], 99);
            (db, (), (), (), ())
        };
        let mut al = p_db.alphabet().clone();
        let q1 = TwoRpq::parse("p", &mut al).unwrap();
        let q2 = TwoRpq::parse("p p- p", &mut al).unwrap();
        let a1 = q1.evaluate(&p_db);
        let a2 = q2.evaluate(&p_db);
        // Q1 ⊑ Q2 (every p-edge folds back and forth).
        for pair in &a1 {
            assert!(a2.contains(pair), "missing {pair:?}");
        }
    }

    #[test]
    fn witness_semipath_is_valid_and_conforming() {
        let (db, a, _, _, d) = social();
        let mut al = db.alphabet().clone();
        let q = TwoRpq::parse("knows+", &mut al).unwrap();
        let sp = q.witness_semipath(&db, a, d).unwrap();
        assert!(sp.is_valid_in(&db));
        assert!(sp.conforms_to(q.nfa()));
        assert_eq!(sp.source(), a);
        assert_eq!(sp.target(), d);
        assert_eq!(sp.len(), 3, "BFS returns a shortest witness");
        assert!(q.witness_semipath(&db, d, a).is_none());
    }

    #[test]
    fn evaluate_from_matches_evaluate() {
        let db = generate::random_gnm(30, 60, &["r", "s"], 7);
        let mut al = db.alphabet().clone();
        let q = TwoRpq::parse("r(s-|r)*", &mut al).unwrap();
        let all = q.evaluate(&db);
        for x in db.nodes() {
            let from = q.evaluate_from(&db, x);
            for y in db.nodes() {
                assert_eq!(from.contains(&y), all.contains(&(x, y)));
            }
        }
    }

    #[test]
    fn nullable_queries_answer_diagonal() {
        let db = generate::chain(4, "r");
        let mut al = db.alphabet().clone();
        let q = TwoRpq::parse("r?", &mut al).unwrap();
        assert!(q.nullable());
        let ans = q.evaluate(&db);
        assert_eq!(ans.len(), 4 + 3); // diagonal + chain edges
    }

    #[test]
    fn inverse_query_swaps_answers() {
        let db = generate::random_gnm(15, 30, &["r", "s"], 13);
        let mut al = db.alphabet().clone();
        let q = TwoRpq::parse("r s- r", &mut al).unwrap();
        let qi = q.inverse();
        let a = q.evaluate(&db);
        let b = qi.evaluate(&db);
        assert_eq!(a.len(), b.len());
        for &(x, y) in &a {
            assert!(b.contains(&(y, x)));
        }
    }
}
