//! # rq-core
//!
//! The query classes of Vardi's *A Theory of Regular Queries* (PODS 2016)
//! over graph databases, with evaluation and containment:
//!
//! | class | module | containment |
//! |---|---|---|
//! | RPQ — regular path queries (§3.1) | [`rpq`] | exact, PSPACE (Lemma 1) |
//! | 2RPQ — two-way RPQs (§3.1) | [`rpq`] | exact, PSPACE (Lemmas 2–4, Thm 5) |
//! | C2RPQ / UC2RPQ — (unions of) conjunctive 2RPQs (§3.3) | [`crpq`] | hybrid, EXPSPACE-complete problem (Thm 6) |
//! | RQ — regular queries (§3.4) | [`rq`] | hybrid, 2EXPSPACE-complete problem (Thm 7) |
//! | GRQ — generalized regular queries (§4) | [`translate`] | by reduction to RQ (Thm 8) |
//!
//! "Hybrid" checkers (see `DESIGN.md`) are sound in both directions —
//! `Contained` answers carry a certificate and `NotContained` answers carry
//! a concrete counterexample database — and report `Unknown` when the
//! configured search budget runs out before either is found (the underlying
//! problems are EXPSPACE/2EXPSPACE-complete, so budgets are unavoidable for
//! adversarial inputs).
//!
//! Submodules:
//! * [`rpq`] — [`Rpq`] and [`TwoRpq`] with product-graph evaluation;
//! * [`canonical`] — canonical (minimal-DFA) cache keys for 2RPQs, used by
//!   the `rq-engine` semantic cache;
//! * [`crpq`] — [`C2Rpq`] and [`Uc2Rpq`], join-based evaluation, chain
//!   collapsing;
//! * [`rq`] — the [`RqQuery`] algebra (selection, projection, union,
//!   conjunction, transitive closure), semi-naive TC evaluation, bounded
//!   unfolding, exact closure elimination;
//! * [`expansion`] — canonical databases / expansions (the database-theoretic
//!   half of the containment machinery);
//! * [`containment`] — the checker suite and its witnesses;
//! * [`minimize`] — containment-driven UC2RPQ minimization (drop absorbed
//!   disjuncts and redundant atoms, simplify atom regexes);
//! * [`translate`] — RQ → Datalog (§4.1), GRQ → RQ, GraphDb ↔ FactDb
//!   bridges, and the arity-reduction encoding behind Theorem 8;
//! * [`query_text`] — a textual rule syntax for UC2RPQs
//!   (`Q(x,y) :- [a+](x,m), [b](m,y).`);
//! * [`rq_text`] — the full-RQ rule syntax with explicit `tc[Pred]`
//!   transitive-closure atoms.

pub mod canonical;
pub mod containment;
pub mod crpq;
pub mod expansion;
pub mod minimize;
pub mod query_text;
pub mod rpq;
pub mod rq;
pub mod rq_text;
pub mod translate;

pub use crpq::{C2Rpq, C2RpqAtom, Uc2Rpq};
pub use rpq::{Rpq, TwoRpq};
pub use rq::{RqExpr, RqQuery};
