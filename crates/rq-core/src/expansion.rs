//! Canonical databases (expansions) of conjunctive 2RPQs.
//!
//! The database-theoretic half of the containment machinery: a C2RPQ
//! `φ` is contained in a query `Q2` iff for *every* expansion of `φ` —
//! replace each atom `κ(x, y)` by a fresh semipath spelling some word of
//! `L(κ)` — the distinguished tuple is in `Q2`'s answer on the expansion
//! (UC2RPQ and RQ answers are preserved under homomorphisms, and the
//! expansions are exactly the canonical databases). The refutation side of
//! the hybrid checkers enumerates expansions; any failure is a *sound*
//! counterexample.

use crate::crpq::C2Rpq;
use rq_automata::{Alphabet, Letter};
use rq_graph::{GraphDb, NodeId};
use std::collections::BTreeMap;

/// An expansion of a C2RPQ: the canonical graph database built from one
/// word choice per atom, plus the node images of the head variables.
///
/// The expansion shares the query's alphabet, so any query over the same
/// alphabet evaluates on it directly.
#[derive(Debug, Clone)]
pub struct Expansion {
    pub db: GraphDb,
    pub head_nodes: Vec<NodeId>,
    /// The word chosen for each atom (for diagnostics).
    pub words: Vec<Vec<Letter>>,
}

/// Build the expansion of `conjunct` for the given per-atom words, over
/// the query's `alphabet`.
///
/// Empty words equate their atom's endpoints: variables are merged with a
/// union–find before materializing nodes (the ε-semipath is a single
/// object). Inverse letters produce backward edges, so the fresh path is a
/// semipath spelling exactly the chosen word.
///
/// Returns `None` if `words.len() != conjunct.atoms.len()`.
pub fn expand(conjunct: &C2Rpq, words: &[Vec<Letter>], alphabet: &Alphabet) -> Option<Expansion> {
    if words.len() != conjunct.atoms.len() {
        return None;
    }
    // Union–find over variable names for ε-words.
    let vars: Vec<String> = conjunct
        .variables()
        .into_iter()
        .map(str::to_owned)
        .collect();
    let mut parent: BTreeMap<&str, &str> = vars.iter().map(|v| (v.as_str(), v.as_str())).collect();
    fn find<'a>(parent: &BTreeMap<&'a str, &'a str>, mut v: &'a str) -> &'a str {
        while parent[v] != v {
            v = parent[v];
        }
        v
    }
    for (atom, word) in conjunct.atoms.iter().zip(words) {
        if word.is_empty() {
            let a = find(&parent, atom.from.as_str());
            let b = find(&parent, atom.to.as_str());
            if a != b {
                parent.insert(a, b);
            }
        }
    }

    let mut db = GraphDb::with_alphabet(alphabet.clone());
    let mut node_of: BTreeMap<&str, NodeId> = BTreeMap::new();
    for v in &vars {
        let rep = find(&parent, v.as_str());
        if !node_of.contains_key(rep) {
            let n = db.node(&format!("var_{rep}"));
            node_of.insert(rep, n);
        }
        let n = node_of[rep];
        node_of.insert(v.as_str(), n);
    }

    for (i, (atom, word)) in conjunct.atoms.iter().zip(words).enumerate() {
        let start = node_of[atom.from.as_str()];
        let end = node_of[atom.to.as_str()];
        if word.is_empty() {
            debug_assert_eq!(start, end, "union–find merged ε endpoints");
            continue;
        }
        // Fresh interior nodes per atom.
        let mut cur = start;
        for (j, &l) in word.iter().enumerate() {
            let next = if j + 1 == word.len() {
                end
            } else {
                db.node(&format!("p{i}_{j}"))
            };
            if l.inverse {
                db.add_edge(next, l.label, cur);
            } else {
                db.add_edge(cur, l.label, next);
            }
            cur = next;
        }
    }
    let head_nodes = conjunct.head.iter().map(|h| node_of[h.as_str()]).collect();
    Some(Expansion {
        db,
        head_nodes,
        words: words.to_vec(),
    })
}

/// Enumerate per-atom word choices: the shortlex words of each atom's
/// language (up to `max_len`, at most `words_per_atom` each), combined as
/// a cartesian product capped at `max_expansions` total.
pub fn enumerate_word_choices(
    conjunct: &C2Rpq,
    max_len: usize,
    words_per_atom: usize,
    max_expansions: usize,
) -> Vec<Vec<Vec<Letter>>> {
    let per_atom: Vec<Vec<Vec<Letter>>> = conjunct
        .atoms
        .iter()
        .map(|a| a.rel.nfa().enumerate_words(max_len, words_per_atom))
        .collect();
    if per_atom.iter().any(Vec::is_empty) {
        return Vec::new(); // some atom has an empty language: no expansions
    }
    let mut out: Vec<Vec<Vec<Letter>>> = vec![Vec::new()];
    for choices in &per_atom {
        let mut next = Vec::new();
        for prefix in &out {
            for w in choices {
                let mut p = prefix.clone();
                p.push(w.clone());
                next.push(p);
                if next.len() >= max_expansions {
                    break;
                }
            }
            if next.len() >= max_expansions {
                break;
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpq::TwoRpq;

    fn atom_words(re: &str, al: &mut Alphabet, max: usize) -> Vec<Vec<Letter>> {
        TwoRpq::parse(re, al)
            .unwrap()
            .nfa()
            .enumerate_words(max, 100)
    }

    #[test]
    fn expansion_of_simple_path() {
        let mut al = Alphabet::new();
        let q = C2Rpq::parse(&["x", "y"], &[("a b", "x", "y")], &mut al).unwrap();
        let words = vec![atom_words("a b", &mut al.clone(), 3)[0].clone()];
        let e = expand(&q, &words, &al).unwrap();
        assert_eq!(e.db.num_nodes(), 3); // x, one interior, y
        assert_eq!(e.db.num_edges(), 2);
        assert_eq!(e.head_nodes.len(), 2);
        assert_ne!(e.head_nodes[0], e.head_nodes[1]);
    }

    #[test]
    fn empty_word_merges_endpoints() {
        let mut al = Alphabet::new();
        let q = C2Rpq::parse(&["x", "y"], &[("a*", "x", "y"), ("b", "x", "z")], &mut al).unwrap();
        let words = vec![vec![], atom_words("b", &mut al.clone(), 1)[0].clone()];
        let e = expand(&q, &words, &al).unwrap();
        // x and y merged; z separate.
        assert_eq!(e.head_nodes[0], e.head_nodes[1]);
        assert_eq!(e.db.num_nodes(), 2);
    }

    #[test]
    fn inverse_letters_make_backward_edges() {
        let mut al = Alphabet::new();
        let q = C2Rpq::parse(&["x", "y"], &[("a-", "x", "y")], &mut al).unwrap();
        let a = al.get("a").unwrap();
        let words = vec![vec![Letter::backward(a)]];
        let e = expand(&q, &words, &al).unwrap();
        // Edge points from y's node to x's node.
        let edges = e.db.edges(a);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0], (e.head_nodes[1], e.head_nodes[0]));
    }

    #[test]
    fn expansion_satisfies_its_conjunct() {
        // The defining property: the head tuple is an answer of the
        // conjunct on its own expansion.
        let mut al = Alphabet::new();
        let q = C2Rpq::parse(
            &["x", "z"],
            &[("a+", "x", "y"), ("b c-", "y", "z")],
            &mut al,
        )
        .unwrap();
        let choices = enumerate_word_choices(&q, 3, 5, 50);
        assert!(!choices.is_empty());
        for words in choices {
            let e = expand(&q, &words, &al).unwrap();
            let ans = q.evaluate(&e.db);
            assert!(
                ans.contains(&e.head_nodes),
                "expansion must satisfy its conjunct: words={words:?}"
            );
        }
    }

    #[test]
    fn enumerate_word_choices_respects_caps() {
        let mut al = Alphabet::new();
        let q = C2Rpq::parse(&["x", "y"], &[("a*", "x", "y"), ("b*", "x", "y")], &mut al).unwrap();
        let choices = enumerate_word_choices(&q, 5, 4, 9);
        assert!(choices.len() <= 9);
        assert!(!choices.is_empty());
        // Empty-language atom yields no expansions.
        let q = C2Rpq::parse(&["x", "y"], &[("∅", "x", "y")], &mut al).unwrap();
        assert!(enumerate_word_choices(&q, 5, 4, 9).is_empty());
    }
}
