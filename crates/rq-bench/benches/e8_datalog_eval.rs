//! E8 — substrate ablation: naive vs semi-naive Datalog evaluation.
//!
//! Transitive closure on chains and random graphs; the semi-naive engine's
//! rule firings grow linearly per round while the naive engine refires the
//! whole program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_bench::{chain_factdb, random_factdb, tc_query};
use rq_datalog::eval::{evaluate_program, evaluate_program_naive};
use std::hint::black_box;

fn bench_chain(c: &mut Criterion) {
    let q = tc_query();
    let mut g = c.benchmark_group("e8/chain");
    g.sample_size(10);
    for n in [25usize, 50, 100, 200] {
        let edb = chain_factdb(n);
        g.bench_with_input(BenchmarkId::new("semi_naive", n), &n, |b, _| {
            b.iter(|| black_box(evaluate_program(&q.program, &edb).1.facts_derived))
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(evaluate_program_naive(&q.program, &edb).1.facts_derived))
        });
    }
    g.finish();
}

fn bench_random(c: &mut Criterion) {
    let q = tc_query();
    let mut g = c.benchmark_group("e8/random");
    g.sample_size(10);
    for n in [30usize, 60, 120] {
        let edb = random_factdb(n, 2 * n, 0, 5);
        g.bench_with_input(BenchmarkId::new("semi_naive", n), &n, |b, _| {
            b.iter(|| black_box(evaluate_program(&q.program, &edb).1.facts_derived))
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(evaluate_program_naive(&q.program, &edb).1.facts_derived))
        });
    }
    g.finish();
}

criterion_group!(e8, bench_chain, bench_random);
criterion_main!(e8);
