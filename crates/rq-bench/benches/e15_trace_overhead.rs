//! E15 — request-tracing overhead: the E12 batch-serving workload with a
//! per-query `TraceContext` installed and every finished trace offered
//! to a flight recorder, against the same workload untraced.
//!
//! The acceptance bar for rq-trace: always-on capture (head sampling at
//! 1, i.e. every request's spans recorded) must stay within a few
//! percent of the untraced path. Span starts are one `Instant::now()`
//! plus a thread-local probe; completions append to a per-trace `Vec`
//! under a mutex held for the push; the recorder writes one `Arc` into a
//! ring slot per request — all far off the BFS hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use rq_bench::{e10_graph, e12_batch};
use rq_core::rpq::TwoRpq;
use rq_engine::{Engine, EngineConfig};
use rq_metrics::recorder::{Recorder, RecorderConfig};
use rq_metrics::span::{self, TraceContext};
use std::hint::black_box;

fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15/trace_overhead");
    g.sample_size(20);
    let db = e10_graph(100, 3);
    let engine = Engine::new(
        db,
        EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        },
    );
    let queries: Vec<TwoRpq> = e12_batch(32)
        .iter()
        .map(|t| engine.parse(t).unwrap())
        .collect();

    g.bench_function("untraced", |b| {
        b.iter(|| {
            engine.clear_cache();
            for q in &queries {
                black_box(engine.run(q).unwrap().answer.len());
            }
        })
    });

    g.bench_function("traced_capture_only", |b| {
        // Span capture without sealing: isolates the per-span cost
        // (thread-local bookkeeping, field formatting, the trace-vec
        // push) from the per-request snapshot + recorder write.
        b.iter(|| {
            engine.clear_cache();
            for q in &queries {
                let ctx = TraceContext::start();
                let _guard = span::install(&ctx, 0);
                black_box(engine.run(q).unwrap().answer.len());
            }
        })
    });

    g.bench_function("traced_recorded", |b| {
        // Serve-like per-request tracing: fresh context installed around
        // each query, finished and recorded — sampling at 1 (every
        // request captures spans) so this is the worst case.
        let recorder = Recorder::new(RecorderConfig::default());
        b.iter(|| {
            engine.clear_cache();
            for q in &queries {
                let ctx = TraceContext::start();
                {
                    let _guard = span::install(&ctx, 0);
                    black_box(engine.run(q).unwrap().answer.len());
                }
                black_box(recorder.record(ctx.finish("ok", "")));
            }
        })
    });

    g.finish();
}

criterion_group!(e15, bench_trace_overhead);
criterion_main!(e15);
