//! E9 — §2.3: Monadic Datalog expresses reachability-to-a-set but not E⁺.
//!
//! Benchmarks the monadic reachability program against the full binary
//! transitive closure on layered DAGs — the monadic query computes a set
//! (linear-size answer) while E⁺ materializes a quadratic relation, which
//! is the expressiveness/efficiency trade-off the paper discusses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_bench::{monadic_reachability_query, tc_query};
use rq_datalog::evaluate;
use rq_datalog::FactDb;
use rq_graph::generate::layered_dag;
use std::hint::black_box;

/// Layered-DAG EDB with the last layer marked in `p`.
fn layered_factdb(layers: usize, width: usize) -> FactDb {
    let g = layered_dag(layers, width, 2, "e", 9);
    let mut db = FactDb::new();
    let e = g.alphabet().get("e").unwrap();
    for &(s, d) in g.edges(e) {
        db.add_fact("e", &[&format!("n{}", s.0), &format!("n{}", d.0)]);
    }
    // Mark sinks (nodes with no outgoing edges) as targets.
    for n in g.nodes() {
        if g.out_edges(n).is_empty() {
            db.add_fact("p", &[&format!("n{}", n.0)]);
        }
    }
    db
}

fn bench_monadic_vs_tc(c: &mut Criterion) {
    let monadic = monadic_reachability_query();
    let tc = tc_query();
    let mut g = c.benchmark_group("e9/layered");
    g.sample_size(10);
    for layers in [4usize, 8, 16] {
        let edb = layered_factdb(layers, 8);
        g.bench_with_input(
            BenchmarkId::new("monadic_reach", layers),
            &layers,
            |b, _| b.iter(|| black_box(evaluate(&monadic, &edb).len())),
        );
        g.bench_with_input(BenchmarkId::new("full_tc", layers), &layers, |b, _| {
            b.iter(|| black_box(evaluate(&tc, &edb).len()))
        });
    }
    g.finish();
}

criterion_group!(e9, bench_monadic_vs_tc);
criterion_main!(e9);
