//! E4 — Theorem 5: 2RPQ containment through fold + two-way machinery.
//!
//! Sweeps the paper's folding family `p ⊑ (p p⁻)^k p`, a refuted family
//! with growing counterexamples, and random 2RPQ pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_bench::{e4_paper_family, e4_random_pair, e4_refuted_family};
use rq_core::containment::two_rpq;
use std::hint::black_box;

fn bench_paper_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4/paper_family");
    for k in [1usize, 2, 4, 8] {
        let (q1, q2, al) = e4_paper_family(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(two_rpq::check(&q1, &q2, &al).is_contained()))
        });
    }
    g.finish();
}

fn bench_refuted_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4/refuted");
    for n in [2usize, 4, 8, 16] {
        let (q1, q2, al) = e4_refuted_family(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(two_rpq::check(&q1, &q2, &al).is_not_contained()))
        });
    }
    g.finish();
}

fn bench_random(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4/random");
    for leaves in [4usize, 8, 12] {
        let pairs: Vec<_> = (0..6).map(|s| e4_random_pair(leaves, s)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(leaves), &leaves, |b, _| {
            b.iter(|| {
                for (q1, q2, al) in &pairs {
                    black_box(two_rpq::check(q1, q2, al).decided());
                }
            })
        });
    }
    g.finish();
}

criterion_group!(e4, bench_paper_family, bench_refuted_family, bench_random);
criterion_main!(e4);
