//! E1 — Lemma 1 / §3.2: RPQ containment, on-the-fly vs explicit.
//!
//! Measures (a) containment time vs query size for contained, refuted, and
//! random families, and (b) the on-the-fly product against the explicit
//! (eager complement) construction on the adversarial `2^n` family — the
//! paper's point that constructing `A` on the fly is what keeps the
//! algorithm in polynomial space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_automata::containment::{check_explicit, check_on_the_fly};
use rq_bench::{
    ab_alphabet, e1_contained_pair, e1_exponential_pair, e1_random_pair, e1_refuted_pair,
};
use rq_core::containment::rpq;
use std::hint::black_box;

fn bench_families(c: &mut Criterion) {
    let al = ab_alphabet();
    let mut g = c.benchmark_group("e1/contained");
    for n in [2usize, 4, 8, 16, 32] {
        let (q1, q2) = e1_contained_pair(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(rpq::check(&q1, &q2, &al).is_contained()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e1/refuted");
    for n in [2usize, 4, 8, 16, 32] {
        let (q1, q2) = e1_refuted_pair(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(rpq::check(&q1, &q2, &al).is_not_contained()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e1/random");
    for leaves in [4usize, 8, 16] {
        let pairs: Vec<_> = (0..8).map(|s| e1_random_pair(leaves, s)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(leaves), &leaves, |b, _| {
            b.iter(|| {
                for (q1, q2) in &pairs {
                    black_box(rpq::check(q1, q2, &al).decided());
                }
            })
        });
    }
    g.finish();
}

fn bench_on_the_fly_vs_explicit(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1/fly_vs_explicit");
    g.sample_size(20);
    for n in [4usize, 8, 12] {
        let (q1, q2) = e1_exponential_pair(n);
        let (n1, n2) = (q1.as_two_rpq().nfa().clone(), q2.as_two_rpq().nfa().clone());
        let letters: Vec<_> = ab_alphabet().sigma().collect();
        g.bench_with_input(BenchmarkId::new("on_the_fly", n), &n, |b, _| {
            b.iter(|| black_box(check_on_the_fly(&n1, &n2).states_explored))
        });
        g.bench_with_input(BenchmarkId::new("explicit", n), &n, |b, _| {
            b.iter(|| black_box(check_explicit(&n1, &n2, &letters).states_explored))
        });
    }
    g.finish();
}

criterion_group!(e1, bench_families, bench_on_the_fly_vs_explicit);
criterion_main!(e1);
