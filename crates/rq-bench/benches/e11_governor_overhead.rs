//! E11 — resource-governor overhead on the E1/E4 containment workloads.
//!
//! Every checker entry point now runs under a [`Governor`]; the default
//! path uses an unlimited governor whose fuel checks are a `Cell`
//! increment plus a compare against `u64::MAX`. This bench pins down what
//! *arming* real budgets costs on top of that: each workload is timed with
//! the default unlimited governor (A) and with a governor carrying a
//! finite fuel cap and a far-away wall-clock deadline (B), so every poll
//! site — fuel compares, amortized deadline reads, state caps — is live in
//! B but never trips. The acceptance bar is < 5% overhead.

use criterion::time_median_ns;
use rq_automata::{Governor, Limits};
use rq_bench::{
    ab_alphabet, e1_contained_pair, e1_random_pair, e1_refuted_pair, e4_paper_family,
    e4_random_pair, e4_refuted_family,
};
use rq_core::containment::{rpq, two_rpq};
use std::hint::black_box;
use std::time::Duration;

/// A governor with every budget armed but generous enough to never trip.
fn armed_governor() -> Governor {
    Limits::unlimited()
        .with_fuel(u64::MAX / 2)
        .with_states(u64::MAX / 2)
        .with_deadline(Duration::from_secs(3600))
        .governor()
}

struct Row {
    name: &'static str,
    plain_ns: f64,
    armed_ns: f64,
}

impl Row {
    fn overhead(&self) -> f64 {
        (self.armed_ns - self.plain_ns) / self.plain_ns
    }
}

/// Best-of-5-medians on each side, interleaved so that drift in machine
/// load lands on both variants equally. The minimum is the standard robust
/// estimator here: scheduler noise only ever adds time.
fn measure<FA: FnMut(), FB: FnMut()>(name: &'static str, mut plain: FA, mut armed: FB) -> Row {
    let mut a = f64::INFINITY;
    let mut b = f64::INFINITY;
    for _ in 0..5 {
        a = a.min(time_median_ns(&mut plain));
        b = b.min(time_median_ns(&mut armed));
    }
    Row {
        name,
        plain_ns: a,
        armed_ns: b,
    }
}

fn main() {
    let al = ab_alphabet();
    let mut rows = Vec::new();

    // E1: RPQ containment (on-the-fly product under the hood).
    {
        let (q1, q2) = e1_contained_pair(16);
        rows.push(measure(
            "e1/contained(16)",
            || {
                black_box(rpq::check(&q1, &q2, &al).is_contained());
            },
            || {
                let gov = armed_governor();
                black_box(rpq::check_governed(&q1, &q2, &al, &gov).expect("ample budget"));
            },
        ));
    }
    {
        let (q1, q2) = e1_refuted_pair(16);
        rows.push(measure(
            "e1/refuted(16)",
            || {
                black_box(rpq::check(&q1, &q2, &al).is_not_contained());
            },
            || {
                let gov = armed_governor();
                black_box(rpq::check_governed(&q1, &q2, &al, &gov).expect("ample budget"));
            },
        ));
    }
    {
        let pairs: Vec<_> = (0..8).map(|s| e1_random_pair(8, s)).collect();
        rows.push(measure(
            "e1/random(8 leaves × 8)",
            || {
                for (q1, q2) in &pairs {
                    black_box(rpq::check(q1, q2, &al).decided());
                }
            },
            || {
                for (q1, q2) in &pairs {
                    let gov = armed_governor();
                    black_box(rpq::check_governed(q1, q2, &al, &gov).expect("ample budget"));
                }
            },
        ));
    }

    // E4: 2RPQ containment (fold + Shepherdson membership under the hood).
    {
        let (q1, q2, al4) = e4_paper_family(6);
        rows.push(measure(
            "e4/paper(6)",
            || {
                black_box(two_rpq::check(&q1, &q2, &al4).is_contained());
            },
            || {
                let gov = armed_governor();
                black_box(two_rpq::check_governed(&q1, &q2, &al4, &gov).expect("ample budget"));
            },
        ));
    }
    {
        let (q1, q2, al4) = e4_refuted_family(4);
        rows.push(measure(
            "e4/refuted(4)",
            || {
                black_box(two_rpq::check(&q1, &q2, &al4).is_not_contained());
            },
            || {
                let gov = armed_governor();
                black_box(two_rpq::check_governed(&q1, &q2, &al4, &gov).expect("ample budget"));
            },
        ));
    }
    {
        let cases: Vec<_> = (0..8).map(|s| e4_random_pair(6, s)).collect();
        rows.push(measure(
            "e4/random(6 leaves × 8)",
            || {
                for (q1, q2, al4) in &cases {
                    black_box(two_rpq::check(q1, q2, al4).decided());
                }
            },
            || {
                for (q1, q2, al4) in &cases {
                    let gov = armed_governor();
                    black_box(two_rpq::check_governed(q1, q2, al4, &gov).expect("ample budget"));
                }
            },
        ));
    }

    println!("e11/governor_overhead (armed budgets vs default unlimited)");
    println!(
        "{:<26} {:>12} {:>12} {:>9}",
        "workload", "default", "armed", "overhead"
    );
    let (mut plain_total, mut armed_total) = (0.0, 0.0);
    for r in &rows {
        println!(
            "{:<26} {:>9.0} ns {:>9.0} ns {:>8.1}%",
            r.name,
            r.plain_ns,
            r.armed_ns,
            r.overhead() * 100.0
        );
        plain_total += r.plain_ns;
        armed_total += r.armed_ns;
    }
    // Per-row deltas on identical code paths sit inside measurement noise;
    // the acceptance bar is the aggregate across the whole suite.
    let aggregate = (armed_total - plain_total) / plain_total;
    println!("aggregate overhead: {:.1}%", aggregate * 100.0);
    assert!(
        aggregate < 0.05,
        "governor bookkeeping exceeded the 5% budget: {:.1}%",
        aggregate * 100.0
    );
    println!("PASS: governor overhead under 5% across the E1/E4 workloads");
}
