//! E7 — Theorem 8: GRQ containment via the arity encoding and the GRQ→RQ
//! translation.
//!
//! Sweeps the EDB arity `k` of a reachability query: measures the
//! translation pipeline alone and the end-to-end containment decision
//! (hop ⊑ reach, reach ⋢ hop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_automata::Alphabet;
use rq_bench::{e7_kary_hop, e7_kary_reachability};
use rq_core::containment::Config;
use rq_core::translate::{encode_query, grq_containment, grq_to_rq};
use std::hint::black_box;

fn bench_translation(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7/translate");
    for k in [2usize, 3, 4, 6] {
        let q = e7_kary_reachability(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let e = encode_query(&q);
                let mut al = Alphabet::new();
                black_box(grq_to_rq(&e, &mut al).expect("GRQ translates"))
            })
        });
    }
    g.finish();
}

fn bench_containment(c: &mut Criterion) {
    let cfg = Config::default();
    let mut g = c.benchmark_group("e7/containment");
    g.sample_size(10);
    for k in [2usize, 3, 4] {
        let reach = e7_kary_reachability(k);
        let hop = e7_kary_hop(k);
        g.bench_with_input(BenchmarkId::new("hop_in_reach", k), &k, |b, _| {
            b.iter(|| black_box(grq_containment(&hop, &reach, &cfg).is_contained()))
        });
        g.bench_with_input(BenchmarkId::new("reach_not_in_hop", k), &k, |b, _| {
            b.iter(|| black_box(grq_containment(&reach, &hop, &cfg).is_not_contained()))
        });
    }
    g.finish();
}

criterion_group!(e7, bench_translation, bench_containment);
criterion_main!(e7);
