//! E12 — rq-engine serving throughput: parallel product-BFS vs the
//! sequential evaluator, and batch serving with the semantic cache.
//!
//! The all-pairs group reuses the E10 G(n, 3n) workload so the speedup is
//! measured against the same baseline as the scaling tables; the engine at
//! ≥2 threads must beat `TwoRpq::evaluate`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_bench::{e10_graph, e12_batch};
use rq_core::rpq::TwoRpq;
use rq_engine::{Engine, EngineConfig};
use std::hint::black_box;

fn engine_on(db: &rq_graph::GraphDb, threads: usize) -> Engine {
    Engine::new(
        db.clone(),
        EngineConfig {
            threads,
            ..EngineConfig::default()
        },
    )
}

fn bench_all_pairs(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12/all_pairs");
    g.sample_size(10);
    for nodes in [100usize, 200] {
        let db = e10_graph(nodes, 3);
        let mut al = db.alphabet().clone();
        let q = TwoRpq::parse("a(b|a)*", &mut al).unwrap();
        g.bench_with_input(BenchmarkId::new("sequential", nodes), &nodes, |b, _| {
            b.iter(|| black_box(q.evaluate(&db).len()))
        });
        for threads in [1usize, 2, 4] {
            let engine = engine_on(&db, threads);
            let q = engine.parse("a(b|a)*").unwrap();
            g.bench_with_input(
                BenchmarkId::new(format!("engine_t{threads}"), nodes),
                &nodes,
                |b, _| {
                    b.iter(|| {
                        // Clear so every iteration measures a cold
                        // parallel evaluation, not a cache hit.
                        engine.clear_cache();
                        black_box(engine.run(&q).unwrap().answer.len())
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_serve_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12/serve_batch");
    g.sample_size(10);
    let db = e10_graph(100, 3);
    let texts = e12_batch(32);
    for threads in [1usize, 2, 4] {
        let engine = engine_on(&db, threads);
        let queries: Vec<TwoRpq> = texts.iter().map(|t| engine.parse(t).unwrap()).collect();
        g.bench_with_input(BenchmarkId::new("cold", threads), &threads, |b, _| {
            b.iter(|| {
                engine.clear_cache();
                black_box(engine.run_batch(&queries).items.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("warm", threads), &threads, |b, _| {
            // Warm: the cache already holds every canonical key, so
            // the batch is served from exact hits.
            engine.run_batch(&queries);
            b.iter(|| black_box(engine.run_batch(&queries).items.len()))
        });
    }
    g.finish();
}

fn bench_metrics_overhead(c: &mut Criterion) {
    // The acceptance bar for rq-metrics: the instrumented serving path
    // with recording enabled must stay within a few percent of the same
    // path with the global kill switch off. Samples only touch atomics at
    // coarse boundaries (per probe, per BFS, per query), so the two
    // timings should be statistically indistinguishable.
    let mut g = c.benchmark_group("e12/metrics_overhead");
    g.sample_size(10);
    let db = e10_graph(100, 3);
    let texts = e12_batch(32);
    let engine = engine_on(&db, 2);
    let queries: Vec<TwoRpq> = texts.iter().map(|t| engine.parse(t).unwrap()).collect();
    for enabled in [false, true] {
        let name = if enabled { "enabled" } else { "disabled" };
        g.bench_function(name, |b| {
            rq_metrics::set_enabled(enabled);
            b.iter(|| {
                engine.clear_cache();
                black_box(engine.run_batch(&queries).items.len())
            });
            rq_metrics::set_enabled(true);
        });
    }
    g.finish();
}

criterion_group!(
    e12,
    bench_all_pairs,
    bench_serve_batch,
    bench_metrics_overhead
);
criterion_main!(e12);
