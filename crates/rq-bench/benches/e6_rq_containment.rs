//! E6 — Theorem 7 territory: RQ containment.
//!
//! Sweeps collapsible closures (exact elimination), the paper's triangle
//! closure (inductive prover), and a refuted pair (unrolling + expansion
//! search against semantic evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_bench::{e6_collapsible_pair, e6_refuted_pair, e6_triangle_pair};
use rq_core::containment::{rq, Config};
use std::hint::black_box;

fn bench_collapsible(c: &mut Criterion) {
    let cfg = Config::default();
    let mut g = c.benchmark_group("e6/collapsible");
    for k in [1usize, 2, 3, 4] {
        let (q1, q2, al) = e6_collapsible_pair(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(rq::check(&q1, &q2, &al, &cfg).is_contained()))
        });
    }
    g.finish();
}

fn bench_triangle(c: &mut Criterion) {
    let cfg = Config::default();
    let mut g = c.benchmark_group("e6/triangle");
    g.sample_size(10);
    let (q1, q2, al) = e6_triangle_pair();
    g.bench_function("induction_proof", |b| {
        b.iter(|| black_box(rq::check(&q1, &q2, &al, &cfg).is_contained()))
    });
    let (q1, q2, al) = e6_refuted_pair();
    g.bench_function("refutation", |b| {
        b.iter(|| black_box(rq::check(&q1, &q2, &al, &cfg).is_not_contained()))
    });
    g.finish();
}

fn bench_unfold_depth(c: &mut Criterion) {
    // Ablation: refutation cost vs unrolling depth.
    let mut g = c.benchmark_group("e6/unfold_depth");
    g.sample_size(10);
    let (q1, q2, al) = e6_refuted_pair();
    for depth in [1usize, 2, 3] {
        let cfg = Config {
            unfold_depth: depth,
            ..Config::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| black_box(rq::check(&q1, &q2, &al, &cfg).decided()))
        });
    }
    g.finish();
}

criterion_group!(e6, bench_collapsible, bench_triangle, bench_unfold_depth);
criterion_main!(e6);
