//! E2 — Lemma 3: the fold 2NFA has exactly `n·(|Σ±|+1)` states.
//!
//! Benchmarks the construction time as the NFA grows (the state count
//! itself is asserted to match the bound; the `report` binary prints the
//! size table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_automata::fold::{fold_twonfa, lemma3_state_bound};
use rq_bench::{e2_nfa, sigma_pm};
use std::hint::black_box;

fn bench_fold_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2/fold_construction");
    for states in [4usize, 8, 16, 32, 64, 128] {
        let nfa = e2_nfa(states, 2, 7);
        let letters = sigma_pm(2);
        // The Lemma 3 bound must hold exactly.
        let m = fold_twonfa(&nfa, &letters);
        assert_eq!(
            m.num_states(),
            lemma3_state_bound(nfa.num_states(), letters.len())
        );
        g.bench_with_input(BenchmarkId::from_parameter(states), &states, |b, _| {
            b.iter(|| black_box(fold_twonfa(&nfa, &letters).num_states()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e2/by_alphabet");
    for labels in [1usize, 2, 4, 8] {
        let nfa = e2_nfa(16, labels, 11);
        let letters = sigma_pm(labels);
        g.bench_with_input(BenchmarkId::from_parameter(labels), &labels, |b, _| {
            b.iter(|| black_box(fold_twonfa(&nfa, &letters).num_states()))
        });
    }
    g.finish();
}

criterion_group!(e2, bench_fold_construction);
criterion_main!(e2);
