//! E13 — rq-analyze pre-flight: per-query analysis overhead and what the
//! subsumed-branch normalization buys the engine's semantic cache.
//!
//! The overhead group times `rq_analyze::preflight` alone on each action
//! class (unchanged / empty / rewritten) with the engine's own probe
//! budgets. The serving group replays the fold-variant workload (every
//! union is answer-equivalent to its Lemma-2 detour) through the engine
//! with the pass on and off: on, unions collide on the detour's canonical
//! key; off, they must be recognized through containment probes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_analyze::preflight;
use rq_bench::{e10_graph, e13_empty_queries, e13_fold_pairs};
use rq_core::rpq::TwoRpq;
use rq_engine::{Engine, EngineConfig};
use std::hint::black_box;

fn bench_preflight_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13/preflight");
    let config = EngineConfig::default();
    let limits = &config.cache.probe_limits;
    let pairs = e13_fold_pairs();
    let alphabet = rq_bench::ab_alphabet();

    // Unchanged: the common case every served query pays for.
    for (text, detour, _) in pairs.iter().take(3) {
        g.bench_with_input(
            BenchmarkId::new("unchanged", text),
            detour,
            |b, q: &TwoRpq| b.iter(|| black_box(preflight(q, &alphabet, limits).action)),
        );
    }
    // Empty: one `is_empty_language` walk, no containment probes.
    let empty = &e13_empty_queries()[0];
    g.bench_with_input(BenchmarkId::new("empty", "a ∅"), empty, |b, q| {
        b.iter(|| black_box(preflight(q, &alphabet, limits).action))
    });
    // Rewritten: the union pays one quick-ladder probe per branch pair.
    for (text, _, union) in pairs.iter().take(3) {
        g.bench_with_input(
            BenchmarkId::new("rewritten", text),
            union,
            |b, q: &TwoRpq| b.iter(|| black_box(preflight(q, &alphabet, limits).action)),
        );
    }
    g.finish();
}

fn bench_serving_with_preflight(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13/serving");
    g.sample_size(10);
    let db = e10_graph(100, 3);
    let mut batch: Vec<TwoRpq> = Vec::new();
    for (_, detour, union) in e13_fold_pairs() {
        batch.push(detour);
        batch.push(union);
    }
    batch.extend(e13_empty_queries());
    for on in [true, false] {
        let engine = Engine::new(
            db.clone(),
            EngineConfig {
                threads: 2,
                preflight: on,
                ..EngineConfig::default()
            },
        );
        g.bench_function(
            BenchmarkId::new("fold_batch", if on { "on" } else { "off" }),
            |b| {
                b.iter(|| {
                    engine.clear_cache();
                    black_box(engine.run_batch(&batch).stats.hits())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_preflight_overhead,
    bench_serving_with_preflight
);
criterion_main!(benches);
