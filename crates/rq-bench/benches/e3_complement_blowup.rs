//! E3 — Lemma 4: 2NFA complementation with a `2^O(n)` state blow-up.
//!
//! Benchmarks the Vardi-1989 subset-pair construction on small chain
//! automata (the blow-up is the *point* of the lemma, so inputs are tiny)
//! and compares it with the Shepherdson-table path used in production.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_automata::complement2::vardi_complement;
use rq_automata::shepherdson::ShepherdsonDfa;
use rq_automata::twonfa::TwoNfa;
use rq_automata::{LabelId, Letter, Nfa};
use std::hint::black_box;

/// The chain 2NFA for a^k (k+1 states).
fn chain_twonfa(k: usize) -> TwoNfa {
    let a = Letter::forward(LabelId(0));
    let mut n = Nfa::with_states(k + 1);
    n.set_initial(0);
    n.set_final(k);
    for i in 0..k {
        n.add_transition(i, a, i + 1);
    }
    TwoNfa::from_nfa(&n)
}

fn bench_complement(c: &mut Criterion) {
    let a = Letter::forward(LabelId(0));
    let mut g = c.benchmark_group("e3/vardi_complement");
    g.sample_size(10);
    for k in [1usize, 2, 3, 4] {
        let m = chain_twonfa(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                black_box(
                    vardi_complement(&m, &[a], 10_000_000)
                        .expect("within cap")
                        .pairs,
                )
            })
        });
    }
    g.finish();

    // Shepherdson tables explore far fewer states on the same inputs.
    let mut g = c.benchmark_group("e3/shepherdson");
    for k in [1usize, 2, 3, 4, 8] {
        let m = chain_twonfa(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut det = ShepherdsonDfa::new(&m);
                // Drive it over a few words to materialize tables.
                for len in 0..=k + 1 {
                    let w = vec![a; len];
                    black_box(det.accepts(&w));
                }
                black_box(det.discovered())
            })
        });
    }
    g.finish();
}

criterion_group!(e3, bench_complement);
criterion_main!(e3);
