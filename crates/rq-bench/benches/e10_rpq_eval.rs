//! E10 — §3.1: RPQ/2RPQ evaluation scaling on random and social graphs.
//!
//! Product-graph BFS evaluation: all-pairs and single-source, forward-only
//! vs two-way queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_bench::{e10_graph, e10_social};
use rq_core::rpq::TwoRpq;
use rq_graph::NodeId;
use std::hint::black_box;

fn bench_random_graphs(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10/random_all_pairs");
    g.sample_size(10);
    for nodes in [50usize, 100, 200] {
        let db = e10_graph(nodes, 3);
        let mut al = db.alphabet().clone();
        let q = TwoRpq::parse("a(b|a)*", &mut al).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| black_box(q.evaluate(&db).len()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e10/random_single_source");
    for nodes in [100usize, 400, 1600] {
        let db = e10_graph(nodes, 3);
        let mut al = db.alphabet().clone();
        let q = TwoRpq::parse("a(b|a)*", &mut al).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| black_box(q.evaluate_from(&db, NodeId(0)).len()))
        });
    }
    g.finish();
}

fn bench_social(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10/social");
    g.sample_size(10);
    for nodes in [100usize, 300, 1000] {
        let db = e10_social(nodes, 5);
        let mut al = db.alphabet().clone();
        let fwd = TwoRpq::parse("knows+", &mut al).unwrap();
        let two_way = TwoRpq::parse("knows- (knows-|follows-)*", &mut al).unwrap();
        let src = db.nodes().max_by_key(|&n| db.degree(n)).expect("nonempty");
        g.bench_with_input(
            BenchmarkId::new("forward_all_pairs", nodes),
            &nodes,
            |b, _| b.iter(|| black_box(fwd.evaluate(&db).len())),
        );
        g.bench_with_input(
            BenchmarkId::new("two_way_from_hub", nodes),
            &nodes,
            |b, _| b.iter(|| black_box(two_way.evaluate_from(&db, src).len())),
        );
    }
    g.finish();
}

criterion_group!(e10, bench_random_graphs, bench_social);
criterion_main!(e10);
