//! E5 — Theorem 6 territory: UC2RPQ containment families.
//!
//! Sweeps chain-shaped conjuncts (exact path), branching conjuncts
//! (homomorphism prover), and refuted pairs with growing counterexample
//! word lengths (expansion search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_bench::{e5_branching_pair, e5_chain_pair, e5_refuted_pair};
use rq_core::containment::{uc2rpq, Config};
use std::hint::black_box;

fn bench_chain(c: &mut Criterion) {
    let cfg = Config::default();
    let mut g = c.benchmark_group("e5/chain_contained");
    for k in [1usize, 2, 4, 8] {
        let (q1, q2, al) = e5_chain_pair(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(uc2rpq::check(&q1, &q2, &al, &cfg).is_contained()))
        });
    }
    g.finish();
}

fn bench_branching(c: &mut Criterion) {
    let cfg = Config::default();
    let mut g = c.benchmark_group("e5/branching_contained");
    g.sample_size(30);
    for k in [1usize, 2, 3, 4] {
        let (q1, q2, al) = e5_branching_pair(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(uc2rpq::check(&q1, &q2, &al, &cfg).is_contained()))
        });
    }
    g.finish();
}

fn bench_refuted(c: &mut Criterion) {
    let cfg = Config::default();
    let mut g = c.benchmark_group("e5/refuted");
    g.sample_size(20);
    for n in [1usize, 2, 3, 4] {
        let (q1, q2, al) = e5_refuted_pair(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(uc2rpq::check(&q1, &q2, &al, &cfg).is_not_contained()))
        });
    }
    g.finish();
}

criterion_group!(e5, bench_chain, bench_branching, bench_refuted);
criterion_main!(e5);
