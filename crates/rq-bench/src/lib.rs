//! # rq-bench
//!
//! Workload generators and measurement helpers shared by the Criterion
//! benches (`benches/e*.rs`) and the `report` binary that regenerates the
//! EXPERIMENTS.md tables.
//!
//! The source paper (Vardi, *A Theory of Regular Queries*, PODS 2016) is an
//! overview paper with no empirical tables; the experiment suite instead
//! measures the paper's *quantitative claims* — construction sizes
//! (Lemmas 3–4) and the scaling shape of each containment procedure
//! (Lemma 1, Theorems 5–8) plus substrate ablations (naive vs semi-naive
//! Datalog, monadic reachability). See `DESIGN.md` for the index.

pub mod workloads;

pub use workloads::*;
