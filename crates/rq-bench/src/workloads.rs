//! Deterministic workload generators for experiments E1–E10 and E12–E14.

use rq_automata::random::{random_regex, RegexConfig, SplitMix64};
use rq_automata::{Alphabet, LabelId, Letter, Regex};
use rq_core::crpq::{C2Rpq, Uc2Rpq};
use rq_core::rpq::{Rpq, TwoRpq};
use rq_core::rq::{RqExpr, RqQuery};
use rq_datalog::ast::Query as DatalogQuery;
use rq_datalog::parser::parse_program;
use rq_datalog::FactDb;
use rq_graph::GraphDb;

/// The two-label alphabet used by most experiments.
pub fn ab_alphabet() -> Alphabet {
    Alphabet::from_names(["a", "b"])
}

fn letter(i: u32) -> Regex {
    Regex::Letter(Letter::forward(LabelId(i)))
}

// ---------------------------------------------------------------------
// E1: RPQ containment — contained and refuted families, by size
// ---------------------------------------------------------------------

/// A *contained* RPQ pair of size `n`: `(ab)^n ⊑ (a|b)*`.
pub fn e1_contained_pair(n: usize) -> (Rpq, Rpq) {
    let ab = letter(0).then(letter(1));
    let q1 = Regex::concat(std::iter::repeat_n(ab, n));
    let q2 = letter(0).or(letter(1)).star();
    (
        Rpq::new(q1).expect("forward"),
        Rpq::new(q2).expect("forward"),
    )
}

/// A *refuted* RPQ pair whose shortest counterexample has length `n`:
/// `a* ⊑ (ε|a)^{n-1}` — every word shorter than `n` is covered.
pub fn e1_refuted_pair(n: usize) -> (Rpq, Rpq) {
    let q1 = letter(0).star();
    let q2 = Regex::concat(std::iter::repeat_n(
        letter(0).optional(),
        n.saturating_sub(1),
    ));
    (
        Rpq::new(q1).expect("forward"),
        Rpq::new(q2).expect("forward"),
    )
}

/// The adversarial family for the explicit construction: `Q2` is the
/// classic "n-th letter from the end is `a`" language, whose complement
/// DFA needs `2^n` states. `Q1 = (a|b)*` is not contained.
pub fn e1_exponential_pair(n: usize) -> (Rpq, Rpq) {
    let sigma = letter(0).or(letter(1));
    let q1 = sigma.clone().star();
    let q2 = sigma
        .clone()
        .star()
        .then(letter(0))
        .then(Regex::concat(std::iter::repeat_n(sigma, n - 1)));
    (
        Rpq::new(q1).expect("forward"),
        Rpq::new(q2).expect("forward"),
    )
}

/// A random RPQ pair with roughly `leaves` letters each.
pub fn e1_random_pair(leaves: usize, seed: u64) -> (Rpq, Rpq) {
    let mut rng = SplitMix64::new(seed);
    let cfg = RegexConfig {
        num_labels: 2,
        inverse_prob: 0.0,
        leaves,
        repeat_prob: 0.3,
    };
    (
        Rpq::new(random_regex(&mut rng, &cfg)).expect("forward"),
        Rpq::new(random_regex(&mut rng, &cfg)).expect("forward"),
    )
}

// ---------------------------------------------------------------------
// E2/E3: fold construction and complement blow-up inputs
// ---------------------------------------------------------------------

/// A random ε-free trim NFA over Σ± with `states` states.
pub fn e2_nfa(states: usize, labels: usize, seed: u64) -> rq_automata::Nfa {
    let mut rng = SplitMix64::new(seed);
    rq_automata::random::random_nfa(&mut rng, states, labels, 0.3, 1.5)
        .eliminate_epsilon()
        .trim()
}

/// The Σ± letter list for `labels` base labels.
pub fn sigma_pm(labels: usize) -> Vec<Letter> {
    (0..labels as u32)
        .flat_map(|i| [Letter::forward(LabelId(i)), Letter::backward(LabelId(i))])
        .collect()
}

// ---------------------------------------------------------------------
// E4: 2RPQ containment — the paper's example family
// ---------------------------------------------------------------------

/// The paper's folding family: `p ⊑ (p p⁻)^k p` (contained for every k).
pub fn e4_paper_family(k: usize) -> (TwoRpq, TwoRpq, Alphabet) {
    let al = Alphabet::from_names(["p"]);
    let p = letter(0);
    let zig = p.clone().then(Regex::Letter(Letter::backward(LabelId(0))));
    let q2 = Regex::concat(std::iter::repeat_n(zig, k)).then(p.clone());
    (TwoRpq::new(p), TwoRpq::new(q2), al)
}

/// A refuted 2RPQ pair with counterexample length `n`:
/// `a^n ⊑ (a a⁻)* a` fails for `n ≥ 2`.
pub fn e4_refuted_family(n: usize) -> (TwoRpq, TwoRpq, Alphabet) {
    let al = Alphabet::from_names(["a"]);
    let q1 = Regex::concat(std::iter::repeat_n(letter(0), n));
    let zig = letter(0).then(Regex::Letter(Letter::backward(LabelId(0))));
    let q2 = zig.star().then(letter(0));
    (TwoRpq::new(q1), TwoRpq::new(q2), al)
}

/// A random 2RPQ pair.
pub fn e4_random_pair(leaves: usize, seed: u64) -> (TwoRpq, TwoRpq, Alphabet) {
    let mut rng = SplitMix64::new(seed);
    let cfg = RegexConfig {
        num_labels: 2,
        inverse_prob: 0.3,
        leaves,
        repeat_prob: 0.3,
    };
    (
        TwoRpq::new(random_regex(&mut rng, &cfg)),
        TwoRpq::new(random_regex(&mut rng, &cfg)),
        ab_alphabet(),
    )
}

// ---------------------------------------------------------------------
// E5: UC2RPQ containment families
// ---------------------------------------------------------------------

/// A contained pair with `k` chained atoms on the left:
/// `a(x,z1) ∧ … ∧ a(z_{k-1},y) ⊑ a+(x,y)`.
pub fn e5_chain_pair(k: usize) -> (Uc2Rpq, Uc2Rpq, Alphabet) {
    let mut al = Alphabet::from_names(["a"]);
    let mut atoms = Vec::new();
    for i in 0..k {
        let from = if i == 0 {
            "x".to_owned()
        } else {
            format!("z{i}")
        };
        let to = if i + 1 == k {
            "y".to_owned()
        } else {
            format!("z{}", i + 1)
        };
        atoms.push(("a", from, to));
    }
    let atom_refs: Vec<(&str, &str, &str)> = atoms
        .iter()
        .map(|(r, f, t)| (*r, f.as_str(), t.as_str()))
        .collect();
    let q1 = C2Rpq::parse(&["x", "y"], &atom_refs, &mut al).expect("valid");
    let q2 = C2Rpq::parse(&["x", "y"], &[("a+", "x", "y")], &mut al).expect("valid");
    (Uc2Rpq::single(q1), Uc2Rpq::single(q2), al)
}

/// A *branching* (non-chain) contained pair with `k` sibling atoms:
/// left requires `k` children of x; right requires one.
pub fn e5_branching_pair(k: usize) -> (Uc2Rpq, Uc2Rpq, Alphabet) {
    let mut al = Alphabet::from_names(["a"]);
    let atoms: Vec<(String, String)> = (0..k).map(|i| ("a".to_owned(), format!("c{i}"))).collect();
    let atom_refs: Vec<(&str, &str, &str)> = atoms
        .iter()
        .map(|(r, c)| (r.as_str(), "x", c.as_str()))
        .collect();
    let q1 = C2Rpq::parse(&["x"], &atom_refs, &mut al).expect("valid");
    let q2 = C2Rpq::parse(&["x"], &[("a", "x", "c")], &mut al).expect("valid");
    (Uc2Rpq::single(q1), Uc2Rpq::single(q2), al)
}

/// A refuted pair whose counterexample needs word length `n`:
/// `a*(x,y) ⊑ (ε|a|…|a^{n-1})(x,y)`.
pub fn e5_refuted_pair(n: usize) -> (Uc2Rpq, Uc2Rpq, Alphabet) {
    let mut al = Alphabet::from_names(["a"]);
    let q1 = C2Rpq::parse(&["x", "y"], &[("a*", "x", "y")], &mut al).expect("valid");
    let bounded = Regex::union((0..n).map(|i| Regex::concat(std::iter::repeat_n(letter(0), i))));
    let q2 = C2Rpq {
        head: vec!["x".into(), "y".into()],
        atoms: vec![rq_core::crpq::C2RpqAtom::new(
            TwoRpq::new(bounded),
            "x",
            "y",
        )],
    };
    (Uc2Rpq::single(q1), Uc2Rpq::single(q2), al)
}

// ---------------------------------------------------------------------
// E6: RQ containment families
// ---------------------------------------------------------------------

/// `TC((ab)-chain of length k) ⊑ (ab)+` — collapsible closures, exact path.
pub fn e6_collapsible_pair(k: usize) -> (RqQuery, RqQuery, Alphabet) {
    let al = ab_alphabet();
    let a = LabelId(0);
    let b = LabelId(1);
    // body: x -a-> m1 -b-> m2 -a-> … alternating, k edges.
    let mut expr: Option<RqExpr> = None;
    for i in 0..k {
        let from = if i == 0 {
            "x".to_owned()
        } else {
            format!("m{i}")
        };
        let to = if i + 1 == k {
            "y".to_owned()
        } else {
            format!("m{}", i + 1)
        };
        let lbl = if i % 2 == 0 { a } else { b };
        let e = RqExpr::edge(lbl, from, to);
        expr = Some(match expr {
            None => e,
            Some(prev) => prev.and(e),
        });
    }
    let mut expr = expr.expect("k >= 1");
    for i in 1..k {
        expr = expr.project(format!("m{i}"));
    }
    let q1 = RqQuery::new(vec!["x".into(), "y".into()], expr.closure("x", "y")).expect("valid");
    // Right side: ((ab)^… )+ as a single 2RPQ.
    let chain = Regex::concat((0..k).map(|i| if i % 2 == 0 { letter(0) } else { letter(1) }));
    let q2 = RqQuery::new(
        vec!["x".into(), "y".into()],
        RqExpr::rel2(TwoRpq::new(chain.plus()), "x", "y"),
    )
    .expect("valid");
    (q1, q2, al)
}

/// The paper's triangle closure vs plain reachability (inductive proof).
pub fn e6_triangle_pair() -> (RqQuery, RqQuery, Alphabet) {
    let al = Alphabet::from_names(["r"]);
    let r = LabelId(0);
    let body = RqExpr::edge(r, "x", "y")
        .and(RqExpr::edge(r, "y", "z"))
        .and(RqExpr::edge(r, "z", "x"))
        .project("z");
    let q1 = RqQuery::new(vec!["x".into(), "y".into()], body.closure("x", "y")).expect("valid");
    let q2 = RqQuery::new(
        vec!["x".into(), "y".into()],
        RqExpr::rel2(TwoRpq::new(letter(0).plus()), "x", "y"),
    )
    .expect("valid");
    (q1, q2, al)
}

/// Refuted RQ pair: `TC(triangle) ⊑ triangle` (needs unrolling depth 2).
pub fn e6_refuted_pair() -> (RqQuery, RqQuery, Alphabet) {
    let al = Alphabet::from_names(["r"]);
    let r = LabelId(0);
    let body = || {
        RqExpr::edge(r, "x", "y")
            .and(RqExpr::edge(r, "y", "z"))
            .and(RqExpr::edge(r, "z", "x"))
            .project("z")
    };
    let q1 = RqQuery::new(vec!["x".into(), "y".into()], body().closure("x", "y")).expect("valid");
    let q2 = RqQuery::new(vec!["x".into(), "y".into()], body()).expect("valid");
    (q1, q2, al)
}

// ---------------------------------------------------------------------
// E7: GRQ programs
// ---------------------------------------------------------------------

/// A GRQ reachability query over a `k`-ary flight relation (k-2 extra
/// attribute columns), exercising the Theorem 8 arity encoding.
pub fn e7_kary_reachability(k: usize) -> DatalogQuery {
    assert!(k >= 2);
    let extra: Vec<String> = (0..k - 2).map(|i| format!("C{i}")).collect();
    let cols = if extra.is_empty() {
        String::new()
    } else {
        format!(", {}", extra.join(", "))
    };
    let text = format!(
        "Hop(X, Y) :- flight(X{cols}, Y).\n\
         T(X, Y) :- Hop(X, Y).\n\
         T(X, Z) :- T(X, Y), Hop(Y, Z).",
    );
    DatalogQuery::new(parse_program(&text).expect("valid program"), "T")
}

/// The single-hop version of [`e7_kary_reachability`].
pub fn e7_kary_hop(k: usize) -> DatalogQuery {
    assert!(k >= 2);
    let extra: Vec<String> = (0..k - 2).map(|i| format!("C{i}")).collect();
    let cols = if extra.is_empty() {
        String::new()
    } else {
        format!(", {}", extra.join(", "))
    };
    let text = format!("Hop(X, Y) :- flight(X{cols}, Y).");
    DatalogQuery::new(parse_program(&text).expect("valid program"), "Hop")
}

// ---------------------------------------------------------------------
// E8/E9: Datalog workloads
// ---------------------------------------------------------------------

/// The transitive-closure query of §2.3.
pub fn tc_query() -> DatalogQuery {
    DatalogQuery::new(
        parse_program("T(X, Y) :- e(X, Y).\nT(X, Z) :- T(X, Y), e(Y, Z).").expect("valid"),
        "T",
    )
}

/// The monadic reachability query of §2.3 (targets marked by `p`).
pub fn monadic_reachability_query() -> DatalogQuery {
    DatalogQuery::new(
        parse_program("Q(X) :- e(X, Y), p(Y).\nQ(X) :- e(X, Y), Q(Y).").expect("valid"),
        "Q",
    )
}

/// A chain EDB `e(v0,v1), …` of `n` nodes; the last node is in `p`.
pub fn chain_factdb(n: usize) -> FactDb {
    let mut db = FactDb::new();
    for i in 0..n.saturating_sub(1) {
        db.add_fact("e", &[&format!("v{i}"), &format!("v{}", i + 1)]);
    }
    db.add_fact("p", &[&format!("v{}", n - 1)]);
    db
}

/// A random G(n, m) EDB over `e`, with `marked` random nodes in `p`.
pub fn random_factdb(nodes: usize, edges: usize, marked: usize, seed: u64) -> FactDb {
    let mut rng = SplitMix64::new(seed);
    let mut db = FactDb::new();
    for _ in 0..edges {
        let s = format!("v{}", rng.below(nodes));
        let d = format!("v{}", rng.below(nodes));
        db.add_fact("e", &[&s, &d]);
    }
    for _ in 0..marked {
        db.add_fact("p", &[&format!("v{}", rng.below(nodes))]);
    }
    db
}

// ---------------------------------------------------------------------
// E10: evaluation workloads
// ---------------------------------------------------------------------

/// A random graph database for evaluation scaling.
pub fn e10_graph(nodes: usize, seed: u64) -> GraphDb {
    rq_graph::generate::random_gnm(nodes, nodes * 3, &["a", "b"], seed)
}

/// A social-style preferential-attachment graph.
pub fn e10_social(nodes: usize, seed: u64) -> GraphDb {
    rq_graph::generate::preferential_attachment(nodes, 3, &["knows", "follows"], seed)
}

// ---------------------------------------------------------------------
// E12: serving workloads
// ---------------------------------------------------------------------

/// A serving batch: `count` 2RPQ strings over `{a, b}` cycling through a
/// fixed pool that mixes a broad Σ±* superset, narrower queries it
/// subsumes, and (once `count` exceeds the pool) exact duplicates — so a
/// semantic cache sees every disposition.
pub fn e12_batch(count: usize) -> Vec<String> {
    const POOL: [&str; 8] = [
        "(a|b|a-|b-)*",
        "a(b|a)*",
        "(a|b)+",
        "a+",
        "a b",
        "b- a*",
        "(a b)+",
        "b+ a",
    ];
    (0..count)
        .map(|i| POOL[i % POOL.len()].to_string())
        .collect()
}

// ---------------------------------------------------------------------
// E13: pre-flight analysis workloads
// ---------------------------------------------------------------------

/// Fold-variant pairs for the pre-flight normalization experiment: for
/// each base query `r` from the E12 pool, the Lemma-2 detour `r r⁻ r` and
/// the answer-equivalent union `r | r r⁻ r`. The union is built
/// programmatically (not parsed) because `(r)⁻` of a grouped expression
/// has no surface syntax; with pre-flight on it normalizes onto the
/// detour's canonical cache key.
pub fn e13_fold_pairs() -> Vec<(String, TwoRpq, TwoRpq)> {
    let mut al = ab_alphabet();
    e12_batch(8)
        .into_iter()
        .map(|t| {
            let r = TwoRpq::parse(&t, &mut al).unwrap().regex().clone();
            let detour = Regex::concat([r.clone(), r.inverse(), r.clone()]);
            let union = TwoRpq::new(Regex::Union(vec![r, detour.clone()]));
            (t, TwoRpq::new(detour), union)
        })
        .collect()
}

/// Provably-empty queries (raw-constructed: the parser's smart
/// constructors would erase a textual `∅` factor) that the engine
/// pre-flight short-circuits without evaluation.
pub fn e13_empty_queries() -> Vec<TwoRpq> {
    [0u32, 1]
        .into_iter()
        .map(|i| TwoRpq::new(Regex::Concat(vec![letter(i), Regex::Empty])))
        .collect()
}

// ---------------------------------------------------------------------
// E17: simple-fragment ladder workloads
// ---------------------------------------------------------------------

/// A simple-heavy serving batch: `count` 2RPQ strings over `{a, b}` that
/// all sit inside the SCRPQ fragment (forward letters, letter
/// disjunctions, starred/plus'd disjunctions — no inverses, optionals,
/// or starred concatenations). The pool leads with the broad `(a|b)*`
/// superset so later entries are answered by subsumption, and the
/// resulting cache probes are simple-vs-simple pairs the ladder's
/// polynomial rung decides without ever reaching the exact 2NFA stage.
pub fn e17_simple_batch(count: usize) -> Vec<String> {
    const POOL: [&str; 12] = [
        "(a|b)*",
        "a*",
        "b*",
        "a (a|b)*",
        "a+ b*",
        "a b",
        "a a",
        "(a|b)+ a",
        "b (a|b)*",
        "a* b*",
        "b+",
        "a (a|b)+ b",
    ];
    (0..count)
        .map(|i| POOL[i % POOL.len()].to_string())
        .collect()
}

// ---------------------------------------------------------------------
// E14: front-end overload workloads
// ---------------------------------------------------------------------

/// The graph the E14 closed-loop bench serves: sized so a cache miss
/// pays real evaluator work (around a millisecond) rather than parse
/// overhead, while a full answer set still fits a cache entry.
pub fn e14_graph() -> GraphDb {
    rq_graph::generate::random_gnm(300, 900, &["a", "b"], 14)
}

/// The hot set: eight length-2 chain queries that recur constantly and
/// stay resident in the engine's LRU cache, so every repetition is a
/// cache hit. Deliberately free of broad `…*` superset queries (and of
/// any length-≥3 chain) so nothing here can answer the cold stream
/// below by subsumption.
pub fn e14_hot() -> Vec<String> {
    ["a b", "b a", "a a", "b b", "a- b", "b a-", "a b-", "b- a"]
        .into_iter()
        .map(str::to_string)
        .collect()
}

/// The cold stream: 512 distinct chain 2RPQs of length 5–8 — far more
/// canonical keys than the engine's 64-entry cache holds, so by the
/// time a text recurs (even across convoying clients) it has been
/// evicted and nearly every arrival is a genuine miss that pays a full
/// evaluation. Chains of different lengths are pairwise incomparable,
/// and the two middle alternations `(a|b)`/`(b|a-)` are incomparable
/// pointwise, so no cold entry answers another by subsumption. The
/// length band is deliberately narrow (~19–47 ms each on the E14
/// graph): tail latency under load is then queueing policy, not
/// service-time spread.
pub fn e14_cold() -> Vec<String> {
    let ends = ["a", "b", "a-", "b-"];
    let mids = ["(a|b)", "(b|a-)"];
    let mut queries = Vec::new();
    for k in 3..=6usize {
        for m in 0..(1usize << k).min(8) {
            for prefix in ends {
                for suffix in ends {
                    let mut q = String::from(prefix);
                    for pos in 0..k {
                        q.push(' ');
                        q.push_str(mids[(m >> pos) & 1]);
                    }
                    q.push(' ');
                    q.push_str(suffix);
                    queries.push(q);
                }
            }
        }
    }
    queries
}

/// The mixed stream each closed-loop client cycles through: hot and
/// cold interleaved 3:1, so admitted-latency percentiles reflect both
/// the cheap cache-hit population and the expensive miss population.
pub fn e14_stream() -> Vec<String> {
    let hot = e14_hot();
    let mut stream = Vec::with_capacity(e14_cold().len() * 4);
    let mut h = 0;
    for cold in e14_cold() {
        for _ in 0..3 {
            stream.push(hot[h % hot.len()].clone());
            h += 1;
        }
        stream.push(cold);
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_core::containment::{rpq, two_rpq, uc2rpq, Config};

    #[test]
    fn e1_families_have_expected_verdicts() {
        let al = ab_alphabet();
        for n in [1, 3, 6] {
            let (q1, q2) = e1_contained_pair(n);
            assert!(rpq::check(&q1, &q2, &al).is_contained(), "n={n}");
            let (q1, q2) = e1_refuted_pair(n);
            let out = rpq::check(&q1, &q2, &al);
            let w = out.witness().expect("refuted family");
            assert_eq!(w.db.num_edges(), n.max(1) - 1 + 1, "shortest ce length");
        }
        let (q1, q2) = e1_exponential_pair(4);
        assert!(rpq::check(&q1, &q2, &al).is_not_contained());
    }

    #[test]
    fn e4_families_have_expected_verdicts() {
        for k in [1, 2, 3] {
            let (q1, q2, al) = e4_paper_family(k);
            assert!(two_rpq::check(&q1, &q2, &al).is_contained(), "k={k}");
        }
        let (q1, q2, al) = e4_refuted_family(3);
        assert!(two_rpq::check(&q1, &q2, &al).is_not_contained());
        let (q1, q2, al) = e4_refuted_family(1);
        assert!(two_rpq::check(&q1, &q2, &al).is_contained());
    }

    #[test]
    fn e5_families_have_expected_verdicts() {
        let cfg = Config::default();
        for k in [1, 2, 4] {
            let (q1, q2, al) = e5_chain_pair(k);
            assert!(uc2rpq::check(&q1, &q2, &al, &cfg).is_contained(), "k={k}");
            let (q1, q2, al) = e5_branching_pair(k);
            assert!(uc2rpq::check(&q1, &q2, &al, &cfg).is_contained(), "k={k}");
        }
        let (q1, q2, al) = e5_refuted_pair(3);
        assert!(uc2rpq::check(&q1, &q2, &al, &cfg).is_not_contained());
    }

    #[test]
    fn e6_families_have_expected_verdicts() {
        let cfg = Config::default();
        for k in [1, 2] {
            let (q1, q2, al) = e6_collapsible_pair(k);
            assert!(
                rq_core::containment::rq::check(&q1, &q2, &al, &cfg).is_contained(),
                "k={k}"
            );
        }
        let (q1, q2, al) = e6_triangle_pair();
        assert!(rq_core::containment::rq::check(&q1, &q2, &al, &cfg).is_contained());
        let (q1, q2, al) = e6_refuted_pair();
        assert!(rq_core::containment::rq::check(&q1, &q2, &al, &cfg).is_not_contained());
    }

    #[test]
    fn e7_programs_are_grq() {
        for k in [2, 3, 4] {
            let q = e7_kary_reachability(k);
            assert!(rq_datalog::grq::is_grq(&q.program), "k={k}");
        }
    }

    #[test]
    fn e14_streams_are_distinct_parseable_and_mixed() {
        let cold = e14_cold();
        let distinct: std::collections::BTreeSet<&String> = cold.iter().collect();
        assert_eq!(distinct.len(), cold.len(), "cold keys must not collide");
        assert_eq!(cold.len(), 512);
        let hot = e14_hot();
        // Hot and cold must stay disjoint (hot chains are shorter), or
        // "cold" requests would be served from the resident hot entries.
        assert!(hot.iter().all(|h| !distinct.contains(h)));
        let mut al = ab_alphabet();
        for q in hot.iter().chain(cold.iter()) {
            TwoRpq::parse(q, &mut al).expect("stream entry parses");
        }
        let stream = e14_stream();
        assert_eq!(stream.len(), cold.len() * 4, "3:1 hot:cold interleave");
        assert!(stream.iter().filter(|q| distinct.contains(q)).count() == cold.len());
    }
}
