//! E15 — paired tracing-overhead measurement.
//!
//! The criterion bench (`benches/e15_trace_overhead.rs`) times the
//! untraced and traced paths as separate sequential groups, so minutes
//! of machine drift (frequency scaling, container neighbors) lands
//! entirely on one side and can dwarf a few-percent effect. This binary
//! interleaves them — untraced pass, traced pass, repeat — and compares
//! medians, which cancels the drift and gives a stable overhead figure.
//!
//! Usage: `cargo run --release -p rq-bench --bin e15_overhead [rounds]`

use rq_bench::{e10_graph, e12_batch};
use rq_core::rpq::TwoRpq;
use rq_engine::{Engine, EngineConfig};
use rq_metrics::recorder::{Recorder, RecorderConfig};
use rq_metrics::span::{self, TraceContext};
use std::hint::black_box;
use std::time::Instant;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);
    let db = e10_graph(100, 3);
    let engine = Engine::new(
        db,
        EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        },
    );
    let queries: Vec<TwoRpq> = e12_batch(32)
        .iter()
        .map(|t| engine.parse(t).unwrap())
        .collect();
    let recorder = Recorder::new(RecorderConfig::default());

    let untraced = |engine: &Engine| {
        engine.clear_cache();
        for q in &queries {
            black_box(engine.run(q).unwrap().answer.len());
        }
    };
    let traced = |engine: &Engine| {
        engine.clear_cache();
        for q in &queries {
            let ctx = TraceContext::start();
            {
                let _guard = span::install(&ctx, 0);
                black_box(engine.run(q).unwrap().answer.len());
            }
            black_box(recorder.record(ctx.finish("ok", "")));
        }
    };

    // Warm both paths (allocator, cache shapes, branch predictors).
    untraced(&engine);
    traced(&engine);

    let mut base_ms = Vec::with_capacity(rounds);
    let mut traced_ms = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        untraced(&engine);
        base_ms.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        traced(&engine);
        traced_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let (b, t) = (median(base_ms), median(traced_ms));
    println!("e15 paired overhead over {rounds} interleaved rounds (32-query batch, 2 threads):");
    println!("  untraced median        {b:.2} ms per batch");
    println!("  traced+recorded median {t:.2} ms per batch");
    println!("  overhead               {:+.1}%", (t / b - 1.0) * 100.0);
    println!(
        "  recorder: {} traces recorded, {} retained slow",
        recorder.recorded_total(),
        recorder.retained_slow_total()
    );
}
