//! E16 — persistent storage: cold-start load time and ingest-while-serving.
//!
//! Two claims priced here:
//!
//! 1. **Cold start.** Opening a sharded binary snapshot (CSR adjacency,
//!    per-section CRCs, parallel shard decode) beats re-parsing the text
//!    format for the same graph. Both paths are timed interleaved —
//!    text pass, snapshot pass, repeat — and compared by median, so
//!    machine drift cancels.
//! 2. **Ingest while serving.** On the E14 closed-loop driver, a
//!    continuous `POST /ingest` delta stream whose label no cached
//!    query mentions must keep admitted-request p99 within 2× of the
//!    no-ingest baseline (alphabet-intersection invalidation evicts
//!    nothing). A stream on the hottest query label prices the other
//!    extreme: every tick evicts the a-queries, so their next request
//!    pays a queued cold re-evaluation.
//!
//! Usage: `cargo run --release -p rq-bench --bin e16_storage
//! [rounds] [nodes] [bench-ms]`

use rq_engine::{Engine, EngineConfig};
use rq_graph::{generate, text};
use rq_serve::{BenchConfig, Client, ServeConfig, Server, TenantQuota};
use rq_storage::{StorageConfig, StorageHandle};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(9);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50_000);
    let bench_ms: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4_000);

    // -- Part 1: cold-start -------------------------------------------------
    let db = generate::preferential_attachment(nodes, 4, &["a", "b", "c"], 16);
    let edges = db.num_edges();
    println!(
        "e16 part 1 — cold start: {} nodes, {edges} edges, {rounds} interleaved rounds",
        db.num_nodes()
    );
    let dir = std::env::temp_dir().join(format!("rq-e16-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let text_path = dir.join("graph.txt");
    std::fs::write(&text_path, text::to_text(&db)).unwrap();
    let config = StorageConfig::default();
    StorageHandle::create(&dir, &db, config.clone()).unwrap();
    let snap_bytes = std::fs::metadata(dir.join("snapshot.rqs")).unwrap().len();
    let text_bytes = std::fs::metadata(&text_path).unwrap().len();

    let (mut t_text, mut t_snap, mut t_serial) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..rounds {
        let t0 = Instant::now();
        let content = std::fs::read_to_string(&text_path).unwrap();
        black_box(text::parse(&content).unwrap());
        t_text.push(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        black_box(StorageHandle::open(&dir, config.clone()).unwrap());
        t_snap.push(t0.elapsed().as_secs_f64());

        let serial = StorageConfig {
            parallel_load: false,
            ..config.clone()
        };
        let t0 = Instant::now();
        black_box(StorageHandle::open(&dir, serial).unwrap());
        t_serial.push(t0.elapsed().as_secs_f64());
    }
    let (m_text, m_snap, m_serial) = (median(t_text), median(t_snap), median(t_serial));
    println!(
        "  text parse       : {:8.1} ms  ({text_bytes} bytes)",
        m_text * 1e3
    );
    println!(
        "  snapshot parallel: {:8.1} ms  ({snap_bytes} bytes, {} shards)  {:.2}x faster",
        m_snap * 1e3,
        config.shards,
        m_text / m_snap
    );
    println!(
        "  snapshot serial  : {:8.1} ms                         {:.2}x faster",
        m_serial * 1e3,
        m_text / m_serial
    );

    // -- Part 2: ingest while serving --------------------------------------
    // Three runs on the E14 closed-loop driver: a no-ingest baseline,
    // sustained ingest on a label *outside* the bench-query alphabet
    // (alphabet-intersection invalidation leaves every cached entry
    // alive — the case the delta-driven cache design is built for), and
    // sustained ingest on the hottest query label (every tick evicts
    // the a-queries, so their next request pays a cold re-evaluation —
    // the price *any* sound invalidation scheme pays for freshness).
    println!("\ne16 part 2 — ingest while serving ({bench_ms} ms per run)");
    let serve_db = generate::random_gnm(120, 360, &["a", "b"], 16);
    let mut baseline = None;
    for (tag, ingest_label, ingest_every_ms) in [
        ("no ingest       ", "", 0u64),
        ("ingest off-alpha", "c", 25),
        ("ingest hot label", "a", 25),
    ] {
        let engine = Engine::new(
            serve_db.clone(),
            EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
        );
        // A generous tenant quota: E16 measures ingest interference on
        // admitted-request latency, not admission control (that's E14).
        let server = Server::start(
            engine,
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                quota: TenantQuota {
                    fuel_per_sec: 50_000_000,
                    burst_fuel: 100_000_000,
                },
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let ingester = (ingest_every_ms > 0).then(|| {
            let addr = server.addr().to_string();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, Duration::from_secs(10)).unwrap();
                let mut sent = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    // Toggle one edge between two dedicated nodes: every
                    // tick is an *effective* delta (epoch bump, eviction
                    // of any cached query whose alphabet contains the
                    // label) while the graph stays the same size, so the
                    // with-ingest runs serve the same workload as the
                    // baseline.
                    let verb = if sent.is_multiple_of(2) {
                        "add"
                    } else {
                        "remove"
                    };
                    let body = format!("{verb} ingest_u {ingest_label} ingest_v\n");
                    if client
                        .request("POST", "/ingest", &[], body.as_bytes())
                        .is_ok()
                    {
                        sent += 1;
                    }
                    std::thread::sleep(Duration::from_millis(ingest_every_ms));
                }
                sent
            })
        });
        let report = rq_serve::run_bench(&BenchConfig {
            addr: server.addr().to_string(),
            clients: 4,
            duration: Duration::from_millis(bench_ms),
            ..BenchConfig::default()
        });
        stop.store(true, Ordering::SeqCst);
        let sent = ingester.map(|h| h.join().unwrap()).unwrap_or(0);
        server.shutdown();
        let p99 = report.percentile_us(99.0);
        match ingest_every_ms {
            0 => {
                baseline = Some(p99);
                println!("  {tag}: {}", report.summary());
            }
            _ => {
                let base = baseline.unwrap().max(1);
                println!(
                    "  {tag}: {}  ({sent} '{ingest_label}' batches @{ingest_every_ms}ms, \
                     p99 {:.2}x baseline)",
                    report.summary(),
                    p99 as f64 / base as f64
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
