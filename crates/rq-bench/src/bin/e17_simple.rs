//! E17 — simple-fragment fast path: exact-stage probe and fuel reduction.
//!
//! Serves two workloads through the engine and reads the containment
//! ladder's stage counters before/after each, so the numbers are deltas
//! attributable to that workload alone (the metrics registry is global
//! and cumulative):
//!
//! 1. the simple-heavy batch (`e17_simple_batch`): every query is in the
//!    SCRPQ fragment, so every cache probe is a simple-vs-simple pair
//!    the polynomial rung decides — the exact 2NFA stage should see
//!    zero probes and the probe-fuel histogram should not move (the
//!    simple rung is unmetered);
//! 2. the E13 fold workload (Lemma-2 detours `r r⁻ r` and their
//!    answer-equivalent unions): every query contains inverses, so the
//!    simple rung passes and the exact stage does all the deciding —
//!    the 22-probe baseline from E13 must be unchanged (no regression
//!    on the non-simple path).
//!
//! Usage: `cargo run --release -p rq-bench --bin e17_simple`

use rq_bench::{e10_graph, e13_empty_queries, e13_fold_pairs, e17_simple_batch};
use rq_core::rpq::TwoRpq;
use rq_engine::{Engine, EngineConfig};
use rq_metrics::registry::Snapshot;
use rq_metrics::{global, Value};
use std::time::Instant;

const STAGES: [&str; 6] = [
    "empty_left",
    "syntactic_eq",
    "canonical_key",
    "simple",
    "full_check",
    "exhausted",
];

fn counter(snap: &Snapshot, name: &str, labels: &[(&str, &str)]) -> u64 {
    match snap.get(name, labels) {
        Some(Value::Counter(c)) => *c,
        _ => 0,
    }
}

/// `(sum, count)` of a histogram, or zeros if it never registered.
fn histogram(snap: &Snapshot, name: &str) -> (u64, u64) {
    match snap.get(name, &[]) {
        Some(Value::Histogram(h)) => (h.sum, h.count),
        _ => (0, 0),
    }
}

struct Delta {
    stages: [u64; 6],
    probes: u64,
    fuel_sum: u64,
}

fn delta(before: &Snapshot, after: &Snapshot) -> Delta {
    let mut stages = [0u64; 6];
    for (i, s) in STAGES.iter().enumerate() {
        stages[i] = counter(after, "rq_containment_ladder_total", &[("stage", s)])
            - counter(before, "rq_containment_ladder_total", &[("stage", s)]);
    }
    let probes = ["contained", "not_contained", "exhausted"]
        .iter()
        .map(|r| {
            counter(after, "rq_cache_probes_total", &[("result", r)])
                - counter(before, "rq_cache_probes_total", &[("result", r)])
        })
        .sum();
    let fuel_sum = histogram(after, "rq_cache_probe_fuel_spent").0
        - histogram(before, "rq_cache_probe_fuel_spent").0;
    Delta {
        stages,
        probes,
        fuel_sum,
    }
}

fn serve(engine: &Engine, batch: &[TwoRpq]) -> (Delta, f64, rq_engine::CacheStats) {
    engine.clear_cache();
    let before = global().snapshot();
    let t = Instant::now();
    let report = engine.run_batch(batch);
    let elapsed = t.elapsed().as_secs_f64() * 1e3;
    let after = global().snapshot();
    (delta(&before, &after), elapsed, report.stats)
}

fn print_row(name: &str, d: &Delta, stats: &rq_engine::CacheStats, ms: f64) {
    println!(
        "| {name} | {} | {} | {} | {} | {} | {} | {:.0}% | {ms:.1} |",
        d.probes,
        d.stages[3],
        d.stages[4],
        d.stages[0] + d.stages[1] + d.stages[2],
        d.stages[5],
        d.fuel_sum,
        stats.hit_rate() * 100.0,
    );
}

fn main() {
    let db = e10_graph(100, 3);
    let engine = Engine::new(
        db,
        EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        },
    );

    // Workload 1: simple-heavy (24 queries cycling the 12-entry pool).
    let simple: Vec<TwoRpq> = e17_simple_batch(24)
        .iter()
        .map(|t| engine.parse(t).unwrap())
        .collect();

    // Workload 2: the E13 fold workload — detour + union pairs plus the
    // two ∅ queries, exactly the batch behind the 22-probe baseline.
    let mut fold: Vec<TwoRpq> = Vec::new();
    for (_, detour, union) in e13_fold_pairs() {
        fold.push(detour);
        fold.push(union);
    }
    fold.extend(e13_empty_queries());

    // Warm parse/alloc paths once, then measure each batch from a cold
    // cache with a metrics snapshot on either side.
    engine.run_batch(&simple);
    engine.run_batch(&fold);

    // "probes" counts cache-lookup containment probes; the stage columns
    // count *every* ladder invocation the workload triggered — cache
    // probes plus `run_batch`'s pairwise planning checks plus pre-flight
    // subsumed-branch checks — so stage totals exceed the probe count.
    println!("## E17 — simple-fragment ladder rung: probe and fuel deltas per workload\n");
    println!("| workload | cache probes | ladder: simple | full_check | syntactic | exhausted | probe fuel | hit-rate | ms |");
    println!("|---|---|---|---|---|---|---|---|---|");
    let (d_simple, ms_simple, stats_simple) = serve(&engine, &simple);
    print_row("simple-heavy (24q)", &d_simple, &stats_simple, ms_simple);
    let (d_fold, ms_fold, stats_fold) = serve(&engine, &fold);
    print_row("fold/E13 (18q)", &d_fold, &stats_fold, ms_fold);
    println!();
    println!(
        "simple-heavy: {} of {} ladder calls ({} cache probes + batch planning) decided at the \
         polynomial rung; {} reached the exact stage; {} probe fuel charged",
        d_simple.stages[3],
        d_simple.stages.iter().sum::<u64>(),
        d_simple.probes,
        d_simple.stages[4],
        d_simple.fuel_sum
    );
    println!(
        "fold baseline: {} cache probes, {} ladder calls decided at the exact stage ({} fuel) — \
         the simple rung passed on every inverse-containing pair",
        d_fold.probes, d_fold.stages[4], d_fold.fuel_sum
    );
}
