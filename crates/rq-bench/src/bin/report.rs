//! Regenerate the EXPERIMENTS.md measurement tables.
//!
//! Run with `cargo run --release -p rq-bench --bin report`. Prints one
//! markdown table per experiment (E1–E10 and E12–E14); every row is
//! deterministic in the seeds baked into `rq_bench::workloads`, except
//! wall-clock columns (and the E14 closed-loop counts, which depend on
//! how many requests the machine serves in the fixed run length).

use rq_automata::complement2::vardi_complement;
use rq_automata::containment::{check_explicit, check_on_the_fly};
use rq_automata::fold::{fold_twonfa, lemma3_state_bound};
use rq_automata::shepherdson::ShepherdsonDfa;
use rq_automata::twonfa::TwoNfa;
use rq_automata::{Alphabet, LabelId, Letter, Nfa};
use rq_bench::*;
use rq_core::containment::{rq as rqc, two_rpq, uc2rpq, Config, Outcome};
use rq_core::rpq::TwoRpq;
use rq_core::translate::{encode_query, grq_containment, grq_to_rq};
use rq_datalog::eval::{evaluate_program, evaluate_program_naive};
use rq_datalog::evaluate;
use rq_engine::{Disposition, Engine, EngineConfig};
use rq_serve::{run_bench, BenchConfig, ServeConfig, Server, TenantQuota};
use std::time::{Duration, Instant};

fn time_us<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64() * 1e6)
}

fn verdict(o: &Outcome) -> &'static str {
    match o.decided() {
        Some(true) => "contained",
        Some(false) => "not contained",
        None => "unknown",
    }
}

fn main() {
    e1();
    e2();
    e3();
    e4();
    e5();
    e6();
    e7();
    e8();
    e9();
    e10();
    e12();
    e13();
    e14();
}

fn e1() {
    println!("## E1 — RPQ containment (Lemma 1): on-the-fly vs explicit\n");
    println!("| family | n | verdict | fly states | fly µs | explicit states | explicit µs |");
    println!("|---|---|---|---|---|---|---|");
    let al = ab_alphabet();
    let sigma: Vec<Letter> = al.sigma().collect();
    let mut rows: Vec<(&str, usize, rq_core::rpq::Rpq, rq_core::rpq::Rpq)> = Vec::new();
    for n in [2, 4, 8, 16] {
        let (q1, q2) = e1_contained_pair(n);
        rows.push(("contained", n, q1, q2));
    }
    for n in [2, 4, 8, 16] {
        let (q1, q2) = e1_refuted_pair(n);
        rows.push(("refuted", n, q1, q2));
    }
    for n in [4, 8, 12, 16] {
        let (q1, q2) = e1_exponential_pair(n);
        rows.push(("2^n adversarial (refuted)", n, q1, q2));
    }
    for n in [4, 8, 12] {
        let (_, q2) = e1_exponential_pair(n);
        // Self-containment of the 2^n language: contained, and hard for
        // both engines (the subset space must be explored either way).
        rows.push(("2^n self-containment", n, q2.clone(), q2));
    }
    for (family, n, q1, q2) in rows {
        let (fly, t_fly) =
            time_us(|| check_on_the_fly(q1.as_two_rpq().nfa(), q2.as_two_rpq().nfa()));
        let (exp, t_exp) =
            time_us(|| check_explicit(q1.as_two_rpq().nfa(), q2.as_two_rpq().nfa(), &sigma));
        assert_eq!(fly.contained, exp.contained);
        println!(
            "| {family} | {n} | {} | {} | {t_fly:.0} | {} | {t_exp:.0} |",
            if fly.contained {
                "contained"
            } else {
                "not contained"
            },
            fly.states_explored,
            exp.states_explored,
        );
    }
    println!();
}

fn e2() {
    println!("## E2 — fold 2NFA size (Lemma 3: n·(|Σ±|+1) states)\n");
    println!("| NFA states n | Σ± size | fold 2NFA states | bound | build µs |");
    println!("|---|---|---|---|---|");
    for (states, labels) in [
        (4, 2),
        (8, 2),
        (16, 2),
        (32, 2),
        (64, 2),
        (16, 1),
        (16, 4),
        (16, 8),
    ] {
        let nfa = e2_nfa(states, labels, 7);
        let letters = sigma_pm(labels);
        let (m, t) = time_us(|| fold_twonfa(&nfa, &letters));
        let bound = lemma3_state_bound(nfa.num_states(), letters.len());
        assert_eq!(m.num_states(), bound);
        println!(
            "| {} | {} | {} | {} | {t:.0} |",
            nfa.num_states(),
            letters.len(),
            m.num_states(),
            bound
        );
    }
    println!();
}

fn chain_twonfa(k: usize) -> TwoNfa {
    let a = Letter::forward(LabelId(0));
    let mut n = Nfa::with_states(k + 1);
    n.set_initial(0);
    n.set_final(k);
    for i in 0..k {
        n.add_transition(i, a, i + 1);
    }
    TwoNfa::from_nfa(&n)
}

fn e3() {
    println!("## E3 — 2NFA complementation blow-up (Lemma 4: 2^O(n))\n");
    println!("| 2NFA states | 4^n bound | Vardi reachable pairs | µs | Shepherdson tables | µs |");
    println!("|---|---|---|---|---|---|");
    let a = Letter::forward(LabelId(0));
    for k in [1usize, 2, 3, 4, 5] {
        let m = chain_twonfa(k);
        let (comp, t_v) = time_us(|| vardi_complement(&m, &[a], 50_000_000).expect("cap"));
        let (tables, t_s) = time_us(|| {
            let mut det = ShepherdsonDfa::new(&m);
            for len in 0..=k + 2 {
                det.accepts(&vec![a; len]);
            }
            det.discovered()
        });
        println!(
            "| {} | {} | {} | {t_v:.0} | {tables} | {t_s:.0} |",
            m.num_states(),
            comp.bound,
            comp.pairs
        );
    }
    println!();
}

fn e4() {
    println!("## E4 — 2RPQ containment (Theorem 5)\n");
    println!("| family | k | verdict | µs |");
    println!("|---|---|---|---|");
    for k in [1, 2, 4, 8] {
        let (q1, q2, al) = e4_paper_family(k);
        let (out, t) = time_us(|| two_rpq::check(&q1, &q2, &al));
        println!("| p ⊑ (p p⁻)^k p | {k} | {} | {t:.0} |", verdict(&out));
    }
    for n in [2, 4, 8, 16] {
        let (q1, q2, al) = e4_refuted_family(n);
        let (out, t) = time_us(|| two_rpq::check(&q1, &q2, &al));
        println!("| a^n ⊑ (a a⁻)* a | {n} | {} | {t:.0} |", verdict(&out));
    }
    let mut decided = 0;
    let mut total_t = 0.0;
    let count = 30;
    for seed in 0..count as u64 {
        let (q1, q2, al) = e4_random_pair(8, seed);
        let (out, t) = time_us(|| two_rpq::check(&q1, &q2, &al));
        if out.decided().is_some() {
            decided += 1;
        }
        total_t += t;
    }
    println!(
        "| random (8 leaves, {count} pairs) | — | {decided}/{count} decided | {:.0} avg |",
        total_t / count as f64
    );
    println!();
}

fn e5() {
    println!("## E5 — UC2RPQ containment (Theorem 6 territory)\n");
    println!("| family | k | verdict | µs |");
    println!("|---|---|---|---|");
    let cfg = Config::default();
    for k in [1, 2, 4, 8] {
        let (q1, q2, al) = e5_chain_pair(k);
        let (out, t) = time_us(|| uc2rpq::check(&q1, &q2, &al, &cfg));
        println!("| chain a^k ⊑ a+ | {k} | {} | {t:.0} |", verdict(&out));
    }
    for k in [1, 2, 3, 4] {
        let (q1, q2, al) = e5_branching_pair(k);
        let (out, t) = time_us(|| uc2rpq::check(&q1, &q2, &al, &cfg));
        println!("| k-branch ⊑ 1-branch | {k} | {} | {t:.0} |", verdict(&out));
    }
    for n in [1, 2, 3, 4] {
        let (q1, q2, al) = e5_refuted_pair(n);
        let (out, t) = time_us(|| uc2rpq::check(&q1, &q2, &al, &cfg));
        println!("| a* ⊑ a^(<n) | {n} | {} | {t:.0} |", verdict(&out));
    }
    // Ablations: disable one checker stage and observe the effect.
    println!();
    println!("Ablations (k = 4 chain / 3-branch instances):");
    println!();
    println!("| variant | chain verdict | µs | branch verdict | µs |");
    println!("|---|---|---|---|---|");
    for (name, ablated) in [
        ("full checker", Config::default()),
        (
            "no chain collapse",
            Config {
                disable_chain_collapse: true,
                ..Config::default()
            },
        ),
        (
            "no hom prover",
            Config {
                disable_hom_prover: true,
                ..Config::default()
            },
        ),
    ] {
        let (q1, q2, al) = e5_chain_pair(4);
        let (o1, t1) = time_us(|| uc2rpq::check(&q1, &q2, &al, &ablated));
        let (q1, q2, al) = e5_branching_pair(3);
        let (o2, t2) = time_us(|| uc2rpq::check(&q1, &q2, &al, &ablated));
        println!(
            "| {name} | {} | {t1:.0} | {} | {t2:.0} |",
            verdict(&o1),
            verdict(&o2)
        );
    }
    println!();
}

fn e6() {
    println!("## E6 — RQ containment (Theorem 7 territory)\n");
    println!("| instance | verdict | µs |");
    println!("|---|---|---|");
    let cfg = Config::default();
    for k in [1, 2, 3, 4] {
        let (q1, q2, al) = e6_collapsible_pair(k);
        let (out, t) = time_us(|| rqc::check(&q1, &q2, &al, &cfg));
        println!(
            "| TC(chain_{k}) ⊑ chain_{k}+ | {} | {t:.0} |",
            verdict(&out)
        );
    }
    let (q1, q2, al) = e6_triangle_pair();
    let (out, t) = time_us(|| rqc::check(&q1, &q2, &al, &cfg));
    println!(
        "| TC(triangle) ⊑ r+ (induction) | {} | {t:.0} |",
        verdict(&out)
    );
    let (q1, q2, al) = e6_refuted_pair();
    let (out, t) = time_us(|| rqc::check(&q1, &q2, &al, &cfg));
    println!("| TC(triangle) ⊑ triangle | {} | {t:.0} |", verdict(&out));
    // Reflexive hard instance: must not be wrongly refuted.
    let (q1, _, al) = e6_refuted_pair();
    let (out, t) = time_us(|| rqc::check(&q1, &q1, &al, &cfg));
    println!(
        "| TC(triangle) ⊑ TC(triangle) | {} | {t:.0} |",
        verdict(&out)
    );
    // Ablation: the inductive prover is what decides the triangle closure.
    let no_induction = Config {
        disable_induction: true,
        ..Config::default()
    };
    let (q1, q2, al) = e6_triangle_pair();
    let (out, t) = time_us(|| rqc::check(&q1, &q2, &al, &no_induction));
    println!(
        "| TC(triangle) ⊑ r+ *without induction* | {} | {t:.0} |",
        verdict(&out)
    );
    println!();
}

fn e7() {
    println!("## E7 — GRQ → RQ reduction (Theorem 8)\n");
    println!("| EDB arity k | translate µs | hop ⊑ reach | µs | reach ⊑ hop | µs |");
    println!("|---|---|---|---|---|---|");
    let cfg = Config::default();
    for k in [2usize, 3, 4, 6] {
        let reach = e7_kary_reachability(k);
        let hop = e7_kary_hop(k);
        let (_, t_tr) = time_us(|| {
            let e = encode_query(&reach);
            let mut al = Alphabet::new();
            grq_to_rq(&e, &mut al).expect("translates")
        });
        let (o1, t1) = time_us(|| grq_containment(&hop, &reach, &cfg));
        let (o2, t2) = time_us(|| grq_containment(&reach, &hop, &cfg));
        println!(
            "| {k} | {t_tr:.0} | {} | {t1:.0} | {} | {t2:.0} |",
            verdict(&o1),
            verdict(&o2)
        );
    }
    println!();
}

fn e8() {
    println!("## E8 — Datalog engine ablation: naive vs semi-naive\n");
    println!("| workload | n | facts | semi-naive firings | naive firings | semi µs | naive µs |");
    println!("|---|---|---|---|---|---|---|");
    let q = tc_query();
    for n in [25usize, 50, 100, 200] {
        let edb = chain_factdb(n);
        let ((_, s), t_s) = time_us(|| evaluate_program(&q.program, &edb));
        let ((_, nv), t_n) = time_us(|| evaluate_program_naive(&q.program, &edb));
        assert_eq!(s.facts_derived, nv.facts_derived);
        println!(
            "| chain | {n} | {} | {} | {} | {t_s:.0} | {t_n:.0} |",
            s.facts_derived, s.rule_firings, nv.rule_firings
        );
    }
    for n in [30usize, 60, 120] {
        let edb = random_factdb(n, 2 * n, 0, 5);
        let ((_, s), t_s) = time_us(|| evaluate_program(&q.program, &edb));
        let ((_, nv), t_n) = time_us(|| evaluate_program_naive(&q.program, &edb));
        println!(
            "| G(n,2n) | {n} | {} | {} | {} | {t_s:.0} | {t_n:.0} |",
            s.facts_derived, s.rule_firings, nv.rule_firings
        );
    }
    println!();
}

fn e9() {
    println!("## E9 — monadic reachability vs full transitive closure\n");
    println!("| layers × width | monadic answers | monadic µs | E⁺ answers | E⁺ µs |");
    println!("|---|---|---|---|---|");
    let monadic = monadic_reachability_query();
    let tc = tc_query();
    for layers in [4usize, 8, 16, 32] {
        let width = 8;
        let g = rq_graph::generate::layered_dag(layers, width, 2, "e", 9);
        let mut edb = rq_datalog::FactDb::new();
        let e = g.alphabet().get("e").unwrap();
        for &(s, d) in g.edges(e) {
            edb.add_fact("e", &[&format!("n{}", s.0), &format!("n{}", d.0)]);
        }
        for n in g.nodes() {
            if g.out_edges(n).is_empty() {
                edb.add_fact("p", &[&format!("n{}", n.0)]);
            }
        }
        let (m, t_m) = time_us(|| evaluate(&monadic, &edb));
        let (t, t_t) = time_us(|| evaluate(&tc, &edb));
        println!(
            "| {layers}×{width} | {} | {t_m:.0} | {} | {t_t:.0} |",
            m.len(),
            t.len()
        );
    }
    println!();
}

fn e10() {
    println!("## E10 — RPQ/2RPQ evaluation scaling\n");
    println!("| graph | nodes | query | answers | µs |");
    println!("|---|---|---|---|---|");
    for nodes in [50usize, 100, 200, 400] {
        let db = e10_graph(nodes, 3);
        let mut al = db.alphabet().clone();
        let q = TwoRpq::parse("a(b|a)*", &mut al).unwrap();
        let (ans, t) = time_us(|| q.evaluate(&db));
        println!(
            "| G(n,3n) | {nodes} | a(b|a)* all-pairs | {} | {t:.0} |",
            ans.len()
        );
    }
    for nodes in [100usize, 300, 1000, 3000] {
        let db = e10_social(nodes, 5);
        let mut al = db.alphabet().clone();
        let q = TwoRpq::parse("knows- (knows-|follows-)*", &mut al).unwrap();
        let src = db.nodes().max_by_key(|&n| db.degree(n)).expect("nonempty");
        let (ans, t) = time_us(|| q.evaluate_from(&db, src));
        println!(
            "| social | {nodes} | two-way single-source | {} | {t:.0} |",
            ans.len()
        );
    }
    println!();
}

fn e12() {
    println!("## E12 — serving throughput and semantic cache hit rate\n");

    // Parallel all-pairs evaluation vs the sequential evaluator on the
    // E10 G(n,3n) workload: same graph, same query, engine at 1/2/4
    // threads with the cache cleared before each timed run.
    println!("| graph | nodes | sequential µs | t=1 µs | t=2 µs | t=4 µs | speedup (t=4) |");
    println!("|---|---|---|---|---|---|---|");
    // Single-shot timings wobble on a loaded machine; take the best of
    // three runs per cell (the cache is cleared before each engine run so
    // every repetition is a cold parallel evaluation).
    fn best_of_3(mut f: impl FnMut() -> f64) -> f64 {
        (0..3).map(|_| f()).fold(f64::INFINITY, f64::min)
    }
    for nodes in [100usize, 200, 400] {
        let db = e10_graph(nodes, 3);
        let mut al = db.alphabet().clone();
        let q = TwoRpq::parse("a(b|a)*", &mut al).unwrap();
        let seq = best_of_3(|| time_us(|| q.evaluate(&db)).1);
        let mut cols = Vec::new();
        let mut last = seq;
        for threads in [1usize, 2, 4] {
            let engine = Engine::new(
                db.clone(),
                EngineConfig {
                    threads,
                    ..EngineConfig::default()
                },
            );
            let q = engine.parse("a(b|a)*").expect("parses");
            let t = best_of_3(|| {
                engine.clear_cache();
                time_us(|| engine.run(&q).expect("unlimited")).1
            });
            cols.push(format!("{t:.0}"));
            last = t;
        }
        println!(
            "| G(n,3n) | {nodes} | {seq:.0} | {} | ×{:.1} |",
            cols.join(" | "),
            seq / last
        );
    }
    println!();

    // Batch serving with the semantic cache: a cold pass pays for the
    // misses, the warm repeat is answered from the cache; the dispositions
    // come from canonical keys + containment probes.
    println!("| batch | threads | pass | exact | equiv | subsumed | misses | hit-rate | µs |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for size in [8usize, 32] {
        let db = e10_graph(100, 3);
        let engine = Engine::new(
            db,
            EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
        );
        let queries: Vec<TwoRpq> = e12_batch(size)
            .iter()
            .map(|t| engine.parse(t).expect("parses"))
            .collect();
        for pass in ["cold", "warm"] {
            let (report, t) = time_us(|| engine.run_batch(&queries));
            let s = &report.stats;
            println!(
                "| {size} | 2 | {pass} | {} | {} | {} | {} | {:.0}% | {t:.0} |",
                s.exact,
                s.equivalent,
                s.subsumed,
                s.misses,
                s.hit_rate() * 100.0
            );
        }
    }
    println!();

    // Metrics overhead: the same cold batch with the rq-metrics global
    // kill switch off vs on. Recording touches atomics only at coarse
    // boundaries (per probe, per BFS, per query), so the delta should sit
    // inside run-to-run noise (<3%).
    {
        let db = e10_graph(100, 3);
        let engine = Engine::new(
            db,
            EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
        );
        let queries: Vec<TwoRpq> = e12_batch(32)
            .iter()
            .map(|t| engine.parse(t).expect("parses"))
            .collect();
        let mut timed = [0.0f64; 2];
        for (i, enabled) in [false, true].into_iter().enumerate() {
            rq_metrics::set_enabled(enabled);
            timed[i] = (0..5)
                .map(|_| {
                    engine.clear_cache();
                    time_us(|| engine.run_batch(&queries)).1
                })
                .fold(f64::INFINITY, f64::min);
        }
        rq_metrics::set_enabled(true);
        let [off, on] = timed;
        println!(
            "metrics overhead (cold batch of 32, 2 threads): disabled {off:.0} µs, \
             enabled {on:.0} µs ({:+.1}%)\n",
            (on - off) / off * 100.0
        );
    }

    // A short excerpt of the exposition the runs above populated, so the
    // report shows what `rqtool stats` / `serve-batch --metrics` emit.
    println!("```");
    for line in rq_metrics::global().render().lines() {
        if line.starts_with("rq_cache_dispositions_total")
            || line.starts_with("rq_containment_ladder_total")
            || line.starts_with("rq_frontier_")
            || line.ends_with("_count")
        {
            println!("{line}");
        }
    }
    println!("```\n");
}

fn e14() {
    println!("## E14 — front-end overload: shed instead of collapse\n");
    println!(
        "| load | clients | queue cap | answered | ok | shed | shed % | timed out | goodput ok/s \
         | admitted p50 µs | p95 µs | p99 µs |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|");
    let stream = e14_stream();
    // Offered load scales with the closed-loop client count: 2 clients
    // saturate the 2 serve workers (1×); 8 and 32 clients offer 4× and
    // 16×. The tenant quota is made non-binding (the fuel bucket refills
    // far faster than the workers can drain it) so the bounded queue is
    // the only shedding axis under test; the control row replaces the
    // bounded queue with one deep enough to never shed, which is what an
    // unprotected server does — it queues.
    for (label, clients, queue_capacity) in [
        ("1× baseline", 2usize, 2usize),
        ("4×", 8, 2),
        ("16×", 32, 2),
        ("16×, unbounded queue (control)", 32, 1 << 20),
    ] {
        let engine = Engine::new(
            e14_graph(),
            EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
        );
        let server = Server::start(
            engine,
            ServeConfig {
                workers: 2,
                queue_capacity,
                max_connections: 64,
                // The SLO every request carries: generous against the
                // slowest cold query, tight against queueing delay —
                // time spent queued past it is pure wasted work.
                request_timeout: Duration::from_millis(300),
                request_fuel: 50_000_000,
                quota: TenantQuota {
                    fuel_per_sec: 1_000_000_000_000,
                    burst_fuel: 1_000_000_000_000,
                },
                ..ServeConfig::default()
            },
        )
        .expect("server boots");
        let report = run_bench(&BenchConfig {
            addr: server.addr().to_string(),
            clients,
            duration: Duration::from_secs(8),
            queries: stream.clone(),
            tenants: vec!["bench".into()],
            honor_retry_after: true,
        });
        println!(
            "| {label} | {clients} | {queue_capacity} | {} | {} | {} | {:.1}% | {} | {:.0} | {} | \
             {} | {} |",
            report.answered(),
            report.ok,
            report.shed,
            report.shed_rate() * 100.0,
            report.exhausted,
            report.ok as f64 / report.elapsed.as_secs_f64(),
            report.percentile_us(50.0),
            report.percentile_us(95.0),
            report.percentile_us(99.0),
        );
        server.shutdown();
    }
    println!();
}

fn e13() {
    println!("## E13 — pre-flight analysis: per-query overhead and cache payoff\n");

    // Per-query cost of `rq_analyze::preflight` under the engine's own
    // probe budgets: the pass runs inside the engine's shared lock, so
    // this is serialized overhead every served query pays. Averaged over
    // many repetitions (a single call is sub-microsecond to tens of µs).
    let al = ab_alphabet();
    let config = EngineConfig::default();
    let limits = &config.cache.probe_limits;
    let pairs = e13_fold_pairs();
    println!("| query | action | µs/query |");
    println!("|---|---|---|");
    let mut cases: Vec<TwoRpq> = Vec::new();
    for t in e12_batch(8) {
        let mut al = ab_alphabet();
        cases.push(TwoRpq::parse(&t, &mut al).unwrap());
    }
    cases.push(e13_empty_queries()[0].clone());
    for (_, _, union) in pairs.iter().take(3) {
        cases.push(union.clone());
    }
    for q in &cases {
        let reps = 200;
        let action = rq_analyze::preflight(q, &al, limits).action;
        let t = time_us(|| {
            for _ in 0..reps {
                rq_analyze::preflight(q, &al, limits);
            }
        })
        .1 / reps as f64;
        println!(
            "| `{}` | {} | {t:.1} |",
            q.regex().display(&al),
            action.name()
        );
    }
    println!();

    // The payoff: serve the fold-variant workload (each Lemma-2 detour
    // followed by its answer-equivalent union, plus two ∅ queries) with
    // the pass on and off. On: unions collide on the detour's canonical
    // key (exact hits) and ∅ queries never reach the pool. Off: the
    // unions are only recognized through per-candidate containment
    // probes, and the ∅ queries are evaluated as ordinary misses.
    println!(
        "| pre-flight | exact | equiv | subsumed | misses | empty | hit-rate | probes | cold µs |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    let db = e10_graph(100, 3);
    let mut batch: Vec<TwoRpq> = Vec::new();
    for (_, detour, union) in pairs {
        batch.push(detour);
        batch.push(union);
    }
    batch.extend(e13_empty_queries());
    for on in [true, false] {
        let engine = Engine::new(
            db.clone(),
            EngineConfig {
                threads: 2,
                preflight: on,
                ..EngineConfig::default()
            },
        );
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..3 {
            engine.clear_cache();
            let (report, t) = time_us(|| engine.run_batch(&batch));
            best = best.min(t);
            last = Some(report);
        }
        let report = last.expect("three runs happened");
        let s = &report.stats;
        let empty = report
            .items
            .iter()
            .filter(|i| i.disposition == Disposition::Empty)
            .count();
        println!(
            "| {} | {} | {} | {} | {} | {empty} | {:.0}% | {} | {best:.0} |",
            if on { "on" } else { "off" },
            s.exact,
            s.equivalent,
            s.subsumed,
            s.misses,
            s.hit_rate() * 100.0,
            s.probes,
        );
    }
    println!();

    // Hit-rate delta on the *original* E12 batch (no crafted unions): the
    // pool has no subsumed top-level branches, so the pass must not
    // change any disposition — its cost is the table above, its benefit
    // nil here. This bounds the overhead on workloads it cannot help.
    let engine = |on: bool| {
        Engine::new(
            db.clone(),
            EngineConfig {
                threads: 2,
                preflight: on,
                ..EngineConfig::default()
            },
        )
    };
    let queries: Vec<TwoRpq> = {
        let e = engine(true);
        e12_batch(32)
            .iter()
            .map(|t| e.parse(t).expect("parses"))
            .collect()
    };
    let mut rates = [0.0f64; 2];
    let mut times = [0.0f64; 2];
    for (i, on) in [true, false].into_iter().enumerate() {
        let e = engine(on);
        let mut best = f64::INFINITY;
        let mut rate = 0.0;
        for _ in 0..3 {
            e.clear_cache();
            let (report, t) = time_us(|| e.run_batch(&queries));
            best = best.min(t);
            rate = report.stats.hit_rate();
        }
        rates[i] = rate * 100.0;
        times[i] = best;
    }
    println!(
        "E12 batch of 32 (nothing to normalize): hit-rate {:.0}% with pre-flight vs \
         {:.0}% without; cold batch {:.0} µs vs {:.0} µs ({:+.1}%)\n",
        rates[0],
        rates[1],
        times[0],
        times[1],
        (times[0] - times[1]) / times[1] * 100.0
    );
}
