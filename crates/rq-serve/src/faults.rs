//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a pure function `(seed, site, sequence) → fault?`:
//! the same plan replays the same faults at the same operations on every
//! run, so a chaos-suite failure reproduces from its seed alone. The
//! decision logic is compiled in only with the `faults` cargo feature;
//! without it [`FaultPlan::decide`] is a constant `None` the optimizer
//! erases, so production builds carry zero chaos overhead.
//!
//! Sites map to the failure domains the server hardens:
//! * [`FaultSite::Pool`] — worker job bodies (panic / delay / starve);
//! * [`FaultSite::CacheProbe`] — evaluation budgets (fuel starvation, so
//!   the retry/partial-result path fires);
//! * [`FaultSite::Io`] — connection handling (delays and dropped
//!   connections).

use std::time::Duration;

/// Where a fault may be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Inside a serve worker, around one admitted job.
    Pool,
    /// Around the engine evaluation's budget (fuel starvation).
    CacheProbe,
    /// Around connection I/O.
    Io,
}

/// What to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the site (must be contained by `catch_unwind`).
    Panic,
    /// Sleep this long before proceeding.
    Delay(Duration),
    /// Replace the operation's fuel budget with a starvation budget so
    /// it exhausts almost immediately.
    Starve,
}

/// A seeded, rate-based injection plan. Rates are per-million decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-decision hash.
    pub seed: u64,
    /// Panic rate, per million.
    pub panic_ppm: u32,
    /// Delay rate, per million.
    pub delay_ppm: u32,
    /// Injected delay length.
    pub delay: Duration,
    /// Fuel-starvation rate, per million.
    pub starve_ppm: u32,
}

impl FaultPlan {
    /// The inert plan: decides `None` everywhere (and is the `Default`).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            panic_ppm: 0,
            delay_ppm: 0,
            delay: Duration::from_millis(1),
            starve_ppm: 0,
        }
    }

    /// A plan injecting each fault kind at `ppm` per million decisions —
    /// the chaos suite's convenience constructor.
    pub fn uniform(seed: u64, ppm: u32) -> FaultPlan {
        FaultPlan {
            seed,
            panic_ppm: ppm,
            delay_ppm: ppm,
            delay: Duration::from_millis(1),
            starve_ppm: ppm,
        }
    }

    /// Whether this plan can ever inject anything.
    pub fn is_active(&self) -> bool {
        compiled() && (self.panic_ppm > 0 || self.delay_ppm > 0 || self.starve_ppm > 0)
    }

    /// Parse the CLI spec `seed=S,panic=PPM,delay=PPM,delay_ms=MS,starve=PPM`
    /// (any subset of keys; missing keys default to the inert plan).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec {part:?}: expected key=value"))?;
            let parse_u64 = |v: &str| -> Result<u64, String> {
                v.parse()
                    .map_err(|_| format!("fault spec {key}: expected an integer, got {value:?}"))
            };
            match key {
                "seed" => plan.seed = parse_u64(value)?,
                "panic" => plan.panic_ppm = parse_u64(value)? as u32,
                "delay" => plan.delay_ppm = parse_u64(value)? as u32,
                "delay_ms" => plan.delay = Duration::from_millis(parse_u64(value)?),
                "starve" => plan.starve_ppm = parse_u64(value)? as u32,
                other => return Err(format!("fault spec: unknown key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Decide deterministically whether operation number `seq` at `site`
    /// experiences a fault. Compiled to `None` without the `faults`
    /// feature.
    #[inline]
    pub fn decide(&self, site: FaultSite, seq: u64) -> Option<Fault> {
        #[cfg(feature = "faults")]
        {
            let total =
                u64::from(self.panic_ppm) + u64::from(self.delay_ppm) + u64::from(self.starve_ppm);
            if total == 0 {
                return None;
            }
            let site_tag = match site {
                FaultSite::Pool => 0x706F6F6Cu64,
                FaultSite::CacheProbe => 0x70726F62u64,
                FaultSite::Io => 0x00696F00u64,
            };
            let draw = splitmix64(self.seed ^ site_tag.rotate_left(17) ^ seq) % 1_000_000;
            if draw < u64::from(self.panic_ppm) {
                return Some(Fault::Panic);
            }
            if draw < u64::from(self.panic_ppm) + u64::from(self.delay_ppm) {
                return Some(Fault::Delay(self.delay));
            }
            if draw < total {
                return Some(Fault::Starve);
            }
            None
        }
        #[cfg(not(feature = "faults"))]
        {
            let _ = (site, seq);
            None
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Whether the fault-injection layer is compiled into this build.
pub const fn compiled() -> bool {
    cfg!(feature = "faults")
}

#[cfg(feature = "faults")]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_cli_spec() {
        let plan = FaultPlan::parse("seed=7,panic=100,delay=200,delay_ms=3,starve=400").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.panic_ppm, 100);
        assert_eq!(plan.delay_ppm, 200);
        assert_eq!(plan.delay, Duration::from_millis(3));
        assert_eq!(plan.starve_ppm, 400);
        assert!(FaultPlan::parse("panic=x").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
    }

    #[test]
    fn inert_plan_never_fires() {
        let plan = FaultPlan::none();
        for seq in 0..10_000 {
            assert_eq!(plan.decide(FaultSite::Pool, seq), None);
        }
        assert!(!plan.is_active());
    }

    #[cfg(feature = "faults")]
    #[test]
    fn decisions_are_deterministic_and_near_the_configured_rate() {
        let plan = FaultPlan::uniform(1234, 10_000); // 1% per kind → 3% total
        let first: Vec<_> = (0..50_000)
            .map(|seq| plan.decide(FaultSite::Pool, seq))
            .collect();
        let second: Vec<_> = (0..50_000)
            .map(|seq| plan.decide(FaultSite::Pool, seq))
            .collect();
        assert_eq!(first, second, "same seed, same faults");
        let fired = first.iter().filter(|f| f.is_some()).count();
        // 3% of 50k = 1500 expected; allow generous sampling slack.
        assert!((900..=2100).contains(&fired), "fired {fired} of 50000");
        // Sites are decorrelated: the same sequence number draws
        // differently at different sites.
        let pool: Vec<_> = (0..1000).map(|s| plan.decide(FaultSite::Pool, s)).collect();
        let io: Vec<_> = (0..1000).map(|s| plan.decide(FaultSite::Io, s)).collect();
        assert_ne!(pool, io);
    }

    #[cfg(not(feature = "faults"))]
    #[test]
    fn without_the_feature_every_decision_is_none() {
        let plan = FaultPlan::uniform(1234, 500_000);
        assert!(!plan.is_active());
        assert!((0..1000).all(|s| plan.decide(FaultSite::Pool, s).is_none()));
    }
}
