//! Server configuration and its structured validation.

use crate::faults::FaultPlan;
use crate::retry::RetryPolicy;
use rq_metrics::recorder::RecorderConfig;
use std::time::Duration;

/// Per-tenant admission quotas: a token bucket denominated in **governor
/// fuel**, the same unit the evaluation budgets use. Each admitted
/// request debits its fuel budget from its tenant's bucket up front, so
/// one tenant's expensive queries throttle *that tenant* long before
/// they can starve the pool for everyone else.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// Sustained refill rate, fuel per second.
    pub fuel_per_sec: u64,
    /// Bucket capacity: how much fuel a tenant may burst after idling.
    pub burst_fuel: u64,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            fuel_per_sec: 200_000,
            burst_fuel: 1_000_000,
        }
    }
}

/// Front-end construction knobs. Everything is bounded: the submission
/// queue, the connection count, the per-request deadline, and the drain
/// deadline all have explicit limits, so overload turns into shedding
/// rather than unbounded buffering.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads executing admitted jobs (each evaluation then fans
    /// out across the engine's own pool).
    pub workers: usize,
    /// Bounded submission queue: jobs admitted but not yet picked up by a
    /// worker. Must be ≥ 1 — a zero-capacity queue is a configuration
    /// error, not a panic.
    pub queue_capacity: usize,
    /// Maximum concurrently served connections; excess connections are
    /// answered `503` and closed immediately.
    pub max_connections: usize,
    /// Default per-request deadline (clients may lower it with
    /// `X-Timeout-Ms`, never raise it).
    pub request_timeout: Duration,
    /// Default per-request fuel budget (clients may lower it with
    /// `X-Fuel`, never raise it). This is also the fuel debited from the
    /// tenant's bucket at admission.
    pub request_fuel: u64,
    /// How long a drain may take before in-flight work is cancelled.
    pub drain_deadline: Duration,
    /// Retry policy for `Unknown`/exhausted outcomes.
    pub retry: RetryPolicy,
    /// Per-tenant admission quota.
    pub quota: TenantQuota,
    /// Deterministic fault-injection plan (active only when the crate is
    /// built with the `faults` feature; inert otherwise).
    pub faults: FaultPlan,
    /// Socket read timeout for idle keep-alive connections. Bounds how
    /// long a drain must wait for handler threads to notice the flag.
    pub idle_timeout: Duration,
    /// Flight-recorder sizing and head-sampling policy for request
    /// traces (`/tracez`, `/slowz`, and the `explain` option). Memory is
    /// bounded by the two ring capacities regardless of load.
    pub tracing: RecorderConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            max_connections: 256,
            request_timeout: Duration::from_secs(2),
            request_fuel: 200_000,
            drain_deadline: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            quota: TenantQuota::default(),
            faults: FaultPlan::none(),
            idle_timeout: Duration::from_millis(500),
            tracing: RecorderConfig::default(),
        }
    }
}

/// A configuration the server refuses to start with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Which knob is broken and why.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "error[config]: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

impl ServeConfig {
    /// Validate every bound, returning the first structured error. A
    /// zero-sized queue, zero workers, or a zero drain deadline would all
    /// previously have panicked (or hung) somewhere deep in the stack;
    /// they are rejected here by name instead.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let fail = |message: String| Err(ConfigError { message });
        if self.workers == 0 {
            return fail("workers must be at least 1".into());
        }
        if self.queue_capacity == 0 {
            return fail(
                "queue_capacity must be at least 1 (a zero-sized bounded queue can never admit)"
                    .into(),
            );
        }
        if self.max_connections == 0 {
            return fail("max_connections must be at least 1".into());
        }
        if self.request_timeout.is_zero() {
            return fail("request_timeout must be positive".into());
        }
        if self.request_fuel == 0 {
            return fail("request_fuel must be positive".into());
        }
        if self.drain_deadline.is_zero() {
            return fail("drain_deadline must be positive".into());
        }
        if self.quota.fuel_per_sec == 0 || self.quota.burst_fuel == 0 {
            return fail("tenant quota rates must be positive".into());
        }
        if self.quota.burst_fuel < self.request_fuel {
            return fail(format!(
                "tenant burst_fuel ({}) is below request_fuel ({}): no request could ever be \
                 admitted",
                self.quota.burst_fuel, self.request_fuel
            ));
        }
        if self.tracing.recent_capacity == 0 || self.tracing.slow_capacity == 0 {
            return fail("tracing ring capacities must be at least 1".into());
        }
        if self.tracing.sample_every == 0 {
            return fail(
                "tracing.sample_every must be at least 1 (1 = trace every request)".into(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        ServeConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_sized_bounded_queue_is_a_structured_error() {
        let cfg = ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("queue_capacity"), "{err}");
        assert!(err.to_string().starts_with("error[config]:"), "{err}");
    }

    #[test]
    fn impossible_quota_is_rejected() {
        let cfg = ServeConfig {
            request_fuel: 10,
            quota: TenantQuota {
                fuel_per_sec: 1,
                burst_fuel: 5,
            },
            ..ServeConfig::default()
        };
        assert!(cfg.validate().is_err());
        for bad in [
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_connections: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                drain_deadline: Duration::ZERO,
                ..ServeConfig::default()
            },
            ServeConfig {
                tracing: RecorderConfig {
                    sample_every: 0,
                    ..RecorderConfig::default()
                },
                ..ServeConfig::default()
            },
            ServeConfig {
                tracing: RecorderConfig {
                    recent_capacity: 0,
                    ..RecorderConfig::default()
                },
                ..ServeConfig::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }
}
