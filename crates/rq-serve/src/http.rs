//! A minimal, dependency-free HTTP/1.1 layer: enough of the protocol to
//! serve and drive the front-end, and nothing more.
//!
//! Supported: request line + headers + `Content-Length` bodies,
//! persistent connections (`Connection: close` honored both ways),
//! percent-free query strings (`/poll?id=7`). Not supported — and
//! rejected with structured errors rather than undefined behavior —
//! chunked request bodies, header/body sizes beyond the configured caps,
//! and HTTP/2 preambles. Responses are always written with an explicit
//! `Content-Length` so clients can pipeline over keep-alive connections.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body, bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (`/poll`).
    pub path: String,
    /// Decoded `k=v` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header pairs with lowercased names, in order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Body as UTF-8, or an error suitable for a 400 response.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::Malformed("body is not UTF-8"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before (or mid-) request — the
    /// normal end of a keep-alive session, not an error to report.
    Closed,
    /// Read timed out or failed at the socket level.
    Io(std::io::Error),
    /// The bytes were not a well-formed HTTP/1.1 request.
    Malformed(&'static str),
    /// Head or body exceeded the configured size caps.
    TooLarge(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
        }
    }
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect()
}

/// Read one request from a buffered stream. Returns [`HttpError::Closed`]
/// on clean EOF before the first byte (keep-alive session over).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, HttpError> {
    let mut head = String::new();
    let mut line = String::new();
    // Request line.
    match reader.read_line(&mut line) {
        Ok(0) => return Err(HttpError::Closed),
        Ok(_) => {}
        Err(e) => return Err(HttpError::Io(e)),
    }
    let request_line = line.trim_end().to_string();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };
    // Headers.
    let mut headers = Vec::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Err(HttpError::Malformed("EOF inside headers")),
            Ok(_) => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
        head.push_str(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("request head"));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed
            .split_once(':')
            .ok_or(HttpError::Malformed("header without a colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    // Body.
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad Content-Length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("request body"));
    }
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.to_ascii_lowercase().contains("chunked"))
    {
        return Err(HttpError::Malformed("chunked request bodies unsupported"));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(HttpError::Io)?;
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Canonical reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Write one response with `Content-Length` framing. `extra_headers` are
/// emitted verbatim (e.g. `("Retry-After", "2")`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A parsed response, as seen by the tiny client below.
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header pairs with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as (lossy) UTF-8.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A minimal blocking HTTP/1.1 client over one keep-alive connection.
/// Used by the closed-loop bench driver and the test suites; it speaks
/// exactly the dialect the server emits.
pub struct Client {
    reader: BufReader<TcpStream>,
    addr: String,
    timeout: Duration,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7878`) with one read/write
    /// timeout for every exchange.
    pub fn connect(addr: &str, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream),
            addr: addr.to_string(),
            timeout,
        })
    }

    /// Reconnect in place (used after the server closes a connection).
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        *self = Client::connect(&self.addr, self.timeout)?;
        Ok(())
    }

    /// Send one request and read the response. `headers` are emitted
    /// verbatim in addition to `Host` and `Content-Length`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: rq-serve\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (k, v) in headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let mut headers = Vec::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("EOF inside response headers"));
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((k, v)) = trimmed.split_once(':') {
                headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
            }
        }
        let len = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .ok_or_else(|| bad("response without Content-Length"))?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trip a request and response through a real socket pair.
    #[test]
    fn request_response_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream);
            let req = read_request(&mut reader).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/query");
            assert_eq!(req.query_param("x"), Some("1"));
            assert_eq!(req.header("x-tenant"), Some("acme"));
            assert_eq!(req.body_utf8().unwrap(), "a+");
            let mut stream = reader.into_inner();
            write_response(
                &mut stream,
                200,
                "application/json",
                &[("Retry-After", "2".to_string())],
                b"{\"ok\":true}",
                false,
            )
            .unwrap();
            // Second request on the same connection (keep-alive).
            let mut reader = BufReader::new(stream);
            let req = read_request(&mut reader).unwrap();
            assert_eq!(req.method, "GET");
            let mut stream = reader.into_inner();
            write_response(&mut stream, 404, "text/plain", &[], b"nope", true).unwrap();
        });
        let mut client = Client::connect(&addr, Duration::from_secs(5)).unwrap();
        let resp = client
            .request("POST", "/query?x=1", &[("X-Tenant", "acme")], b"a+")
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("retry-after"), Some("2"));
        assert_eq!(resp.text(), "{\"ok\":true}");
        let resp = client.request("GET", "/miss", &[], b"").unwrap();
        assert_eq!(resp.status, 404);
        server.join().unwrap();
    }

    #[test]
    fn malformed_requests_are_rejected_not_panicked() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream);
                assert!(read_request(&mut reader).is_err());
            }
        });
        for raw in [
            "NOT-HTTP\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: nonsense\r\n\r\n",
        ] {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            drop(s);
        }
        server.join().unwrap();
    }
}
