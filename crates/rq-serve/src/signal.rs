//! SIGTERM/SIGINT → graceful drain, with no libc crate.
//!
//! `std` already links the platform libc, so the two symbols we need —
//! `signal(2)` and the handler registration — are declared here directly.
//! The handler does the only async-signal-safe thing possible: store a
//! relaxed atomic flag. The serving loop polls [`triggered`] and runs the
//! drain from ordinary thread context.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)`; the return value (the previous handler) is unused.
        pub fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    TRIGGERED.store(true, Ordering::Relaxed);
}

/// Install the termination handler for `SIGTERM` and `SIGINT`. Safe to
/// call more than once; a no-op on non-Unix targets (where [`triggered`]
/// simply never fires).
pub fn install() {
    #[cfg(unix)]
    unsafe {
        sys::signal(sys::SIGTERM, on_signal);
        sys::signal(sys::SIGINT, on_signal);
    }
}

/// Whether a termination signal has arrived since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

/// Reset the flag (tests; also lets a supervisor re-arm after a handled
/// drain).
pub fn reset() {
    TRIGGERED.store(false, Ordering::Relaxed);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn raise_sets_the_flag() {
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        install();
        reset();
        assert!(!triggered());
        unsafe {
            raise(super::sys::SIGTERM);
        }
        assert!(triggered());
        reset();
    }
}
