//! `rq-serve`: a fault-tolerant multi-tenant front-end for the query
//! engine.
//!
//! The crate turns an [`rq_engine::Engine`] into a network service with
//! explicit failure semantics at every layer:
//!
//! * **Admission** — per-tenant token buckets denominated in governor
//!   fuel ([`bucket`]), then a bounded submission queue ([`queue`]).
//!   Overload is answered immediately (`429` + `Retry-After` derived from
//!   queue depth), never buffered without bound.
//! * **Execution** — serve workers run each job under `catch_unwind`, a
//!   per-request fuel + deadline budget, and cooperative cancellation; a
//!   panicking query is answered `error[internal]` while its neighbours
//!   complete untouched ([`server`]).
//! * **Retry** — exhausted outcomes are idempotent and retried with
//!   decorrelated-jitter backoff under a global retry budget ([`retry`]);
//!   when retries run out, the response carries the last structured
//!   exhaustion report instead of a bare failure.
//! * **Drain** — `SIGTERM` ([`signal`]) or `POST /drainz` stops
//!   admission, finishes the backlog within the drain deadline, cancels
//!   the rest, and flushes metrics one final time.
//! * **Chaos** — a deterministic, seeded [`faults::FaultPlan`] injects
//!   panics, delays, and fuel starvation at the pool, cache-probe, and
//!   I/O boundaries (behind the `faults` feature) so all of the above is
//!   exercised by tests rather than trusted.
//!
//! The wire protocol is hand-rolled HTTP/1.1 with JSON bodies ([`http`]);
//! the crate (like the rest of the workspace) has no external
//! dependencies.

pub mod bench;
pub mod bucket;
pub mod config;
pub mod faults;
pub mod http;
pub mod queue;
pub mod retry;
pub mod server;
pub mod signal;

pub use bench::{run as run_bench, BenchConfig, BenchReport};
pub use bucket::{Admission, TenantBuckets};
pub use config::{ConfigError, ServeConfig, TenantQuota};
pub use faults::{Fault, FaultPlan, FaultSite};
pub use http::Client;
pub use queue::{BoundedQueue, PushError};
pub use retry::{RetryBudget, RetryPolicy};
pub use server::{DrainReport, Server};
