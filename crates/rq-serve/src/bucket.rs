//! Per-tenant token buckets denominated in governor fuel.
//!
//! Admission control reuses the workspace's one resource currency: a
//! request costs its **fuel budget** (the same number the engine's
//! governors will meter against), refilled at `fuel_per_sec`. An
//! EXPSPACE-hard query with a big budget drains its tenant's bucket
//! proportionally, so "one adversarial tenant pins a worker stripe"
//! becomes "one adversarial tenant rate-limits itself".

use crate::config::TenantQuota;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Bucket {
    /// Current fill, in fuel units (≤ burst).
    fuel: f64,
    /// Last refill instant.
    last: Instant,
}

/// Admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Debited; proceed.
    Admitted,
    /// Over quota: retry after roughly this long (the time the bucket
    /// needs to refill enough for this request).
    Throttled(Duration),
}

/// A map of per-tenant buckets behind one mutex. The critical section is
/// a hash lookup and a few float ops — admission is far off the
/// evaluation hot path.
pub struct TenantBuckets {
    quota: TenantQuota,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantBuckets {
    /// Buckets enforcing `quota`, all starting full.
    pub fn new(quota: TenantQuota) -> TenantBuckets {
        TenantBuckets {
            quota,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Try to debit `cost` fuel from `tenant`'s bucket at time `now`.
    pub fn admit(&self, tenant: &str, cost: u64, now: Instant) -> Admission {
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let burst = self.quota.burst_fuel as f64;
        let rate = self.quota.fuel_per_sec as f64;
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            fuel: burst,
            last: now,
        });
        // Refill for the elapsed time, clamped to the burst capacity.
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.fuel = (bucket.fuel + elapsed * rate).min(burst);
        bucket.last = now;
        let cost = cost as f64;
        if bucket.fuel >= cost {
            bucket.fuel -= cost;
            Admission::Admitted
        } else {
            let deficit = cost - bucket.fuel;
            let secs = (deficit / rate).clamp(0.001, 3600.0);
            Admission::Throttled(Duration::from_secs_f64(secs))
        }
    }

    /// Number of tenants currently tracked.
    pub fn tenants(&self) -> usize {
        self.buckets.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quota(fuel_per_sec: u64, burst_fuel: u64) -> TenantQuota {
        TenantQuota {
            fuel_per_sec,
            burst_fuel,
        }
    }

    #[test]
    fn burst_then_throttle_then_refill() {
        let b = TenantBuckets::new(quota(100, 300));
        let t0 = Instant::now();
        // Burst: three requests of cost 100 pass on the full bucket.
        for _ in 0..3 {
            assert_eq!(b.admit("acme", 100, t0), Admission::Admitted);
        }
        // The fourth is throttled with a sensible retry hint (~1s for 100
        // fuel at 100 fuel/s).
        match b.admit("acme", 100, t0) {
            Admission::Throttled(after) => {
                assert!(after >= Duration::from_millis(900), "{after:?}");
                assert!(after <= Duration::from_millis(1100), "{after:?}");
            }
            other => panic!("expected throttle, got {other:?}"),
        }
        // After two simulated seconds the bucket has 200 fuel again.
        let t2 = t0 + Duration::from_secs(2);
        assert_eq!(b.admit("acme", 100, t2), Admission::Admitted);
        assert_eq!(b.admit("acme", 100, t2), Admission::Admitted);
        assert!(matches!(b.admit("acme", 100, t2), Admission::Throttled(_)));
    }

    #[test]
    fn tenants_are_isolated() {
        let b = TenantBuckets::new(quota(10, 100));
        let t0 = Instant::now();
        assert_eq!(b.admit("noisy", 100, t0), Admission::Admitted);
        assert!(matches!(b.admit("noisy", 100, t0), Admission::Throttled(_)));
        // The noisy tenant's exhaustion does not touch the quiet one.
        assert_eq!(b.admit("quiet", 100, t0), Admission::Admitted);
        assert_eq!(b.tenants(), 2);
    }

    #[test]
    fn refill_never_exceeds_burst() {
        let b = TenantBuckets::new(quota(1_000_000, 100));
        let t0 = Instant::now();
        assert_eq!(b.admit("t", 100, t0), Admission::Admitted);
        // An hour of refill still caps at burst: two requests of 100
        // cannot both pass.
        let later = t0 + Duration::from_secs(3600);
        assert_eq!(b.admit("t", 100, later), Admission::Admitted);
        assert!(matches!(b.admit("t", 100, later), Admission::Throttled(_)));
    }
}
