//! The front-end proper: admission, execution, recovery, and drain.
//!
//! One accept loop feeds per-connection handler threads; handlers admit
//! requests (tenant bucket, then bounded queue) and park on a
//! [`JobCell`]; serve workers pop jobs and execute them against the
//! engine under `catch_unwind`, per-request budgets, and the retry
//! policy. Every admitted job is answered exactly once — by its worker,
//! or by the drain sweep that empties the queue at the deadline. The
//! failure ladder is: shed at admission (429/503) → retry within budget →
//! partial exhaustion report (422) → contained panic (500) — the process
//! itself never goes down with a request.

use crate::bucket::{Admission, TenantBuckets};
use crate::config::{ConfigError, ServeConfig};
use crate::faults::{Fault, FaultSite};
use crate::http::{read_request, write_response, HttpError, Request};
use crate::queue::{BoundedQueue, PushError};
use crate::retry::{decorrelated_jitter, RetryBudget, Rng};
use rq_analyze::Json;
use rq_automata::governor::{EngineError, Exhaustion, Limits, Resource};
use rq_engine::Engine;
use rq_graph::Delta;
use rq_metrics::recorder::Recorder;
use rq_metrics::span::{self, FinishedTrace, TraceContext};
use rq_storage::StorageHandle;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on admitted-but-unpolled async jobs.
const MAX_ASYNC_JOBS: usize = 1024;
/// Extra wait past a request's deadline before the handler gives up on
/// its worker (it should answer within one governor poll of the
/// cancellation flag).
const STUCK_GRACE: Duration = Duration::from_secs(60);

/// A one-shot mailbox the handler parks on and the worker (or the drain
/// sweep) fulfills exactly once.
struct JobCell {
    slot: Mutex<Option<(u16, String)>>,
    ready: Condvar,
}

impl JobCell {
    fn new() -> Arc<JobCell> {
        Arc::new(JobCell {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// Deliver the response. First writer wins; a late worker result after
    /// a drain sweep already answered is dropped silently.
    fn fulfill(&self, status: u16, body: String) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some((status, body));
            self.ready.notify_all();
        }
    }

    /// Block until fulfilled or `deadline` passes.
    fn wait_until(&self, deadline: Instant) -> Option<(u16, String)> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(resp) = slot.clone() {
                return Some(resp);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            slot = guard;
        }
    }

    /// Non-blocking peek (the `/poll` path).
    fn peek(&self) -> Option<(u16, String)> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// One admitted request travelling from handler to worker.
struct Job {
    id: u64,
    text: String,
    fuel: u64,
    deadline: Instant,
    cancel: Arc<AtomicBool>,
    cell: Arc<JobCell>,
    /// The request's trace context — every job has one (its id is echoed
    /// in the response) even when head sampling skips span capture.
    trace: Arc<TraceContext>,
    /// Whether spans are captured for this request (head sampling, forced
    /// on by `explain`).
    sampled: bool,
    /// Whether the response should inline the finished span tree and the
    /// rendered per-stage profile.
    explain: bool,
}

/// What a finished drain observed.
#[derive(Debug)]
pub struct DrainReport {
    /// Jobs still queued at the drain deadline, answered `error[draining]`.
    pub swept: usize,
    /// Jobs in flight at the drain deadline whose cancellation flag was
    /// raised.
    pub cancelled: usize,
    /// Whether the backlog fully drained before the deadline.
    pub clean: bool,
    /// Wall-clock time the drain took.
    pub elapsed: Duration,
    /// Final metrics exposition, rendered after the last job was answered
    /// (the "final flush" a scraper would otherwise miss).
    pub metrics: String,
}

struct Inner {
    cfg: ServeConfig,
    engine: Arc<Engine>,
    /// The persistent store behind `/ingest`, when the server was started
    /// over one (`rqtool serve --store=DIR`). Deltas are fsync'd here
    /// *before* they are applied to the engine, so an acknowledged ingest
    /// survives a crash.
    store: Option<Mutex<StorageHandle>>,
    /// Bounded flight recorder backing `/tracez`, `/slowz`, and `explain`.
    recorder: Recorder,
    queue: BoundedQueue<Job>,
    buckets: TenantBuckets,
    budget: RetryBudget,
    /// Cancellation flags of jobs currently executing, by job id.
    inflight: Mutex<HashMap<u64, Arc<AtomicBool>>>,
    /// Async (`/submit`) jobs awaiting `/poll`, by job id.
    async_jobs: Mutex<HashMap<u64, Arc<JobCell>>>,
    next_id: AtomicU64,
    /// Monotone fault-decision sequence (shared across sites).
    fault_seq: AtomicU64,
    open_conns: AtomicUsize,
    draining: AtomicBool,
    stopped: AtomicBool,
    started: Instant,
}

/// A running front-end. Dropping the handle does **not** stop the server;
/// call [`Server::drain`] (or [`Server::shutdown`]) for an orderly exit.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Validate `cfg`, bind the listener, and start the accept loop plus
    /// `cfg.workers` serve workers.
    pub fn start(engine: Engine, cfg: ServeConfig) -> Result<Server, ConfigError> {
        Server::start_with_store(engine, cfg, None)
    }

    /// [`start`](Server::start), backed by a persistent store: `/ingest`
    /// appends to the store's delta log (fsync = acknowledgment) before
    /// patching the live engine, and compacts once the log crosses the
    /// configured threshold. The engine's epoch is seeded from the store
    /// so cache keys and metrics line up across restarts.
    pub fn start_with_store(
        engine: Engine,
        cfg: ServeConfig,
        store: Option<StorageHandle>,
    ) -> Result<Server, ConfigError> {
        cfg.validate()?;
        if let Some(store) = &store {
            engine.set_epoch(store.epoch());
        }
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| ConfigError {
            message: format!("cannot bind {}: {e}", cfg.addr),
        })?;
        let addr = listener.local_addr().map_err(|e| ConfigError {
            message: format!("cannot resolve bound address: {e}"),
        })?;
        listener.set_nonblocking(true).map_err(|e| ConfigError {
            message: format!("cannot set the listener non-blocking: {e}"),
        })?;
        let inner = Arc::new(Inner {
            recorder: Recorder::new(cfg.tracing.clone()),
            queue: BoundedQueue::new(cfg.queue_capacity),
            buckets: TenantBuckets::new(cfg.quota.clone()),
            budget: RetryBudget::new(cfg.retry.max_retries.max(1) * 8),
            inflight: Mutex::new(HashMap::new()),
            async_jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            fault_seq: AtomicU64::new(0),
            open_conns: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            started: Instant::now(),
            engine: Arc::new(engine),
            store: store.map(Mutex::new),
            cfg,
        });
        let workers = (0..inner.cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("rq-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("rq-serve-accept".to_string())
                .spawn(move || accept_loop(&inner, listener))
                .expect("spawn accept loop")
        };
        Ok(Server {
            inner,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.inner.engine
    }

    /// The request flight recorder (`/tracez` / `/slowz` backing store).
    pub fn recorder(&self) -> &Recorder {
        &self.inner.recorder
    }

    /// Whether a drain has started.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Gracefully drain: stop admitting, let workers finish the backlog,
    /// and at `drain_deadline` cancel in-flight evaluations and answer
    /// everything still queued with `error[draining]`. Idempotent; blocks
    /// until the drain completes and returns what it observed.
    pub fn drain(&self) -> DrainReport {
        drain(&self.inner)
    }

    /// Drain, then join every thread the server owns.
    pub fn shutdown(mut self) -> DrainReport {
        let report = self.drain();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Handler threads are detached; give them one idle-timeout tick to
        // notice `stopped` and hang up.
        let waited = Instant::now();
        while self.inner.open_conns.load(Ordering::SeqCst) > 0
            && waited.elapsed() < Duration::from_secs(5)
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        report
    }
}

fn drain(inner: &Arc<Inner>) -> DrainReport {
    let start = Instant::now();
    if inner.draining.swap(true, Ordering::SeqCst) {
        // A concurrent drain is (or was) already running; wait it out.
        while !inner.stopped.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));
        }
        return DrainReport {
            swept: 0,
            cancelled: 0,
            clean: true,
            elapsed: start.elapsed(),
            metrics: rq_metrics::global().render(),
        };
    }
    metrics::draining(true);
    inner.queue.stop_admitting();
    // Phase 1: let the backlog and in-flight work finish on their own.
    let deadline = start + inner.cfg.drain_deadline;
    while Instant::now() < deadline {
        let idle = inner.queue.depth() == 0
            && inner
                .inflight
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty();
        if idle {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // Phase 2 (deadline): cancel whatever is still running and answer
    // whatever is still queued. Nothing is abandoned.
    let cancelled = {
        let inflight = inner.inflight.lock().unwrap_or_else(|e| e.into_inner());
        for flag in inflight.values() {
            flag.store(true, Ordering::SeqCst);
        }
        inflight.len()
    };
    let swept_jobs = inner.queue.take_all();
    let swept = swept_jobs.len();
    for job in swept_jobs {
        metrics::shed("draining");
        let finished = inner
            .recorder
            .record(job.trace.finish("error[draining]", &job.text));
        job.cell.fulfill(
            503,
            stamp_trace(
                error_body(
                    job.id,
                    "draining",
                    "server drained before this job ran",
                    vec![],
                ),
                &finished,
                false,
            ),
        );
    }
    // Wait (briefly) for cancelled workers to report in, then stop.
    let grace = Instant::now() + Duration::from_secs(2);
    while Instant::now() < grace {
        if inner
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    inner.queue.close();
    inner.stopped.store(true, Ordering::SeqCst);
    metrics::queue_depth(0);
    DrainReport {
        swept,
        cancelled,
        clean: swept == 0 && cancelled == 0,
        elapsed: start.elapsed(),
        metrics: rq_metrics::global().render(),
    }
}

// ---------------------------------------------------------------------------
// Accept loop and connection handling
// ---------------------------------------------------------------------------

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    loop {
        if inner.stopped.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if inner.open_conns.load(Ordering::SeqCst) >= inner.cfg.max_connections {
                    metrics::shed("connections");
                    let mut stream = stream;
                    let _ = write_response(
                        &mut stream,
                        503,
                        "application/json",
                        &[("Retry-After", "1".to_string())],
                        error_body(0, "overload", "connection limit reached", vec![]).as_bytes(),
                        true,
                    );
                    continue;
                }
                inner.open_conns.fetch_add(1, Ordering::SeqCst);
                let inner = Arc::clone(inner);
                let _ = std::thread::Builder::new()
                    .name("rq-serve-conn".to_string())
                    .spawn(move || {
                        handle_connection(&inner, stream);
                        inner.open_conns.fetch_sub(1, Ordering::SeqCst);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.cfg.idle_timeout));
    let mut reader = BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(req) => req,
            Err(HttpError::Closed) => return,
            Err(HttpError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle keep-alive tick: hang up once the server stopped so
                // shutdown is not held open by parked clients.
                if inner.stopped.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(HttpError::Io(_)) => return,
            Err(e) => {
                // Malformed or oversized: answer once, then hang up.
                let status = match e {
                    HttpError::TooLarge(_) => 413,
                    _ => 400,
                };
                let body = error_body(0, "invalid", &e.to_string(), vec![]);
                let stream = reader.get_mut();
                let _ = write_response(
                    stream,
                    status,
                    "application/json",
                    &[],
                    body.as_bytes(),
                    true,
                );
                return;
            }
        };
        // Injected I/O fault: delay the exchange or drop the connection.
        match decide_fault(inner, FaultSite::Io) {
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::Panic) => return, // simulated connection loss
            _ => {}
        }
        let close = req.wants_close();
        let resp = dispatch(inner, &req);
        let stream = reader.get_mut();
        if write_response(
            stream,
            resp.status,
            resp.content_type,
            &resp.headers,
            resp.body.as_bytes(),
            close,
        )
        .is_err()
            || close
        {
            return;
        }
    }
}

struct Resp {
    status: u16,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: String,
}

impl Resp {
    fn json(status: u16, body: String) -> Resp {
        Resp {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    fn with_retry_after(mut self, after: Duration) -> Resp {
        let secs = after.as_secs_f64().ceil().max(1.0) as u64;
        self.headers.push(("Retry-After", secs.to_string()));
        self
    }
}

fn dispatch(inner: &Arc<Inner>, req: &Request) -> Resp {
    let start = Instant::now();
    let endpoint = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") => "query",
        ("POST", "/submit") => "submit",
        ("GET", "/poll") => "poll",
        ("POST", "/stream") => "stream",
        ("POST", "/lint") => "lint",
        ("POST", "/ingest") => "ingest",
        ("GET", "/metrics") => "metrics",
        ("GET", "/tracez") => "tracez",
        ("GET", "/slowz") => "slowz",
        ("GET", "/healthz") => "healthz",
        ("POST", "/drainz") => "drainz",
        _ => "other",
    };
    metrics::request(endpoint);
    let resp = match endpoint {
        "query" => query_sync(inner, req),
        "submit" => submit_async(inner, req),
        "poll" => poll(inner, req),
        "stream" => stream(inner, req),
        "lint" => lint(inner, req),
        "ingest" => ingest(inner, req),
        "metrics" => Resp {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: rq_metrics::global().render(),
        },
        "tracez" => tracez(inner, false),
        "slowz" => tracez(inner, true),
        "healthz" => healthz(inner),
        "drainz" => drainz(inner),
        _ => Resp::json(404, error_body(0, "invalid", "no such endpoint", vec![])),
    };
    metrics::latency(start.elapsed());
    resp
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

/// Parse the per-request knobs: tenants identify themselves with
/// `X-Tenant`; `X-Fuel` and `X-Timeout-Ms` may lower (never raise) the
/// configured budgets.
fn request_knobs(inner: &Inner, req: &Request) -> (String, u64, Duration) {
    let tenant = req.header("x-tenant").unwrap_or("anonymous").to_string();
    let fuel = req
        .header("x-fuel")
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&f| f > 0)
        .map_or(inner.cfg.request_fuel, |f| f.min(inner.cfg.request_fuel));
    let timeout = req
        .header("x-timeout-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map_or(inner.cfg.request_timeout, |ms| {
            Duration::from_millis(ms).min(inner.cfg.request_timeout)
        });
    (tenant, fuel, timeout)
}

/// A query body is either the raw query text or a JSON envelope
/// `{"query": "...", "explain": true}`. The envelope opts the request
/// into the inline span profile; anything that does not parse as such an
/// object is treated as raw query text (and judged by the query parser).
fn parse_query_body(text: &str) -> (String, bool) {
    if text.trim_start().starts_with('{') {
        if let Ok(body) = Json::parse(text) {
            if let Some(q) = body.get("query").and_then(Json::as_str) {
                let explain = body.get("explain") == Some(&Json::Bool(true));
                return (q.to_string(), explain);
            }
        }
    }
    (text.to_string(), false)
}

/// Admit one query body: tenant bucket, then bounded queue. On success the
/// job is enqueued and its cell + trace id returned; on shed, the
/// structured refusal. Every admitted job gets a trace context — fresh,
/// or adopted from a well-formed `X-RQ-Trace-Id` header — whose id the
/// response echoes; span capture is head-sampled (forced on by
/// `explain`).
fn admit(
    inner: &Arc<Inner>,
    req: &Request,
    text: &str,
    explain: bool,
) -> Result<(u64, Arc<JobCell>, String), Resp> {
    let (tenant, fuel, timeout) = request_knobs(inner, req);
    if text.trim().is_empty() {
        return Err(Resp::json(
            400,
            error_body(0, "invalid", "empty query body", vec![]),
        ));
    }
    if inner.draining.load(Ordering::SeqCst) {
        metrics::shed("draining");
        return Err(Resp::json(
            503,
            error_body(0, "draining", "server is draining", vec![]),
        ));
    }
    match inner.buckets.admit(&tenant, fuel, Instant::now()) {
        Admission::Admitted => {}
        Admission::Throttled(after) => {
            metrics::shed("quota");
            return Err(Resp::json(
                429,
                error_body(
                    0,
                    "quota",
                    &format!("tenant {tenant:?} is over its fuel quota"),
                    vec![("retry_after_ms", num(after.as_millis() as u64))],
                ),
            )
            .with_retry_after(after));
        }
    }
    let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
    let cell = JobCell::new();
    let trace = match req.header("x-rq-trace-id").and_then(span::parse_trace_id) {
        Some(tid) => TraceContext::with_id(tid),
        None => TraceContext::start(),
    };
    let trace_hex = trace.id_hex();
    let job = Job {
        id,
        text: text.to_string(),
        fuel,
        deadline: Instant::now() + timeout,
        cancel: Arc::new(AtomicBool::new(false)),
        cell: Arc::clone(&cell),
        sampled: explain || inner.recorder.sample(),
        explain,
        trace,
    };
    match inner.queue.push(job) {
        Ok(depth) => {
            metrics::queue_depth(depth);
            Ok((id, cell, trace_hex))
        }
        Err(PushError::Full { depth, .. }) => {
            metrics::shed("queue");
            // Retry-After derived from the backlog: the time this many
            // queued jobs need at worst-case service time per worker.
            let per_job = inner.cfg.request_timeout.as_secs_f64();
            let secs = (depth as f64 * per_job / inner.cfg.workers.max(1) as f64).clamp(1.0, 30.0);
            Err(Resp::json(
                429,
                error_body(
                    id,
                    "overload",
                    "submission queue is full",
                    vec![("queue_depth", num(depth as u64))],
                ),
            )
            .with_retry_after(Duration::from_secs_f64(secs)))
        }
        Err(PushError::Draining(_)) => {
            metrics::shed("draining");
            Err(Resp::json(
                503,
                error_body(id, "draining", "server is draining", vec![]),
            ))
        }
    }
}

fn query_sync(inner: &Arc<Inner>, req: &Request) -> Resp {
    let text = match req.body_utf8() {
        Ok(t) => t.to_string(),
        Err(e) => return Resp::json(400, error_body(0, "invalid", &e.to_string(), vec![])),
    };
    let (query, explain) = parse_query_body(&text);
    let (_, _, timeout) = request_knobs(inner, req);
    let (id, cell, trace_hex) = match admit(inner, req, &query, explain) {
        Ok(ok) => ok,
        Err(resp) => return resp,
    };
    // The worker enforces the deadline via its governor; the handler just
    // waits it out, plus a stuck-grace that only trips if a worker failed
    // to answer at all (which `catch_unwind` + the drain sweep prevent).
    let deadline = Instant::now() + timeout + STUCK_GRACE;
    let mut resp = match cell.wait_until(deadline) {
        Some((status, body)) => Resp::json(status, body),
        None => Resp::json(
            500,
            error_body(id, "internal", "worker never answered", vec![]),
        ),
    };
    resp.headers.push(("X-RQ-Trace-Id", trace_hex));
    resp
}

fn submit_async(inner: &Arc<Inner>, req: &Request) -> Resp {
    let text = match req.body_utf8() {
        Ok(t) => t.to_string(),
        Err(e) => return Resp::json(400, error_body(0, "invalid", &e.to_string(), vec![])),
    };
    {
        let jobs = inner.async_jobs.lock().unwrap_or_else(|e| e.into_inner());
        if jobs.len() >= MAX_ASYNC_JOBS {
            metrics::shed("queue");
            return Resp::json(
                429,
                error_body(0, "overload", "too many unpolled async jobs", vec![]),
            )
            .with_retry_after(Duration::from_secs(1));
        }
    }
    let (query, explain) = parse_query_body(&text);
    match admit(inner, req, &query, explain) {
        Ok((id, cell, _)) => {
            inner
                .async_jobs
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(id, cell);
            Resp::json(
                202,
                Json::Obj(vec![
                    ("id".to_string(), num(id)),
                    ("done".to_string(), Json::Bool(false)),
                ])
                .emit(),
            )
        }
        Err(resp) => resp,
    }
}

fn poll(inner: &Arc<Inner>, req: &Request) -> Resp {
    let id = match req.query_param("id").and_then(|v| v.parse::<u64>().ok()) {
        Some(id) => id,
        None => {
            return Resp::json(
                400,
                error_body(0, "invalid", "poll requires ?id=<job id>", vec![]),
            )
        }
    };
    let mut jobs = inner.async_jobs.lock().unwrap_or_else(|e| e.into_inner());
    match jobs.get(&id) {
        None => Resp::json(404, error_body(id, "invalid", "unknown job id", vec![])),
        Some(cell) => match cell.peek() {
            // Delivery is one-shot: the entry is dropped once the result
            // has been handed out, so the async table cannot leak.
            Some((status, body)) => {
                jobs.remove(&id);
                Resp::json(status, body)
            }
            None => Resp::json(
                202,
                Json::Obj(vec![
                    ("id".to_string(), num(id)),
                    ("done".to_string(), Json::Bool(false)),
                ])
                .emit(),
            ),
        },
    }
}

/// JSON-lines batch: one query per input line, one result object per
/// output line, each line going through full admission independently — so
/// a drain or shed mid-batch answers the remaining lines structurally
/// instead of dropping them.
fn stream(inner: &Arc<Inner>, req: &Request) -> Resp {
    let text = match req.body_utf8() {
        Ok(t) => t.to_string(),
        Err(e) => return Resp::json(400, error_body(0, "invalid", &e.to_string(), vec![])),
    };
    let (_, _, timeout) = request_knobs(inner, req);
    let mut lines = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let line_resp = match admit(inner, req, line, false) {
            Ok((id, cell, _)) => match cell.wait_until(Instant::now() + timeout + STUCK_GRACE) {
                Some((_, body)) => body,
                None => error_body(id, "internal", "worker never answered", vec![]),
            },
            Err(resp) => resp.body,
        };
        lines.push(line_resp);
    }
    lines.push(String::new()); // trailing newline
    Resp {
        status: 200,
        content_type: "application/jsonl",
        headers: Vec::new(),
        body: lines.join("\n"),
    }
}

fn lint(inner: &Arc<Inner>, req: &Request) -> Resp {
    let text = match req.body_utf8() {
        Ok(t) => t,
        Err(e) => return Resp::json(400, error_body(0, "invalid", &e.to_string(), vec![])),
    };
    let q = match inner.engine.parse(text) {
        Ok(q) => q,
        Err(e) => return Resp::json(400, error_body(0, "invalid", &e.to_string(), vec![])),
    };
    let alphabet = inner.engine.alphabet();
    let report = rq_analyze::lint_two_rpq_with_source(
        &q,
        Some(text),
        &alphabet,
        &inner.engine.config().cache.probe_limits,
    );
    Resp::json(200, report.to_json().emit())
}

/// `POST /ingest`: a batch of edge deltas in the text format of
/// [`Delta::parse_text`] (`add src label dst` / `remove src label dst`,
/// one per line). When the server runs over a store the batch is fsync'd
/// to the append log *before* it touches the live engine — the 200 is the
/// durability acknowledgment — and the log is compacted into a fresh
/// snapshot once it crosses the configured threshold. The engine applies
/// the deltas under its shared lock, bumps the graph epoch, and evicts
/// exactly the cache entries whose alphabet intersects the touched
/// labels.
fn ingest(inner: &Arc<Inner>, req: &Request) -> Resp {
    let mut root = span::start("serve.ingest");
    if inner.draining.load(Ordering::SeqCst) {
        metrics::shed("draining");
        return Resp::json(503, error_body(0, "draining", "server is draining", vec![]));
    }
    let text = match req.body_utf8() {
        Ok(t) => t,
        Err(e) => return Resp::json(400, error_body(0, "invalid", &e.to_string(), vec![])),
    };
    let deltas = match Delta::parse_text(text) {
        Ok(d) => d,
        Err((line, e)) => {
            return Resp::json(
                400,
                error_body(
                    0,
                    "invalid",
                    &format!("delta line {line}: {e}"),
                    vec![("line", num(line as u64))],
                ),
            )
        }
    };
    if deltas.is_empty() {
        return Resp::json(
            400,
            error_body(0, "invalid", "empty ingest body (no delta lines)", vec![]),
        );
    }
    root.record("deltas", deltas.len() as u64);
    // Durability first: once append returns, the batch is on disk and a
    // crash between here and apply_deltas is repaired by log replay on
    // the next open (apply is idempotent). The store lock is held across
    // append → apply → compact so a compaction can never truncate a
    // concurrent batch that is in the log but not yet in the engine.
    let mut store_guard = inner
        .store
        .as_ref()
        .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()));
    let mut persisted = false;
    if let Some(store) = store_guard.as_deref_mut() {
        if let Err(e) = store.append(&deltas) {
            return Resp::json(500, error_body(0, "storage", &e.to_string(), vec![]));
        }
        persisted = true;
    }
    let report = inner.engine.apply_deltas(&deltas);
    let mut compacted = false;
    if let Some(store) = store_guard.as_deref_mut() {
        if store.needs_compaction() {
            // The engine has applied the batch, so the snapshot written
            // here covers everything the truncated log held.
            match store.compact(&inner.engine.db()) {
                Ok(()) => compacted = true,
                Err(e) => {
                    // The data is safe in the log; a failed compaction is
                    // degraded (the log keeps growing), not lost writes.
                    root.record("compact_error", e.to_string());
                }
            }
        }
    }
    drop(store_guard);
    metrics::ingested(report.applied as u64, report.ignored as u64);
    root.record("applied", report.applied as u64);
    root.record("epoch", report.epoch);
    Resp::json(
        200,
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            ("applied".to_string(), num(report.applied as u64)),
            ("ignored".to_string(), num(report.ignored as u64)),
            ("epoch".to_string(), num(report.epoch)),
            ("evicted".to_string(), num(report.evicted)),
            ("added_nodes".to_string(), Json::Bool(report.added_nodes)),
            ("persisted".to_string(), Json::Bool(persisted)),
            ("compacted".to_string(), Json::Bool(compacted)),
        ])
        .emit(),
    )
}

/// `/tracez` (recent traces) and `/slowz` (slow/errored retention): a
/// JSON array of finished traces, newest first, straight out of the
/// bounded flight recorder.
fn tracez(inner: &Arc<Inner>, slow_only: bool) -> Resp {
    let traces = if slow_only {
        inner.recorder.slow()
    } else {
        inner.recorder.recent()
    };
    let items: Vec<String> = traces.iter().map(|t| t.to_json()).collect();
    Resp::json(
        200,
        format!(
            "{{\"count\":{},\"recorded_total\":{},\"retained_slow_total\":{},\"traces\":[{}]}}",
            items.len(),
            inner.recorder.recorded_total(),
            inner.recorder.retained_slow_total(),
            items.join(",")
        ),
    )
}

fn healthz(inner: &Arc<Inner>) -> Resp {
    let status = if inner.stopped.load(Ordering::SeqCst) {
        "stopped"
    } else if inner.draining.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    Resp::json(
        200,
        Json::Obj(vec![
            ("status".to_string(), Json::Str(status.to_string())),
            (
                "degraded".to_string(),
                Json::Bool(inner.engine.is_degraded()),
            ),
            ("queue_depth".to_string(), num(inner.queue.depth() as u64)),
            ("tenants".to_string(), num(inner.buckets.tenants() as u64)),
            (
                "retry_budget".to_string(),
                num(u64::from(inner.budget.remaining())),
            ),
            (
                "uptime_ms".to_string(),
                num(inner.started.elapsed().as_millis() as u64),
            ),
        ])
        .emit(),
    )
}

fn drainz(inner: &Arc<Inner>) -> Resp {
    let already = inner.draining.load(Ordering::SeqCst);
    if !already {
        let inner = Arc::clone(inner);
        let _ = std::thread::Builder::new()
            .name("rq-serve-drain".to_string())
            .spawn(move || {
                drain(&inner);
            });
    }
    Resp::json(
        202,
        Json::Obj(vec![
            ("draining".to_string(), Json::Bool(true)),
            ("already".to_string(), Json::Bool(already)),
        ])
        .emit(),
    )
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(inner: &Arc<Inner>) {
    while let Some(job) = inner.queue.pop() {
        metrics::queue_depth(inner.queue.depth());
        inner
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(job.id, Arc::clone(&job.cancel));
        metrics::inflight(1);
        // The trace context is installed for the whole execution (when
        // sampled), so every engine/core/frontier span lands in this
        // request's tree under one `serve.execute` root. A panic unwinds
        // the guard and the root span like any other drop.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _guard = job.sampled.then(|| span::install(&job.trace, 0));
            let mut root = span::start("serve.execute");
            let (status, body) = execute(inner, &job);
            root.record("status", status);
            (status, body)
        }));
        let (status, body) = outcome.unwrap_or_else(|_| {
            metrics::job_panic();
            (
                500,
                error_body(
                    job.id,
                    "internal",
                    "request evaluation panicked (contained; other requests unaffected)",
                    vec![],
                ),
            )
        });
        inner
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&job.id);
        metrics::inflight(-1);
        // Close out the trace (slow/errored tails survive in the
        // recorder regardless of sampling) and stamp the response body
        // with the trace id — plus the profile when `explain` asked.
        let finished = inner
            .recorder
            .record(job.trace.finish(outcome_name(status), &job.text));
        job.cell
            .fulfill(status, stamp_trace(body, &finished, job.explain));
    }
}

/// Trace-level outcome label for a response status.
fn outcome_name(status: u16) -> &'static str {
    match status {
        200 => "ok",
        400 => "error[invalid]",
        408 => "error[deadline]",
        422 => "error[exhausted]",
        500 => "error[internal]",
        503 => "error[draining]",
        _ => "error",
    }
}

/// Add the `trace_id` field (and, for `explain`, the span tree plus the
/// rendered profile) to a structured JSON response body. Non-object
/// bodies pass through untouched.
fn stamp_trace(body: String, trace: &FinishedTrace, explain: bool) -> String {
    let Ok(Json::Obj(mut fields)) = Json::parse(&body) else {
        return body;
    };
    fields.push((
        "trace_id".to_string(),
        Json::Str(span::format_trace_id(trace.trace_id)),
    ));
    if explain {
        if let Ok(spans) = Json::parse(&trace.to_json()) {
            fields.push(("trace".to_string(), spans));
        }
        fields.push(("profile".to_string(), Json::Str(trace.render())));
    }
    Json::Obj(fields).emit()
}

fn decide_fault(inner: &Inner, site: FaultSite) -> Option<Fault> {
    let fault = inner
        .cfg
        .faults
        .decide(site, inner.fault_seq.fetch_add(1, Ordering::Relaxed));
    if let Some(f) = fault {
        metrics::fault_injected(match f {
            Fault::Panic => "panic",
            Fault::Delay(_) => "delay",
            Fault::Starve => "starve",
        });
    }
    fault
}

/// Execute one admitted job: parse, then evaluate under the per-request
/// budget with idempotent retries of exhausted outcomes. Every exit path
/// returns a structured body; panics (real or injected) escape to the
/// worker's `catch_unwind`.
fn execute(inner: &Arc<Inner>, job: &Job) -> (u16, String) {
    let started = Instant::now();
    if job.cancel.load(Ordering::SeqCst) {
        return if inner.draining.load(Ordering::SeqCst) {
            (
                503,
                error_body(job.id, "draining", "cancelled before execution", vec![]),
            )
        } else {
            metrics::deadline_timeout();
            (
                408,
                error_body(job.id, "deadline", "cancelled before execution", vec![]),
            )
        };
    }
    if Instant::now() >= job.deadline {
        metrics::deadline_timeout();
        return (
            408,
            error_body(job.id, "deadline", "deadline expired in the queue", vec![]),
        );
    }
    let q = match inner.engine.parse(&job.text) {
        Ok(q) => q,
        Err(e) => return (400, error_body(job.id, "invalid", &e.to_string(), vec![])),
    };
    let mut rng = Rng::new(inner.cfg.faults.seed ^ job.id);
    let mut attempts = 0u32;
    let mut previous_delay = inner.cfg.retry.base;
    loop {
        attempts += 1;
        let mut fuel = job.fuel;
        // Injected faults, per attempt: the pool site may panic, stall, or
        // starve the whole attempt; the cache-probe site starves the fuel
        // budget so the exhaustion/retry machinery gets exercised.
        match decide_fault(inner, FaultSite::Pool) {
            Some(Fault::Panic) => panic!("injected fault: pool panic (job {})", job.id),
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::Starve) => fuel = 1,
            None => {}
        }
        if matches!(
            decide_fault(inner, FaultSite::CacheProbe),
            Some(Fault::Starve | Fault::Panic)
        ) {
            fuel = 1;
        }
        let now = Instant::now();
        if now >= job.deadline {
            metrics::deadline_timeout();
            return (
                408,
                error_body(
                    job.id,
                    "deadline",
                    "deadline expired between attempts",
                    vec![("attempts", num(u64::from(attempts)))],
                ),
            );
        }
        let limits = Limits::unlimited()
            .with_fuel(fuel)
            .with_deadline(job.deadline - now);
        match inner
            .engine
            .run_with(&q, &limits, Some(Arc::clone(&job.cancel)))
        {
            Ok(result) => {
                inner.budget.record_success();
                return (200, success_body(inner, job.id, &result, attempts, started));
            }
            Err(EngineError::InvalidInput { message }) => {
                return (400, error_body(job.id, "invalid", &message, vec![]))
            }
            Err(EngineError::Exhausted(e)) => match e.resource {
                Resource::Cancelled => {
                    // The flag is shared: a drain and a handler timeout
                    // both land here; report whichever caused it.
                    return if inner.draining.load(Ordering::SeqCst) {
                        (
                            503,
                            error_body_with_exhaustion(
                                job.id,
                                "draining",
                                "evaluation cancelled by drain",
                                &e,
                                attempts,
                            ),
                        )
                    } else {
                        metrics::deadline_timeout();
                        (
                            408,
                            error_body_with_exhaustion(
                                job.id,
                                "deadline",
                                "evaluation cancelled at the deadline",
                                &e,
                                attempts,
                            ),
                        )
                    };
                }
                Resource::Deadline => {
                    metrics::deadline_timeout();
                    return (
                        408,
                        error_body_with_exhaustion(
                            job.id,
                            "deadline",
                            "evaluation hit the request deadline",
                            &e,
                            attempts,
                        ),
                    );
                }
                // Fuel / states / tuples: idempotent and retryable while
                // the retry budget, attempt cap, and deadline all allow.
                _ => {
                    let can_retry = attempts <= inner.cfg.retry.max_retries
                        && Instant::now() < job.deadline
                        && !inner.draining.load(Ordering::SeqCst);
                    if can_retry {
                        if inner.budget.try_spend() {
                            metrics::retry();
                            previous_delay =
                                decorrelated_jitter(&inner.cfg.retry, &mut rng, previous_delay);
                            let remaining = job.deadline.saturating_duration_since(Instant::now());
                            std::thread::sleep(previous_delay.min(remaining));
                            continue;
                        }
                        metrics::retry_budget_exhausted();
                    }
                    metrics::exhausted();
                    // Partial result: the structured report of the budget
                    // that tripped on the *last* attempt.
                    return (
                        422,
                        error_body_with_exhaustion(
                            job.id,
                            "exhausted",
                            "evaluation budget exhausted",
                            &e,
                            attempts,
                        ),
                    );
                }
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Wire bodies
// ---------------------------------------------------------------------------

/// Cap on answer pairs inlined into a response body.
const MAX_INLINE_PAIRS: usize = 100;

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn success_body(
    inner: &Inner,
    id: u64,
    result: &rq_engine::QueryResult,
    attempts: u32,
    started: Instant,
) -> String {
    let pairs = result.answer.len();
    let sample: Vec<Json> = result
        .answer
        .iter()
        .take(MAX_INLINE_PAIRS)
        .map(|&(x, y)| Json::Arr(vec![num(x.index() as u64), num(y.index() as u64)]))
        .collect();
    Json::Obj(vec![
        ("id".to_string(), num(id)),
        ("ok".to_string(), Json::Bool(true)),
        (
            "disposition".to_string(),
            Json::Str(result.disposition.to_string()),
        ),
        ("pairs".to_string(), num(pairs as u64)),
        ("sample".to_string(), Json::Arr(sample)),
        (
            "truncated".to_string(),
            Json::Bool(pairs > MAX_INLINE_PAIRS),
        ),
        ("attempts".to_string(), num(u64::from(attempts))),
        (
            "degraded".to_string(),
            Json::Bool(inner.engine.is_degraded()),
        ),
        (
            "elapsed_us".to_string(),
            num(started.elapsed().as_micros() as u64),
        ),
    ])
    .emit()
}

fn error_body(id: u64, code: &str, message: &str, extra: Vec<(&str, Json)>) -> String {
    let mut fields = vec![
        ("id".to_string(), num(id)),
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(code.to_string())),
        (
            "message".to_string(),
            Json::Str(format!("error[{code}]: {message}")),
        ),
    ];
    fields.extend(extra.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(fields).emit()
}

/// The structured `ExhaustionReport` carried by partial-result responses.
fn exhaustion_json(e: &Exhaustion) -> Json {
    Json::Obj(vec![
        ("resource".to_string(), Json::Str(e.resource.to_string())),
        ("spent".to_string(), num(e.spent)),
        ("limit".to_string(), num(e.limit)),
        ("fuel_spent".to_string(), num(e.counters.fuel_spent)),
        (
            "states_constructed".to_string(),
            num(e.counters.states_constructed),
        ),
        ("tuples_derived".to_string(), num(e.counters.tuples_derived)),
        (
            "elapsed_ms".to_string(),
            num(e.counters.elapsed.as_millis() as u64),
        ),
    ])
}

fn error_body_with_exhaustion(
    id: u64,
    code: &str,
    message: &str,
    e: &Exhaustion,
    attempts: u32,
) -> String {
    error_body(
        id,
        code,
        message,
        vec![
            ("exhaustion", exhaustion_json(e)),
            ("attempts", num(u64::from(attempts))),
        ],
    )
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

mod metrics {
    use rq_metrics::{global, latency_buckets_us, Counter, Gauge, Histogram};
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::{Arc, OnceLock};
    use std::time::Duration;

    pub(super) fn request(endpoint: &str) {
        static CELLS: OnceLock<[Arc<Counter>; 12]> = OnceLock::new();
        const ENDPOINTS: [&str; 12] = [
            "query", "submit", "poll", "stream", "lint", "ingest", "metrics", "tracez", "slowz",
            "healthz", "drainz", "other",
        ];
        let cells = CELLS.get_or_init(|| {
            ENDPOINTS.map(|e| {
                global().counter_with(
                    "rq_serve_requests_total",
                    &[("endpoint", e)],
                    "HTTP requests received, by endpoint",
                )
            })
        });
        let i = ENDPOINTS.iter().position(|e| *e == endpoint).unwrap_or(11);
        cells[i].inc();
    }

    pub(super) fn ingested(applied: u64, ignored: u64) {
        static CELLS: OnceLock<[Arc<Counter>; 2]> = OnceLock::new();
        let cells = CELLS.get_or_init(|| {
            ["applied", "ignored"].map(|d| {
                global().counter_with(
                    "rq_serve_ingest_deltas_total",
                    &[("disposition", d)],
                    "Deltas received on /ingest, by disposition",
                )
            })
        });
        cells[0].add(applied);
        cells[1].add(ignored);
    }

    pub(super) fn shed(reason: &str) {
        static CELLS: OnceLock<[Arc<Counter>; 4]> = OnceLock::new();
        const REASONS: [&str; 4] = ["quota", "queue", "draining", "connections"];
        let cells = CELLS.get_or_init(|| {
            REASONS.map(|r| {
                global().counter_with(
                    "rq_serve_shed_total",
                    &[("reason", r)],
                    "Requests shed at admission, by reason",
                )
            })
        });
        let i = REASONS.iter().position(|r| *r == reason).unwrap_or(1);
        cells[i].inc();
    }

    pub(super) fn latency(elapsed: Duration) {
        static CELL: OnceLock<Arc<Histogram>> = OnceLock::new();
        CELL.get_or_init(|| {
            global().histogram(
                "rq_serve_request_latency_us",
                "End-to-end latency of one HTTP exchange, microseconds",
                &latency_buckets_us(),
            )
        })
        .observe(elapsed.as_micros() as u64);
    }

    pub(super) fn queue_depth(depth: usize) {
        static CELL: OnceLock<Arc<Gauge>> = OnceLock::new();
        CELL.get_or_init(|| {
            global().gauge(
                "rq_serve_queue_depth",
                "Jobs admitted but not yet picked up by a serve worker",
            )
        })
        .set(depth as u64);
    }

    pub(super) fn inflight(delta: i64) {
        static COUNT: AtomicI64 = AtomicI64::new(0);
        static CELL: OnceLock<Arc<Gauge>> = OnceLock::new();
        let now = COUNT.fetch_add(delta, Ordering::SeqCst) + delta;
        CELL.get_or_init(|| {
            global().gauge(
                "rq_serve_inflight_jobs",
                "Jobs currently executing on serve workers",
            )
        })
        .set(now.max(0) as u64);
    }

    pub(super) fn retry() {
        static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
        CELL.get_or_init(|| {
            global().counter(
                "rq_serve_retries_total",
                "Exhausted evaluations retried with backoff",
            )
        })
        .inc();
    }

    pub(super) fn retry_budget_exhausted() {
        static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
        CELL.get_or_init(|| {
            global().counter(
                "rq_serve_retry_budget_exhausted_total",
                "Retries denied because the global retry budget was spent",
            )
        })
        .inc();
    }

    pub(super) fn exhausted() {
        static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
        CELL.get_or_init(|| {
            global().counter(
                "rq_serve_exhausted_total",
                "Requests answered with a partial exhaustion report (422)",
            )
        })
        .inc();
    }

    pub(super) fn deadline_timeout() {
        static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
        CELL.get_or_init(|| {
            global().counter(
                "rq_serve_deadline_timeouts_total",
                "Requests that hit their deadline (queued or mid-evaluation)",
            )
        })
        .inc();
    }

    pub(super) fn job_panic() {
        static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
        CELL.get_or_init(|| {
            global().counter(
                "rq_serve_job_panics_total",
                "Request evaluations that panicked and were contained",
            )
        })
        .inc();
    }

    pub(super) fn fault_injected(kind: &str) {
        static CELLS: OnceLock<[Arc<Counter>; 3]> = OnceLock::new();
        const KINDS: [&str; 3] = ["panic", "delay", "starve"];
        let cells = CELLS.get_or_init(|| {
            KINDS.map(|k| {
                global().counter_with(
                    "rq_serve_faults_injected_total",
                    &[("kind", k)],
                    "Faults injected by the active FaultPlan, by kind",
                )
            })
        });
        let i = KINDS.iter().position(|k| *k == kind).unwrap_or(0);
        cells[i].inc();
    }

    pub(super) fn draining(on: bool) {
        static CELL: OnceLock<Arc<Gauge>> = OnceLock::new();
        CELL.get_or_init(|| {
            global().gauge("rq_serve_draining", "1 once a graceful drain has started")
        })
        .set(u64::from(on));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Client;
    use rq_engine::EngineConfig;
    use rq_graph::{generate, GraphDb};

    fn test_server(cfg: ServeConfig) -> Server {
        let db = generate::random_gnm(30, 90, &["a", "b"], 7);
        let engine = Engine::new(
            db,
            EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
        );
        Server::start(engine, cfg).unwrap()
    }

    fn client(server: &Server) -> Client {
        Client::connect(&server.addr().to_string(), Duration::from_secs(10)).unwrap()
    }

    fn temp_store_dir() -> std::path::PathBuf {
        use std::sync::atomic::AtomicU64;
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rq-serve-ingest-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn ingest_applies_deltas_and_evicts_only_touched_cache_entries() {
        let server = test_server(ServeConfig::default());
        let mut c = client(&server);
        // Warm the cache with one query per label.
        for q in [&b"a+"[..], &b"b+"[..]] {
            let r = c.request("POST", "/query", &[], q).unwrap();
            assert_eq!(r.status, 200, "{}", r.text());
        }
        // Ingest an `a`-labeled edge between two brand-new nodes.
        let r = c.request("POST", "/ingest", &[], b"add x a y\n").unwrap();
        assert_eq!(r.status, 200, "{}", r.text());
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(body.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(body.get("applied"), Some(&num(1)));
        assert_eq!(body.get("epoch"), Some(&num(1)));
        assert_eq!(body.get("added_nodes"), Some(&Json::Bool(true)));
        assert_eq!(body.get("persisted"), Some(&Json::Bool(false)));
        // `a+` was invalidated (and now sees the new edge); `b+` survived.
        let r = c.request("POST", "/query", &[], b"a+").unwrap();
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(body.get("disposition").and_then(Json::as_str), Some("miss"));
        let r = c.request("POST", "/query", &[], b"b+").unwrap();
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(
            body.get("disposition").and_then(Json::as_str),
            Some("exact")
        );
        // Malformed delta lines are a structured 400, not a panic.
        let r = c.request("POST", "/ingest", &[], b"frobnicate\n").unwrap();
        assert_eq!(r.status, 400);
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(body.get("error").and_then(Json::as_str), Some("invalid"));
        server.shutdown();
    }

    #[test]
    fn ingest_with_store_persists_across_reopen() {
        use rq_storage::{StorageConfig, StorageHandle};
        let dir = temp_store_dir();
        let mut db = GraphDb::new();
        let (u, v) = (db.node("u"), db.node("v"));
        let r = db.label("r");
        db.add_edge(u, r, v);
        StorageHandle::create(&dir, &db, StorageConfig::default()).unwrap();
        let (store, db, _) = StorageHandle::open(&dir, StorageConfig::default()).unwrap();

        let engine = Engine::new(db, rq_engine::EngineConfig::default());
        let server = Server::start_with_store(engine, ServeConfig::default(), Some(store)).unwrap();
        let mut c = client(&server);
        let r = c
            .request("POST", "/ingest", &[], b"add v r w\nremove u r v\n")
            .unwrap();
        assert_eq!(r.status, 200, "{}", r.text());
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(body.get("applied"), Some(&num(2)));
        assert_eq!(body.get("persisted"), Some(&Json::Bool(true)));
        // The live engine answers over the patched graph.
        let r = c.request("POST", "/query", &[], b"r").unwrap();
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(body.get("pairs"), Some(&num(1)));
        server.shutdown();

        // Reopen: the acknowledged batch was replayed from the log.
        let (_, db, report) = StorageHandle::open(&dir, StorageConfig::default()).unwrap();
        assert_eq!(report.replayed, 2);
        let (v, w) = (db.find_node("v").unwrap(), db.find_node("w").unwrap());
        let r = db.alphabet().get("r").unwrap();
        assert_eq!(db.out_edges(v), &[(r, w)]);
        assert!(db.out_edges(db.find_node("u").unwrap()).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_round_trip_and_cache_disposition() {
        let server = test_server(ServeConfig::default());
        let mut c = client(&server);
        let r = c.request("POST", "/query", &[], b"a+").unwrap();
        assert_eq!(r.status, 200, "{}", r.text());
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(body.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(body.get("disposition").and_then(Json::as_str), Some("miss"));
        // Same query again: served from the cache.
        let r = c.request("POST", "/query", &[], b"a+").unwrap();
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(
            body.get("disposition").and_then(Json::as_str),
            Some("exact")
        );
        server.shutdown();
    }

    #[test]
    fn every_query_response_carries_a_trace_id() {
        let server = test_server(ServeConfig::default());
        let mut c = client(&server);
        // Success, client-supplied id echo, and error bodies all carry it.
        let r = c.request("POST", "/query", &[], b"a+").unwrap();
        assert_eq!(r.status, 200);
        let body = Json::parse(&r.text()).unwrap();
        let tid = body.get("trace_id").and_then(Json::as_str).unwrap();
        assert!(span::parse_trace_id(tid).is_some(), "malformed id {tid:?}");
        assert_eq!(r.header("x-rq-trace-id"), Some(tid));

        let supplied = "00000000deadbeef";
        let r = c
            .request("POST", "/query", &[("X-RQ-Trace-Id", supplied)], b"b+")
            .unwrap();
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(
            body.get("trace_id").and_then(Json::as_str),
            Some(supplied),
            "well-formed client trace ids are adopted"
        );

        let r = c.request("POST", "/query", &[], b"((((").unwrap();
        assert_eq!(r.status, 400);
        let body = Json::parse(&r.text()).unwrap();
        assert!(
            body.get("trace_id").and_then(Json::as_str).is_some(),
            "error responses are traced too"
        );
        server.shutdown();
    }

    #[test]
    fn explain_inlines_the_span_profile() {
        let server = test_server(ServeConfig::default());
        let mut c = client(&server);
        let r = c
            .request(
                "POST",
                "/query",
                &[],
                br#"{"query": "a (a|b)*", "explain": true}"#,
            )
            .unwrap();
        assert_eq!(r.status, 200, "{}", r.text());
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(body.get("ok"), Some(&Json::Bool(true)));
        let profile = body.get("profile").and_then(Json::as_str).unwrap();
        for needle in [
            "serve.execute",
            "engine.run",
            "analyze.preflight",
            "fuel by stage:",
        ] {
            assert!(
                profile.contains(needle),
                "missing {needle:?} in:\n{profile}"
            );
        }
        let trace = body.get("trace").expect("span tree inlined");
        assert_eq!(
            trace.get("trace_id").and_then(Json::as_str),
            body.get("trace_id").and_then(Json::as_str)
        );
        // The JSON envelope without explain is still a plain response.
        let r = c
            .request("POST", "/query", &[], br#"{"query": "a+"}"#)
            .unwrap();
        assert_eq!(r.status, 200);
        let body = Json::parse(&r.text()).unwrap();
        assert!(body.get("profile").is_none());
        server.shutdown();
    }

    #[test]
    fn tracez_and_slowz_expose_the_flight_recorder() {
        let server = test_server(ServeConfig::default());
        let mut c = client(&server);
        let r = c.request("POST", "/query", &[], b"a+").unwrap();
        let tid = Json::parse(&r.text())
            .unwrap()
            .get("trace_id")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let r = c.request("GET", "/tracez", &[], b"").unwrap();
        assert_eq!(r.status, 200);
        let body = Json::parse(&r.text()).unwrap();
        assert!(body.get("count").and_then(Json::as_u64).unwrap() >= 1);
        let traces = body.get("traces").unwrap();
        let Json::Arr(traces) = traces else {
            panic!("traces is an array")
        };
        assert!(
            traces
                .iter()
                .any(|t| t.get("trace_id").and_then(Json::as_str) == Some(tid.as_str())),
            "the served request is in /tracez"
        );
        // A starved request (X-Fuel: 1 exhausts) lands in /slowz retention.
        let r = c
            .request("POST", "/query", &[("X-Fuel", "1")], b"(a|b)* a")
            .unwrap();
        assert_eq!(r.status, 422);
        let errored = Json::parse(&r.text())
            .unwrap()
            .get("trace_id")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let r = c.request("GET", "/slowz", &[], b"").unwrap();
        let body = Json::parse(&r.text()).unwrap();
        let Some(Json::Arr(traces)) = body.get("traces").cloned() else {
            panic!("traces is an array")
        };
        let kept = traces
            .iter()
            .find(|t| t.get("trace_id").and_then(Json::as_str) == Some(errored.as_str()))
            .expect("errored request retained in /slowz");
        assert_eq!(
            kept.get("outcome").and_then(Json::as_str),
            Some("error[exhausted]")
        );
        server.shutdown();
    }

    #[test]
    fn invalid_query_is_a_structured_400() {
        let server = test_server(ServeConfig::default());
        let mut c = client(&server);
        let r = c.request("POST", "/query", &[], b"((((").unwrap();
        assert_eq!(r.status, 400);
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(body.get("error").and_then(Json::as_str), Some("invalid"));
        server.shutdown();
    }

    #[test]
    fn quota_exhaustion_sheds_with_retry_after() {
        let server = test_server(ServeConfig {
            quota: crate::TenantQuota {
                fuel_per_sec: 1,
                burst_fuel: 200_000,
            },
            ..ServeConfig::default()
        });
        let mut c = client(&server);
        // First request drains the burst; the second is throttled.
        let r = c
            .request("POST", "/query", &[("X-Tenant", "greedy")], b"a+")
            .unwrap();
        assert_eq!(r.status, 200);
        let r = c
            .request("POST", "/query", &[("X-Tenant", "greedy")], b"b+")
            .unwrap();
        assert_eq!(r.status, 429);
        assert!(r.header("retry-after").is_some());
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(body.get("error").and_then(Json::as_str), Some("quota"));
        // Another tenant is unaffected.
        let r = c
            .request("POST", "/query", &[("X-Tenant", "patient")], b"b+")
            .unwrap();
        assert_eq!(r.status, 200);
        server.shutdown();
    }

    #[test]
    fn fuel_exhaustion_returns_the_report_after_retries() {
        let server = test_server(ServeConfig::default());
        let mut c = client(&server);
        // X-Fuel lowers the budget below anything useful, so every attempt
        // exhausts and the final answer carries the last report.
        let r = c
            .request("POST", "/query", &[("X-Fuel", "3")], b"(a|b)*")
            .unwrap();
        assert_eq!(r.status, 422, "{}", r.text());
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(body.get("error").and_then(Json::as_str), Some("exhausted"));
        let ex = body.get("exhaustion").expect("exhaustion report");
        assert_eq!(ex.get("resource").and_then(Json::as_str), Some("fuel"));
        assert_eq!(ex.get("limit").and_then(Json::as_u64), Some(3));
        let attempts = body.get("attempts").and_then(Json::as_u64).unwrap();
        assert!(attempts >= 1, "at least the initial attempt");
        server.shutdown();
    }

    #[test]
    fn submit_poll_round_trip() {
        let server = test_server(ServeConfig::default());
        let mut c = client(&server);
        let r = c.request("POST", "/submit", &[], b"a (a|b)*").unwrap();
        assert_eq!(r.status, 202);
        let id = Json::parse(&r.text())
            .unwrap()
            .get("id")
            .and_then(Json::as_u64)
            .unwrap();
        // Poll until done.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let r = c
                .request("GET", &format!("/poll?id={id}"), &[], b"")
                .unwrap();
            if r.status == 200 {
                let body = Json::parse(&r.text()).unwrap();
                assert_eq!(body.get("ok"), Some(&Json::Bool(true)));
                break;
            }
            assert_eq!(r.status, 202);
            assert!(Instant::now() < deadline, "job never completed");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Delivery is one-shot.
        let r = c
            .request("GET", &format!("/poll?id={id}"), &[], b"")
            .unwrap();
        assert_eq!(r.status, 404);
        server.shutdown();
    }

    #[test]
    fn stream_serves_one_result_line_per_query_line() {
        let server = test_server(ServeConfig::default());
        let mut c = client(&server);
        let r = c
            .request("POST", "/stream", &[], b"a+\n(a|b)+\nb+\n")
            .unwrap();
        assert_eq!(r.status, 200);
        let lines: Vec<Json> = r
            .text()
            .lines()
            .filter(|l| !l.is_empty())
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert_eq!(line.get("ok"), Some(&Json::Bool(true)));
        }
        server.shutdown();
    }

    #[test]
    fn metrics_lint_and_healthz_endpoints() {
        let server = test_server(ServeConfig::default());
        let mut c = client(&server);
        c.request("POST", "/query", &[], b"a+").unwrap();
        let r = c.request("GET", "/metrics", &[], b"").unwrap();
        assert_eq!(r.status, 200);
        assert!(r.text().contains("rq_serve_requests_total"), "{}", r.text());
        let r = c.request("POST", "/lint", &[], "a ∅ b".as_bytes()).unwrap();
        assert_eq!(r.status, 200);
        assert!(r.text().contains("\"diagnostics\""), "{}", r.text());
        let r = c.request("GET", "/healthz", &[], b"").unwrap();
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(body.get("degraded"), Some(&Json::Bool(false)));
        server.shutdown();
    }

    #[test]
    fn drain_answers_everything_and_stops_admitting() {
        let server = test_server(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let mut c = client(&server);
        let r = c.request("POST", "/query", &[], b"a+").unwrap();
        assert_eq!(r.status, 200);
        let report = server.drain();
        assert!(report.clean, "{report:?}");
        assert!(report.metrics.contains("rq_serve_draining 1"));
        // Post-drain admission sheds with a structured 503.
        let r = c.request("POST", "/query", &[], b"b+").unwrap();
        assert_eq!(r.status, 503);
        let body = Json::parse(&r.text()).unwrap();
        assert_eq!(body.get("error").and_then(Json::as_str), Some("draining"));
        server.shutdown();
    }

    #[test]
    fn overload_sheds_with_queue_derived_retry_after() {
        // One worker, a one-slot queue, and slow queries: concurrent
        // submissions must shed rather than buffer without bound.
        let server = test_server(ServeConfig {
            workers: 1,
            queue_capacity: 1,
            request_timeout: Duration::from_millis(300),
            ..ServeConfig::default()
        });
        let addr = server.addr().to_string();
        let mut sheds = 0;
        let mut handles = Vec::new();
        for _ in 0..8 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let mut c = Client::connect(&addr, Duration::from_secs(10)).unwrap();
                let r = c
                    .request("POST", "/query", &[], b"(a|b)* a (a|b)*")
                    .unwrap();
                (r.status, r.header("retry-after").map(|v| v.to_string()))
            }));
        }
        let mut answered = 0;
        for h in handles {
            let (status, retry_after) = h.join().unwrap();
            match status {
                200 | 408 | 422 => answered += 1,
                429 => {
                    sheds += 1;
                    assert!(retry_after.is_some(), "shed responses carry Retry-After");
                }
                other => panic!("unexpected status {other}"),
            }
        }
        assert!(answered >= 1, "someone must be served");
        assert!(sheds >= 1, "an 8-deep burst into a 1-slot queue must shed");
        server.shutdown();
    }
}
