//! Retry semantics: decorrelated-jitter backoff under a global retry
//! budget.
//!
//! Queries are idempotent (pure reads over an immutable graph), so an
//! `Unknown`/exhausted outcome may be retried safely — but retries are
//! *amplification* under overload, so they are only allowed while a
//! global budget is in credit. The budget earns a fraction of a token per
//! success and spends a whole token per retry (the classic ≤10%-of-
//! successes rule), so a healthy server retries freely and an overloaded
//! one degrades to single attempts instead of a retry storm.

use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;

/// Per-request retry knobs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum retry attempts after the initial try.
    pub max_retries: u32,
    /// Backoff floor.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(250),
        }
    }
}

/// Deterministic xorshift64* generator — seeded per request, so a chaos
/// run with a fixed [`crate::FaultPlan`] seed replays the same backoff
/// schedule.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded generator (`seed` must not matter beyond reproducibility;
    /// zero is mapped to a fixed odd constant).
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[lo, hi)` (`hi > lo`).
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

/// The decorrelated-jitter schedule: each delay is drawn uniformly from
/// `[base, 3 × previous]`, clamped to `[base, cap]`. Independent clients
/// spread out instead of synchronizing into retry waves.
pub fn decorrelated_jitter(policy: &RetryPolicy, rng: &mut Rng, previous: Duration) -> Duration {
    let base = policy.base.as_micros().max(1) as u64;
    let cap = policy.cap.as_micros().max(1) as u64;
    let prev = previous.as_micros().max(base as u128) as u64;
    let hi = prev.saturating_mul(3).clamp(base + 1, cap.max(base + 1));
    Duration::from_micros(rng.uniform(base, hi.max(base + 1)))
}

/// A global retry budget in tenths of a token: a success deposits 1
/// tenth (capped), a retry withdraws 10. Starts full so cold-start
/// exhaustion can still retry.
pub struct RetryBudget {
    tenths: AtomicI64,
    cap_tenths: i64,
}

impl RetryBudget {
    /// A budget allowing at most `cap` outstanding retries' worth of
    /// credit.
    pub fn new(cap: u32) -> RetryBudget {
        let cap_tenths = i64::from(cap) * 10;
        RetryBudget {
            tenths: AtomicI64::new(cap_tenths),
            cap_tenths,
        }
    }

    /// Record a successful request (earns 0.1 retry).
    pub fn record_success(&self) {
        let cap = self.cap_tenths;
        let _ = self
            .tenths
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some((v + 1).min(cap))
            });
    }

    /// Try to spend one retry; `false` means the budget is exhausted and
    /// the caller must surface the last outcome instead of retrying.
    pub fn try_spend(&self) -> bool {
        self.tenths
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                if v >= 10 {
                    Some(v - 10)
                } else {
                    None
                }
            })
            .is_ok()
    }

    /// Remaining whole retries.
    pub fn remaining(&self) -> u32 {
        (self.tenths.load(Ordering::Relaxed).max(0) / 10) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stays_within_bounds_and_varies() {
        let policy = RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
        };
        let mut rng = Rng::new(42);
        let mut prev = policy.base;
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let d = decorrelated_jitter(&policy, &mut rng, prev);
            assert!(d >= policy.base, "{d:?}");
            assert!(d <= policy.cap, "{d:?}");
            distinct.insert(d.as_micros());
            prev = d;
        }
        assert!(distinct.len() > 10, "jitter must actually jitter");
    }

    #[test]
    fn same_seed_same_schedule() {
        let policy = RetryPolicy::default();
        let run = |seed| {
            let mut rng = Rng::new(seed);
            let mut prev = policy.base;
            (0..10)
                .map(|_| {
                    prev = decorrelated_jitter(&policy, &mut rng, prev);
                    prev.as_micros()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "deterministic under a fixed seed");
        assert_ne!(run(7), run(8), "different seeds diverge");
    }

    #[test]
    fn budget_spends_and_earns() {
        let b = RetryBudget::new(2);
        assert_eq!(b.remaining(), 2);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend(), "budget exhausted");
        // Ten successes earn one retry back.
        for _ in 0..10 {
            b.record_success();
        }
        assert_eq!(b.remaining(), 1);
        assert!(b.try_spend());
        assert!(!b.try_spend());
        // Earnings cap at the configured ceiling.
        for _ in 0..1000 {
            b.record_success();
        }
        assert_eq!(b.remaining(), 2);
    }
}
