//! A bounded submission queue with explicit load-shedding.
//!
//! The queue is the server's *only* buffer between admission and
//! execution, and it is bounded by construction: when it is full the push
//! fails **immediately** with the depth observed (so the caller can shed
//! with a `Retry-After` derived from it) instead of growing a hidden
//! backlog. Draining stops admission while letting workers finish the
//! backlog; `take_all` empties whatever is left at the drain deadline so
//! every queued request is answered, never leaked.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    admitting: bool,
    closed: bool,
}

/// Why a push was refused. The rejected item is returned to the caller
/// so it can be answered (shed responses still carry the request id).
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; `depth` is the length observed.
    Full {
        /// Queue depth at rejection time.
        depth: usize,
        /// The rejected item, returned to the caller.
        item: T,
    },
    /// The server is draining; no new work is admitted.
    Draining(
        /// The rejected item, returned to the caller.
        T,
    ),
}

/// A mutex+condvar MPMC queue with a hard capacity.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    notify: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (≥ 1 enforced by
    /// [`crate::ServeConfig::validate`]).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                admitting: true,
                closed: false,
            }),
            notify: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue, or shed. On success returns the queue depth *after* the
    /// push (≥ 1), the caller's backpressure signal.
    pub fn push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.lock();
        if !inner.admitting || inner.closed {
            return Err(PushError::Draining(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full {
                depth: inner.items.len(),
                item,
            });
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.notify.notify_one();
        Ok(depth)
    }

    /// Block until an item is available or the queue is closed *and*
    /// empty (`None`: the worker should exit). Queued items are still
    /// handed out after close, so a close never abandons admitted work.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.notify.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stop admitting new items (pushes fail `Draining`); queued items
    /// keep flowing to workers.
    pub fn stop_admitting(&self) {
        self.lock().admitting = false;
        self.notify.notify_all();
    }

    /// Close the queue: workers exit once the backlog is empty.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.admitting = false;
        inner.closed = true;
        drop(inner);
        self.notify.notify_all();
    }

    /// Remove and return everything still queued (the drain-deadline
    /// path: the caller answers each with a structured cancellation).
    pub fn take_all(&self) -> Vec<T> {
        let mut inner = self.lock();
        inner.items.drain(..).collect()
    }

    /// Current backlog length.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether new items are currently admitted.
    pub fn is_admitting(&self) -> bool {
        let inner = self.lock();
        inner.admitting && !inner.closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_exactly_at_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1).unwrap(), 1);
        assert_eq!(q.push(2).unwrap(), 2);
        match q.push(3) {
            Err(PushError::Full { depth, item }) => {
                assert_eq!(depth, 2);
                assert_eq!(item, 3);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3).unwrap(), 2);
    }

    #[test]
    fn drain_stops_admission_but_serves_backlog() {
        let q = BoundedQueue::new(8);
        q.push("queued").unwrap();
        q.stop_admitting();
        assert!(matches!(q.push("late"), Err(PushError::Draining("late"))));
        assert!(!q.is_admitting());
        // Backlog still flows.
        assert_eq!(q.pop(), Some("queued"));
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn take_all_empties_the_backlog() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.stop_admitting();
        assert_eq!(q.take_all(), vec![0, 1, 2, 3, 4]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn workers_exit_on_close_after_backlog() {
        let q = Arc::new(BoundedQueue::new(64));
        for i in 0..32 {
            q.push(i).unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut seen = 0;
                while q.pop().is_some() {
                    seen += 1;
                }
                seen
            }));
        }
        q.close();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 32, "every queued item was handed to some worker");
    }
}
