//! A closed-loop bench driver for the front-end.
//!
//! `clients` threads each run an independent keep-alive connection in a
//! closed loop: send one `/query`, wait for the answer, immediately send
//! the next. Offered load therefore scales with the client count — the
//! standard way to push a server to `N×` its capacity without modelling
//! arrival processes. The driver records per-request latency *of admitted
//! requests* separately from sheds, because the whole point of admission
//! control is that the two populations behave differently: under overload
//! the shed rate climbs while admitted-request latency stays flat.

use crate::http::Client;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bench driver knobs.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Query texts cycled through by each client.
    pub queries: Vec<String>,
    /// Tenant names cycled through by the clients.
    pub tenants: Vec<String>,
    /// Whether shed clients honor the server's `Retry-After` header
    /// before retrying. This is the protocol working as intended —
    /// admission control only helps when sheds are *cheaper* than
    /// service, which a client that instantly re-sends defeats. Turn it
    /// off to model an abusive client that hammers the shed path.
    pub honor_retry_after: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            addr: "127.0.0.1:7878".to_string(),
            clients: 4,
            duration: Duration::from_secs(5),
            queries: vec!["a+".into(), "(a|b)+".into(), "a b- a".into(), "b+".into()],
            tenants: vec!["bench".into()],
            honor_retry_after: true,
        }
    }
}

/// Aggregated outcome of one bench run.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Requests answered `200`.
    pub ok: usize,
    /// Requests shed (`429`/`503`).
    pub shed: usize,
    /// Requests answered with an exhaustion report or deadline (`408`/`422`).
    pub exhausted: usize,
    /// Transport errors (dropped connections, timeouts at the client).
    pub errors: usize,
    /// Latencies of admitted (non-shed) answers, microseconds, sorted.
    pub latencies_us: Vec<u64>,
    /// Wall-clock time the run actually took.
    pub elapsed: Duration,
}

impl BenchReport {
    /// Total requests that got any HTTP answer.
    pub fn answered(&self) -> usize {
        self.ok + self.shed + self.exhausted
    }

    /// Admitted-request latency percentile (`p` in `0..=100`), in
    /// microseconds.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * (self.latencies_us.len() - 1) as f64).round() as usize;
        self.latencies_us[rank.min(self.latencies_us.len() - 1)]
    }

    /// Answered requests per second.
    pub fn throughput(&self) -> f64 {
        self.answered() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Shed fraction of all answered requests.
    pub fn shed_rate(&self) -> f64 {
        if self.answered() == 0 {
            0.0
        } else {
            self.shed as f64 / self.answered() as f64
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} answered in {:.2?} ({:.0} req/s): {} ok, {} shed ({:.1}%), {} exhausted, {} \
             transport errors; admitted p50={}us p95={}us p99={}us",
            self.answered(),
            self.elapsed,
            self.throughput(),
            self.ok,
            self.shed,
            self.shed_rate() * 100.0,
            self.exhausted,
            self.errors,
            self.percentile_us(50.0),
            self.percentile_us(95.0),
            self.percentile_us(99.0),
        )
    }
}

/// Run the closed loop against a live server and aggregate every client's
/// counts.
pub fn run(cfg: &BenchConfig) -> BenchReport {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let mut handles = Vec::new();
    // Spread starting offsets across the whole query stream: clients
    // launched one position apart would convoy on the same entries (the
    // trailer always hitting what the leader just cached), which makes
    // every cold query look warm.
    let stride = (cfg.queries.len() / cfg.clients.max(1)).max(1);
    for c in 0..cfg.clients.max(1) {
        let stop = Arc::clone(&stop);
        let addr = cfg.addr.clone();
        let queries = cfg.queries.clone();
        let tenants = cfg.tenants.clone();
        let honor_retry_after = cfg.honor_retry_after;
        handles.push(std::thread::spawn(move || {
            let mut report = BenchReport::default();
            let mut client = match Client::connect(&addr, Duration::from_secs(10)) {
                Ok(c) => c,
                Err(_) => {
                    report.errors += 1;
                    return report;
                }
            };
            let tenant = tenants[c % tenants.len()].clone();
            let mut i = c * stride;
            while !stop.load(Ordering::Relaxed) {
                let q = &queries[i % queries.len()];
                i += 1;
                let t0 = Instant::now();
                match client.request(
                    "POST",
                    "/query",
                    &[("X-Tenant", tenant.as_str())],
                    q.as_bytes(),
                ) {
                    Ok(resp) => match resp.status {
                        200 => {
                            report.ok += 1;
                            report.latencies_us.push(t0.elapsed().as_micros() as u64);
                        }
                        429 | 503 => {
                            report.shed += 1;
                            if honor_retry_after {
                                let secs = resp
                                    .header("Retry-After")
                                    .and_then(|v| v.parse::<u64>().ok())
                                    .unwrap_or(1);
                                // Sleep in slices so the run's stop flag
                                // still ends the client promptly.
                                let until = Instant::now() + Duration::from_secs(secs);
                                while Instant::now() < until && !stop.load(Ordering::Relaxed) {
                                    std::thread::sleep(Duration::from_millis(20));
                                }
                            }
                        }
                        408 | 422 => {
                            report.exhausted += 1;
                            report.latencies_us.push(t0.elapsed().as_micros() as u64);
                        }
                        _ => report.errors += 1,
                    },
                    Err(_) => {
                        report.errors += 1;
                        if client.reconnect().is_err() {
                            break;
                        }
                    }
                }
            }
            report
        }));
    }
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let mut total = BenchReport::default();
    for h in handles {
        if let Ok(part) = h.join() {
            total.ok += part.ok;
            total.shed += part.shed;
            total.exhausted += part.exhausted;
            total.errors += part.errors;
            total.latencies_us.extend(part.latencies_us);
        }
    }
    total.latencies_us.sort_unstable();
    total.elapsed = started.elapsed();
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_a_known_distribution() {
        let report = BenchReport {
            ok: 100,
            latencies_us: (1..=100).collect(),
            elapsed: Duration::from_secs(1),
            ..BenchReport::default()
        };
        assert_eq!(report.percentile_us(0.0), 1);
        assert_eq!(report.percentile_us(50.0), 51);
        assert_eq!(report.percentile_us(100.0), 100);
        assert_eq!(report.answered(), 100);
        assert!((report.throughput() - 100.0).abs() < 1.0);
        assert!(report.summary().contains("100 ok"));
    }

    #[test]
    fn empty_report_is_well_behaved() {
        let report = BenchReport::default();
        assert_eq!(report.percentile_us(99.0), 0);
        assert_eq!(report.shed_rate(), 0.0);
    }
}
