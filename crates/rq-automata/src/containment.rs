//! Exact regular-language containment.
//!
//! Implements the paper's §3.2 recipe for `L(A1) ⊆ L(A2)`:
//!
//! 1. (done by the caller) convert regexes to NFAs;
//! 2. complement `A2` via the subset construction;
//! 3. take the product with `A1`;
//! 4. search for a path from a start state to a final state.
//!
//! "A naive application of steps (3–4) would require exponential space.
//! Instead, we construct A on the fly, constructing states only as we search
//! for a path" — [`check_on_the_fly`] does exactly that (and BFS yields a
//! *shortest* counterexample word). [`check_explicit`] is the naive eager
//! variant, kept so experiment E1 can measure the gap.

use crate::alphabet::Letter;
use crate::dfa::{Dfa, LazyDeterminizer, DEAD};
use crate::governor::{expect_unlimited, Exhaustion, Governor};
use crate::nfa::Nfa;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Outcome of a containment check, with search statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainmentRun {
    /// Whether `L(A1) ⊆ L(A2)`.
    pub contained: bool,
    /// A shortest word in `L(A1) − L(A2)` when not contained.
    pub counterexample: Option<Vec<Letter>>,
    /// Number of product states materialized by the search.
    pub states_explored: usize,
}

impl ContainmentRun {
    fn contained_run(states: usize) -> Self {
        ContainmentRun {
            contained: true,
            counterexample: None,
            states_explored: states,
        }
    }
}

/// Decide `L(a1) ⊆ L(a2)` on the fly (lazy complement-product emptiness).
///
/// Returns a shortest counterexample word when containment fails.
pub fn check_on_the_fly(a1: &Nfa, a2: &Nfa) -> ContainmentRun {
    expect_unlimited(check_on_the_fly_governed(a1, a2, &Governor::unlimited()))
}

/// [`check_on_the_fly`] under a resource [`Governor`]: each product-state
/// expansion spends one fuel, every product state and lazy subset state is
/// charged as a constructed state, and the deadline/cancellation flag is
/// polled periodically. Exhaustion reports the budget that ran out plus a
/// full counter snapshot.
pub fn check_on_the_fly_governed(
    a1: &Nfa,
    a2: &Nfa,
    gov: &Governor,
) -> Result<ContainmentRun, Exhaustion> {
    let a1 = a1.eliminate_epsilon();
    let a2 = a2.eliminate_epsilon();
    let mut det = LazyDeterminizer::new_governed(&a2, gov)?;

    // Product state: (NFA state of a1, Option<lazy DFA state of a2>).
    // `None` is the dead state of the determinized a2 — i.e., a2 rejects.
    type Prod = (usize, Option<usize>);
    let mut pred: HashMap<Prod, (Prod, Letter)> = HashMap::new();
    let mut queue: VecDeque<Prod> = VecDeque::new();
    let mut seen: BTreeSet<Prod> = BTreeSet::new();
    let d0 = det.initial();
    for s in a1.initial_states() {
        let p = (s, Some(d0));
        if seen.insert(p) {
            gov.construct_state()?;
            queue.push_back(p);
        }
    }
    while let Some(p @ (s, d)) = queue.pop_front() {
        gov.tick()?;
        let a2_accepts = d.map(|d| det.is_final(d)).unwrap_or(false);
        if a1.is_final(s) && !a2_accepts {
            // Reconstruct the counterexample word.
            let mut word = Vec::new();
            let mut cur = p;
            while let Some(&(prev, l)) = pred.get(&cur) {
                word.push(l);
                cur = prev;
            }
            word.reverse();
            return Ok(ContainmentRun {
                contained: false,
                counterexample: Some(word),
                states_explored: seen.len(),
            });
        }
        for &(l, t) in a1.transitions_from(s) {
            gov.tick()?;
            let nd = match d {
                Some(d) => det.try_next(d, l)?,
                None => None,
            };
            let np = (t, nd);
            if seen.insert(np) {
                gov.construct_state()?;
                pred.insert(np, (p, l));
                queue.push_back(np);
            }
        }
    }
    Ok(ContainmentRun::contained_run(seen.len()))
}

/// Decide `L(a1) ⊆ L(a2)` by eager construction: determinize `a2` over
/// `letters`, complement it, product with `a1`, emptiness. Same answer as
/// [`check_on_the_fly`]; exponentially more states on adversarial inputs.
pub fn check_explicit(a1: &Nfa, a2: &Nfa, letters: &[Letter]) -> ContainmentRun {
    expect_unlimited(check_explicit_governed(
        a1,
        a2,
        letters,
        &Governor::unlimited(),
    ))
}

/// [`check_explicit`] under a resource [`Governor`]. The eager subset
/// construction is metered by [`Dfa::determinize_governed`], so the
/// exponential complementation step exhausts gracefully instead of
/// allocating without bound.
pub fn check_explicit_governed(
    a1: &Nfa,
    a2: &Nfa,
    letters: &[Letter],
    gov: &Governor,
) -> Result<ContainmentRun, Exhaustion> {
    let comp = Dfa::determinize_governed(a2, letters, gov)?.complement();
    let a1 = a1.eliminate_epsilon();
    // Product of NFA a1 with DFA comp; BFS for (final, final).
    type Prod = (usize, usize);
    let mut pred: HashMap<Prod, (Prod, Letter)> = HashMap::new();
    let mut seen: BTreeSet<Prod> = BTreeSet::new();
    let mut queue: VecDeque<Prod> = VecDeque::new();
    for s in a1.initial_states() {
        let p = (s, comp.initial());
        if seen.insert(p) {
            gov.construct_state()?;
            queue.push_back(p);
        }
    }
    let total_states = |seen: &BTreeSet<Prod>| seen.len() + comp.num_states();
    while let Some(p @ (s, d)) = queue.pop_front() {
        gov.tick()?;
        if a1.is_final(s) && comp.is_final(d) {
            let mut word = Vec::new();
            let mut cur = p;
            while let Some(&(prev, l)) = pred.get(&cur) {
                word.push(l);
                cur = prev;
            }
            word.reverse();
            return Ok(ContainmentRun {
                contained: false,
                counterexample: Some(word),
                states_explored: total_states(&seen),
            });
        }
        for &(l, t) in a1.transitions_from(s) {
            gov.tick()?;
            let nd = comp.next(d, l);
            if nd == DEAD {
                continue;
            }
            let np = (t, nd);
            if seen.insert(np) {
                gov.construct_state()?;
                pred.insert(np, (p, l));
                queue.push_back(np);
            }
        }
    }
    Ok(ContainmentRun::contained_run(total_states(&seen)))
}

/// Whether `L(a1) = L(a2)`.
pub fn equivalent(a1: &Nfa, a2: &Nfa) -> bool {
    check_on_the_fly(a1, a2).contained && check_on_the_fly(a2, a1).contained
}

/// [`equivalent`] under a resource [`Governor`] (shared across both
/// directions of the check).
pub fn equivalent_governed(a1: &Nfa, a2: &Nfa, gov: &Governor) -> Result<bool, Exhaustion> {
    Ok(check_on_the_fly_governed(a1, a2, gov)?.contained
        && check_on_the_fly_governed(a2, a1, gov)?.contained)
}

/// Whether `L(a) = letters*` (universality over the given alphabet).
pub fn universal(a: &Nfa, letters: &[Letter]) -> ContainmentRun {
    expect_unlimited(universal_governed(a, letters, &Governor::unlimited()))
}

/// [`universal`] under a resource [`Governor`]. Universality is the
/// PSPACE-hard face of containment (the right-hand side is complemented in
/// full), so adversarial inputs need the budget.
pub fn universal_governed(
    a: &Nfa,
    letters: &[Letter],
    gov: &Governor,
) -> Result<ContainmentRun, Exhaustion> {
    let mut all = Nfa::with_states(1);
    all.set_initial(0);
    all.set_final(0);
    for &l in letters {
        all.add_transition(0, l, 0);
    }
    check_on_the_fly_governed(&all, a, gov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::regex::parse;

    fn pair(s1: &str, s2: &str) -> (Nfa, Nfa, Alphabet) {
        let mut a = Alphabet::new();
        let e1 = parse(s1, &mut a).unwrap();
        let e2 = parse(s2, &mut a).unwrap();
        (Nfa::from_regex(&e1), Nfa::from_regex(&e2), a)
    }

    #[test]
    fn contained_cases() {
        for (s1, s2) in [
            ("a", "a|b"),
            ("a b", "a(b|c)"),
            ("(a b)*", "(a|b)*"),
            ("a a|b b", "(a|b)(a|b)"),
            ("a+", "a*"),
            ("∅", "a"),
            ("ε", "a*"),
        ] {
            let (n1, n2, _) = pair(s1, s2);
            let run = check_on_the_fly(&n1, &n2);
            assert!(run.contained, "{s1} ⊆ {s2} should hold");
            assert!(run.counterexample.is_none());
        }
    }

    #[test]
    fn non_contained_cases_with_shortest_witness() {
        let (n1, n2, _) = pair("a*", "a");
        let run = check_on_the_fly(&n1, &n2);
        assert!(!run.contained);
        // Shortest counterexample is ε (a* accepts ε, a does not).
        assert_eq!(run.counterexample.unwrap(), vec![]);

        let (n1, n2, a) = pair("a b|b a", "a b");
        let run = check_on_the_fly(&n1, &n2);
        let ce = run.counterexample.unwrap();
        assert_eq!(ce.len(), 2);
        assert!(n1.accepts(&ce) && !n2.accepts(&ce));
        let _ = a;
    }

    #[test]
    fn explicit_agrees_with_on_the_fly() {
        let cases = [
            ("a(b|c)*", "(a|b|c)*"),
            ("(a|b)*a b b", "(a|b)*b b"),
            ("(a b)*", "(a b)*a b|ε"),
            ("a*b", "a*"),
            ("p p- p", "p (p- p)*"),
        ];
        for (s1, s2) in cases {
            let (n1, n2, al) = pair(s1, s2);
            let letters: Vec<_> = al.sigma_pm().collect();
            let fly = check_on_the_fly(&n1, &n2);
            let exp = check_explicit(&n1, &n2, &letters);
            assert_eq!(fly.contained, exp.contained, "{s1} vs {s2}");
            if let Some(ce) = &fly.counterexample {
                assert!(n1.accepts(ce) && !n2.accepts(ce));
            }
            if let Some(ce) = &exp.counterexample {
                assert!(n1.accepts(ce) && !n2.accepts(ce));
            }
        }
    }

    #[test]
    fn equivalence() {
        let (n1, n2, _) = pair("(a|b)*", "(a*b*)*");
        assert!(equivalent(&n1, &n2));
        let (n1, n2, _) = pair("(a|b)*", "(ab)*");
        assert!(!equivalent(&n1, &n2));
    }

    #[test]
    fn universality() {
        let (n, _, al) = pair("(a|b)*", "a");
        let sigma: Vec<_> = al.sigma().collect();
        assert!(universal(&n, &sigma).contained);
        let (n, _, al) = pair("(a|b)*a", "a");
        let sigma: Vec<_> = al.sigma().collect();
        let run = universal(&n, &sigma);
        assert!(!run.contained);
        assert_eq!(run.counterexample.unwrap(), vec![]);
    }

    #[test]
    fn governed_check_exhausts_with_structured_report() {
        use crate::governor::{Limits, Resource};
        let (n1, n2, _) = pair("(a|b)*", "(a*b*)*");
        let gov = Limits::unlimited().with_fuel(3).governor();
        let e = check_on_the_fly_governed(&n1, &n2, &gov).unwrap_err();
        assert_eq!(e.resource, Resource::Fuel);
        assert!(e.counters.fuel_spent > 3);
        let gov = Limits::unlimited().with_states(1).governor();
        let e = check_on_the_fly_governed(&n1, &n2, &gov).unwrap_err();
        assert_eq!(e.resource, Resource::States);
    }

    #[test]
    fn governed_check_with_headroom_matches_ungoverned() {
        use crate::governor::Limits;
        for (s1, s2) in [("a", "a|b"), ("a*", "a"), ("(a|b)*", "(a*b*)*")] {
            let (n1, n2, al) = pair(s1, s2);
            let letters: Vec<_> = al.sigma_pm().collect();
            let gov = Limits::unlimited().with_fuel(1_000_000).governor();
            let governed = check_on_the_fly_governed(&n1, &n2, &gov).unwrap();
            assert_eq!(governed, check_on_the_fly(&n1, &n2), "{s1} vs {s2}");
            let gov = Limits::unlimited().with_fuel(1_000_000).governor();
            let governed = check_explicit_governed(&n1, &n2, &letters, &gov).unwrap();
            assert_eq!(governed, check_explicit(&n1, &n2, &letters), "{s1} vs {s2}");
        }
    }

    #[test]
    fn on_the_fly_explores_fewer_states_on_easy_refutations() {
        // A large union on the right, but the counterexample is found at
        // depth 1; the lazy search must not pay for the full complement.
        let mut al = Alphabet::new();
        let e1 = parse("z", &mut al).unwrap();
        let e2 = parse("(a|b|c|d|e|f|g|h)(a|b|c|d|e|f|g|h)*", &mut al).unwrap();
        let n1 = Nfa::from_regex(&e1);
        let n2 = Nfa::from_regex(&e2);
        let letters: Vec<_> = al.sigma().collect();
        let fly = check_on_the_fly(&n1, &n2);
        let exp = check_explicit(&n1, &n2, &letters);
        assert!(!fly.contained && !exp.contained);
        assert!(fly.states_explored <= exp.states_explored);
    }
}
