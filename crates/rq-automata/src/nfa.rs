//! Nondeterministic finite automata over Σ±.
//!
//! The paper's containment algorithms (§3.2) start by converting regular
//! expressions to NFAs ("this step involves a linear blow-up"); this module
//! provides that Thompson construction plus the standard toolbox:
//! ε-elimination, trimming, reversal, boolean combinators, membership,
//! emptiness with witness, and shortlex language enumeration (used by the
//! expansion-search refutation engine in `rq-core`).

use crate::alphabet::Letter;
use crate::regex::Regex;
use std::collections::{BTreeSet, HashSet, VecDeque};

/// State index within an [`Nfa`].
pub type State = usize;

/// A nondeterministic finite automaton with optional ε-transitions.
///
/// States are dense indices `0..num_states()`. Multiple initial states are
/// allowed (convenient for unions and subset products).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Nfa {
    transitions: Vec<Vec<(Letter, State)>>,
    epsilon: Vec<Vec<State>>,
    initial: BTreeSet<State>,
    finals: BTreeSet<State>,
}

impl Nfa {
    /// An automaton with `n` states and no transitions.
    pub fn with_states(n: usize) -> Self {
        Nfa {
            transitions: vec![Vec::new(); n],
            epsilon: vec![Vec::new(); n],
            initial: BTreeSet::new(),
            finals: BTreeSet::new(),
        }
    }

    /// Add a fresh state, returning its index.
    pub fn add_state(&mut self) -> State {
        self.transitions.push(Vec::new());
        self.epsilon.push(Vec::new());
        self.transitions.len() - 1
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Number of letter transitions (excludes ε).
    pub fn num_transitions(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// Add a transition `from --letter--> to`.
    pub fn add_transition(&mut self, from: State, letter: Letter, to: State) {
        if !self.transitions[from].contains(&(letter, to)) {
            self.transitions[from].push((letter, to));
        }
    }

    /// Add an ε-transition `from --ε--> to`.
    pub fn add_epsilon(&mut self, from: State, to: State) {
        if from != to && !self.epsilon[from].contains(&to) {
            self.epsilon[from].push(to);
        }
    }

    /// Mark `s` initial.
    pub fn set_initial(&mut self, s: State) {
        self.initial.insert(s);
    }

    /// Mark `s` final.
    pub fn set_final(&mut self, s: State) {
        self.finals.insert(s);
    }

    /// The initial states.
    pub fn initial_states(&self) -> impl Iterator<Item = State> + '_ {
        self.initial.iter().copied()
    }

    /// The final states.
    pub fn final_states(&self) -> impl Iterator<Item = State> + '_ {
        self.finals.iter().copied()
    }

    /// Whether `s` is final.
    pub fn is_final(&self, s: State) -> bool {
        self.finals.contains(&s)
    }

    /// Letter transitions out of `s`.
    pub fn transitions_from(&self, s: State) -> &[(Letter, State)] {
        &self.transitions[s]
    }

    /// ε-transitions out of `s`.
    pub fn epsilon_from(&self, s: State) -> &[State] {
        &self.epsilon[s]
    }

    /// Whether the automaton has any ε-transitions.
    pub fn has_epsilon(&self) -> bool {
        self.epsilon.iter().any(|v| !v.is_empty())
    }

    /// The set of letters occurring on transitions (the effective alphabet).
    pub fn letters(&self) -> BTreeSet<Letter> {
        self.transitions
            .iter()
            .flat_map(|v| v.iter().map(|&(l, _)| l))
            .collect()
    }

    /// ε-closure of a set of states.
    pub fn epsilon_closure(&self, states: impl IntoIterator<Item = State>) -> BTreeSet<State> {
        let mut out: BTreeSet<State> = states.into_iter().collect();
        let mut stack: Vec<State> = out.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for &t in &self.epsilon[s] {
                if out.insert(t) {
                    stack.push(t);
                }
            }
        }
        out
    }

    /// Successors of a state set on `letter` (without closing under ε).
    fn step(&self, states: &BTreeSet<State>, letter: Letter) -> BTreeSet<State> {
        let mut out = BTreeSet::new();
        for &s in states {
            for &(l, t) in &self.transitions[s] {
                if l == letter {
                    out.insert(t);
                }
            }
        }
        out
    }

    /// Whether `word ∈ L(self)` (subset simulation; handles ε).
    pub fn accepts(&self, word: &[Letter]) -> bool {
        let mut current = self.epsilon_closure(self.initial.iter().copied());
        for &l in word {
            if current.is_empty() {
                return false;
            }
            current = self.epsilon_closure(self.step(&current, l));
        }
        current.iter().any(|s| self.finals.contains(s))
    }

    /// [`Nfa::accepts`] under a resource [`Governor`]: each simulation step
    /// spends one fuel unit per active state, so adversarially long words
    /// (or wide subset frontiers) respect fuel/deadline budgets. Used by
    /// the serving engine's cache-filtering membership re-checks.
    pub fn accepts_governed(
        &self,
        word: &[Letter],
        gov: &crate::governor::Governor,
    ) -> Result<bool, crate::governor::Exhaustion> {
        let mut current = self.epsilon_closure(self.initial.iter().copied());
        for &l in word {
            if current.is_empty() {
                return Ok(false);
            }
            gov.spend(current.len() as u64)?;
            current = self.epsilon_closure(self.step(&current, l));
        }
        Ok(current.iter().any(|s| self.finals.contains(s)))
    }

    // ------------------------------------------------------------------
    // Thompson construction
    // ------------------------------------------------------------------

    /// Build an NFA for `regex` by the Thompson construction (linear size).
    pub fn from_regex(regex: &Regex) -> Nfa {
        let mut nfa = Nfa::with_states(0);
        let (start, end) = nfa.thompson(regex);
        nfa.set_initial(start);
        nfa.set_final(end);
        nfa
    }

    /// Recursively build the fragment for `e`; returns (entry, exit).
    fn thompson(&mut self, e: &Regex) -> (State, State) {
        match e {
            Regex::Empty => {
                let s = self.add_state();
                let t = self.add_state();
                (s, t)
            }
            Regex::Epsilon => {
                let s = self.add_state();
                let t = self.add_state();
                self.add_epsilon(s, t);
                (s, t)
            }
            Regex::Letter(l) => {
                let s = self.add_state();
                let t = self.add_state();
                self.add_transition(s, *l, t);
                (s, t)
            }
            Regex::Concat(parts) => {
                let mut entry = None;
                let mut prev_exit: Option<State> = None;
                for p in parts {
                    let (s, t) = self.thompson(p);
                    if let Some(pe) = prev_exit {
                        self.add_epsilon(pe, s);
                    } else {
                        entry = Some(s);
                    }
                    prev_exit = Some(t);
                }
                (
                    entry.expect("concat invariant: >=2 parts"),
                    prev_exit.expect("nonempty"),
                )
            }
            Regex::Union(parts) => {
                let s = self.add_state();
                let t = self.add_state();
                for p in parts {
                    let (ps, pt) = self.thompson(p);
                    self.add_epsilon(s, ps);
                    self.add_epsilon(pt, t);
                }
                (s, t)
            }
            Regex::Star(inner) => {
                let s = self.add_state();
                let t = self.add_state();
                let (is, it) = self.thompson(inner);
                self.add_epsilon(s, is);
                self.add_epsilon(it, t);
                self.add_epsilon(s, t);
                self.add_epsilon(it, is);
                (s, t)
            }
            Regex::Plus(inner) => {
                let s = self.add_state();
                let t = self.add_state();
                let (is, it) = self.thompson(inner);
                self.add_epsilon(s, is);
                self.add_epsilon(it, t);
                self.add_epsilon(it, is);
                (s, t)
            }
            Regex::Optional(inner) => {
                let s = self.add_state();
                let t = self.add_state();
                let (is, it) = self.thompson(inner);
                self.add_epsilon(s, is);
                self.add_epsilon(it, t);
                self.add_epsilon(s, t);
                (s, t)
            }
        }
    }

    // ------------------------------------------------------------------
    // Transformations
    // ------------------------------------------------------------------

    /// An equivalent automaton without ε-transitions.
    pub fn eliminate_epsilon(&self) -> Nfa {
        if !self.has_epsilon() {
            return self.clone();
        }
        let n = self.num_states();
        let mut out = Nfa::with_states(n);
        for s in 0..n {
            let closure = self.epsilon_closure([s]);
            for &u in &closure {
                for &(l, t) in &self.transitions[u] {
                    out.add_transition(s, l, t);
                }
                if self.finals.contains(&u) {
                    out.set_final(s);
                }
            }
        }
        for &s in &self.initial {
            out.set_initial(s);
        }
        out
    }

    /// Restrict to states that are both reachable from an initial state and
    /// co-reachable to a final state; renumbers states densely.
    pub fn trim(&self) -> Nfa {
        let n = self.num_states();
        // Forward reachability (following ε too).
        let mut fwd = vec![false; n];
        let mut queue: VecDeque<State> = self.initial.iter().copied().collect();
        for &s in &self.initial {
            fwd[s] = true;
        }
        while let Some(s) = queue.pop_front() {
            for &(_, t) in &self.transitions[s] {
                if !fwd[t] {
                    fwd[t] = true;
                    queue.push_back(t);
                }
            }
            for &t in &self.epsilon[s] {
                if !fwd[t] {
                    fwd[t] = true;
                    queue.push_back(t);
                }
            }
        }
        // Backward reachability from finals.
        let mut rev_edges: Vec<Vec<State>> = vec![Vec::new(); n];
        for s in 0..n {
            for &(_, t) in &self.transitions[s] {
                rev_edges[t].push(s);
            }
            for &t in &self.epsilon[s] {
                rev_edges[t].push(s);
            }
        }
        let mut bwd = vec![false; n];
        let mut queue: VecDeque<State> = self.finals.iter().copied().collect();
        for &s in &self.finals {
            bwd[s] = true;
        }
        while let Some(s) = queue.pop_front() {
            for &t in &rev_edges[s] {
                if !bwd[t] {
                    bwd[t] = true;
                    queue.push_back(t);
                }
            }
        }
        // Renumber.
        let mut map = vec![usize::MAX; n];
        let mut count = 0;
        for s in 0..n {
            if fwd[s] && bwd[s] {
                map[s] = count;
                count += 1;
            }
        }
        let mut out = Nfa::with_states(count);
        for s in 0..n {
            if map[s] == usize::MAX {
                continue;
            }
            for &(l, t) in &self.transitions[s] {
                if map[t] != usize::MAX {
                    out.add_transition(map[s], l, map[t]);
                }
            }
            for &t in &self.epsilon[s] {
                if map[t] != usize::MAX {
                    out.add_epsilon(map[s], map[t]);
                }
            }
            if self.initial.contains(&s) {
                out.set_initial(map[s]);
            }
            if self.finals.contains(&s) {
                out.set_final(map[s]);
            }
        }
        out
    }

    /// The reversal automaton: `L(rev) = {reverse(w) : w ∈ L}`.
    ///
    /// Note this reverses *words*; it does not invert letters. For the
    /// semantic inverse of a 2RPQ use [`Regex::inverse`].
    pub fn reverse(&self) -> Nfa {
        let n = self.num_states();
        let mut out = Nfa::with_states(n);
        for s in 0..n {
            for &(l, t) in &self.transitions[s] {
                out.add_transition(t, l, s);
            }
            for &t in &self.epsilon[s] {
                out.add_epsilon(t, s);
            }
        }
        for &s in &self.initial {
            out.set_final(s);
        }
        for &s in &self.finals {
            out.set_initial(s);
        }
        out
    }

    /// Union automaton (disjoint sum): `L = L(self) ∪ L(other)`.
    pub fn union(&self, other: &Nfa) -> Nfa {
        let mut out = self.clone();
        let offset = out.num_states();
        for _ in 0..other.num_states() {
            out.add_state();
        }
        for s in 0..other.num_states() {
            for &(l, t) in &other.transitions[s] {
                out.add_transition(s + offset, l, t + offset);
            }
            for &t in &other.epsilon[s] {
                out.add_epsilon(s + offset, t + offset);
            }
        }
        for &s in &other.initial {
            out.set_initial(s + offset);
        }
        for &s in &other.finals {
            out.set_final(s + offset);
        }
        out
    }

    /// The product automaton accepting `L(self) ∩ L(other)`.
    ///
    /// Over *words*, conjunction coincides with intersection and regular
    /// languages are closed under it (§3.3) — this is that closure,
    /// constructed directly on NFA pairs (no determinization), visiting
    /// only reachable pairs.
    pub fn intersect(&self, other: &Nfa) -> Nfa {
        let a = self.eliminate_epsilon();
        let b = other.eliminate_epsilon();
        let mut out = Nfa::with_states(0);
        let mut index: std::collections::HashMap<(State, State), State> =
            std::collections::HashMap::new();
        let mut queue: VecDeque<(State, State)> = VecDeque::new();
        for sa in a.initial_states() {
            for sb in b.initial_states() {
                let id = *index.entry((sa, sb)).or_insert_with(|| {
                    queue.push_back((sa, sb));
                    out.add_state()
                });
                out.set_initial(id);
            }
        }
        while let Some((sa, sb)) = queue.pop_front() {
            let id = index[&(sa, sb)];
            if a.is_final(sa) && b.is_final(sb) {
                out.set_final(id);
            }
            for &(la, ta) in a.transitions_from(sa) {
                for &(lb, tb) in b.transitions_from(sb) {
                    if la != lb {
                        continue;
                    }
                    let tid = *index.entry((ta, tb)).or_insert_with(|| {
                        queue.push_back((ta, tb));
                        out.add_state()
                    });
                    out.add_transition(id, la, tid);
                }
            }
        }
        out
    }

    /// An automaton for `L(self) − L(other)`, over the letter universe
    /// `letters` (needed to complement `other`).
    pub fn difference(&self, other: &Nfa, letters: &[Letter]) -> Nfa {
        let comp = crate::dfa::Dfa::determinize(other, letters)
            .complement()
            .to_nfa();
        self.intersect(&comp)
    }

    /// Map every letter through `f` (e.g., to invert polarities).
    pub fn map_letters(&self, mut f: impl FnMut(Letter) -> Letter) -> Nfa {
        let mut out = self.clone();
        for v in &mut out.transitions {
            for (l, _) in v.iter_mut() {
                *l = f(*l);
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Decision procedures
    // ------------------------------------------------------------------

    /// Whether `L(self) = ∅`.
    pub fn is_empty(&self) -> bool {
        self.shortest_word().is_none()
    }

    /// A shortest accepted word, if any (BFS over states).
    pub fn shortest_word(&self) -> Option<Vec<Letter>> {
        // BFS over single states suffices: a word is accepted iff some path
        // from an initial to a final state spells it.
        let n = self.num_states();
        let mut pred: Vec<Option<(State, Option<Letter>)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        for &s in &self.initial {
            if !seen[s] {
                seen[s] = true;
                queue.push_back(s);
            }
        }
        let mut hit = None;
        'bfs: while let Some(s) = queue.pop_front() {
            if self.finals.contains(&s) {
                hit = Some(s);
                break 'bfs;
            }
            for &t in &self.epsilon[s] {
                if !seen[t] {
                    seen[t] = true;
                    pred[t] = Some((s, None));
                    queue.push_back(t);
                }
            }
            for &(l, t) in &self.transitions[s] {
                if !seen[t] {
                    seen[t] = true;
                    pred[t] = Some((s, Some(l)));
                    queue.push_back(t);
                }
            }
        }
        let mut s = hit?;
        let mut word = Vec::new();
        while let Some((p, l)) = pred[s] {
            if let Some(l) = l {
                word.push(l);
            }
            s = p;
        }
        word.reverse();
        Some(word)
    }

    /// Enumerate accepted words in shortlex order (shorter first; within a
    /// length, by `Letter` order), up to `max_len`, yielding at most `limit`
    /// words. Exact and duplicate-free.
    pub fn enumerate_words(&self, max_len: usize, limit: usize) -> Vec<Vec<Letter>> {
        let clean = if self.has_epsilon() {
            self.eliminate_epsilon()
        } else {
            self.clone()
        };
        let letters: Vec<Letter> = clean.letters().into_iter().collect();
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        // BFS over (state-set, word); state sets deduplicate words because
        // the subset construction is deterministic.
        let start: BTreeSet<State> = clean.epsilon_closure(clean.initial.iter().copied());
        let mut queue: VecDeque<(BTreeSet<State>, Vec<Letter>)> = VecDeque::new();
        queue.push_back((start, Vec::new()));
        while let Some((states, word)) = queue.pop_front() {
            if states.iter().any(|s| clean.finals.contains(s)) {
                out.push(word.clone());
                if out.len() >= limit {
                    return out;
                }
            }
            if word.len() >= max_len {
                continue;
            }
            for &l in &letters {
                let next = clean.step(&states, l);
                if next.is_empty() {
                    continue;
                }
                let mut w = word.clone();
                w.push(l);
                queue.push_back((next, w));
            }
        }
        out
    }

    /// Count distinct accepted words of each length `0..=max_len`.
    ///
    /// Used by tests as a language fingerprint: two automata with equal
    /// counts and equal membership on enumerated words up to `max_len` agree
    /// on all words up to that length.
    pub fn count_words_per_length(&self, max_len: usize) -> Vec<usize> {
        // Determinize lazily and do DP over DFA states per length.
        let clean = if self.has_epsilon() {
            self.eliminate_epsilon()
        } else {
            self.clone()
        };
        let letters: Vec<Letter> = clean.letters().into_iter().collect();
        let start: BTreeSet<State> = clean.epsilon_closure(clean.initial.iter().copied());
        let mut states: Vec<BTreeSet<State>> = vec![start.clone()];
        let mut index: std::collections::HashMap<BTreeSet<State>, usize> =
            std::collections::HashMap::new();
        index.insert(start, 0);
        let mut trans: Vec<Vec<usize>> = Vec::new();
        let mut i = 0;
        while i < states.len() {
            let mut row = Vec::with_capacity(letters.len());
            for &l in &letters {
                let next = clean.step(&states[i], l);
                let id = if next.is_empty() {
                    usize::MAX
                } else {
                    *index.entry(next.clone()).or_insert_with(|| {
                        states.push(next.clone());
                        states.len() - 1
                    })
                };
                row.push(id);
            }
            trans.push(row);
            i += 1;
        }
        let is_final: Vec<bool> = states
            .iter()
            .map(|set| set.iter().any(|s| clean.finals.contains(s)))
            .collect();
        let mut counts = Vec::with_capacity(max_len + 1);
        // dist[q] = number of words of current length leading to q.
        let mut dist = vec![0usize; states.len()];
        dist[0] = 1;
        counts.push(if is_final[0] { 1 } else { 0 });
        for _ in 1..=max_len {
            let mut next = vec![0usize; states.len()];
            for (q, &c) in dist.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                for &t in &trans[q] {
                    if t != usize::MAX {
                        next[t] = next[t].saturating_add(c);
                    }
                }
            }
            dist = next;
            counts.push(
                dist.iter()
                    .zip(&is_final)
                    .filter(|(_, &f)| f)
                    .map(|(&c, _)| c)
                    .sum(),
            );
        }
        counts
    }

    /// All states reachable from the initial set (following ε).
    pub fn reachable_states(&self) -> HashSet<State> {
        let mut seen: HashSet<State> = self.initial.iter().copied().collect();
        let mut stack: Vec<State> = self.initial.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for &(_, t) in &self.transitions[s] {
                if seen.insert(t) {
                    stack.push(t);
                }
            }
            for &t in &self.epsilon[s] {
                if seen.insert(t) {
                    stack.push(t);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::regex::parse;

    fn nfa_of(s: &str) -> (Nfa, Alphabet) {
        let mut a = Alphabet::new();
        let e = parse(s, &mut a).unwrap();
        (Nfa::from_regex(&e), a)
    }

    fn w(a: &Alphabet, s: &str) -> Vec<Letter> {
        // Parse a word: identifiers with optional '-' suffix, dot/space separated.
        let mut out = Vec::new();
        let mut cur = String::new();
        let mut chars = s.chars().peekable();
        while let Some(c) = chars.next() {
            if c.is_ascii_alphanumeric() || c == '_' {
                cur.push(c);
                let inverse = chars.peek() == Some(&'-');
                let end_of_ident =
                    !matches!(chars.peek(), Some(c) if c.is_ascii_alphanumeric() || *c == '_');
                if end_of_ident && !cur.is_empty() {
                    if inverse {
                        chars.next();
                    }
                    let id = a.get(&cur).expect("label must exist");
                    out.push(if inverse {
                        Letter::backward(id)
                    } else {
                        Letter::forward(id)
                    });
                    cur.clear();
                }
            }
        }
        out
    }

    #[test]
    fn thompson_accepts_expected_words() {
        let (n, a) = nfa_of("a(b|c)*");
        assert!(n.accepts(&w(&a, "a")));
        assert!(n.accepts(&w(&a, "a.b")));
        assert!(n.accepts(&w(&a, "a.c.b.b")));
        assert!(!n.accepts(&w(&a, "b")));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn epsilon_language() {
        let (n, _) = nfa_of("ε");
        assert!(n.accepts(&[]));
        let (n, _) = nfa_of("∅");
        assert!(!n.accepts(&[]));
        assert!(n.is_empty());
    }

    #[test]
    fn inverse_letters_are_distinct() {
        let (n, a) = nfa_of("p p- p");
        assert!(n.accepts(&w(&a, "p p- p")));
        assert!(!n.accepts(&w(&a, "p p p")));
        assert!(!n.accepts(&w(&a, "p")));
    }

    #[test]
    fn eliminate_epsilon_preserves_language() {
        for s in ["a(b|c)*", "(a|b)+c?", "a*b*", "ε", "(a b)*(b a)*"] {
            let (n, _) = nfa_of(s);
            let ne = n.eliminate_epsilon();
            assert!(!ne.has_epsilon());
            for word in n.enumerate_words(5, 200) {
                assert!(ne.accepts(&word), "{s}: ε-free must accept enumerated word");
            }
            assert_eq!(
                n.count_words_per_length(5),
                ne.count_words_per_length(5),
                "{s}: counts differ"
            );
        }
    }

    #[test]
    fn trim_preserves_language_and_shrinks() {
        let (n, _) = nfa_of("a(b|c)*");
        let t = n.trim();
        assert!(t.num_states() <= n.num_states());
        assert_eq!(n.count_words_per_length(4), t.count_words_per_length(4));
    }

    #[test]
    fn shortest_word_is_shortest() {
        let (n, a) = nfa_of("a a a|a b");
        let sw = n.shortest_word().unwrap();
        assert_eq!(sw, w(&a, "a.b"));
        let (n, _) = nfa_of("a*");
        assert_eq!(n.shortest_word().unwrap(), Vec::<Letter>::new());
    }

    #[test]
    fn enumerate_words_is_shortlex_and_exact() {
        let (n, a) = nfa_of("a|a b|b");
        let words = n.enumerate_words(3, 100);
        assert_eq!(words, vec![w(&a, "a"), w(&a, "b"), w(&a, "a.b")],);
    }

    #[test]
    fn enumerate_respects_limit() {
        let (n, _) = nfa_of("a*");
        assert_eq!(n.enumerate_words(100, 5).len(), 5);
    }

    #[test]
    fn count_words_per_length_star() {
        let (n, _) = nfa_of("(a|b)*");
        assert_eq!(n.count_words_per_length(4), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn reverse_reverses() {
        let (n, a) = nfa_of("a b* c");
        let r = n.reverse();
        assert!(r.accepts(&w(&a, "c.b.a")));
        assert!(r.accepts(&w(&a, "c.a")));
        assert!(!r.accepts(&w(&a, "a.c")));
    }

    #[test]
    fn union_of_automata() {
        let (n1, a) = nfa_of("a a");
        let mut a2 = a.clone();
        let e2 = parse("b b", &mut a2).unwrap();
        let n2 = Nfa::from_regex(&e2);
        let u = n1.union(&n2);
        assert!(u.accepts(&w(&a2, "a.a")));
        assert!(u.accepts(&w(&a2, "b.b")));
        assert!(!u.accepts(&w(&a2, "a.b")));
    }

    #[test]
    fn intersection_is_language_intersection() {
        let (n1, a) = nfa_of("(a|b)*a");
        let mut a2 = a.clone();
        let e2 = parse("a(a|b)*", &mut a2).unwrap();
        let n2 = Nfa::from_regex(&e2);
        let i = n1.intersect(&n2);
        for word in i.enumerate_words(4, 200) {
            assert!(n1.accepts(&word) && n2.accepts(&word));
        }
        for word in n1.enumerate_words(4, 200) {
            assert_eq!(i.accepts(&word), n2.accepts(&word));
        }
        // Disjoint languages intersect to ∅.
        let (x, ax) = nfa_of("a a");
        let mut ax2 = ax.clone();
        let y = Nfa::from_regex(&parse("b b", &mut ax2).unwrap());
        assert!(x.intersect(&y).is_empty());
    }

    #[test]
    fn difference_removes_the_other_language() {
        let (n1, al) = nfa_of("(a|b)*");
        let mut al2 = al.clone();
        let n2 = Nfa::from_regex(&parse("(a|b)*a", &mut al2).unwrap());
        let letters: Vec<Letter> = al2.sigma().collect();
        let d = n1.difference(&n2, &letters);
        // Words not ending in a: ε, b, ab, bb, …
        assert!(d.accepts(&[]));
        for w in d.enumerate_words(4, 100) {
            assert!(n1.accepts(&w) && !n2.accepts(&w));
        }
        for w in n2.enumerate_words(4, 100) {
            assert!(!d.accepts(&w));
        }
    }

    #[test]
    fn map_letters_inverts() {
        let (n, a) = nfa_of("p");
        let inv = n.map_letters(Letter::inv);
        assert!(inv.accepts(&w(&a, "p-")));
        assert!(!inv.accepts(&w(&a, "p")));
    }

    #[test]
    fn accepts_governed_matches_and_exhausts() {
        use crate::governor::{Governor, Limits, Resource};
        let (n, a) = nfa_of("(a|b)*a b b");
        for word in ["a b b", "a b", "b a b b", ""] {
            let word = w(&a, word);
            assert_eq!(
                n.accepts_governed(&word, &Governor::unlimited()).unwrap(),
                n.accepts(&word)
            );
        }
        let long = w(&a, &"a ".repeat(600));
        let gov = Limits::unlimited().with_fuel(10).governor();
        let e = n.accepts_governed(&long, &gov).unwrap_err();
        assert_eq!(e.resource, Resource::Fuel);
    }
}
