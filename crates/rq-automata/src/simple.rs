//! The simple-RPQ (SCRPQ) fragment classifier.
//!
//! A *simple regular expression* (Figueira, Godbole, Krishna, Martens,
//! Niewerth, Trautner, *Containment of Simple Conjunctive Regular Path
//! Queries*, 2020) is a concatenation of atoms of two shapes over a
//! letter set `S ⊆ Σ`:
//!
//! * `D(S)` — a letter disjunction `(a₁ + … + aₖ)`: exactly one letter
//!   drawn from `S`;
//! * `St(S)` — a starred disjunction `(a₁ + … + aₖ)*`: any word over `S`,
//!   including ε.
//!
//! A single letter `a` is the singleton disjunction `D({a})`, `A⁺`
//! normalizes to `D(A)·St(A)`, and ε is the empty concatenation. For
//! queries in this fragment, containment drops from the general
//! EXPSPACE bound to tractable complexity — `rq-core`'s
//! `containment::simple` exploits exactly this, and the `check_quick`
//! ladder gates that fast path on [`classify`] succeeding for both
//! sides.
//!
//! **The fragment is forward-only by design.** For forward RPQs,
//! query containment coincides with word-language containment (the
//! Lemma 1 reduction), so a word-level decision procedure returns
//! *exact* verdicts in both directions. With inverse letters that
//! equivalence breaks — `p ⊑ p p⁻ p` holds as 2RPQs even though
//! `L(p) ⊄ L(p p⁻ p)` (fold containment, Lemma 2) — so the classifier
//! rejects every inverse letter rather than let the word-level checker
//! return an unsound `NotContained`.
//!
//! [`classify`] either produces the normalized atom sequence
//! ([`SimpleRe`]) or a structured [`SimpleViolation`] naming the first
//! offending subterm and why it breaks the fragment — the witness the
//! `RQA007` lint surfaces, with a source span when the original query
//! text is available (see [`crate::regex::parser::parse_with_spans`]).

use crate::alphabet::{Alphabet, LabelId};
use crate::regex::Regex;
use std::collections::BTreeSet;
use std::fmt;

/// One atom of a simple regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimpleAtom {
    /// `D(S)`: exactly one letter from `S`.
    Disj(BTreeSet<LabelId>),
    /// `St(S)`: any word over `S` (including ε).
    Star(BTreeSet<LabelId>),
}

impl SimpleAtom {
    /// The letter set the atom draws from.
    pub fn labels(&self) -> &BTreeSet<LabelId> {
        match self {
            SimpleAtom::Disj(s) | SimpleAtom::Star(s) => s,
        }
    }

    /// Whether the atom accepts ε (only `St` does).
    pub fn nullable(&self) -> bool {
        matches!(self, SimpleAtom::Star(_))
    }
}

/// A classified simple regular expression: a concatenation of atoms.
/// The empty sequence is ε.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimpleRe {
    pub atoms: Vec<SimpleAtom>,
}

impl SimpleRe {
    /// Every label mentioned by any atom.
    pub fn labels(&self) -> BTreeSet<LabelId> {
        self.atoms
            .iter()
            .flat_map(|a| a.labels().iter().copied())
            .collect()
    }

    /// Whether the whole expression accepts ε.
    pub fn nullable(&self) -> bool {
        self.atoms.iter().all(SimpleAtom::nullable)
    }

    /// Render in the paper's `D{…}·St{…}` notation (for diagnostics).
    pub fn display(&self, alphabet: &Alphabet) -> String {
        if self.atoms.is_empty() {
            return "ε".to_owned();
        }
        self.atoms
            .iter()
            .map(|a| {
                let names: Vec<&str> = a.labels().iter().map(|&l| alphabet.name(l)).collect();
                match a {
                    SimpleAtom::Disj(_) => format!("D({})", names.join("+")),
                    SimpleAtom::Star(_) => format!("St({})", names.join("+")),
                }
            })
            .collect::<Vec<_>>()
            .join("·")
    }
}

/// Why a subterm breaks the simple fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimpleReason {
    /// An inverse letter: the fragment is forward-only because the word
    /// containment = query containment equivalence (Lemma 1) fails for
    /// 2RPQs (fold containment, Lemma 2).
    InverseLetter,
    /// The ∅ subexpression: the empty language is not a concatenation of
    /// `D`/`St` atoms (and is short-circuited earlier anyway).
    EmptyLanguage,
    /// An `r?` subterm: optionality is not expressible as `D`/`St`.
    Optional,
    /// A union branch that is not a single forward letter — unions are
    /// simple only as letter disjunctions.
    NonLetterDisjunct,
    /// A `*`/`+` applied to something other than a letter or letter
    /// disjunction.
    NonDisjunctionRepeat,
}

impl SimpleReason {
    /// Short human phrase used in diagnostics.
    pub fn phrase(self) -> &'static str {
        match self {
            SimpleReason::InverseLetter => {
                "an inverse letter (the fragment is forward-only: word-level reasoning is \
                 exact only without Lemma 2 fold effects)"
            }
            SimpleReason::EmptyLanguage => "the empty-language expression ∅",
            SimpleReason::Optional => "an optional subterm (`?` is not a D/St atom)",
            SimpleReason::NonLetterDisjunct => {
                "a union branch that is not a single letter (unions are simple only as \
                 letter disjunctions)"
            }
            SimpleReason::NonDisjunctionRepeat => {
                "a repetition over something other than a letter disjunction"
            }
        }
    }
}

/// The structured witness for a failed classification: the first
/// offending subterm (in pre-order) and the reason it is outside the
/// fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleViolation {
    pub subterm: Regex,
    pub reason: SimpleReason,
}

impl SimpleViolation {
    fn new(subterm: &Regex, reason: SimpleReason) -> SimpleViolation {
        SimpleViolation {
            subterm: subterm.clone(),
            reason,
        }
    }

    /// Render the violation for a diagnostic message.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        format!(
            "subterm `{}` is {}",
            self.subterm.display(alphabet),
            self.reason.phrase()
        )
    }
}

impl fmt::Display for SimpleReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.phrase())
    }
}

/// Decide membership of `e` in the simple fragment, normalizing into the
/// atom sequence on success (`a⁺` becomes `D(A)·St(A)`; ε contributes no
/// atom). On failure, returns the first offending subterm with a reason.
pub fn classify(e: &Regex) -> Result<SimpleRe, SimpleViolation> {
    let mut atoms = Vec::new();
    classify_into(e, &mut atoms)?;
    Ok(SimpleRe { atoms })
}

fn classify_into(e: &Regex, out: &mut Vec<SimpleAtom>) -> Result<(), SimpleViolation> {
    match e {
        Regex::Empty => Err(SimpleViolation::new(e, SimpleReason::EmptyLanguage)),
        Regex::Epsilon => Ok(()),
        Regex::Letter(l) => {
            if l.inverse {
                return Err(SimpleViolation::new(e, SimpleReason::InverseLetter));
            }
            out.push(SimpleAtom::Disj(BTreeSet::from([l.label])));
            Ok(())
        }
        Regex::Concat(parts) => {
            for p in parts {
                classify_into(p, out)?;
            }
            Ok(())
        }
        Regex::Union(_) => {
            out.push(SimpleAtom::Disj(letter_set(e)?));
            Ok(())
        }
        Regex::Star(inner) => {
            out.push(SimpleAtom::Star(repeat_set(inner)?));
            Ok(())
        }
        Regex::Plus(inner) => {
            let s = repeat_set(inner)?;
            out.push(SimpleAtom::Disj(s.clone()));
            out.push(SimpleAtom::Star(s));
            Ok(())
        }
        Regex::Optional(_) => Err(SimpleViolation::new(e, SimpleReason::Optional)),
    }
}

/// The letter set of a `*`/`+` body: a single forward letter or a letter
/// disjunction.
fn repeat_set(inner: &Regex) -> Result<BTreeSet<LabelId>, SimpleViolation> {
    match inner {
        Regex::Letter(l) if !l.inverse => Ok(BTreeSet::from([l.label])),
        Regex::Letter(_) => Err(SimpleViolation::new(inner, SimpleReason::InverseLetter)),
        Regex::Union(_) => letter_set(inner),
        _ => Err(SimpleViolation::new(
            inner,
            SimpleReason::NonDisjunctionRepeat,
        )),
    }
}

/// The letter set of a union whose branches must all be forward letters.
fn letter_set(e: &Regex) -> Result<BTreeSet<LabelId>, SimpleViolation> {
    let Regex::Union(parts) = e else {
        unreachable!("letter_set is only called on unions");
    };
    let mut set = BTreeSet::new();
    for p in parts {
        match p {
            Regex::Letter(l) if !l.inverse => {
                set.insert(l.label);
            }
            Regex::Letter(_) => {
                return Err(SimpleViolation::new(p, SimpleReason::InverseLetter));
            }
            other => {
                return Err(SimpleViolation::new(other, SimpleReason::NonLetterDisjunct));
            }
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse;

    fn cl(text: &str) -> Result<SimpleRe, SimpleViolation> {
        let mut al = Alphabet::from_names(["a", "b", "c"]);
        classify(&parse(text, &mut al).unwrap())
    }

    #[test]
    fn letters_disjunctions_and_stars_classify() {
        let s = cl("a (a|b) (a|b)* c*").unwrap();
        assert_eq!(s.atoms.len(), 4);
        assert!(matches!(&s.atoms[0], SimpleAtom::Disj(x) if x.len() == 1));
        assert!(matches!(&s.atoms[1], SimpleAtom::Disj(x) if x.len() == 2));
        assert!(matches!(&s.atoms[2], SimpleAtom::Star(x) if x.len() == 2));
        assert!(matches!(&s.atoms[3], SimpleAtom::Star(x) if x.len() == 1));
        assert!(!s.nullable());
    }

    #[test]
    fn plus_normalizes_to_disj_then_star() {
        let s = cl("(a|b)+").unwrap();
        assert_eq!(
            s.atoms,
            vec![
                SimpleAtom::Disj(BTreeSet::from([LabelId(0), LabelId(1)])),
                SimpleAtom::Star(BTreeSet::from([LabelId(0), LabelId(1)])),
            ]
        );
    }

    #[test]
    fn epsilon_is_the_empty_concatenation() {
        let s = cl("ε").unwrap();
        assert!(s.atoms.is_empty());
        assert!(s.nullable());
    }

    #[test]
    fn inverse_letters_are_rejected_with_the_letter_as_witness() {
        let v = cl("a b- a").unwrap_err();
        assert_eq!(v.reason, SimpleReason::InverseLetter);
        let mut al = Alphabet::from_names(["a", "b"]);
        assert_eq!(
            v.subterm,
            parse("b-", &mut al).unwrap(),
            "the witness is the inverse letter itself"
        );
        // …also inside unions and repeats.
        assert_eq!(
            cl("(a|b-)").unwrap_err().reason,
            SimpleReason::InverseLetter
        );
        assert_eq!(
            cl("(a|b-)*").unwrap_err().reason,
            SimpleReason::InverseLetter
        );
    }

    #[test]
    fn non_fragment_shapes_are_rejected() {
        assert_eq!(cl("a?").unwrap_err().reason, SimpleReason::Optional);
        assert_eq!(
            cl("(a b)*").unwrap_err().reason,
            SimpleReason::NonDisjunctionRepeat
        );
        assert_eq!(
            cl("(a b | c)").unwrap_err().reason,
            SimpleReason::NonLetterDisjunct
        );
        assert_eq!(
            cl("a b | c").unwrap_err().reason,
            SimpleReason::NonLetterDisjunct
        );
    }

    #[test]
    fn violation_is_the_first_offender_in_preorder() {
        let v = cl("a (b c)* d?").unwrap_err();
        assert_eq!(v.reason, SimpleReason::NonDisjunctionRepeat);
    }

    #[test]
    fn display_uses_the_paper_notation() {
        let al = Alphabet::from_names(["a", "b"]);
        let s = cl("a (a|b)*").unwrap();
        assert_eq!(s.display(&al), "D(a)·St(a+b)");
        assert_eq!(SimpleRe::default().display(&al), "ε");
    }
}
