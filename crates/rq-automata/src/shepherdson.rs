//! Lazy determinization of 2NFAs via Shepherdson tables.
//!
//! Shepherdson's classic argument (the same device Vardi's Lemma 4 proof
//! family builds on) summarizes the behaviour of a two-way automaton on a
//! tape *prefix* by a table:
//!
//! * `enter` — the states in which a run that starts in an initial
//!   configuration (head on ⊢) can exit the prefix rightward, and
//! * `cross[q]` — the states in which a run that *enters* the prefix at its
//!   last cell in state `q` can exit rightward again.
//!
//! Tables compose left to right, so scanning the input once while updating
//! the table is a *deterministic* one-way simulation of the 2NFA. This
//! module implements that simulation lazily: tables are discovered and
//! memoized on demand, which is what makes `L(NFA) ⊆ L(2NFA)` containment
//! ([`nfa_in_twonfa`]) practical — the production path of the Theorem 5
//! pipeline in `rq-core`. The explicit Lemma 4 construction lives in
//! [`crate::complement2`] and is cross-validated against this one.

use crate::alphabet::Letter;
use crate::containment::ContainmentRun;
use crate::governor::{expect_unlimited, Exhaustion, Governor};
use crate::nfa::{Nfa, State};
use crate::twonfa::{Move, Tape, TwoNfa};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Behaviour summary of a 2NFA on a tape prefix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Table {
    /// States exiting the prefix rightward from an initial configuration.
    pub enter: BTreeSet<State>,
    /// `cross[q]`: states exiting rightward after entering the prefix's
    /// last cell in state `q`.
    pub cross: Vec<BTreeSet<State>>,
}

/// Lazily determinized view of a [`TwoNfa`]: a complete DFA whose states
/// are [`Table`]s, discovered on demand.
pub struct ShepherdsonDfa<'a> {
    m: &'a TwoNfa,
    tables: Vec<Table>,
    index: HashMap<Table, usize>,
    succ: Vec<HashMap<Letter, usize>>,
    accepting: Vec<Option<bool>>,
    /// Meters table construction when present ([`Self::try_next`]).
    gov: Option<&'a Governor>,
}

impl<'a> ShepherdsonDfa<'a> {
    /// Start determinizing `m`.
    pub fn new(m: &'a TwoNfa) -> Self {
        let initial = initial_table(m);
        let mut index = HashMap::new();
        index.insert(initial.clone(), 0);
        ShepherdsonDfa {
            m,
            tables: vec![initial],
            index,
            succ: vec![HashMap::new()],
            accepting: vec![None],
            gov: None,
        }
    }

    /// Like [`ShepherdsonDfa::new`], but every table discovered by
    /// [`Self::try_next`] is charged to `gov` as a constructed state, and
    /// each fresh table build spends fuel proportional to the 2NFA size
    /// (a table holds one crossing set per 2NFA state).
    pub fn new_governed(m: &'a TwoNfa, gov: &'a Governor) -> Result<Self, Exhaustion> {
        gov.construct_state()?;
        gov.spend(m.num_states() as u64)?;
        let mut det = ShepherdsonDfa::new(m);
        det.gov = Some(gov);
        Ok(det)
    }

    /// The initial DFA state (the table of the prefix `⊢`).
    pub fn initial(&self) -> usize {
        0
    }

    /// Number of tables materialized so far.
    pub fn discovered(&self) -> usize {
        self.tables.len()
    }

    /// The table of DFA state `s`.
    pub fn table(&self, s: usize) -> &Table {
        &self.tables[s]
    }

    /// The successor of state `s` on `letter`. Total: the DFA is complete
    /// (an all-empty table acts as the dead state).
    pub fn next(&mut self, s: usize, letter: Letter) -> usize {
        expect_unlimited(self.next_impl(s, letter, None))
    }

    /// [`Self::next`] under the governor supplied at construction
    /// ([`Self::new_governed`]): building a fresh table spends fuel
    /// proportional to the 2NFA size and charges one constructed state.
    /// Without a governor this is exactly [`Self::next`].
    pub fn try_next(&mut self, s: usize, letter: Letter) -> Result<usize, Exhaustion> {
        let gov = self.gov;
        self.next_impl(s, letter, gov)
    }

    fn next_impl(
        &mut self,
        s: usize,
        letter: Letter,
        gov: Option<&Governor>,
    ) -> Result<usize, Exhaustion> {
        if let Some(&t) = self.succ[s].get(&letter) {
            return Ok(t);
        }
        if let Some(g) = gov {
            // A table build runs one closure per 2NFA state.
            g.spend(self.m.num_states() as u64)?;
        }
        let table = step_table(self.m, &self.tables[s], letter);
        let id = match self.index.get(&table) {
            Some(&id) => id,
            None => {
                if let Some(g) = gov {
                    g.construct_state()?;
                }
                let id = self.tables.len();
                self.index.insert(table.clone(), id);
                self.tables.push(table);
                self.succ.push(HashMap::new());
                self.accepting.push(None);
                id
            }
        };
        self.succ[s].insert(letter, id);
        Ok(id)
    }

    /// Whether the word driving the DFA into state `s` is accepted by the
    /// 2NFA (the remaining tape is exactly `⊣`).
    pub fn is_accepting(&mut self, s: usize) -> bool {
        if let Some(b) = self.accepting[s] {
            return b;
        }
        let table = &self.tables[s];
        let closure = closure_at(self.m, Tape::Right, table.enter.clone(), Some(table));
        let b = closure.iter().any(|&q| self.m.is_final(q));
        self.accepting[s] = Some(b);
        b
    }

    /// Whether `word ∈ L(m)` via the deterministic simulation.
    pub fn accepts(&mut self, word: &[Letter]) -> bool {
        let mut s = self.initial();
        for &l in word {
            s = self.next(s, l);
        }
        self.is_accepting(s)
    }
}

/// States reachable *at the current cell* (holding `sym`) starting from
/// `seed` at that cell, closing under 0-moves and left-excursions resolved
/// through the previous prefix's table.
fn closure_at(
    m: &TwoNfa,
    sym: Tape,
    seed: BTreeSet<State>,
    prev: Option<&Table>,
) -> BTreeSet<State> {
    let mut out = seed;
    let mut stack: Vec<State> = out.iter().copied().collect();
    while let Some(q) = stack.pop() {
        for &(t, mv) in m.transitions(q, sym) {
            match mv {
                Move::Stay => {
                    if out.insert(t) {
                        stack.push(t);
                    }
                }
                Move::Left => {
                    // Enter the previous prefix in state t; it re-exits
                    // rightward in states cross[t], arriving back here.
                    if let Some(prev) = prev {
                        for &r in &prev.cross[t] {
                            if out.insert(r) {
                                stack.push(r);
                            }
                        }
                    }
                    // With no previous prefix the symbol is ⊢ and left
                    // moves are impossible (enforced at construction).
                }
                Move::Right => {} // handled by `exits`
            }
        }
    }
    out
}

/// States in which runs exit the current cell rightward, given the closure.
fn exits(m: &TwoNfa, sym: Tape, closure: &BTreeSet<State>) -> BTreeSet<State> {
    let mut out = BTreeSet::new();
    for &q in closure {
        for &(t, mv) in m.transitions(q, sym) {
            if mv == Move::Right {
                out.insert(t);
            }
        }
    }
    out
}

/// The table of the prefix `⊢`.
fn initial_table(m: &TwoNfa) -> Table {
    let n = m.num_states();
    let seed: BTreeSet<State> = m.initial_states().collect();
    let c = closure_at(m, Tape::Left, seed, None);
    let enter = exits(m, Tape::Left, &c);
    let cross = (0..n)
        .map(|q| {
            let c = closure_at(m, Tape::Left, BTreeSet::from([q]), None);
            exits(m, Tape::Left, &c)
        })
        .collect();
    Table { enter, cross }
}

/// Extend `prev`'s prefix by one cell holding `letter`.
fn step_table(m: &TwoNfa, prev: &Table, letter: Letter) -> Table {
    let n = m.num_states();
    let sym = Tape::Letter(letter);
    let cross: Vec<BTreeSet<State>> = (0..n)
        .map(|q| {
            let c = closure_at(m, sym, BTreeSet::from([q]), Some(prev));
            exits(m, sym, &c)
        })
        .collect();
    let mut enter = BTreeSet::new();
    for &q in &prev.enter {
        enter.extend(cross[q].iter().copied());
    }
    Table { enter, cross }
}

/// Decide `L(a1) ⊆ L(m)` for an NFA `a1` and 2NFA `m`, on the fly.
///
/// BFS over the product of `a1` with the lazily determinized `m`; a product
/// state with `a1` accepting and `m`'s table rejecting yields a *shortest*
/// counterexample word.
pub fn nfa_in_twonfa(a1: &Nfa, m: &TwoNfa) -> ContainmentRun {
    expect_unlimited(nfa_in_twonfa_governed(a1, m, &Governor::unlimited()))
}

/// [`nfa_in_twonfa`] under a resource [`Governor`]: each product-state
/// expansion spends one fuel, every product state and Shepherdson table is
/// charged as a constructed state (tables additionally cost fuel
/// proportional to the 2NFA size), and the deadline/cancellation flag is
/// polled periodically. This is the production engine of the Theorem 5
/// pipeline, so it is the budget surface for 2RPQ containment.
pub fn nfa_in_twonfa_governed(
    a1: &Nfa,
    m: &TwoNfa,
    gov: &Governor,
) -> Result<ContainmentRun, Exhaustion> {
    let a1 = a1.eliminate_epsilon();
    let mut det = ShepherdsonDfa::new_governed(m, gov)?;
    type Prod = (usize, usize);
    let mut pred: HashMap<Prod, (Prod, Letter)> = HashMap::new();
    let mut seen: BTreeSet<Prod> = BTreeSet::new();
    let mut queue: VecDeque<Prod> = VecDeque::new();
    for s in a1.initial_states() {
        let p = (s, det.initial());
        if seen.insert(p) {
            gov.construct_state()?;
            queue.push_back(p);
        }
    }
    while let Some(p @ (s, d)) = queue.pop_front() {
        gov.tick()?;
        if a1.is_final(s) && !det.is_accepting(d) {
            let mut word = Vec::new();
            let mut cur = p;
            while let Some(&(prevp, l)) = pred.get(&cur) {
                word.push(l);
                cur = prevp;
            }
            word.reverse();
            return Ok(ContainmentRun {
                contained: false,
                counterexample: Some(word),
                states_explored: seen.len(),
            });
        }
        for &(l, t) in a1.transitions_from(s) {
            gov.tick()?;
            let nd = det.try_next(d, l)?;
            let np = (t, nd);
            if seen.insert(np) {
                gov.construct_state()?;
                pred.insert(np, (p, l));
                queue.push_back(np);
            }
        }
    }
    Ok(ContainmentRun {
        contained: true,
        counterexample: None,
        states_explored: seen.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::fold::{fold_membership, fold_twonfa};
    use crate::regex::parse;

    fn all_words(sigma: &[Letter], max_len: usize) -> Vec<Vec<Letter>> {
        let mut all: Vec<Vec<Letter>> = vec![vec![]];
        let mut frontier = vec![Vec::<Letter>::new()];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &frontier {
                for &l in sigma {
                    let mut w2 = w.clone();
                    w2.push(l);
                    next.push(w2);
                }
            }
            all.extend(next.iter().cloned());
            frontier = next;
        }
        all
    }

    #[test]
    fn shepherdson_membership_matches_configuration_bfs() {
        let mut al = Alphabet::from_names(["a", "b"]);
        let sigma_pm: Vec<Letter> = al.sigma_pm().collect();
        for re in ["a", "a a- a", "(a|b-)*", "a(b a)*", "b- a", "(a b)+"] {
            let e = parse(re, &mut al).unwrap();
            let n = Nfa::from_regex(&e);
            let m = fold_twonfa(&n, &sigma_pm);
            let mut det = ShepherdsonDfa::new(&m);
            for w in all_words(&sigma_pm, 3) {
                assert_eq!(
                    det.accepts(&w),
                    m.accepts(&w),
                    "Shepherdson vs config BFS disagree: re={re}, w={w:?}"
                );
            }
        }
    }

    #[test]
    fn shepherdson_on_one_way_embedding() {
        let mut al = Alphabet::from_names(["a", "b"]);
        let sigma: Vec<Letter> = al.sigma().collect();
        let e = parse("(a|b)*abb", &mut al).unwrap();
        let n = Nfa::from_regex(&e);
        let m = TwoNfa::from_nfa(&n);
        let mut det = ShepherdsonDfa::new(&m);
        for w in all_words(&sigma, 5) {
            assert_eq!(det.accepts(&w), n.accepts(&w), "w={w:?}");
        }
    }

    #[test]
    fn containment_nfa_in_fold_twonfa() {
        // The paper's example: L(p) ⊆ fold(L(p p⁻ p)).
        let mut al = Alphabet::from_names(["p"]);
        let sigma_pm: Vec<Letter> = al.sigma_pm().collect();
        let q1 = Nfa::from_regex(&parse("p", &mut al).unwrap());
        let q2 = Nfa::from_regex(&parse("p p- p", &mut al).unwrap());
        let fold2 = fold_twonfa(&q2, &sigma_pm);
        let run = nfa_in_twonfa(&q1, &fold2);
        assert!(run.contained, "p ⊑ p p⁻ p must hold (fold)");
        // And not vice versa: L(p p⁻ p) ⊄ fold(L(p))? Actually p p⁻ p ⇝ p
        // shows every word of L(p p⁻ p)... the single word p p⁻ p IS in
        // fold(L(p p⁻ p))? We test L(p p⁻ p) ⊆ fold(L(p)): the word
        // p p⁻ p folds onto... fold(L(p)) = {u : p ⇝ u} = {p}. So the word
        // p p⁻ p ∉ fold(L(p)) and containment fails.
        let fold1 = fold_twonfa(&q1, &sigma_pm);
        let run = nfa_in_twonfa(&q2, &fold1);
        assert!(!run.contained);
        let ce = run.counterexample.unwrap();
        assert!(q2.accepts(&ce));
        assert!(!fold_membership(&q1, &ce));
    }

    #[test]
    fn counterexample_is_shortest() {
        let mut al = Alphabet::from_names(["a", "b"]);
        // L(a|bb) vs fold-language of a: 'a' is contained, 'bb' is the
        // shortest counterexample? 'bb' has length 2; but ε... a|bb has no ε.
        let q1 = Nfa::from_regex(&parse("a|b b", &mut al).unwrap());
        let q2 = Nfa::from_regex(&parse("a", &mut al).unwrap());
        let sigma_pm: Vec<Letter> = al.sigma_pm().collect();
        let fold2 = fold_twonfa(&q2, &sigma_pm);
        let run = nfa_in_twonfa(&q1, &fold2);
        assert!(!run.contained);
        assert_eq!(run.counterexample.unwrap().len(), 2);
    }

    #[test]
    fn governed_containment_exhausts_and_matches() {
        use crate::governor::{Limits, Resource};
        let mut al = Alphabet::from_names(["p"]);
        let sigma_pm: Vec<Letter> = al.sigma_pm().collect();
        let q1 = Nfa::from_regex(&parse("p", &mut al).unwrap());
        let q2 = Nfa::from_regex(&parse("p p- p", &mut al).unwrap());
        let fold2 = fold_twonfa(&q2, &sigma_pm);
        // Tiny fuel budget: structured exhaustion, no panic.
        let gov = Limits::unlimited().with_fuel(2).governor();
        let e = nfa_in_twonfa_governed(&q1, &fold2, &gov).unwrap_err();
        assert_eq!(e.resource, Resource::Fuel);
        // Ample budget: same verdict as the ungoverned path.
        let gov = Limits::unlimited().with_fuel(1_000_000).governor();
        let run = nfa_in_twonfa_governed(&q1, &fold2, &gov).unwrap();
        assert_eq!(run, nfa_in_twonfa(&q1, &fold2));
        assert!(gov.counters().states_constructed > 0);
    }

    #[test]
    fn fold_language_is_larger_than_language() {
        // fold(L(a a- a)) contains both 'a a- a' and 'a'.
        let mut al = Alphabet::from_names(["a"]);
        let sigma_pm: Vec<Letter> = al.sigma_pm().collect();
        let q = Nfa::from_regex(&parse("a a- a", &mut al).unwrap());
        let m = fold_twonfa(&q, &sigma_pm);
        let mut det = ShepherdsonDfa::new(&m);
        let a = Letter::forward(al.get("a").unwrap());
        assert!(det.accepts(&[a]));
        assert!(det.accepts(&[a, a.inv(), a]));
        assert!(!det.accepts(&[a, a]));
        assert!(!det.accepts(&[]));
    }
}
