//! Language-preserving regex simplification.
//!
//! Bottom-up rewriting with rules verified by the exact containment
//! checker, so every simplification is an *equivalence*, never an
//! approximation. The optimizer example uses this to shrink 2RPQs before
//! shipping them to an evaluator.
//!
//! Rules beyond the smart-constructor normal form:
//! * union absorption: drop alternatives whose language is contained in a
//!   sibling (`a|a*  →  a*`, decided semantically, not syntactically);
//! * adjacent-star fusion: `e* e* → e*`, `e e* → e+`, `e* e → e+`,
//!   `e* e+ → e+`, `e+ e* → e+`;
//! * nullable tightening: `(e)+ → e*`-style rewrites where `ε ∈ L(e)`
//!   already makes the languages equal;
//! * star-of-union ε-elimination: `(ε|e)* → e*`.

use crate::containment::check_on_the_fly;
use crate::nfa::Nfa;
use crate::regex::Regex;

/// Whether `L(a) ⊆ L(b)` (exact).
fn lang_contained(a: &Regex, b: &Regex) -> bool {
    check_on_the_fly(&Nfa::from_regex(a), &Nfa::from_regex(b)).contained
}

/// Simplify `e` into an equivalent, usually smaller expression.
pub fn simplify(e: &Regex) -> Regex {
    let out = simplify_inner(e);
    debug_assert!(
        lang_contained(e, &out) && lang_contained(&out, e),
        "simplify must preserve the language"
    );
    out
}

fn simplify_inner(e: &Regex) -> Regex {
    match e {
        Regex::Empty | Regex::Epsilon | Regex::Letter(_) => e.clone(),
        Regex::Concat(parts) => {
            let parts: Vec<Regex> = parts.iter().map(simplify_inner).collect();
            fuse_concat(parts)
        }
        Regex::Union(parts) => {
            let parts: Vec<Regex> = parts.iter().map(simplify_inner).collect();
            absorb_union(parts)
        }
        Regex::Star(inner) => {
            let inner = simplify_inner(inner);
            // (ε|e)* = e*; (e*)* handled by the smart constructor.
            strip_epsilon(inner).star()
        }
        Regex::Plus(inner) => {
            let inner = simplify_inner(inner);
            if inner.nullable() {
                // ε ∈ L(e) makes e+ = e*.
                strip_epsilon(inner).star()
            } else {
                inner.plus()
            }
        }
        Regex::Optional(inner) => {
            let inner = simplify_inner(inner);
            if inner.nullable() {
                inner
            } else {
                inner.optional()
            }
        }
    }
}

/// Remove an `ε` alternative from a union (used under `*`/nullable `+`,
/// where it is redundant).
fn strip_epsilon(e: Regex) -> Regex {
    match e {
        Regex::Union(parts) => Regex::union(parts.into_iter().filter(|p| *p != Regex::Epsilon)),
        other => other,
    }
}

/// Fuse adjacent repetition factors in a concatenation.
fn fuse_concat(parts: Vec<Regex>) -> Regex {
    let mut out: Vec<Regex> = Vec::with_capacity(parts.len());
    for p in parts {
        let fused = match (out.pop(), p) {
            (None, p) => {
                out.push(p);
                continue;
            }
            (Some(prev), p) => match (&prev, &p) {
                // e* e* = e*, e* e+ = e+, e+ e* = e+.
                (Regex::Star(a), Regex::Star(b)) if a == b => Some(a.as_ref().clone().star()),
                (Regex::Star(a), Regex::Plus(b)) if a == b => Some(a.as_ref().clone().plus()),
                (Regex::Plus(a), Regex::Star(b)) if a == b => Some(a.as_ref().clone().plus()),
                // e e* = e+ and e* e = e+.
                (Regex::Star(a), b) if a.as_ref() == b => Some(a.as_ref().clone().plus()),
                (a, Regex::Star(b)) if b.as_ref() == a => Some(b.as_ref().clone().plus()),
                _ => None,
            }
            .unwrap_or_else(|| {
                out.push(prev.clone());
                p.clone()
            }),
        };
        out.push(fused);
    }
    Regex::concat(out)
}

/// Drop union alternatives contained in a sibling alternative.
fn absorb_union(parts: Vec<Regex>) -> Regex {
    let mut kept: Vec<Regex> = Vec::new();
    'outer: for (i, p) in parts.iter().enumerate() {
        // Absorbed by an already-kept sibling?
        for k in &kept {
            if lang_contained(p, k) {
                continue 'outer;
            }
        }
        // Absorbed by a later sibling (strictly larger, or equal with a
        // later index — keep the earlier of equals, so only strict checks
        // forward)?
        for q in parts.iter().skip(i + 1) {
            if lang_contained(p, q) && !lang_contained(q, p) {
                continue 'outer;
            }
        }
        kept.push(p.clone());
    }
    Regex::union(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::containment::equivalent;
    use crate::regex::parse;

    fn simp(s: &str) -> (Regex, Regex) {
        // Pre-seed so label ids match the display alphabet below.
        let mut al = Alphabet::from_names(["a", "b", "c"]);
        let e = parse(s, &mut al).unwrap();
        let out = simplify(&e);
        assert!(
            equivalent(&Nfa::from_regex(&e), &Nfa::from_regex(&out)),
            "{s} simplified to a different language"
        );
        (e, out)
    }

    fn display(e: &Regex) -> String {
        let al = Alphabet::from_names(["a", "b", "c"]);
        e.display(&al).to_string()
    }

    #[test]
    fn union_absorption() {
        let (_, out) = simp("a|a*");
        assert_eq!(display(&out), "a*");
        let (_, out) = simp("a a|a(a|b)|b");
        assert_eq!(display(&out), "a(a|b)|b");
        let (_, out) = simp("(a|b)*|a*|b");
        assert_eq!(display(&out), "(a|b)*");
    }

    #[test]
    fn star_fusion() {
        let (_, out) = simp("a* a*");
        assert_eq!(display(&out), "a*");
        let (_, out) = simp("a a*");
        assert_eq!(display(&out), "a+");
        let (_, out) = simp("a* a");
        assert_eq!(display(&out), "a+");
        let (_, out) = simp("a* a+");
        assert_eq!(display(&out), "a+");
        let (_, out) = simp("b a* a* c");
        assert_eq!(display(&out), "b.a*c");
    }

    #[test]
    fn nullable_tightening() {
        let (_, out) = simp("(a?)+");
        assert_eq!(display(&out), "a*");
        let (_, out) = simp("(a|ε)*");
        assert_eq!(display(&out), "a*");
        let (_, out) = simp("(a*)?");
        assert_eq!(display(&out), "a*");
    }

    #[test]
    fn fixed_points_stay_put() {
        for s in ["a", "a b", "a|b", "a*", "(a b)+", "a-b|c"] {
            let (e, out) = simp(s);
            assert_eq!(e, out, "{s} is already minimal");
        }
    }

    #[test]
    fn size_never_grows() {
        let mut rng = crate::random::SplitMix64::new(11);
        let cfg = crate::random::RegexConfig {
            num_labels: 2,
            inverse_prob: 0.2,
            leaves: 8,
            repeat_prob: 0.4,
        };
        for _ in 0..40 {
            let e = crate::random::random_regex(&mut rng, &cfg);
            let out = simplify(&e);
            assert!(out.size() <= e.size(), "simplify grew {e:?} to {out:?}");
            assert!(equivalent(&Nfa::from_regex(&e), &Nfa::from_regex(&out)));
        }
    }
}
