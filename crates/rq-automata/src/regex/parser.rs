//! Hand-written recursive-descent parser for regular expressions.
//!
//! Grammar (whitespace insignificant between tokens):
//!
//! ```text
//! union   := concat ('|' concat)*
//! concat  := repeat (('.')? repeat)*        -- juxtaposition concatenates
//! repeat  := atom ('*' | '+' | '?')*
//! atom    := letter | '(' union ')' | 'ε' | '()' | '∅'
//! letter  := ident '-'?                      -- trailing '-' is the inverse
//! ident   := [A-Za-z_][A-Za-z0-9_]*
//! ```
//!
//! Labels are interned into the supplied [`Alphabet`], so parsing two
//! queries against the same alphabet yields compatible [`Letter`]s.
//! Examples: `a(b|c)*`, `knows.worksAt-`, `p p- p`, `(a|b)+c?`.

use crate::alphabet::{Alphabet, Letter};
use crate::regex::Regex;
use std::fmt;

/// Error raised by [`parse`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub position: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse `input` as a regular expression over `alphabet`, interning any new
/// labels it mentions.
pub fn parse(input: &str, alphabet: &mut Alphabet) -> Result<Regex, ParseError> {
    run(input, alphabet, false).map(|(e, _)| e)
}

/// Like [`parse`], but also returns a trace of every grammar node the
/// parser built, as `(subterm, start, end)` byte offsets into `input`.
///
/// The recorded subterms are the *lowered* results of the smart
/// constructors, so a consumer holding some subexpression of the parsed
/// regex (e.g. a classifier witness) can look up where it came from by
/// structural equality; when several trace entries match, the narrowest
/// span is the tightest source location. Trailing whitespace is trimmed
/// from every recorded span.
pub fn parse_with_spans(
    input: &str,
    alphabet: &mut Alphabet,
) -> Result<(Regex, Trace), ParseError> {
    run(input, alphabet, true).map(|(e, t)| (e, t.unwrap_or_default()))
}

/// The span trace [`parse_with_spans`] returns: `(subterm, start, end)`.
pub type Trace = Vec<(Regex, usize, usize)>;

fn run(
    input: &str,
    alphabet: &mut Alphabet,
    tracing: bool,
) -> Result<(Regex, Option<Trace>), ParseError> {
    let mut p = Parser {
        input,
        pos: 0,
        alphabet,
        trace: if tracing { Some(Vec::new()) } else { None },
    };
    p.skip_ws();
    if p.at_end() {
        return Err(p.error("empty input"));
    }
    let e = p.parse_union()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing input"));
    }
    Ok((e, p.trace))
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    alphabet: &'a mut Alphabet,
    trace: Option<Trace>,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Record `(e, start, pos)` in the span trace, trimming trailing
    /// whitespace the concat/repeat loops may have skipped past.
    fn record(&mut self, start: usize, e: &Regex) {
        if let Some(trace) = self.trace.as_mut() {
            let end = start + self.input[start..self.pos].trim_end().len();
            trace.push((e.clone(), start, end));
        }
    }

    fn parse_union(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let mut parts = vec![self.parse_concat()?];
        loop {
            self.skip_ws();
            if self.eat('|') {
                parts.push(self.parse_concat()?);
            } else {
                let e = Regex::union(parts);
                self.record(start, &e);
                return Ok(e);
            }
        }
    }

    fn parse_concat(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let mut parts = vec![self.parse_repeat()?];
        loop {
            self.skip_ws();
            match self.peek() {
                Some('.') => {
                    self.bump();
                    self.skip_ws();
                    parts.push(self.parse_repeat()?);
                }
                Some(c) if starts_atom(c) => parts.push(self.parse_repeat()?),
                _ => {
                    let e = Regex::concat(parts);
                    self.record(start, &e);
                    return Ok(e);
                }
            }
        }
    }

    fn parse_repeat(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let mut e = self.parse_atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('*') => {
                    self.bump();
                    e = e.star();
                    self.record(start, &e);
                }
                Some('+') => {
                    self.bump();
                    e = e.plus();
                    self.record(start, &e);
                }
                Some('?') => {
                    self.bump();
                    e = e.optional();
                    self.record(start, &e);
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_atom(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let e = match self.peek() {
            None => return Err(self.error("expected an atom, found end of input")),
            Some('(') => {
                self.bump();
                self.skip_ws();
                if self.eat(')') {
                    // `()` is an ASCII spelling of ε.
                    Regex::Epsilon
                } else {
                    let e = self.parse_union()?;
                    self.skip_ws();
                    if !self.eat(')') {
                        return Err(self.error("expected ')'"));
                    }
                    e
                }
            }
            Some('ε') => {
                self.bump();
                Regex::Epsilon
            }
            Some('∅') => {
                self.bump();
                Regex::Empty
            }
            Some(c) if is_ident_start(c) => self.parse_letter()?,
            Some(c) => return Err(self.error(format!("unexpected character {c:?}"))),
        };
        self.record(start, &e);
        Ok(e)
    }

    fn parse_letter(&mut self) -> Result<Regex, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                self.bump();
            } else {
                break;
            }
        }
        let name = &self.input[start..self.pos];
        debug_assert!(!name.is_empty());
        let id = self.alphabet.intern(name);
        // A '-' immediately after the identifier (no whitespace) marks the
        // inverse letter, as in the paper's ASCII rendering `r-` of r⁻.
        let inverse = self.eat('-');
        Ok(Regex::Letter(if inverse {
            Letter::backward(id)
        } else {
            Letter::forward(id)
        }))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn starts_atom(c: char) -> bool {
    is_ident_start(c) || c == '(' || c == 'ε' || c == '∅'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::LabelId;

    fn pa(s: &str) -> (Regex, Alphabet) {
        let mut a = Alphabet::new();
        let e = parse(s, &mut a).expect("parse");
        (e, a)
    }

    #[test]
    fn parses_single_letter() {
        let (e, a) = pa("a");
        assert_eq!(e, Regex::Letter(Letter::forward(a.get("a").unwrap())));
    }

    #[test]
    fn parses_inverse_letter() {
        let (e, a) = pa("a-");
        assert_eq!(e, Regex::Letter(Letter::backward(a.get("a").unwrap())));
    }

    #[test]
    fn parses_juxtaposition_and_dot() {
        let (e1, _) = pa("a.b");
        let (e2, _) = pa("a b");
        assert_eq!(e1, e2);
        // NOTE: "ab" is a single multi-character label, not a·b.
        let (e3, a3) = pa("ab");
        assert_eq!(e3, Regex::Letter(Letter::forward(a3.get("ab").unwrap())));
        match e1 {
            Regex::Concat(v) => assert_eq!(v.len(), 2),
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn multichar_labels_are_single_letters() {
        let (e, a) = pa("knows.worksAt-");
        assert_eq!(
            e,
            Regex::Concat(vec![
                Regex::Letter(Letter::forward(a.get("knows").unwrap())),
                Regex::Letter(Letter::backward(a.get("worksAt").unwrap())),
            ])
        );
    }

    #[test]
    fn precedence_star_binds_tightest() {
        let (e, a) = pa("a b*|c");
        let la = Letter::forward(a.get("a").unwrap());
        let lb = Letter::forward(a.get("b").unwrap());
        let lc = Letter::forward(a.get("c").unwrap());
        assert_eq!(
            e,
            Regex::union([
                Regex::concat([Regex::Letter(la), Regex::Letter(lb).star()]),
                Regex::Letter(lc)
            ])
        );
    }

    #[test]
    fn parses_paper_example() {
        // The paper's 2RPQ example: Q2 = p p⁻ p.
        let (e, a) = pa("p p- p");
        let p = Letter::forward(a.get("p").unwrap());
        assert_eq!(e, Regex::word(&[p, p.inv(), p]));
    }

    #[test]
    fn epsilon_and_empty() {
        assert_eq!(pa("ε").0, Regex::Epsilon);
        assert_eq!(pa("()").0, Regex::Epsilon);
        assert_eq!(pa("∅").0, Regex::Empty);
        assert!(pa("a|ε").0.nullable());
    }

    #[test]
    fn rejects_garbage() {
        let mut a = Alphabet::new();
        assert!(parse("", &mut a).is_err());
        assert!(parse("a)", &mut a).is_err());
        assert!(parse("(a", &mut a).is_err());
        assert!(parse("*a", &mut a).is_err());
        assert!(parse("a||b", &mut a).is_err());
        assert!(parse("a&b", &mut a).is_err());
    }

    #[test]
    fn print_parse_roundtrip_samples() {
        let samples = [
            "a(b|c)*",
            "p p- p",
            "(a|b)+c?",
            "a-b-|c",
            "((a|b)(c|d))*",
            "a*b*c*",
        ];
        for s in samples {
            let mut al = Alphabet::new();
            let e = parse(s, &mut al).unwrap();
            let printed = e.display(&al).to_string();
            let mut al2 = al.clone();
            let e2 = parse(&printed, &mut al2).unwrap();
            assert_eq!(e, e2, "roundtrip failed for {s} -> {printed}");
        }
    }

    #[test]
    fn span_trace_locates_subterms() {
        let mut a = Alphabet::new();
        let input = "a (b c)* d";
        let (e, trace) = parse_with_spans(input, &mut a).unwrap();
        assert_eq!(e, parse(input, &mut Alphabet::new()).unwrap());
        // The starred group is recorded with its exact source extent.
        let mut a2 = a.clone();
        let needle = parse("(b c)*", &mut a2).unwrap();
        let (_, start, end) = trace
            .iter()
            .filter(|(sub, _, _)| *sub == needle)
            .min_by_key(|(_, s, e)| e - s)
            .expect("starred group recorded");
        assert_eq!(&input[*start..*end], "(b c)*");
        // Single letters are recorded too, at their own offsets.
        let letter_d = parse("d", &mut a.clone()).unwrap();
        assert!(trace
            .iter()
            .any(|(sub, s, e)| *sub == letter_d && &input[*s..*e] == "d"));
    }

    #[test]
    fn span_trace_trims_trailing_whitespace() {
        let mut a = Alphabet::new();
        let input = "a | b c ";
        let (_, trace) = parse_with_spans(input, &mut a).unwrap();
        for (_, start, end) in &trace {
            assert_eq!(
                input[*start..*end].trim(),
                &input[*start..*end],
                "span [{start}, {end}) not trimmed"
            );
        }
    }

    #[test]
    fn plain_parse_records_no_trace() {
        let mut a = Alphabet::new();
        let (_, trace) = parse_with_spans("a", &mut a).unwrap();
        assert!(!trace.is_empty());
        // And parse() agrees with parse_with_spans() on the result.
        let mut a2 = Alphabet::new();
        assert_eq!(
            parse("a(b|c)*", &mut a2).unwrap(),
            parse_with_spans("a(b|c)*", &mut Alphabet::new()).unwrap().0
        );
    }

    #[test]
    fn interning_is_shared_across_parses() {
        let mut a = Alphabet::new();
        let e1 = parse("a b", &mut a).unwrap();
        let e2 = parse("b a", &mut a).unwrap();
        let la = Regex::Letter(Letter::forward(LabelId(0)));
        let lb = Regex::Letter(Letter::forward(LabelId(1)));
        assert_eq!(e1, la.clone().then(lb.clone()));
        assert_eq!(e2, lb.then(la));
    }
}
