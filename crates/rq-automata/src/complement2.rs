//! **Lemma 4**: single-exponential complementation of 2NFAs (Vardi 1989).
//!
//! A word `w = w₁…wₙ` is *rejected* by a 2NFA `A = (Σ, S, S₀, ρ, F)` iff
//! there is a sequence of state sets `T₀, …, Tₙ₊₁` (one per tape cell,
//! including the endmarkers) such that
//!
//! 1. `S₀ ⊆ T₀` (the initial configurations are covered),
//! 2. the sequence is closed under `ρ`: if `q ∈ Tᵢ` and `(q', d) ∈ ρ(q, σᵢ)`
//!    then `q' ∈ Tᵢ₊d` (where `σᵢ` is the symbol on cell `i`), and
//! 3. `Tₙ₊₁ ∩ F = ∅` (no accepting configuration at the right endmarker).
//!
//! Soundness: the truly reachable sets are pointwise ⊆ any closed sequence,
//! so condition 3 excludes acceptance. Completeness: the reachable sets
//! themselves form such a sequence. A one-way NFA can guess the sequence
//! left to right while remembering the *pair* `(Tᵢ, Tᵢ₊₁)` — `2^O(n)`
//! states, matching the lemma's bound.
//!
//! This construction is intrinsically exponential (that is the point of
//! experiment E3); the production containment path uses the lazily
//! deterministic [`crate::shepherdson`] tables instead, and the two are
//! cross-validated in the tests below.

use crate::alphabet::Letter;
use crate::governor::{Exhaustion, Governor, Limits, Resource};
use crate::nfa::Nfa;
use crate::twonfa::{Move, Tape, TwoNfa};
use std::collections::{HashMap, VecDeque};

/// Result of the Lemma 4 construction, with size statistics for E3.
#[derive(Debug, Clone)]
pub struct VardiComplement {
    /// The complement NFA: `L = letters* − L(m)`.
    pub nfa: Nfa,
    /// Number of reachable subset-pair states.
    pub pairs: usize,
    /// The theoretical state-space bound `4^n`.
    pub bound: u128,
}

type Mask = u32;

/// Per-symbol transition masks of a 2NFA: `req_*[q]` is the set of states
/// forced into the left/current/right cell's set by `q` being present.
struct SymbolTable {
    left: Vec<Mask>,
    stay: Vec<Mask>,
    right: Vec<Mask>,
}

fn symbol_table(m: &TwoNfa, sym: Tape) -> SymbolTable {
    let n = m.num_states();
    let mut t = SymbolTable {
        left: vec![0; n],
        stay: vec![0; n],
        right: vec![0; n],
    };
    for q in 0..n {
        for &(to, mv) in m.transitions(q, sym) {
            let bit = 1 << to;
            match mv {
                Move::Left => t.left[q] |= bit,
                Move::Stay => t.stay[q] |= bit,
                Move::Right => t.right[q] |= bit,
            }
        }
    }
    t
}

fn required(table: &SymbolTable, set: Mask, pick: impl Fn(&SymbolTable, usize) -> Mask) -> Mask {
    let mut req = 0;
    let mut rest = set;
    while rest != 0 {
        let q = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        req |= pick(table, q);
    }
    req
}

/// Iterate all supersets of `base` within `universe` (base must be ⊆
/// universe), invoking `f` on each. Count: `2^(|universe| − |base|)`.
fn for_each_superset(base: Mask, universe: Mask, mut f: impl FnMut(Mask)) {
    debug_assert_eq!(base & !universe, 0);
    let free = universe & !base;
    let mut s = free;
    loop {
        f(base | s);
        if s == 0 {
            break;
        }
        s = (s.wrapping_sub(1)) & free;
    }
}

/// Build the Lemma 4 complement of `m` over the alphabet `letters`,
/// materializing only subset pairs reachable from the initial guesses.
///
/// Returns `None` if more than `max_pairs` pair states are discovered
/// (the construction is exponential by design; callers bound it).
/// Requires `m.num_states() ≤ 16`.
pub fn vardi_complement(
    m: &TwoNfa,
    letters: &[Letter],
    max_pairs: usize,
) -> Option<VardiComplement> {
    let gov = Limits::unlimited().with_states(max_pairs as u64).governor();
    match vardi_complement_governed(m, letters, &gov) {
        Ok(c) => Some(c),
        Err(e) if e.resource == Resource::States => None,
        Err(e) => unreachable!("only the state cap can exhaust here: {e}"),
    }
}

/// [`vardi_complement`] under a resource [`Governor`]: each subset-pair
/// state is charged as a constructed state, each enumerated superset spends
/// one fuel, and the deadline/cancellation flag is polled periodically. The
/// state cap plays the role `max_pairs` plays in the ungoverned API (and
/// `vardi_complement` is implemented as exactly that restriction).
/// Requires `m.num_states() ≤ 16`.
pub fn vardi_complement_governed(
    m: &TwoNfa,
    letters: &[Letter],
    gov: &Governor,
) -> Result<VardiComplement, Exhaustion> {
    let n = m.num_states();
    assert!(
        n <= 16,
        "bitmask construction supports at most 16 states (got {n})"
    );
    let full: Mask = if n == 32 { !0 } else { (1 << n) - 1 };
    let s0: Mask = m.initial_states().fold(0, |acc, q| acc | (1 << q));
    let f_mask: Mask = m.final_states().iter().fold(0, |acc, &q| acc | (1 << q));

    let t_left = symbol_table(m, Tape::Left);
    let t_right = symbol_table(m, Tape::Right);
    let t_letter: Vec<SymbolTable> = letters
        .iter()
        .map(|&l| symbol_table(m, Tape::Letter(l)))
        .collect();

    // Enumerate valid initial pairs (T0, T1): S0 ⊆ T0, T0 closed under
    // 0-moves on ⊢ (left moves are impossible on ⊢), and the +1 targets of
    // T0 on ⊢ contained in T1.
    let mut index: HashMap<(Mask, Mask), usize> = HashMap::new();
    let mut pairs: Vec<(Mask, Mask)> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut nfa = Nfa::with_states(0);
    let mut initial_ids = Vec::new();

    let push = |t0: Mask,
                t1: Mask,
                index: &mut HashMap<(Mask, Mask), usize>,
                pairs: &mut Vec<(Mask, Mask)>,
                queue: &mut VecDeque<usize>,
                nfa: &mut Nfa|
     -> Result<usize, Exhaustion> {
        gov.tick()?;
        if let Some(&id) = index.get(&(t0, t1)) {
            return Ok(id);
        }
        gov.construct_state()?;
        let id = nfa.add_state();
        debug_assert_eq!(id, pairs.len());
        index.insert((t0, t1), id);
        pairs.push((t0, t1));
        queue.push_back(id);
        Ok(id)
    };

    // The superset enumerators are plain closures, so exhaustion inside
    // them is carried out via this poison slot and re-raised after.
    let mut failure: Option<Exhaustion> = None;
    for_each_superset(s0, full, |t0| {
        if failure.is_some() {
            return;
        }
        let stay_req = required(&t_left, t0, |t, q| t.stay[q]);
        if stay_req & !t0 != 0 {
            return; // not closed under 0-moves on ⊢
        }
        debug_assert_eq!(required(&t_left, t0, |t, q| t.left[q]), 0);
        let right_req = required(&t_left, t0, |t, q| t.right[q]);
        for_each_superset(right_req, full, |t1| {
            if failure.is_some() {
                return;
            }
            match push(t0, t1, &mut index, &mut pairs, &mut queue, &mut nfa) {
                Ok(id) => initial_ids.push(id),
                Err(e) => failure = Some(e),
            }
        });
    });
    if let Some(e) = failure {
        return Err(e);
    }
    initial_ids.sort_unstable();
    initial_ids.dedup();
    for &id in &initial_ids {
        nfa.set_initial(id);
    }

    // BFS over reachable pairs.
    while let Some(id) = queue.pop_front() {
        let (tp, tc) = pairs[id];
        for (k, table) in t_letter.iter().enumerate() {
            gov.tick()?;
            // Closure checks at the current cell (holding letter k).
            let left_req = required(table, tc, |t, q| t.left[q]);
            if left_req & !tp != 0 {
                continue;
            }
            let stay_req = required(table, tc, |t, q| t.stay[q]);
            if stay_req & !tc != 0 {
                continue;
            }
            let right_req = required(table, tc, |t, q| t.right[q]);
            let mut targets = Vec::new();
            for_each_superset(right_req, full, |tn| {
                if failure.is_some() {
                    return;
                }
                match push(tc, tn, &mut index, &mut pairs, &mut queue, &mut nfa) {
                    Ok(tid) => targets.push(tid),
                    Err(e) => failure = Some(e),
                }
            });
            if let Some(e) = failure {
                return Err(e);
            }
            for tid in targets {
                nfa.add_transition(id, letters[k], tid);
            }
        }
    }

    // Final states: the pair (Tn, Tn+1) must satisfy the closure at ⊣ and
    // exclude accepting states.
    for (id, &(tp, tc)) in pairs.iter().enumerate() {
        gov.tick()?;
        if tc & f_mask != 0 {
            continue;
        }
        let left_req = required(&t_right, tc, |t, q| t.left[q]);
        if left_req & !tp != 0 {
            continue;
        }
        let stay_req = required(&t_right, tc, |t, q| t.stay[q]);
        if stay_req & !tc != 0 {
            continue;
        }
        debug_assert_eq!(required(&t_right, tc, |t, q| t.right[q]), 0);
        nfa.set_final(id);
    }

    let count = pairs.len();
    Ok(VardiComplement {
        nfa,
        pairs: count,
        bound: 4u128.pow(n as u32),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::fold::fold_twonfa;
    use crate::regex::parse;
    use crate::shepherdson::ShepherdsonDfa;

    fn all_words(sigma: &[Letter], max_len: usize) -> Vec<Vec<Letter>> {
        let mut all: Vec<Vec<Letter>> = vec![vec![]];
        let mut frontier = vec![Vec::<Letter>::new()];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &frontier {
                for &l in sigma {
                    let mut w2 = w.clone();
                    w2.push(l);
                    next.push(w2);
                }
            }
            all.extend(next.iter().cloned());
            frontier = next;
        }
        all
    }

    #[test]
    fn complement_of_one_way_embedding() {
        let mut al = Alphabet::from_names(["a", "b"]);
        let sigma: Vec<Letter> = al.sigma().collect();
        for re in ["a", "(a|b)*a", "ab"] {
            let e = parse(re, &mut al).unwrap();
            let n = Nfa::from_regex(&e).eliminate_epsilon().trim();
            let m = TwoNfa::from_nfa(&n);
            let comp =
                vardi_complement(&m, &sigma, 2_000_000).expect("small instance must not overflow");
            for w in all_words(&sigma, 4) {
                assert_eq!(comp.nfa.accepts(&w), !m.accepts(&w), "re={re}, w={w:?}");
            }
        }
    }

    #[test]
    fn complement_of_fold_twonfa_matches_shepherdson() {
        let mut al = Alphabet::from_names(["a"]);
        let sigma_pm: Vec<Letter> = al.sigma_pm().collect();
        // Keep the base NFA tiny: the fold 2NFA has n(|Σ±|+1) states and the
        // pair construction is 4^that.
        let e = parse("a", &mut al).unwrap();
        let n = Nfa::from_regex(&e).eliminate_epsilon().trim();
        let m = fold_twonfa(&n, &sigma_pm);
        assert!(m.num_states() <= 16);
        let comp = vardi_complement(&m, &sigma_pm, 5_000_000).expect("no overflow");
        let mut det = ShepherdsonDfa::new(&m);
        for w in all_words(&sigma_pm, 3) {
            let in_fold = det.accepts(&w);
            assert_eq!(comp.nfa.accepts(&w), !in_fold, "w={w:?}");
            assert_eq!(m.accepts(&w), in_fold);
        }
    }

    #[test]
    fn two_way_bouncer_complement() {
        // 2NFA accepting {a^k : k ≥ 1} with a bounce (see twonfa tests).
        let al = Alphabet::from_names(["a"]);
        let a = Letter::forward(al.get("a").unwrap());
        let mut m = TwoNfa::with_states(5);
        m.set_initial(0);
        m.set_final(4);
        m.add_transition(0, Tape::Left, 0, Move::Right);
        m.add_transition(0, Tape::Letter(a), 1, Move::Right);
        m.add_transition(1, Tape::Letter(a), 1, Move::Right);
        m.add_transition(1, Tape::Right, 2, Move::Left);
        m.add_transition(2, Tape::Letter(a), 2, Move::Left);
        m.add_transition(2, Tape::Left, 3, Move::Right);
        m.add_transition(3, Tape::Letter(a), 3, Move::Right);
        m.add_transition(3, Tape::Right, 4, Move::Stay);
        let comp = vardi_complement(&m, &[a], 1_000_000).unwrap();
        assert!(comp.nfa.accepts(&[]));
        assert!(!comp.nfa.accepts(&[a]));
        assert!(!comp.nfa.accepts(&[a, a, a]));
        // Empty-word edge case: the bouncer rejects ε, so the complement
        // accepts it — already asserted above.
    }

    #[test]
    fn overflow_cap_is_respected() {
        let mut al = Alphabet::from_names(["a", "b"]);
        let sigma_pm: Vec<Letter> = al.sigma_pm().collect();
        let e = parse("(a|b)(a|b)", &mut al).unwrap();
        let n = Nfa::from_regex(&e).eliminate_epsilon().trim();
        let m = fold_twonfa(&n, &sigma_pm);
        if m.num_states() <= 16 {
            assert!(vardi_complement(&m, &sigma_pm, 8).is_none());
        }
    }

    #[test]
    fn pair_count_grows_with_states() {
        // The E3 shape at unit-test scale: more 2NFA states, more pairs.
        let al = Alphabet::from_names(["a"]);
        let a = Letter::forward(al.get("a").unwrap());
        let mut counts = Vec::new();
        for k in 1..=3usize {
            // One-way chain automaton for a^k.
            let mut n = Nfa::with_states(k + 1);
            n.set_initial(0);
            n.set_final(k);
            for i in 0..k {
                n.add_transition(i, a, i + 1);
            }
            let m = TwoNfa::from_nfa(&n);
            let comp = vardi_complement(&m, &[a], 5_000_000).unwrap();
            counts.push(comp.pairs);
        }
        assert!(counts[0] < counts[1] && counts[1] < counts[2], "{counts:?}");
    }
}
