//! Unified resource governance for every engine in the workspace.
//!
//! The paper's containment ladder is PSPACE → EXPSPACE → 2EXPSPACE-complete
//! (Thms 5–7), so *every* hot path here can legitimately blow up on small
//! adversarial inputs. Rather than hanging or aborting, engines accept a
//! [`Governor`] and return a structured [`Exhaustion`] when a budget runs
//! out. One governor instance is threaded through a whole check, so its
//! [`Counters`] snapshot describes the entire search at the moment it
//! stopped — the observability surface for callers and the CLI.
//!
//! Resources:
//!
//! * **fuel** — abstract search steps (product-state expansions, join
//!   candidates, enumerated expansions). Deterministic and portable:
//!   the same instance exhausts at the same point on every machine.
//! * **states** — constructed automaton states (lazy determinization
//!   tables, subset-pair states, product states). The memory guard.
//! * **tuples** — facts derived by the Datalog engine. The other memory
//!   guard.
//! * **deadline** — wall-clock. Checked every [`CHECK_MASK`]+1 fuel ticks
//!   (and at every state construction), so the overhead on the hot path is
//!   a counter increment and a mask test.
//! * **cancellation** — a shared [`AtomicBool`] another thread may set;
//!   surfaces as [`Resource::Cancelled`].
//!
//! The ungoverned entry points (`check_on_the_fly`, `evaluate`, …) still
//! exist and behave exactly as before: they run under
//! [`Governor::unlimited`], which never exhausts.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The step-fuel budget ([`Limits::fuel`]).
    Fuel,
    /// The constructed-state cap ([`Limits::states`]).
    States,
    /// The derived-tuple cap ([`Limits::tuples`]).
    Tuples,
    /// The wall-clock deadline ([`Limits::deadline`]).
    Deadline,
    /// Cooperative cancellation via the shared flag.
    Cancelled,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::Fuel => "fuel",
            Resource::States => "states",
            Resource::Tuples => "tuples",
            Resource::Deadline => "deadline",
            Resource::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// Snapshot of everything a governor has metered so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Abstract search steps spent.
    pub fuel_spent: u64,
    /// Automaton / product states constructed.
    pub states_constructed: u64,
    /// Datalog facts derived.
    pub tuples_derived: u64,
    /// Canonical-expansion words enumerated.
    pub words_enumerated: u64,
    /// Wall-clock time since the governor started.
    pub elapsed: Duration,
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fuel={}, states={}, tuples={}, words={}, elapsed={:.1?}",
            self.fuel_spent,
            self.states_constructed,
            self.tuples_derived,
            self.words_enumerated,
            self.elapsed
        )
    }
}

/// A budget ran out: which one, how much was spent against what limit, and
/// the full counter snapshot at the moment of exhaustion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exhaustion {
    /// The resource that ran out.
    pub resource: Resource,
    /// Amount spent (for [`Resource::Deadline`], elapsed milliseconds).
    pub spent: u64,
    /// The configured limit (for [`Resource::Deadline`], the deadline in
    /// milliseconds; 0 for [`Resource::Cancelled`]).
    pub limit: u64,
    /// Snapshot of all counters when the budget ran out.
    pub counters: Counters,
}

impl fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::Cancelled => write!(f, "cancelled ({})", self.counters),
            Resource::Deadline => write!(
                f,
                "deadline exceeded: {}ms of {}ms ({})",
                self.spent, self.limit, self.counters
            ),
            r => write!(
                f,
                "{r} exhausted: spent {} of {} ({})",
                self.spent, self.limit, self.counters
            ),
        }
    }
}

impl std::error::Error for Exhaustion {}

/// Typed error for engine entry points: either a budget ran out or the
/// input itself was invalid. Malformed input and exhausted budgets never
/// abort the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A governor budget ran out mid-search.
    Exhausted(Exhaustion),
    /// The input was malformed or out of the engine's domain.
    InvalidInput {
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Exhausted(e) => write!(f, "{e}"),
            EngineError::InvalidInput { message } => write!(f, "invalid input: {message}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<Exhaustion> for EngineError {
    fn from(e: Exhaustion) -> Self {
        EngineError::Exhausted(e)
    }
}

/// Declarative resource budgets. `None` means unlimited. Cloneable and
/// comparable, so it can live inside configuration types; spawn a runtime
/// [`Governor`] per check with [`Limits::governor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Limits {
    /// Max abstract search steps.
    pub fuel: Option<u64>,
    /// Max constructed automaton / product states.
    pub states: Option<u64>,
    /// Max derived Datalog facts.
    pub tuples: Option<u64>,
    /// Wall-clock deadline for the whole check.
    pub deadline: Option<Duration>,
}

impl Limits {
    /// No limits at all — governed code behaves exactly like ungoverned
    /// code.
    pub const fn unlimited() -> Self {
        Limits {
            fuel: None,
            states: None,
            tuples: None,
            deadline: None,
        }
    }

    /// Builder: cap the step fuel.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Builder: cap constructed states.
    #[must_use]
    pub fn with_states(mut self, states: u64) -> Self {
        self.states = Some(states);
        self
    }

    /// Builder: cap derived tuples.
    #[must_use]
    pub fn with_tuples(mut self, tuples: u64) -> Self {
        self.tuples = Some(tuples);
        self
    }

    /// Builder: set a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether every budget is `None`.
    pub fn is_unlimited(&self) -> bool {
        *self == Limits::unlimited()
    }

    /// Spawn a fresh runtime governor for one check (the clock starts now).
    pub fn governor(&self) -> Governor {
        Governor::new(self.clone())
    }
}

impl Default for Limits {
    fn default() -> Self {
        Limits::unlimited()
    }
}

/// How often (in fuel ticks) the wall clock and cancellation flag are
/// polled: every 256 ticks, keeping `Instant::now` off the per-step path.
const CHECK_MASK: u64 = 0xFF;

/// Runtime resource meter for one check. Interior-mutable (`Cell`
/// counters) so engines can share one `&Governor` across nested calls;
/// intentionally `!Sync` — a governor meters a single search on a single
/// thread, while the cancellation flag is the cross-thread channel.
#[derive(Debug)]
pub struct Governor {
    limits: Limits,
    started: Instant,
    deadline_at: Option<Instant>,
    fuel_limit: u64,
    state_limit: u64,
    tuple_limit: u64,
    fuel: Cell<u64>,
    states: Cell<u64>,
    tuples: Cell<u64>,
    words: Cell<u64>,
    cancel: Arc<AtomicBool>,
    watched: Option<Arc<AtomicBool>>,
}

impl Governor {
    /// Start metering against `limits` (the clock starts now).
    pub fn new(limits: Limits) -> Self {
        Governor::with_cancel(limits, Arc::new(AtomicBool::new(false)))
    }

    /// Start metering against `limits` with an externally owned
    /// cancellation flag (set it from any thread to stop the search at the
    /// next poll).
    pub fn with_cancel(limits: Limits, cancel: Arc<AtomicBool>) -> Self {
        let started = Instant::now();
        Governor {
            deadline_at: limits.deadline.map(|d| started + d),
            fuel_limit: limits.fuel.unwrap_or(u64::MAX),
            state_limit: limits.states.unwrap_or(u64::MAX),
            tuple_limit: limits.tuples.unwrap_or(u64::MAX),
            limits,
            started,
            fuel: Cell::new(0),
            states: Cell::new(0),
            tuples: Cell::new(0),
            words: Cell::new(0),
            cancel,
            watched: None,
        }
    }

    /// Additionally observe a **read-only** cancellation flag. Unlike the
    /// flag passed to [`Governor::with_cancel`], this one is never written
    /// by the governor: [`Governor::cancel`] (the peer-cancel path inside
    /// parallel evaluators) does not touch it, so the flag's owner can
    /// reuse it across retries without an internal exhaustion in one
    /// attempt poisoning the next.
    pub fn watching(mut self, flag: Arc<AtomicBool>) -> Self {
        self.watched = Some(flag);
        self
    }

    /// A governor that never exhausts (the ungoverned-API implementation).
    pub fn unlimited() -> Self {
        Governor::new(Limits::unlimited())
    }

    /// The limits this governor enforces.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// The shared cancellation flag; set it to `true` from another thread
    /// to stop the governed search cooperatively.
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Request cancellation (equivalent to setting the flag directly).
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Wall-clock time since this governor was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Fuel spent so far — the one counter trace spans delta against.
    /// Unlike [`Governor::counters`] this reads a single cell and never
    /// touches the clock, so it is safe on hot paths.
    pub fn fuel_spent(&self) -> u64 {
        self.fuel.get()
    }

    /// Snapshot of everything metered so far.
    pub fn counters(&self) -> Counters {
        Counters {
            fuel_spent: self.fuel.get(),
            states_constructed: self.states.get(),
            tuples_derived: self.tuples.get(),
            words_enumerated: self.words.get(),
            elapsed: self.elapsed(),
        }
    }

    fn exhaustion(&self, resource: Resource, spent: u64, limit: u64) -> Exhaustion {
        metrics::exhaustions(resource).inc();
        Exhaustion {
            resource,
            spent,
            limit,
            counters: self.counters(),
        }
    }

    /// Spend one unit of fuel; polls the clock/cancel flag periodically.
    #[inline]
    pub fn tick(&self) -> Result<(), Exhaustion> {
        self.spend(1)
    }

    /// Spend `n` units of fuel at once (bulk work units).
    #[inline]
    pub fn spend(&self, n: u64) -> Result<(), Exhaustion> {
        let f = self.fuel.get().saturating_add(n);
        self.fuel.set(f);
        if f > self.fuel_limit {
            return Err(self.exhaustion(Resource::Fuel, f, self.fuel_limit));
        }
        if f & CHECK_MASK < n {
            self.check_wall()?;
        }
        Ok(())
    }

    /// Record the construction of one automaton / product state.
    #[inline]
    pub fn construct_state(&self) -> Result<(), Exhaustion> {
        let s = self.states.get() + 1;
        self.states.set(s);
        if s > self.state_limit {
            return Err(self.exhaustion(Resource::States, s, self.state_limit));
        }
        if s & 0x3F == 0 {
            self.check_wall()?;
        }
        Ok(())
    }

    /// Record the derivation of one Datalog fact.
    #[inline]
    pub fn derive_tuple(&self) -> Result<(), Exhaustion> {
        let t = self.tuples.get() + 1;
        self.tuples.set(t);
        if t > self.tuple_limit {
            return Err(self.exhaustion(Resource::Tuples, t, self.tuple_limit));
        }
        if t & CHECK_MASK == 0 {
            self.check_wall()?;
        }
        Ok(())
    }

    /// Record one enumerated canonical-expansion word (costs one fuel).
    #[inline]
    pub fn count_word(&self) -> Result<(), Exhaustion> {
        self.words.set(self.words.get() + 1);
        self.tick()
    }

    /// Force a wall-clock + cancellation check (engines call this at
    /// coarse boundaries: per stratum, per fixpoint round, per BFS layer).
    pub fn check_wall(&self) -> Result<(), Exhaustion> {
        if self.cancel.load(Ordering::Relaxed) {
            return Err(self.exhaustion(Resource::Cancelled, 0, 0));
        }
        if let Some(watched) = &self.watched {
            if watched.load(Ordering::Relaxed) {
                return Err(self.exhaustion(Resource::Cancelled, 0, 0));
            }
        }
        if let Some(at) = self.deadline_at {
            let now = Instant::now();
            if now >= at {
                let limit = self.limits.deadline.unwrap_or_default();
                return Err(self.exhaustion(
                    Resource::Deadline,
                    (now - self.started).as_millis() as u64,
                    limit.as_millis() as u64,
                ));
            }
        }
        Ok(())
    }
}

impl Default for Governor {
    fn default() -> Self {
        Governor::unlimited()
    }
}

/// Workspace-wide exhaustion counters, one per [`Resource`]. Incremented
/// on the cold path only (constructing an [`Exhaustion`]), so the
/// per-tick hot path never touches them.
mod metrics {
    use super::Resource;
    use rq_metrics::{global, Counter};
    use std::sync::{Arc, OnceLock};

    pub(super) fn exhaustions(resource: Resource) -> &'static Counter {
        static CELLS: OnceLock<[Arc<Counter>; 5]> = OnceLock::new();
        let cells = CELLS.get_or_init(|| {
            ["fuel", "states", "tuples", "deadline", "cancelled"].map(|r| {
                global().counter_with(
                    "rq_governor_exhaustions_total",
                    &[("resource", r)],
                    "Governor budgets tripped, by resource",
                )
            })
        });
        let i = match resource {
            Resource::Fuel => 0,
            Resource::States => 1,
            Resource::Tuples => 2,
            Resource::Deadline => 3,
            Resource::Cancelled => 4,
        };
        &cells[i]
    }
}

/// Unwrap a governed result produced under [`Governor::unlimited`].
///
/// The ungoverned public entry points run their governed twins with an
/// unlimited governor, which can never exhaust; this keeps that invariant
/// in one audited place.
pub fn expect_unlimited<T>(r: Result<T, Exhaustion>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => unreachable!("unlimited governor reported exhaustion: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let g = Governor::unlimited();
        for _ in 0..100_000 {
            g.tick().unwrap();
        }
        g.construct_state().unwrap();
        g.derive_tuple().unwrap();
        assert_eq!(g.counters().fuel_spent, 100_000);
        assert_eq!(g.counters().states_constructed, 1);
        assert_eq!(g.counters().tuples_derived, 1);
    }

    #[test]
    fn fuel_exhausts_at_the_limit() {
        let g = Limits::unlimited().with_fuel(10).governor();
        for _ in 0..10 {
            g.tick().unwrap();
        }
        let e = g.tick().unwrap_err();
        assert_eq!(e.resource, Resource::Fuel);
        assert_eq!(e.limit, 10);
        assert_eq!(e.spent, 11);
        assert_eq!(e.counters.fuel_spent, 11);
    }

    #[test]
    fn state_and_tuple_caps() {
        let g = Limits::unlimited().with_states(2).with_tuples(3).governor();
        g.construct_state().unwrap();
        g.construct_state().unwrap();
        assert_eq!(g.construct_state().unwrap_err().resource, Resource::States);
        for _ in 0..3 {
            g.derive_tuple().unwrap();
        }
        assert_eq!(g.derive_tuple().unwrap_err().resource, Resource::Tuples);
    }

    #[test]
    fn deadline_is_detected() {
        let g = Limits::unlimited()
            .with_deadline(Duration::from_millis(0))
            .governor();
        // The masked tick path must hit the deadline within one poll window.
        let mut err = None;
        for _ in 0..=(CHECK_MASK + 1) {
            if let Err(e) = g.tick() {
                err = Some(e);
                break;
            }
        }
        let e = err.expect("deadline must trip within one poll window");
        assert_eq!(e.resource, Resource::Deadline);
        assert!(g.check_wall().is_err());
    }

    #[test]
    fn cancellation_flag_stops_the_search() {
        let g = Governor::unlimited();
        let flag = g.cancel_flag();
        assert!(g.check_wall().is_ok());
        flag.store(true, Ordering::Relaxed);
        assert_eq!(g.check_wall().unwrap_err().resource, Resource::Cancelled);
    }

    #[test]
    fn watched_flag_is_observed_but_never_written() {
        let external = Arc::new(AtomicBool::new(false));
        let g = Governor::unlimited().watching(Arc::clone(&external));
        assert!(g.check_wall().is_ok());
        // The internal peer-cancel path must not leak into the watched
        // flag: its owner may reuse it across retry attempts.
        g.cancel();
        assert!(!external.load(Ordering::Relaxed));
        assert_eq!(g.check_wall().unwrap_err().resource, Resource::Cancelled);

        let external = Arc::new(AtomicBool::new(false));
        let g = Governor::unlimited().watching(Arc::clone(&external));
        external.store(true, Ordering::Relaxed);
        assert_eq!(g.check_wall().unwrap_err().resource, Resource::Cancelled);
    }

    #[test]
    fn spend_bulk_counts_and_trips() {
        let g = Limits::unlimited().with_fuel(100).governor();
        g.spend(60).unwrap();
        let e = g.spend(60).unwrap_err();
        assert_eq!(e.resource, Resource::Fuel);
        assert_eq!(e.spent, 120);
    }

    #[test]
    fn limits_builder_and_equality() {
        let l = Limits::unlimited()
            .with_fuel(1)
            .with_states(2)
            .with_tuples(3)
            .with_deadline(Duration::from_millis(4));
        assert_eq!(l.fuel, Some(1));
        assert_eq!(l.states, Some(2));
        assert_eq!(l.tuples, Some(3));
        assert_eq!(l.deadline, Some(Duration::from_millis(4)));
        assert!(!l.is_unlimited());
        assert!(Limits::default().is_unlimited());
    }

    #[test]
    fn displays_are_informative() {
        let g = Limits::unlimited().with_fuel(1).governor();
        g.tick().unwrap();
        let e = g.tick().unwrap_err();
        let s = e.to_string();
        assert!(s.contains("fuel exhausted"), "{s}");
        assert!(s.contains("spent 2 of 1"), "{s}");
        let err: EngineError = e.into();
        assert!(err.to_string().contains("fuel exhausted"));
        let inv = EngineError::InvalidInput {
            message: "bad".into(),
        };
        assert!(inv.to_string().contains("invalid input: bad"));
    }
}
