//! Two-way nondeterministic finite automata (2NFAs).
//!
//! A 2NFA reads its input on a tape delimited by endmarkers `⊢ w ⊣` and may
//! move its head left, right, or stay (directions {−1, 0, +1}, matching the
//! paper's definition in §3.2). Conventions used throughout this crate:
//!
//! * the tape of `w = w₁…wₙ` has cells `0..=n+1`; cell 0 holds [`Tape::Left`],
//!   cell `i` holds `wᵢ`, cell `n+1` holds [`Tape::Right`];
//! * a run starts in an initial state with the head on cell 0;
//! * the automaton accepts iff it ever reaches a final state with the head
//!   on the right endmarker (cell `n+1`).
//!
//! Membership is decided in polynomial time by reachability in the
//! configuration graph. For complementation see [`crate::complement2`]
//! (Lemma 4) and [`crate::shepherdson`] (table-based determinization).

use crate::alphabet::Letter;
use crate::nfa::{Nfa, State};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Head movement of a 2NFA transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Move {
    /// Move the head one cell left (−1).
    Left,
    /// Keep the head in place (0).
    Stay,
    /// Move the head one cell right (+1).
    Right,
}

impl Move {
    /// The head displacement as a signed offset.
    #[inline]
    pub fn delta(self) -> isize {
        match self {
            Move::Left => -1,
            Move::Stay => 0,
            Move::Right => 1,
        }
    }
}

/// A tape symbol: an input letter or an endmarker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Tape {
    /// The left endmarker ⊢ (cell 0).
    Left,
    /// An input letter.
    Letter(Letter),
    /// The right endmarker ⊣ (cell n+1).
    Right,
}

/// A two-way NFA with endmarkers.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TwoNfa {
    on_letter: Vec<HashMap<Letter, Vec<(State, Move)>>>,
    on_left: Vec<Vec<(State, Move)>>,
    on_right: Vec<Vec<(State, Move)>>,
    initial: BTreeSet<State>,
    finals: BTreeSet<State>,
}

impl TwoNfa {
    /// An automaton with `n` states and no transitions.
    pub fn with_states(n: usize) -> Self {
        TwoNfa {
            on_letter: vec![HashMap::new(); n],
            on_left: vec![Vec::new(); n],
            on_right: vec![Vec::new(); n],
            initial: BTreeSet::new(),
            finals: BTreeSet::new(),
        }
    }

    /// Add a fresh state, returning its index.
    pub fn add_state(&mut self) -> State {
        self.on_letter.push(HashMap::new());
        self.on_left.push(Vec::new());
        self.on_right.push(Vec::new());
        self.on_letter.len() - 1
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.on_letter.len()
    }

    /// Mark `s` initial.
    pub fn set_initial(&mut self, s: State) {
        self.initial.insert(s);
    }

    /// Mark `s` final.
    pub fn set_final(&mut self, s: State) {
        self.finals.insert(s);
    }

    /// The initial states.
    pub fn initial_states(&self) -> impl Iterator<Item = State> + '_ {
        self.initial.iter().copied()
    }

    /// The final states.
    pub fn final_states(&self) -> &BTreeSet<State> {
        &self.finals
    }

    /// Whether `s` is final.
    pub fn is_final(&self, s: State) -> bool {
        self.finals.contains(&s)
    }

    /// Add a transition on tape symbol `sym`. Transitions that would move
    /// the head off the tape (left of ⊢, right of ⊣) are rejected with a
    /// panic — they can never be part of a valid run.
    pub fn add_transition(&mut self, from: State, sym: Tape, to: State, mv: Move) {
        match sym {
            Tape::Left => {
                assert!(mv != Move::Left, "cannot move left off the left endmarker");
                if !self.on_left[from].contains(&(to, mv)) {
                    self.on_left[from].push((to, mv));
                }
            }
            Tape::Right => {
                assert!(
                    mv != Move::Right,
                    "cannot move right off the right endmarker"
                );
                if !self.on_right[from].contains(&(to, mv)) {
                    self.on_right[from].push((to, mv));
                }
            }
            Tape::Letter(l) => {
                let v = self.on_letter[from].entry(l).or_default();
                if !v.contains(&(to, mv)) {
                    v.push((to, mv));
                }
            }
        }
    }

    /// The transitions available from `s` reading `sym`.
    pub fn transitions(&self, s: State, sym: Tape) -> &[(State, Move)] {
        match sym {
            Tape::Left => &self.on_left[s],
            Tape::Right => &self.on_right[s],
            Tape::Letter(l) => self.on_letter[s].get(&l).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    /// The set of letters with at least one transition.
    pub fn letters(&self) -> BTreeSet<Letter> {
        self.on_letter
            .iter()
            .flat_map(|m| m.keys().copied())
            .collect()
    }

    /// Total number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.on_letter
            .iter()
            .map(|m| m.values().map(Vec::len).sum::<usize>())
            .sum::<usize>()
            + self.on_left.iter().map(Vec::len).sum::<usize>()
            + self.on_right.iter().map(Vec::len).sum::<usize>()
    }

    /// Embed a one-way ε-free NFA as a 2NFA (used by tests to cross-check
    /// the two membership procedures).
    pub fn from_nfa(nfa: &Nfa) -> TwoNfa {
        let nfa = nfa.eliminate_epsilon();
        let mut m = TwoNfa::with_states(nfa.num_states());
        for s in 0..nfa.num_states() {
            for &(l, t) in nfa.transitions_from(s) {
                m.add_transition(s, Tape::Letter(l), t, Move::Right);
            }
        }
        for s in nfa.initial_states() {
            m.set_initial(s);
            // Walk off the left endmarker onto the word.
            m.add_transition(s, Tape::Left, s, Move::Right);
        }
        for s in 0..nfa.num_states() {
            if nfa.is_final(s) {
                m.set_final(s);
            }
        }
        m
    }

    /// The tape symbol at `cell` for input `word`.
    fn tape_symbol(word: &[Letter], cell: usize) -> Tape {
        if cell == 0 {
            Tape::Left
        } else if cell == word.len() + 1 {
            Tape::Right
        } else {
            Tape::Letter(word[cell - 1])
        }
    }

    /// Whether `word ∈ L(self)`: BFS over the configuration graph
    /// `(state, cell)`, accepting when a final state reaches the right
    /// endmarker. Runs in `O(|Q| · |w| · transitions)`.
    pub fn accepts(&self, word: &[Letter]) -> bool {
        let cells = word.len() + 2;
        let n = self.num_states();
        let mut seen = vec![false; n * cells];
        let mut queue: VecDeque<(State, usize)> = VecDeque::new();
        for &s in &self.initial {
            if !seen[s * cells] {
                seen[s * cells] = true;
                queue.push_back((s, 0));
            }
        }
        while let Some((s, cell)) = queue.pop_front() {
            if cell == cells - 1 && self.finals.contains(&s) {
                return true;
            }
            let sym = Self::tape_symbol(word, cell);
            for &(t, mv) in self.transitions(s, sym) {
                let nc = cell as isize + mv.delta();
                if nc < 0 || nc as usize >= cells {
                    continue; // defensively skip off-tape moves
                }
                let nc = nc as usize;
                if !seen[t * cells + nc] {
                    seen[t * cells + nc] = true;
                    queue.push_back((t, nc));
                }
            }
        }
        false
    }

    /// An accepting run (sequence of `(state, cell)` configurations), if one
    /// exists. Useful for debugging constructions and in doc examples.
    pub fn accepting_run(&self, word: &[Letter]) -> Option<Vec<(State, usize)>> {
        let cells = word.len() + 2;
        let n = self.num_states();
        let mut pred: Vec<Option<(State, usize)>> = vec![None; n * cells];
        let mut seen = vec![false; n * cells];
        let mut queue: VecDeque<(State, usize)> = VecDeque::new();
        for &s in &self.initial {
            if !seen[s * cells] {
                seen[s * cells] = true;
                queue.push_back((s, 0));
            }
        }
        let mut hit = None;
        'bfs: while let Some((s, cell)) = queue.pop_front() {
            if cell == cells - 1 && self.finals.contains(&s) {
                hit = Some((s, cell));
                break 'bfs;
            }
            let sym = Self::tape_symbol(word, cell);
            for &(t, mv) in self.transitions(s, sym) {
                let nc = cell as isize + mv.delta();
                if nc < 0 || nc as usize >= cells {
                    continue;
                }
                let nc = nc as usize;
                if !seen[t * cells + nc] {
                    seen[t * cells + nc] = true;
                    pred[t * cells + nc] = Some((s, cell));
                    queue.push_back((t, nc));
                }
            }
        }
        let mut cur = hit?;
        let mut run = vec![cur];
        while let Some(p) = pred[cur.0 * cells + cur.1] {
            run.push(p);
            cur = p;
        }
        run.reverse();
        Some(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{Alphabet, LabelId};
    use crate::regex::parse;

    fn letters2() -> (Letter, Letter) {
        (Letter::forward(LabelId(0)), Letter::forward(LabelId(1)))
    }

    #[test]
    fn from_nfa_agrees_with_nfa() {
        for s in ["a(b|c)*", "(a|b)*abb", "ε", "a+b+"] {
            let mut al = Alphabet::new();
            let e = parse(s, &mut al).unwrap();
            let n = Nfa::from_regex(&e);
            let m = TwoNfa::from_nfa(&n);
            for w in n.enumerate_words(5, 200) {
                assert!(m.accepts(&w), "{s} should accept via 2NFA");
            }
            // And some non-members.
            let (a, b) = letters2();
            for w in [vec![], vec![a], vec![b, a], vec![a, a, a, a]] {
                assert_eq!(n.accepts(&w), m.accepts(&w), "{s} on {w:?}");
            }
        }
    }

    #[test]
    fn two_way_movement_is_usable() {
        // A 2NFA for {a^k : k >= 1} that walks to the end, walks back to the
        // left marker, and walks forward again before accepting. State 1
        // witnesses that at least one 'a' was read before the bounce.
        let (a, _) = letters2();
        let mut m = TwoNfa::with_states(5);
        m.set_initial(0);
        m.set_final(4);
        m.add_transition(0, Tape::Left, 0, Move::Right);
        m.add_transition(0, Tape::Letter(a), 1, Move::Right); // first 'a'
        m.add_transition(1, Tape::Letter(a), 1, Move::Right); // to the right end
        m.add_transition(1, Tape::Right, 2, Move::Left); // bounce
        m.add_transition(2, Tape::Letter(a), 2, Move::Left); // back to start
        m.add_transition(2, Tape::Left, 3, Move::Right); // bounce again
        m.add_transition(3, Tape::Letter(a), 3, Move::Right);
        m.add_transition(3, Tape::Right, 4, Move::Stay); // arrive final at ⊣
        assert!(!m.accepts(&[]));
        assert!(m.accepts(&[a]));
        assert!(m.accepts(&[a, a, a]));
        let run = m.accepting_run(&[a, a]).unwrap();
        assert_eq!(run.first(), Some(&(0, 0)));
        assert_eq!(run.last().map(|&(s, c)| (s, c)), Some((4, 3)));
    }

    #[test]
    fn empty_word_needs_final_reachable_at_right_marker() {
        let (a, _) = letters2();
        let mut m = TwoNfa::with_states(2);
        m.set_initial(0);
        m.set_final(1);
        m.add_transition(0, Tape::Left, 0, Move::Right);
        m.add_transition(0, Tape::Right, 1, Move::Stay);
        assert!(m.accepts(&[]));
        assert!(!m.accepts(&[a]));
    }

    #[test]
    #[should_panic(expected = "cannot move left off the left endmarker")]
    fn off_tape_transitions_rejected() {
        let mut m = TwoNfa::with_states(1);
        m.add_transition(0, Tape::Left, 0, Move::Left);
    }

    #[test]
    fn stay_moves_do_not_loop_forever() {
        // 0-moves forming a cycle must not hang membership.
        let (a, _) = letters2();
        let mut m = TwoNfa::with_states(2);
        m.set_initial(0);
        m.set_final(1);
        m.add_transition(0, Tape::Letter(a), 0, Move::Stay);
        m.add_transition(0, Tape::Left, 0, Move::Right);
        assert!(!m.accepts(&[a]));
    }
}
