//! NFA → regular expression conversion by state elimination.
//!
//! "Regular languages have robust definability properties … different means
//! of defining regular languages, e.g., regular expressions vs. automata,
//! have the same expressive power" (§1). [`Nfa::from_regex`] provides one
//! direction; this module provides the other via the classic GNFA
//! (generalized NFA) state-elimination algorithm, closing the loop. The
//! output is equivalent (asserted by property tests), though not minimal —
//! state elimination can blow up syntactically.

use crate::nfa::Nfa;
use crate::regex::Regex;
use std::collections::BTreeMap;

/// Convert `nfa` into an equivalent regular expression.
pub fn nfa_to_regex(nfa: &Nfa) -> Regex {
    let nfa = nfa.eliminate_epsilon().trim();
    let n = nfa.num_states();
    if n == 0 {
        return Regex::Empty;
    }
    // GNFA over states 0..n plus fresh start `n` and accept `n+1`.
    // edges[(i, j)] = regex labeling the transition i → j.
    let start = n;
    let accept = n + 1;
    let mut edges: BTreeMap<(usize, usize), Regex> = BTreeMap::new();
    let add = |edges: &mut BTreeMap<(usize, usize), Regex>, i: usize, j: usize, e: Regex| {
        let entry = edges.remove(&(i, j));
        let combined = match entry {
            Some(prev) => prev.or(e),
            None => e,
        };
        if combined != Regex::Empty {
            edges.insert((i, j), combined);
        }
    };
    for s in 0..n {
        for &(l, t) in nfa.transitions_from(s) {
            add(&mut edges, s, t, Regex::Letter(l));
        }
    }
    for s in nfa.initial_states() {
        add(&mut edges, start, s, Regex::Epsilon);
    }
    for s in 0..n {
        if nfa.is_final(s) {
            add(&mut edges, s, accept, Regex::Epsilon);
        }
    }

    // Eliminate the original states one by one.
    for victim in 0..n {
        let self_loop = edges.remove(&(victim, victim));
        let loop_star = match self_loop {
            Some(e) => e.star(),
            None => Regex::Epsilon,
        };
        let incoming: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|((_, j), _)| *j == victim)
            .map(|((i, _), e)| (*i, e.clone()))
            .collect();
        let outgoing: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|((i, _), _)| *i == victim)
            .map(|((_, j), e)| (*j, e.clone()))
            .collect();
        edges.retain(|(i, j), _| *i != victim && *j != victim);
        for (i, ein) in &incoming {
            for (j, eout) in &outgoing {
                let path = ein.clone().then(loop_star.clone()).then(eout.clone());
                add(&mut edges, *i, *j, path);
            }
        }
    }
    edges.remove(&(start, accept)).unwrap_or(Regex::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::containment::equivalent;
    use crate::random::{random_regex, RegexConfig, SplitMix64};
    use crate::regex::parse;

    fn roundtrip(e: &Regex) {
        let n = Nfa::from_regex(e);
        let back = nfa_to_regex(&n);
        assert!(
            equivalent(&n, &Nfa::from_regex(&back)),
            "roundtrip changed the language of {e:?} (got {back:?})"
        );
    }

    #[test]
    fn simple_roundtrips() {
        let mut al = Alphabet::new();
        for s in [
            "a",
            "a b",
            "a|b",
            "a*",
            "(a|b)* a b b",
            "a b- | c+",
            "ε",
            "∅",
        ] {
            let e = parse(s, &mut al).unwrap();
            roundtrip(&e);
        }
    }

    #[test]
    fn empty_automaton_gives_empty_regex() {
        let n = Nfa::with_states(0);
        assert_eq!(nfa_to_regex(&n), Regex::Empty);
        // Non-empty automaton with no accepting path.
        let mut n = Nfa::with_states(2);
        n.set_initial(0);
        assert_eq!(nfa_to_regex(&n), Regex::Empty);
    }

    #[test]
    fn epsilon_automaton() {
        let mut n = Nfa::with_states(1);
        n.set_initial(0);
        n.set_final(0);
        let e = nfa_to_regex(&n);
        assert!(Nfa::from_regex(&e).accepts(&[]));
    }

    #[test]
    fn random_roundtrips() {
        let mut rng = SplitMix64::new(2026);
        let cfg = RegexConfig {
            num_labels: 2,
            inverse_prob: 0.3,
            leaves: 6,
            repeat_prob: 0.35,
        };
        for _ in 0..30 {
            let e = random_regex(&mut rng, &cfg);
            roundtrip(&e);
        }
    }

    #[test]
    fn random_nfa_roundtrips() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..15 {
            let n = crate::random::random_nfa(&mut rng, 5, 2, 0.3, 1.2);
            let e = nfa_to_regex(&n);
            assert!(
                equivalent(&n, &Nfa::from_regex(&e)),
                "language changed for a random NFA"
            );
        }
    }
}
