//! The *fold* relation and the Lemma 3 construction.
//!
//! Containment of 2RPQs is characterized language-theoretically by folding
//! (Lemma 2): `Q1 ⊑ Q2` iff `L(Q1) ⊆ fold(L(Q2))`, where `v ⇝ u` ("v folds
//! onto u") means a two-way walk over `u` spells `v` — formally there are
//! positions `i₀ = 0, …, iₘ = |u|` with, at each step, either
//! `iⱼ₊₁ = iⱼ + 1` and `vⱼ₊₁ = u_{iⱼ₊₁}` (a forward move) or
//! `iⱼ₊₁ = iⱼ − 1` and `vⱼ₊₁ = (u_{iⱼ})⁻` (a backward move). The paper's
//! example: `a b b⁻ b c ⇝ a b c` via positions `0,1,2,1,2,3`.
//!
//! This module provides:
//! * [`folds_onto`] — the word-level relation, by dynamic programming;
//! * [`fold_membership`] — `u ∈ fold(L(A))` for an NFA `A`, by product
//!   reachability (polynomial, used for cross-validation);
//! * [`fold_twonfa`] — **Lemma 3**: a 2NFA for `fold(L(A))` with exactly
//!   `n·(|Σ±|+1)` states.

use crate::alphabet::Letter;
use crate::nfa::Nfa;
use crate::twonfa::{Move, Tape, TwoNfa};
use std::collections::BTreeSet;

/// Whether `v ⇝ u` (v folds onto u).
///
/// Dynamic programming over prefixes of `v`: after reading `v₁…vⱼ` the set
/// of possible positions on `u` is tracked; `v ⇝ u` iff position `|u|` is
/// reachable after all of `v`.
pub fn folds_onto(v: &[Letter], u: &[Letter]) -> bool {
    let n = u.len();
    let mut positions: BTreeSet<usize> = BTreeSet::from([0]);
    for &x in v {
        let mut next = BTreeSet::new();
        for &i in &positions {
            // Forward: read u_{i+1}.
            if i < n && u[i] == x {
                next.insert(i + 1);
            }
            // Backward: read (u_i)⁻.
            if i > 0 && u[i - 1].inv() == x {
                next.insert(i - 1);
            }
        }
        if next.is_empty() {
            return false;
        }
        positions = next;
    }
    positions.contains(&n)
}

/// Whether `u ∈ fold(L(A))`, i.e., some `v ∈ L(A)` folds onto `u`.
///
/// Decided directly by reachability in the product of `A` with positions of
/// `u`: configurations are `(state of A, position on u)`; `A`'s transitions
/// on letter `x` pair with forward moves reading `u_{i+1} = x` and backward
/// moves reading `(u_i)⁻ = x`. Polynomial time; the reference oracle for
/// testing the Lemma 3 construction.
pub fn fold_membership(a: &Nfa, u: &[Letter]) -> bool {
    let a = a.eliminate_epsilon();
    let n = u.len();
    let mut seen = vec![false; a.num_states() * (n + 1)];
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for s in a.initial_states() {
        seen[s * (n + 1)] = true;
        stack.push((s, 0));
    }
    while let Some((s, i)) = stack.pop() {
        if i == n && a.is_final(s) {
            return true;
        }
        for &(x, t) in a.transitions_from(s) {
            if i < n && u[i] == x && !seen[t * (n + 1) + i + 1] {
                seen[t * (n + 1) + i + 1] = true;
                stack.push((t, i + 1));
            }
            if i > 0 && u[i - 1].inv() == x && !seen[t * (n + 1) + i - 1] {
                seen[t * (n + 1) + i - 1] = true;
                stack.push((t, i - 1));
            }
        }
        // Acceptance requires consuming all of v, so a final state matters
        // only when the position is n — handled above. (Final states with
        // remaining transitions continue exploring.)
    }
    // ε ∈ L(A) folds onto ε only.
    false
}

/// **Lemma 3.** Build a 2NFA for `fold(L(a))` with exactly
/// `n·(|sigma_pm| + 1)` states, where `n` is the state count of the ε-free
/// trim of `a` and `sigma_pm` is the letter universe Σ± supplied.
///
/// State layout: for each NFA state `s` there is a *cruise* state `(s, ⊥)`
/// (the walk over `u` is at a definite position and `A` is in state `s`)
/// and, for each letter `b ∈ Σ±`, a *verify* state `(s, b)` entered after
/// guessing that the next move of the fold is backward over an occurrence
/// of `b` (reading `b⁻` in `v`); the verify state moves left and confirms
/// the guessed letter with a 0-move.
pub fn fold_twonfa(a: &Nfa, sigma_pm: &[Letter]) -> TwoNfa {
    let a = a.eliminate_epsilon();
    let n = a.num_states();
    let k = sigma_pm.len();
    let letter_pos = |b: Letter| -> usize {
        sigma_pm
            .iter()
            .position(|&l| l == b)
            .expect("letter universe must cover the automaton's letters")
    };
    // State numbering: cruise(s) = s; verify(s, b) = n + s*k + pos(b).
    let cruise = |s: usize| s;
    let verify = |s: usize, bi: usize| n + s * k + bi;
    let mut m = TwoNfa::with_states(n * (k + 1));

    for s in 0..n {
        // Walk from the left endmarker onto the word (and on re-visits,
        // which cannot occur, it is harmless).
        m.add_transition(cruise(s), Tape::Left, cruise(s), Move::Right);
        for &(x, t) in a.transitions_from(s) {
            // Forward fold move: A reads x; the walk advances reading
            // u_{i+1} = x.
            m.add_transition(cruise(s), Tape::Letter(x), cruise(t), Move::Right);
            // Backward fold move: A reads x = b⁻ for some b ∈ Σ±; the walk
            // retreats over u_{iⱼ} = b. Guess b now, verify after moving
            // left. This transition is available at every cell except ⊢ —
            // including the right endmarker.
            let b = x.inv();
            let bi = letter_pos(b);
            for &u_sym in sigma_pm {
                m.add_transition(cruise(s), Tape::Letter(u_sym), verify(t, bi), Move::Left);
            }
            m.add_transition(cruise(s), Tape::Right, verify(t, bi), Move::Left);
        }
    }
    // Verify states: confirm the guessed letter, then resume cruising.
    for s in 0..n {
        for (bi, &b) in sigma_pm.iter().enumerate() {
            m.add_transition(verify(s, bi), Tape::Letter(b), cruise(s), Move::Stay);
            // On ⊢ or a different letter the verify state has no
            // transition: the guess was wrong and the branch dies.
        }
    }
    for s in a.initial_states() {
        m.set_initial(cruise(s));
    }
    for s in 0..n {
        if a.is_final(s) {
            m.set_final(cruise(s));
        }
    }
    m
}

/// The exact state count promised by Lemma 3 for an ε-free `a`.
pub fn lemma3_state_bound(nfa_states: usize, sigma_pm_len: usize) -> usize {
    nfa_states * (sigma_pm_len + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{Alphabet, LabelId};
    use crate::regex::parse;

    fn al3() -> Alphabet {
        Alphabet::from_names(["a", "b", "c"])
    }

    fn lw(s: &str, al: &Alphabet) -> Vec<Letter> {
        // Single-char labels with optional '-' suffix.
        let mut out = Vec::new();
        let mut chars = s.chars().peekable();
        while let Some(c) = chars.next() {
            if c.is_whitespace() {
                continue;
            }
            let id = al.get(&c.to_string()).expect("label");
            let inv = chars.peek() == Some(&'-');
            if inv {
                chars.next();
            }
            out.push(if inv {
                Letter::backward(id)
            } else {
                Letter::forward(id)
            });
        }
        out
    }

    #[test]
    fn paper_fold_example() {
        // abb⁻bc ⇝ abc, via 0,1,2,1,2,3.
        let al = al3();
        assert!(folds_onto(&lw("abb-bc", &al), &lw("abc", &al)));
        assert!(!folds_onto(&lw("abb-bc", &al), &lw("ab", &al)));
        assert!(!folds_onto(&lw("ac", &al), &lw("abc", &al)));
    }

    #[test]
    fn fold_is_reflexive() {
        let al = al3();
        for s in ["", "a", "abc", "ab-c"] {
            let w = lw(s, &al);
            assert!(folds_onto(&w, &w), "{s} should fold onto itself");
        }
    }

    #[test]
    fn pp_inverse_p_folds_onto_p() {
        // The paper's 2RPQ example: p p⁻ p ⇝ p.
        let _al = Alphabet::from_names(["p"]);
        let p = Letter::forward(LabelId(0));
        assert!(folds_onto(&[p, p.inv(), p], &[p]));
        // And not the other way: p does not fold onto p p⁻ p (it would end
        // at position 1, not 3).
        assert!(!folds_onto(&[p], &[p, p.inv(), p]));
    }

    #[test]
    fn epsilon_folding() {
        let al = al3();
        assert!(folds_onto(&[], &[]));
        assert!(!folds_onto(&[], &lw("a", &al)));
        // aa⁻ folds onto ε? Positions must end at |u| = 0: a forward move
        // needs a letter in u, so no.
        assert!(!folds_onto(&lw("aa-", &al), &[]));
    }

    #[test]
    fn fold_membership_matches_dp() {
        // For L = L(regex), u ∈ fold(L) iff some enumerated v ∈ L folds
        // onto u (complete up to the enumeration horizon).
        let mut al = al3();
        for (re, u, expected) in [
            ("p p- p", "p", true),
            ("a b c", "abc", true),
            ("a b b- b c", "abc", true),
            ("a b c", "ac", false),
            ("a a- a", "aaa", false),
            ("(a b-)*", "", true),
        ] {
            let e = parse(re, &mut al).unwrap();
            let n = Nfa::from_regex(&e);
            let uw = lw(u, &al);
            assert_eq!(fold_membership(&n, &uw), expected, "{re} on {u}");
            // Cross-check against enumeration + DP.
            let any_fold = n
                .enumerate_words(8, 2000)
                .iter()
                .any(|v| folds_onto(v, &uw));
            assert_eq!(
                any_fold, expected,
                "enumeration cross-check for {re} on {u}"
            );
        }
    }

    #[test]
    fn lemma3_construction_has_exact_state_count() {
        let mut al = al3();
        let e = parse("a(b|c)*b-", &mut al).unwrap();
        let n = Nfa::from_regex(&e).eliminate_epsilon();
        let sigma_pm: Vec<Letter> = al.sigma_pm().collect();
        let m = fold_twonfa(&n, &sigma_pm);
        assert_eq!(
            m.num_states(),
            lemma3_state_bound(n.num_states(), sigma_pm.len())
        );
    }

    #[test]
    fn lemma3_twonfa_agrees_with_direct_membership() {
        let mut al = Alphabet::from_names(["a", "b"]);
        let sigma_pm: Vec<Letter> = al.sigma_pm().collect();
        let regexes = ["a", "a b", "a a- a", "(a|b-)*", "a(b a)*", "b- a"];
        // All words over Σ± up to length 3.
        let mut words: Vec<Vec<Letter>> = vec![vec![]];
        let mut frontier = vec![Vec::<Letter>::new()];
        for _ in 0..3 {
            let mut next = Vec::new();
            for w in &frontier {
                for &l in &sigma_pm {
                    let mut w2 = w.clone();
                    w2.push(l);
                    next.push(w2);
                }
            }
            words.extend(next.iter().cloned());
            frontier = next;
        }
        for re in regexes {
            let e = parse(re, &mut al).unwrap();
            let n = Nfa::from_regex(&e);
            let m = fold_twonfa(&n, &sigma_pm);
            for u in &words {
                assert_eq!(
                    m.accepts(u),
                    fold_membership(&n, u),
                    "fold 2NFA vs direct membership disagree: re={re}, u={u:?}"
                );
            }
        }
    }

    #[test]
    fn fold_language_contains_original_language() {
        // v ⇝ v, so L(A) ⊆ fold(L(A)).
        let mut al = al3();
        let e = parse("a(b|c)+", &mut al).unwrap();
        let n = Nfa::from_regex(&e);
        let sigma_pm: Vec<Letter> = al.sigma_pm().collect();
        let m = fold_twonfa(&n, &sigma_pm);
        for w in n.enumerate_words(4, 100) {
            assert!(m.accepts(&w));
        }
    }
}
