//! Deterministic finite automata and the subset construction.
//!
//! The paper's complementation step (§3.2 step 2) "involves an exponential
//! blow-up, as complementation requires an application of the subset
//! construction". Both the eager construction ([`Dfa::determinize`]) and
//! the lazy, on-the-fly variant ([`LazyDeterminizer`]) are provided; the
//! containment algorithms use the lazy one to stay in polynomial space in
//! practice (E1 measures the difference).

use crate::alphabet::Letter;
use crate::governor::{expect_unlimited, Exhaustion, Governor};
use crate::nfa::{Nfa, State};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Sentinel for a missing transition in a (possibly incomplete) DFA.
pub const DEAD: usize = usize::MAX;

/// A deterministic finite automaton over an explicit letter list.
///
/// Transitions are stored densely: `transitions[state][letter_index]`.
/// Missing transitions ([`DEAD`]) mean "reject"; call [`Dfa::complete`] to
/// materialize an explicit sink state instead.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dfa {
    letters: Vec<Letter>,
    transitions: Vec<Vec<usize>>,
    initial: usize,
    finals: Vec<bool>,
}

impl Dfa {
    /// Eagerly determinize `nfa` over exactly `letters` (the DFA's alphabet;
    /// transitions of `nfa` on letters outside the list are ignored).
    pub fn determinize(nfa: &Nfa, letters: &[Letter]) -> Dfa {
        expect_unlimited(Dfa::determinize_governed(
            nfa,
            letters,
            &Governor::unlimited(),
        ))
    }

    /// [`Dfa::determinize`] under a resource [`Governor`]: every subset
    /// state constructed is metered, every `(state, letter)` expansion
    /// spends one fuel, and the deadline/cancellation flag is polled
    /// periodically. The subset construction is the paper's exponential
    /// step (§3.2), so this is where budgets matter most.
    pub fn determinize_governed(
        nfa: &Nfa,
        letters: &[Letter],
        gov: &Governor,
    ) -> Result<Dfa, Exhaustion> {
        let clean;
        let nfa = if nfa.has_epsilon() {
            clean = nfa.eliminate_epsilon();
            &clean
        } else {
            nfa
        };
        let start: BTreeSet<State> = nfa.epsilon_closure(nfa.initial_states());
        let mut index: HashMap<BTreeSet<State>, usize> = HashMap::new();
        let mut sets: Vec<BTreeSet<State>> = vec![start.clone()];
        index.insert(start, 0);
        gov.construct_state()?;
        let mut transitions: Vec<Vec<usize>> = Vec::new();
        let mut i = 0;
        while i < sets.len() {
            let mut row = vec![DEAD; letters.len()];
            for (k, &l) in letters.iter().enumerate() {
                gov.tick()?;
                let mut next = BTreeSet::new();
                for &s in &sets[i] {
                    for &(tl, t) in nfa.transitions_from(s) {
                        if tl == l {
                            next.insert(t);
                        }
                    }
                }
                if next.is_empty() {
                    continue;
                }
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        gov.construct_state()?;
                        sets.push(next.clone());
                        index.insert(next, sets.len() - 1);
                        sets.len() - 1
                    }
                };
                row[k] = id;
            }
            transitions.push(row);
            i += 1;
        }
        let finals = sets
            .iter()
            .map(|set| set.iter().any(|&s| nfa.is_final(s)))
            .collect();
        Ok(Dfa {
            letters: letters.to_vec(),
            transitions,
            initial: 0,
            finals,
        })
    }

    /// The DFA's letter list (column order of the transition table).
    pub fn letters(&self) -> &[Letter] {
        &self.letters
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// The initial state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// Whether `s` is accepting.
    pub fn is_final(&self, s: usize) -> bool {
        self.finals[s]
    }

    /// The successor of `s` on `letter`, or [`DEAD`].
    pub fn next(&self, s: usize, letter: Letter) -> usize {
        match self.letters.iter().position(|&l| l == letter) {
            Some(k) => self.transitions[s][k],
            None => DEAD,
        }
    }

    /// Successor by letter *index* (faster when iterating the alphabet).
    pub fn next_by_index(&self, s: usize, letter_index: usize) -> usize {
        self.transitions[s][letter_index]
    }

    /// Whether `word ∈ L(self)` (letters outside the alphabet reject).
    pub fn accepts(&self, word: &[Letter]) -> bool {
        let mut s = self.initial;
        for &l in word {
            s = self.next(s, l);
            if s == DEAD {
                return false;
            }
        }
        self.finals[s]
    }

    /// Make the DFA complete by adding an explicit non-accepting sink.
    pub fn complete(&self) -> Dfa {
        if self
            .transitions
            .iter()
            .all(|row| row.iter().all(|&t| t != DEAD))
        {
            return self.clone();
        }
        let mut out = self.clone();
        let sink = out.transitions.len();
        out.transitions.push(vec![sink; out.letters.len()]);
        out.finals.push(false);
        for row in &mut out.transitions {
            for t in row.iter_mut() {
                if *t == DEAD {
                    *t = sink;
                }
            }
        }
        out
    }

    /// The complement DFA over the same letter list: `L' = letters* − L`.
    pub fn complement(&self) -> Dfa {
        let mut out = self.complete();
        for f in &mut out.finals {
            *f = !*f;
        }
        out
    }

    /// The product DFA accepting `L(self) ∩ L(other)`.
    ///
    /// Both automata must share the same letter list.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        assert_eq!(
            self.letters, other.letters,
            "product requires equal alphabets"
        );
        let a = self.complete();
        let b = other.complete();
        let mut index: HashMap<(usize, usize), usize> = HashMap::new();
        let mut pairs = vec![(a.initial, b.initial)];
        index.insert((a.initial, b.initial), 0);
        let mut transitions = Vec::new();
        let mut finals = Vec::new();
        let mut i = 0;
        while i < pairs.len() {
            let (x, y) = pairs[i];
            finals.push(a.finals[x] && b.finals[y]);
            let mut row = Vec::with_capacity(a.letters.len());
            for k in 0..a.letters.len() {
                let np = (a.transitions[x][k], b.transitions[y][k]);
                let id = *index.entry(np).or_insert_with(|| {
                    pairs.push(np);
                    pairs.len() - 1
                });
                row.push(id);
            }
            transitions.push(row);
            i += 1;
        }
        Dfa {
            letters: a.letters,
            transitions,
            initial: 0,
            finals,
        }
    }

    /// Whether `L(self) = ∅`.
    pub fn is_empty(&self) -> bool {
        // BFS from the initial state looking for an accepting state.
        let mut seen = vec![false; self.num_states()];
        let mut queue = VecDeque::from([self.initial]);
        seen[self.initial] = true;
        while let Some(s) = queue.pop_front() {
            if self.finals[s] {
                return false;
            }
            for &t in &self.transitions[s] {
                if t != DEAD && !seen[t] {
                    seen[t] = true;
                    queue.push_back(t);
                }
            }
        }
        true
    }

    /// Convert back to an NFA (for uniform downstream APIs).
    pub fn to_nfa(&self) -> Nfa {
        let mut out = Nfa::with_states(self.num_states());
        for (s, row) in self.transitions.iter().enumerate() {
            for (k, &t) in row.iter().enumerate() {
                if t != DEAD {
                    out.add_transition(s, self.letters[k], t);
                }
            }
        }
        out.set_initial(self.initial);
        for (s, &f) in self.finals.iter().enumerate() {
            if f {
                out.set_final(s);
            }
        }
        out
    }

    /// Minimize by Moore partition refinement (states unreachable from the
    /// initial state are dropped first). The result is the canonical minimal
    /// complete DFA for the language, up to state numbering.
    pub fn minimize(&self) -> Dfa {
        let d = self.complete();
        // Keep only reachable states.
        let mut reach = vec![false; d.num_states()];
        let mut queue = VecDeque::from([d.initial]);
        reach[d.initial] = true;
        while let Some(s) = queue.pop_front() {
            for &t in &d.transitions[s] {
                if !reach[t] {
                    reach[t] = true;
                    queue.push_back(t);
                }
            }
        }
        let states: Vec<usize> = (0..d.num_states()).filter(|&s| reach[s]).collect();
        // Initial partition: accepting vs not.
        let mut class = vec![0usize; d.num_states()];
        for &s in &states {
            class[s] = usize::from(d.finals[s]);
        }
        let mut num_classes = 2;
        loop {
            // Signature of a state: (class, classes of successors).
            let mut sig_index: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
            let mut new_class = vec![0usize; d.num_states()];
            for &s in &states {
                let sig = (
                    class[s],
                    d.transitions[s]
                        .iter()
                        .map(|&t| class[t])
                        .collect::<Vec<_>>(),
                );
                let next = sig_index.len();
                let id = *sig_index.entry(sig).or_insert(next);
                new_class[s] = id;
            }
            let new_count = sig_index.len();
            class = new_class;
            if new_count == num_classes {
                break;
            }
            num_classes = new_count;
        }
        // Build the quotient.
        let mut transitions = vec![vec![DEAD; d.letters.len()]; num_classes];
        let mut finals = vec![false; num_classes];
        for &s in &states {
            let c = class[s];
            finals[c] = d.finals[s];
            for (k, &t) in d.transitions[s].iter().enumerate() {
                transitions[c][k] = class[t];
            }
        }
        Dfa {
            letters: d.letters,
            transitions,
            initial: class[d.initial],
            finals,
        }
    }

    /// Minimize by Hopcroft's worklist partition refinement —
    /// `O(|Σ| n log n)` versus Moore's `O(|Σ| n²)` ([`Dfa::minimize`]).
    /// Produces the same canonical automaton (asserted by property tests).
    pub fn minimize_hopcroft(&self) -> Dfa {
        let d = self.complete();
        // Restrict to reachable states.
        let mut reach = vec![false; d.num_states()];
        let mut queue = VecDeque::from([d.initial]);
        reach[d.initial] = true;
        while let Some(s) = queue.pop_front() {
            for &t in &d.transitions[s] {
                if !reach[t] {
                    reach[t] = true;
                    queue.push_back(t);
                }
            }
        }
        let states: Vec<usize> = (0..d.num_states()).filter(|&s| reach[s]).collect();
        // Inverse transition function restricted to reachable states.
        let mut preimage: Vec<Vec<Vec<usize>>> =
            vec![vec![Vec::new(); d.letters.len()]; d.num_states()];
        for &s in &states {
            for (k, &t) in d.transitions[s].iter().enumerate() {
                preimage[t][k].push(s);
            }
        }
        // Initial partition: accepting vs non-accepting (reachable only).
        let finals: BTreeSet<usize> = states.iter().copied().filter(|&s| d.finals[s]).collect();
        let nonfinals: BTreeSet<usize> = states.iter().copied().filter(|&s| !d.finals[s]).collect();
        let mut partition: Vec<BTreeSet<usize>> = Vec::new();
        let mut work: VecDeque<usize> = VecDeque::new();
        for block in [finals, nonfinals] {
            if !block.is_empty() {
                partition.push(block);
            }
        }
        // Seed the worklist with every block (simple and safely complete).
        for i in 0..partition.len() {
            work.push_back(i);
        }
        let mut in_work: Vec<bool> = vec![true; partition.len()];
        while let Some(a_idx) = work.pop_front() {
            in_work[a_idx] = false;
            let splitter = partition[a_idx].clone();
            #[allow(clippy::needless_range_loop)] // k indexes preimage[t][k] for varying t
            for k in 0..d.letters.len() {
                // X = states whose k-successor is in the splitter.
                let mut x: BTreeSet<usize> = BTreeSet::new();
                for &t in &splitter {
                    x.extend(preimage[t][k].iter().copied());
                }
                if x.is_empty() {
                    continue;
                }
                let mut b = 0;
                while b < partition.len() {
                    let inter: BTreeSet<usize> = partition[b].intersection(&x).copied().collect();
                    if inter.is_empty() || inter.len() == partition[b].len() {
                        b += 1;
                        continue;
                    }
                    let diff: BTreeSet<usize> = partition[b].difference(&x).copied().collect();
                    // Replace block b with the two halves.
                    let (small, large) = if inter.len() <= diff.len() {
                        (inter, diff)
                    } else {
                        (diff, inter)
                    };
                    partition[b] = large;
                    partition.push(small);
                    let new_idx = partition.len() - 1;
                    in_work.push(false);
                    if in_work[b] {
                        // b is pending: both halves must be processed.
                        work.push_back(new_idx);
                        in_work[new_idx] = true;
                    } else {
                        // Process the smaller half (Hopcroft's trick).
                        work.push_back(new_idx);
                        in_work[new_idx] = true;
                    }
                    b += 1;
                }
            }
        }
        // Build the quotient automaton.
        let mut class = vec![usize::MAX; d.num_states()];
        for (i, block) in partition.iter().enumerate() {
            for &s in block {
                class[s] = i;
            }
        }
        let mut transitions = vec![vec![DEAD; d.letters.len()]; partition.len()];
        let mut finals = vec![false; partition.len()];
        for &s in &states {
            let c = class[s];
            finals[c] = d.finals[s];
            for (k, &t) in d.transitions[s].iter().enumerate() {
                transitions[c][k] = class[t];
            }
        }
        Dfa {
            letters: d.letters,
            transitions,
            initial: class[d.initial],
            finals,
        }
    }

    /// Language equivalence via minimization and isomorphism of canonical
    /// forms (both DFAs must share the same letter list).
    pub fn equivalent(&self, other: &Dfa) -> bool {
        assert_eq!(
            self.letters, other.letters,
            "equivalence requires equal alphabets"
        );
        let a = self.minimize();
        let b = other.minimize();
        if a.num_states() != b.num_states() {
            return false;
        }
        // Parallel walk from the initial states; the canonical DFAs are
        // isomorphic iff the languages agree.
        let mut map = vec![DEAD; a.num_states()];
        let mut queue = VecDeque::from([(a.initial, b.initial)]);
        map[a.initial] = b.initial;
        while let Some((x, y)) = queue.pop_front() {
            if a.finals[x] != b.finals[y] {
                return false;
            }
            for k in 0..a.letters.len() {
                let (nx, ny) = (a.transitions[x][k], b.transitions[y][k]);
                if map[nx] == DEAD {
                    map[nx] = ny;
                    queue.push_back((nx, ny));
                } else if map[nx] != ny {
                    return false;
                }
            }
        }
        true
    }
}

/// On-the-fly subset construction over a borrowed NFA.
///
/// States are discovered and memoized on demand; this is the "construct A on
/// the fly" device that lets the paper's containment algorithm run in
/// polynomial space (§3.2): callers explore only the subset states an actual
/// search touches.
pub struct LazyDeterminizer<'a> {
    nfa: &'a Nfa,
    sets: Vec<BTreeSet<State>>,
    index: HashMap<BTreeSet<State>, usize>,
    /// Memoized successors: `succ[state][letter] -> Option<usize>`.
    succ: Vec<HashMap<Letter, Option<usize>>>,
    /// Meters subset-state construction when present ([`Self::try_next`]).
    gov: Option<&'a Governor>,
}

impl<'a> LazyDeterminizer<'a> {
    /// Start a lazy determinization of `nfa` (which must be ε-free; call
    /// [`Nfa::eliminate_epsilon`] first — enforced by assertion).
    pub fn new(nfa: &'a Nfa) -> Self {
        assert!(
            !nfa.has_epsilon(),
            "LazyDeterminizer requires an ε-free NFA"
        );
        let start: BTreeSet<State> = nfa.initial_states().collect();
        let mut index = HashMap::new();
        index.insert(start.clone(), 0);
        LazyDeterminizer {
            nfa,
            sets: vec![start],
            index,
            succ: vec![HashMap::new()],
            gov: None,
        }
    }

    /// Like [`LazyDeterminizer::new`], but every subset state discovered by
    /// [`Self::try_next`] is charged to `gov` as a constructed state.
    pub fn new_governed(nfa: &'a Nfa, gov: &'a Governor) -> Result<Self, Exhaustion> {
        gov.construct_state()?;
        let mut det = LazyDeterminizer::new(nfa);
        det.gov = Some(gov);
        Ok(det)
    }

    /// The initial DFA state.
    pub fn initial(&self) -> usize {
        0
    }

    /// Number of subset states materialized so far.
    pub fn discovered(&self) -> usize {
        self.sets.len()
    }

    /// Whether DFA state `s` is accepting.
    pub fn is_final(&self, s: usize) -> bool {
        self.sets[s].iter().any(|&q| self.nfa.is_final(q))
    }

    /// The successor of `s` on `letter`; `None` is the dead (reject) state.
    pub fn next(&mut self, s: usize, letter: Letter) -> Option<usize> {
        expect_unlimited(self.next_impl(s, letter, None))
    }

    /// [`Self::next`] under the governor supplied at construction
    /// ([`Self::new_governed`]): charges one constructed state per fresh
    /// subset state. Without a governor this is exactly [`Self::next`].
    pub fn try_next(&mut self, s: usize, letter: Letter) -> Result<Option<usize>, Exhaustion> {
        let gov = self.gov;
        self.next_impl(s, letter, gov)
    }

    fn next_impl(
        &mut self,
        s: usize,
        letter: Letter,
        gov: Option<&Governor>,
    ) -> Result<Option<usize>, Exhaustion> {
        if let Some(&cached) = self.succ[s].get(&letter) {
            return Ok(cached);
        }
        let mut next = BTreeSet::new();
        for &q in &self.sets[s] {
            for &(l, t) in self.nfa.transitions_from(q) {
                if l == letter {
                    next.insert(t);
                }
            }
        }
        let result = if next.is_empty() {
            None
        } else if let Some(&id) = self.index.get(&next) {
            Some(id)
        } else {
            if let Some(g) = gov {
                g.construct_state()?;
            }
            let id = self.sets.len();
            self.index.insert(next.clone(), id);
            self.sets.push(next);
            self.succ.push(HashMap::new());
            Some(id)
        };
        self.succ[s].insert(letter, result);
        Ok(result)
    }

    /// The underlying NFA state set of DFA state `s`.
    pub fn state_set(&self, s: usize) -> &BTreeSet<State> {
        &self.sets[s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::regex::parse;

    fn setup(s: &str) -> (Nfa, Vec<Letter>, Alphabet) {
        let mut a = Alphabet::new();
        let e = parse(s, &mut a).unwrap();
        let n = Nfa::from_regex(&e);
        let letters: Vec<Letter> = a.sigma_pm().collect();
        (n, letters, a)
    }

    #[test]
    fn determinize_preserves_language() {
        for s in ["a(b|c)*", "(a|b)*abb", "a?b?c?", "p p- p"] {
            let (n, letters, _) = setup(s);
            let d = Dfa::determinize(&n, &letters);
            for word in n.enumerate_words(5, 500) {
                assert!(d.accepts(&word), "{s}");
            }
            assert_eq!(
                n.count_words_per_length(5),
                d.to_nfa().count_words_per_length(5),
                "{s}"
            );
        }
    }

    #[test]
    fn complement_flips_membership() {
        let (n, letters, _) = setup("(a|b)*a");
        let d = Dfa::determinize(&n, &letters);
        let c = d.complement();
        // Every word over {a,b} of length <= 4 is in exactly one language.
        let sigma: Vec<Letter> = letters.iter().copied().filter(|l| !l.inverse).collect();
        let mut all: Vec<Vec<Letter>> = vec![vec![]];
        let mut frontier: Vec<Vec<Letter>> = vec![vec![]];
        for _ in 0..4 {
            let mut next = Vec::new();
            for w in &frontier {
                for &l in &sigma {
                    let mut w2 = w.clone();
                    w2.push(l);
                    next.push(w2);
                }
            }
            all.extend(next.iter().cloned());
            frontier = next;
        }
        for w in &all {
            assert_ne!(d.accepts(w), c.accepts(w));
        }
    }

    #[test]
    fn intersect_is_intersection() {
        let (n1, letters, _) = setup("(a|b)*a");
        let mut a2 = Alphabet::from_names(["a", "b"]);
        let e2 = parse("a(a|b)*", &mut a2).unwrap();
        let n2 = Nfa::from_regex(&e2);
        let d1 = Dfa::determinize(&n1, &letters);
        let d2 = Dfa::determinize(&n2, &letters);
        let i = d1.intersect(&d2);
        for w in n1.enumerate_words(4, 100) {
            assert_eq!(i.accepts(&w), d2.accepts(&w));
        }
        for w in n2.enumerate_words(4, 100) {
            assert_eq!(i.accepts(&w), d1.accepts(&w));
        }
    }

    #[test]
    fn minimize_is_minimal_for_known_case() {
        // (a|b)*abb needs exactly 4 states (plus possibly a sink; complete
        // DFA over {a,b} has 4 states, no sink needed).
        let (n, _, a) = setup("(a|b)*a.b.b");
        let sigma: Vec<Letter> = a.sigma().collect();
        let d = Dfa::determinize(&n, &sigma);
        let m = d.minimize();
        assert_eq!(m.num_states(), 4);
        assert!(d.equivalent(&m));
    }

    #[test]
    fn hopcroft_agrees_with_moore() {
        for s in [
            "(a|b)*a.b.b",
            "(a b)*",
            "a?b?c?",
            "(a|b)+",
            "a*b*c*",
            "∅",
            "ε",
        ] {
            let mut al = Alphabet::from_names(["a", "b", "c"]);
            let e = parse(s, &mut al).unwrap();
            let sigma: Vec<Letter> = al.sigma().collect();
            let d = Dfa::determinize(&Nfa::from_regex(&e), &sigma);
            let moore = d.minimize();
            let hopcroft = d.minimize_hopcroft();
            assert_eq!(
                moore.num_states(),
                hopcroft.num_states(),
                "{s}: minimal automata must have equal size"
            );
            assert!(moore.equivalent(&hopcroft), "{s}: languages must agree");
        }
    }

    #[test]
    fn equivalence_detects_difference() {
        let (n1, _, a) = setup("(a b)*");
        let sigma: Vec<Letter> = a.sigma().collect();
        let mut a2 = a.clone();
        let e2 = parse("(a b)*a b", &mut a2).unwrap();
        let n2 = Nfa::from_regex(&e2);
        let d1 = Dfa::determinize(&n1, &sigma);
        let d2 = Dfa::determinize(&n2, &sigma);
        assert!(!d1.equivalent(&d2));
        // But (a|b)* and (b|a)* are equivalent.
        let e3 = parse("(b|a)*", &mut a2).unwrap();
        let e4 = parse("(a|b)*", &mut a2).unwrap();
        let d3 = Dfa::determinize(&Nfa::from_regex(&e3), &sigma);
        let d4 = Dfa::determinize(&Nfa::from_regex(&e4), &sigma);
        assert!(d3.equivalent(&d4));
    }

    #[test]
    fn is_empty_works() {
        let (n, letters, _) = setup("∅");
        assert!(Dfa::determinize(&n, &letters).is_empty());
        let (n, letters, _) = setup("a*");
        assert!(!Dfa::determinize(&n, &letters).is_empty());
    }

    #[test]
    fn lazy_matches_eager() {
        let (n, letters, _) = setup("(a|b)*a.b.b");
        let ne = n.eliminate_epsilon().trim();
        let mut lazy = LazyDeterminizer::new(&ne);
        let eager = Dfa::determinize(&ne, &letters);
        // Walk a few words through both.
        for word in n.enumerate_words(6, 200) {
            let mut ls = Some(lazy.initial());
            let mut es = eager.initial();
            for &l in &word {
                ls = ls.and_then(|s| lazy.next(s, l));
                es = eager.next(es, l);
            }
            let lacc = ls.map(|s| lazy.is_final(s)).unwrap_or(false);
            let eacc = es != DEAD && eager.is_final(es);
            assert_eq!(lacc, eacc);
            assert!(lacc, "both must accept enumerated words");
        }
        assert!(lazy.discovered() <= eager.num_states() + 1);
    }
}
