//! Edge alphabets Σ and their two-way extensions Σ±.
//!
//! A graph database is edge-labeled by a finite alphabet Σ of relation
//! names. Two-way queries navigate edges both forward and backward, so they
//! are written over Σ± = Σ ∪ {r⁻ | r ∈ Σ}. A [`Letter`] is an element of
//! Σ±: a [`LabelId`] plus a polarity. Forward-only machinery simply never
//! produces inverse letters.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a base relation name in an [`Alphabet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LabelId(pub u32);

impl LabelId {
    /// Index into per-label tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An element of Σ±: a relation name, navigated forward (`r`) or backward
/// (`r⁻`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Letter {
    pub label: LabelId,
    /// `true` for the inverse letter `r⁻`.
    pub inverse: bool,
}

impl Letter {
    /// The forward letter `r`.
    #[inline]
    pub fn forward(label: LabelId) -> Self {
        Letter {
            label,
            inverse: false,
        }
    }

    /// The backward letter `r⁻`.
    #[inline]
    pub fn backward(label: LabelId) -> Self {
        Letter {
            label,
            inverse: true,
        }
    }

    /// The inverse `p⁻` of this letter: `r ↦ r⁻` and `r⁻ ↦ r`.
    #[inline]
    pub fn inv(self) -> Self {
        Letter {
            label: self.label,
            inverse: !self.inverse,
        }
    }

    /// Dense index of this letter in `0..2·|Σ|`: forward letters first.
    #[inline]
    pub fn dense_index(self, num_labels: usize) -> usize {
        self.label.index() + if self.inverse { num_labels } else { 0 }
    }
}

/// A finite alphabet of relation names, interning strings to [`LabelId`]s.
///
/// The alphabet doubles as the relational schema of a graph database (§3.1
/// of the paper): "the edge alphabet Σ can be viewed as the relational
/// schema of the database".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Alphabet {
    names: Vec<String>,
    #[cfg_attr(feature = "serde", serde(skip))]
    index: HashMap<String, LabelId>,
}

impl Alphabet {
    /// An empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an alphabet from a list of names (duplicates are merged).
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut a = Self::new();
        for n in names {
            a.intern(n.as_ref());
        }
        a
    }

    /// Intern `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = LabelId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Look up a name without interning.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.index.get(name).copied()
    }

    /// The name of `id`. Panics if `id` is not from this alphabet.
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Number of base labels |Σ|.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All base labels, in id order.
    pub fn labels(&self) -> impl Iterator<Item = LabelId> + '_ {
        (0..self.names.len() as u32).map(LabelId)
    }

    /// All letters of Σ (forward only).
    pub fn sigma(&self) -> impl Iterator<Item = Letter> + '_ {
        self.labels().map(Letter::forward)
    }

    /// All letters of Σ± (forward then backward), 2·|Σ| letters.
    pub fn sigma_pm(&self) -> impl Iterator<Item = Letter> + '_ {
        self.labels()
            .map(Letter::forward)
            .chain(self.labels().map(Letter::backward))
    }

    /// Size of Σ±.
    pub fn sigma_pm_len(&self) -> usize {
        2 * self.names.len()
    }

    /// Render a letter, using `-` as the ASCII inverse marker (`r-` for r⁻).
    pub fn letter_name(&self, l: Letter) -> String {
        if l.inverse {
            format!("{}-", self.name(l.label))
        } else {
            self.name(l.label).to_owned()
        }
    }

    /// Render a word as space-free concatenation when all labels are single
    /// characters, otherwise dot-separated.
    pub fn word_to_string(&self, word: &[Letter]) -> String {
        if word.is_empty() {
            return "ε".to_owned();
        }
        let compact = word.iter().all(|l| self.name(l.label).chars().count() == 1);
        let parts: Vec<String> = word.iter().map(|&l| self.letter_name(l)).collect();
        if compact {
            parts.concat()
        } else {
            parts.join(".")
        }
    }

    /// Rebuild the name index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), LabelId(i as u32)))
            .collect();
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.names.join(", "))
    }
}

/// Convenience: invert a word (reverse it and invert each letter).
///
/// If a semipath from `x` to `y` spells `w`, the same semipath traversed
/// from `y` to `x` spells `invert_word(w)`.
pub fn invert_word(word: &[Letter]) -> Vec<Letter> {
    word.iter().rev().map(|l| l.inv()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let r = a.intern("r");
        let s = a.intern("s");
        assert_eq!(a.intern("r"), r);
        assert_ne!(r, s);
        assert_eq!(a.len(), 2);
        assert_eq!(a.name(r), "r");
        assert_eq!(a.get("s"), Some(s));
        assert_eq!(a.get("t"), None);
    }

    #[test]
    fn letter_inverse_is_involutive() {
        let l = Letter::forward(LabelId(3));
        assert_eq!(l.inv().inv(), l);
        assert!(l.inv().inverse);
        assert_eq!(l.inv().label, l.label);
    }

    #[test]
    fn sigma_pm_enumerates_both_polarities() {
        let a = Alphabet::from_names(["r", "s"]);
        let pm: Vec<Letter> = a.sigma_pm().collect();
        assert_eq!(pm.len(), 4);
        assert_eq!(a.sigma_pm_len(), 4);
        assert!(pm.contains(&Letter::backward(LabelId(1))));
    }

    #[test]
    fn dense_index_is_a_bijection() {
        let a = Alphabet::from_names(["r", "s", "t"]);
        let mut seen = vec![false; a.sigma_pm_len()];
        for l in a.sigma_pm() {
            let i = l.dense_index(a.len());
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn invert_word_roundtrip() {
        let a = Alphabet::from_names(["p", "q"]);
        let p = Letter::forward(a.get("p").unwrap());
        let q = Letter::forward(a.get("q").unwrap());
        let w = vec![p, q.inv(), p];
        assert_eq!(invert_word(&invert_word(&w)), w);
        assert_eq!(invert_word(&w), vec![p.inv(), q, p.inv()]);
    }

    #[test]
    fn word_rendering() {
        let a = Alphabet::from_names(["p", "knows"]);
        let p = Letter::forward(LabelId(0));
        assert_eq!(a.word_to_string(&[]), "ε");
        assert_eq!(a.word_to_string(&[p, p.inv(), p]), "pp-p");
        let k = Letter::forward(LabelId(1));
        assert_eq!(a.word_to_string(&[k, p]), "knows.p");
    }
}
