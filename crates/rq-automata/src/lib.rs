//! # rq-automata
//!
//! Word-automata substrate for the `regular-queries` workspace.
//!
//! This crate implements, from scratch, every word-level construction used by
//! Vardi's *A Theory of Regular Queries* (PODS 2016):
//!
//! * regular expressions over an edge alphabet Σ and its two-way extension
//!   Σ± = Σ ∪ {r⁻ | r ∈ Σ} ([`regex`], [`alphabet`]);
//! * nondeterministic and deterministic finite automata with the standard
//!   toolbox — Thompson construction, ε-elimination, subset construction,
//!   Hopcroft minimization, products, complements ([`nfa`], [`dfa`]);
//! * exact regular-language containment, both *on the fly* (the paper's
//!   §3.2 steps 1–4, polynomial space) and via explicit construction
//!   ([`containment`]);
//! * two-way nondeterministic automata with endmarkers ([`twonfa`]);
//! * the *fold* relation on words over Σ± and the Lemma 3 construction of a
//!   2NFA for `fold(L(A))` with `n·(|Σ±|+1)` states ([`fold`]);
//! * Vardi's 1989 single-exponential 2NFA complementation (Lemma 4)
//!   ([`complement2`]);
//! * Shepherdson-table determinization of 2NFAs, the production engine for
//!   `NFA ⊆ 2NFA` containment ([`shepherdson`]);
//! * NFA → regex conversion by state elimination ([`to_regex`]), closing
//!   the definability loop;
//! * seeded random generators for regexes and automata ([`random`]).
//!
//! The crate has no graph-database knowledge; it is pure language theory.
//!
//! ## Example
//!
//! ```
//! use rq_automata::{Alphabet, Nfa};
//! use rq_automata::regex::parse;
//! use rq_automata::containment::check_on_the_fly;
//!
//! let mut alphabet = Alphabet::new();
//! let e1 = parse("a(b|c)*", &mut alphabet).unwrap();
//! let e2 = parse("a(b|c|d)*", &mut alphabet).unwrap();
//! let (n1, n2) = (Nfa::from_regex(&e1), Nfa::from_regex(&e2));
//! assert!(check_on_the_fly(&n1, &n2).contained);
//! let run = check_on_the_fly(&n2, &n1);
//! let witness = run.counterexample.unwrap();        // a shortest word
//! assert!(n2.accepts(&witness) && !n1.accepts(&witness));
//! ```

pub mod alphabet;
pub mod complement2;
pub mod containment;
pub mod dfa;
pub mod fold;
pub mod governor;
pub mod nfa;
pub mod random;
pub mod regex;
pub mod shepherdson;
pub mod simple;
pub mod to_regex;
pub mod twonfa;

pub use alphabet::{Alphabet, LabelId, Letter};
pub use dfa::Dfa;
pub use governor::{Counters, EngineError, Exhaustion, Governor, Limits, Resource};
pub use nfa::Nfa;
pub use regex::Regex;
pub use twonfa::TwoNfa;
