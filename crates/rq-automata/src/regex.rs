//! Regular expressions over Σ±.
//!
//! RPQs are "simply regular expressions over the edge alphabet of the graph
//! database" (§3.1); 2RPQs are regular expressions over the extended
//! alphabet Σ±. This module provides the shared AST, smart constructors
//! that keep expressions in a light normal form, a pretty-printer, and a
//! hand-written parser ([`parser`]).

pub mod parser;
pub mod simplify;

use crate::alphabet::{Alphabet, Letter};
use std::collections::BTreeSet;

pub use parser::{parse, parse_with_spans, ParseError};
pub use simplify::simplify;

/// A regular expression over letters of Σ±.
///
/// Constructed via the smart constructors ([`Regex::concat`],
/// [`Regex::union`], [`Regex::star`], ...) which perform cheap local
/// simplifications (identity/absorbing elements, flattening), or parsed from
/// text with [`parse`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The language {ε}.
    Epsilon,
    /// A single letter of Σ±.
    Letter(Letter),
    /// Concatenation, in order. Invariant: ≥ 2 children, none `Epsilon`,
    /// none `Concat`, none `Empty`.
    Concat(Vec<Regex>),
    /// Union. Invariant: ≥ 2 children, none `Union`, none `Empty`.
    Union(Vec<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
    /// One-or-more repetitions.
    Plus(Box<Regex>),
    /// Zero-or-one.
    Optional(Box<Regex>),
}

impl Regex {
    /// The single-letter expression.
    pub fn letter(l: Letter) -> Regex {
        Regex::Letter(l)
    }

    /// Concatenation of `parts`, simplifying ε and ∅.
    pub fn concat(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::new();
        for p in parts {
            match p {
                Regex::Empty => return Regex::Empty,
                Regex::Epsilon => {}
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Regex::Concat(out),
        }
    }

    /// Union of `parts`, simplifying ∅ and deduplicating syntactically equal
    /// alternatives (order of first occurrence is kept).
    pub fn union(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::new();
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Union(inner) => {
                    for q in inner {
                        if !out.contains(&q) {
                            out.push(q);
                        }
                    }
                }
                other => {
                    if !out.contains(&other) {
                        out.push(other);
                    }
                }
            }
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().expect("len checked"),
            _ => Regex::Union(out),
        }
    }

    /// Kleene star, simplifying `∅* = ε* = ε`, `(e*)* = e*`, `(e+)* = e*`,
    /// `(e?)* = e*`.
    pub fn star(self) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Star(e) => Regex::Star(e),
            Regex::Plus(e) | Regex::Optional(e) => Regex::Star(e),
            e => Regex::Star(Box::new(e)),
        }
    }

    /// One-or-more, simplifying `∅+ = ∅`, `ε+ = ε`, `(e*)+ = e*`,
    /// `(e+)+ = e+`.
    pub fn plus(self) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Star(e) => Regex::Star(e),
            Regex::Plus(e) => Regex::Plus(e),
            Regex::Optional(e) => Regex::Star(e),
            e => Regex::Plus(Box::new(e)),
        }
    }

    /// Zero-or-one, simplifying `∅? = ε`, `ε? = ε`, `(e*)? = e*`,
    /// `(e?)? = e?`, `(e+)? = e*`.
    pub fn optional(self) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Star(e) => Regex::Star(e),
            Regex::Plus(e) => Regex::Star(e),
            Regex::Optional(e) => Regex::Optional(e),
            e => Regex::Optional(Box::new(e)),
        }
    }

    /// Concatenation of exactly two expressions.
    pub fn then(self, other: Regex) -> Regex {
        Regex::concat([self, other])
    }

    /// Union of exactly two expressions.
    pub fn or(self, other: Regex) -> Regex {
        Regex::union([self, other])
    }

    /// The word `w` as a concatenation of letters.
    pub fn word(w: &[Letter]) -> Regex {
        Regex::concat(w.iter().copied().map(Regex::Letter))
    }

    /// Number of AST nodes (a syntactic size measure used in benches).
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Letter(_) => 1,
            Regex::Concat(v) | Regex::Union(v) => 1 + v.iter().map(Regex::size).sum::<usize>(),
            Regex::Star(e) | Regex::Plus(e) | Regex::Optional(e) => 1 + e.size(),
        }
    }

    /// Whether ε ∈ L(e), computed syntactically.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Letter(_) | Regex::Plus(_) => match self {
                Regex::Plus(e) => e.nullable(),
                _ => false,
            },
            Regex::Epsilon | Regex::Star(_) | Regex::Optional(_) => true,
            Regex::Concat(v) => v.iter().all(Regex::nullable),
            Regex::Union(v) => v.iter().any(Regex::nullable),
        }
    }

    /// Whether L(e) = ∅, computed syntactically (sound and complete because
    /// letters are nonempty).
    pub fn is_empty_language(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Letter(_) => false,
            Regex::Concat(v) => v.iter().any(Regex::is_empty_language),
            Regex::Union(v) => v.iter().all(Regex::is_empty_language),
            Regex::Star(_) | Regex::Optional(_) => false,
            Regex::Plus(e) => e.is_empty_language(),
        }
    }

    /// The set of letters that occur syntactically.
    pub fn letters(&self) -> BTreeSet<Letter> {
        let mut out = BTreeSet::new();
        self.collect_letters(&mut out);
        out
    }

    fn collect_letters(&self, out: &mut BTreeSet<Letter>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Letter(l) => {
                out.insert(*l);
            }
            Regex::Concat(v) | Regex::Union(v) => {
                for e in v {
                    e.collect_letters(out);
                }
            }
            Regex::Star(e) | Regex::Plus(e) | Regex::Optional(e) => e.collect_letters(out),
        }
    }

    /// Rebuild the expression with every letter *occurrence* passed through
    /// `f`, left to right. Unlike [`Nfa::map_letters`](crate::Nfa), `f` is
    /// called once per occurrence, not once per distinct letter — so a
    /// counter closure yields a position-marked regex (each occurrence gets
    /// a unique label), the substrate of position-automaton analyses like
    /// dead-occurrence detection in `rq-analyze`.
    pub fn map_letters(&self, f: &mut impl FnMut(Letter) -> Letter) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Letter(l) => Regex::Letter(f(*l)),
            Regex::Concat(v) => Regex::Concat(v.iter().map(|e| e.map_letters(f)).collect()),
            Regex::Union(v) => Regex::Union(v.iter().map(|e| e.map_letters(f)).collect()),
            Regex::Star(e) => Regex::Star(Box::new(e.map_letters(f))),
            Regex::Plus(e) => Regex::Plus(Box::new(e.map_letters(f))),
            Regex::Optional(e) => Regex::Optional(Box::new(e.map_letters(f))),
        }
    }

    /// Whether the expression uses only forward letters (i.e., is an RPQ
    /// rather than a proper 2RPQ).
    pub fn is_forward_only(&self) -> bool {
        self.letters().iter().all(|l| !l.inverse)
    }

    /// The expression for the *inverse language* {w⁻ : w ∈ L(e)}, where
    /// `w⁻` reverses the word and inverts every letter.
    ///
    /// Semantically: if a semipath from `x` to `y` conforms to `e`, the same
    /// semipath read from `y` to `x` conforms to `e.inverse()`.
    pub fn inverse(&self) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Letter(l) => Regex::Letter(l.inv()),
            Regex::Concat(v) => Regex::concat(v.iter().rev().map(Regex::inverse)),
            Regex::Union(v) => Regex::union(v.iter().map(Regex::inverse)),
            Regex::Star(e) => e.inverse().star(),
            Regex::Plus(e) => e.inverse().plus(),
            Regex::Optional(e) => e.inverse().optional(),
        }
    }

    /// Render with the given alphabet. Inverse letters print as `r-`;
    /// multi-character labels are joined with `.` inside concatenations.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> DisplayRegex<'a> {
        DisplayRegex {
            regex: self,
            alphabet,
        }
    }
}

/// Binding precedence used by the printer: union < concat < repeat < atom.
fn precedence(e: &Regex) -> u8 {
    match e {
        Regex::Union(_) => 0,
        Regex::Concat(_) => 1,
        Regex::Star(_) | Regex::Plus(_) | Regex::Optional(_) => 2,
        _ => 3,
    }
}

/// Display adapter returned by [`Regex::display`].
pub struct DisplayRegex<'a> {
    regex: &'a Regex,
    alphabet: &'a Alphabet,
}

struct DisplayChild<'a> {
    regex: &'a Regex,
    parent_prec: u8,
    alphabet: &'a Alphabet,
}

impl std::fmt::Display for DisplayChild<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_child(self.regex, self.parent_prec, self.alphabet, f)
    }
}

impl std::fmt::Display for DisplayRegex<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_regex(self.regex, self.alphabet, f)
    }
}

fn fmt_child(
    child: &Regex,
    parent_prec: u8,
    alphabet: &Alphabet,
    f: &mut std::fmt::Formatter<'_>,
) -> std::fmt::Result {
    if precedence(child) < parent_prec {
        write!(f, "(")?;
        fmt_regex(child, alphabet, f)?;
        write!(f, ")")
    } else {
        fmt_regex(child, alphabet, f)
    }
}

fn fmt_regex(e: &Regex, a: &Alphabet, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    match e {
        Regex::Empty => write!(f, "∅"),
        Regex::Epsilon => write!(f, "ε"),
        Regex::Letter(l) => write!(f, "{}", a.letter_name(*l)),
        Regex::Concat(v) => {
            // Identifiers are multi-character, so adjacent letters must be
            // separated by a dot to reparse unambiguously ("a.b", not "ab").
            let mut prev_ends_ident = false;
            for c in v.iter() {
                let rendered = format!(
                    "{}",
                    DisplayChild {
                        regex: c,
                        parent_prec: 1,
                        alphabet: a
                    }
                );
                let starts_ident = rendered
                    .chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_alphanumeric() || ch == '_');
                if prev_ends_ident && starts_ident {
                    write!(f, ".")?;
                }
                write!(f, "{rendered}")?;
                prev_ends_ident = rendered
                    .chars()
                    .last()
                    .is_some_and(|ch| ch.is_ascii_alphanumeric() || ch == '_');
            }
            Ok(())
        }
        Regex::Union(v) => {
            for (i, c) in v.iter().enumerate() {
                if i > 0 {
                    write!(f, "|")?;
                }
                fmt_child(c, 1, a, f)?;
            }
            Ok(())
        }
        Regex::Star(e) => {
            fmt_child(e, 3, a, f)?;
            write!(f, "*")
        }
        Regex::Plus(e) => {
            fmt_child(e, 3, a, f)?;
            write!(f, "+")
        }
        Regex::Optional(e) => {
            fmt_child(e, 3, a, f)?;
            write!(f, "?")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::LabelId;

    fn l(i: u32) -> Regex {
        Regex::Letter(Letter::forward(LabelId(i)))
    }

    #[test]
    fn concat_identities() {
        assert_eq!(Regex::concat([Regex::Epsilon, l(0)]), l(0));
        assert_eq!(Regex::concat([l(0), Regex::Empty]), Regex::Empty);
        assert_eq!(Regex::concat(std::iter::empty()), Regex::Epsilon);
        // Flattening keeps order.
        let e = Regex::concat([l(0).then(l(1)), l(2)]);
        assert_eq!(e, Regex::Concat(vec![l(0), l(1), l(2)]));
    }

    #[test]
    fn union_identities() {
        assert_eq!(Regex::union([Regex::Empty, l(0)]), l(0));
        assert_eq!(Regex::union(std::iter::empty()), Regex::Empty);
        assert_eq!(Regex::union([l(0), l(0)]), l(0));
        let e = Regex::union([l(0).or(l(1)), l(1), l(2)]);
        assert_eq!(e, Regex::Union(vec![l(0), l(1), l(2)]));
    }

    #[test]
    fn star_simplifications() {
        assert_eq!(Regex::Empty.star(), Regex::Epsilon);
        assert_eq!(l(0).star().star(), l(0).star());
        assert_eq!(l(0).plus().star(), l(0).star());
        assert_eq!(l(0).optional().plus(), l(0).star());
        assert_eq!(l(0).plus().optional(), l(0).star());
    }

    #[test]
    fn nullable_and_empty() {
        assert!(Regex::Epsilon.nullable());
        assert!(!l(0).nullable());
        assert!(l(0).star().nullable());
        assert!(l(0).or(Regex::Epsilon).nullable());
        assert!(!l(0).then(l(1)).nullable());
        assert!(Regex::Empty.is_empty_language());
        assert!(Regex::Concat(vec![l(0), Regex::Empty]).is_empty_language());
        assert!(!l(0).star().is_empty_language());
    }

    #[test]
    fn inverse_is_involutive() {
        let e = l(0).then(l(1).star()).or(l(2).plus());
        assert_eq!(e.inverse().inverse(), e);
    }

    #[test]
    fn inverse_of_concat_reverses() {
        let a = Letter::forward(LabelId(0));
        let b = Letter::forward(LabelId(1));
        let e = Regex::word(&[a, b]);
        assert_eq!(e.inverse(), Regex::word(&[b.inv(), a.inv()]));
    }

    #[test]
    fn display_minimal_parens() {
        let al = Alphabet::from_names(["a", "b", "c"]);
        let a = || Regex::Letter(Letter::forward(LabelId(0)));
        let b = || Regex::Letter(Letter::forward(LabelId(1)));
        let e = a().or(b()).star().then(a());
        assert_eq!(e.display(&al).to_string(), "(a|b)*a");
        let e2 = a().then(b()).or(a());
        assert_eq!(e2.display(&al).to_string(), "a.b|a");
        let inv = Regex::Letter(Letter::backward(LabelId(0)));
        assert_eq!(inv.display(&al).to_string(), "a-");
    }

    #[test]
    fn size_counts_nodes() {
        let e = l(0).then(l(1)).star();
        assert_eq!(e.size(), 4);
    }
}
