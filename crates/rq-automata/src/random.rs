//! Seeded random generators for regexes and automata.
//!
//! Benches and property tests need reproducible instances across platforms,
//! so this module ships a tiny self-contained SplitMix64 PRNG
//! ([`SplitMix64`]) rather than depending on a specific `rand` version:
//! identical seeds produce identical instances everywhere, which keeps the
//! EXPERIMENTS.md tables stable.

use crate::alphabet::{Alphabet, LabelId, Letter};
use crate::nfa::Nfa;
use crate::regex::Regex;

/// SplitMix64: a tiny, high-quality, reproducible PRNG (public domain
/// algorithm by Sebastiano Vigna).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }

    /// A uniformly random element of `items`.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

/// Configuration for [`random_regex`].
#[derive(Debug, Clone)]
pub struct RegexConfig {
    /// Number of base labels to draw letters from.
    pub num_labels: usize,
    /// Probability that a generated letter is an inverse (0.0 ⇒ RPQ).
    pub inverse_prob: f64,
    /// Target number of leaf letters.
    pub leaves: usize,
    /// Probability of star/plus/optional wrapping at each internal node.
    pub repeat_prob: f64,
}

impl Default for RegexConfig {
    fn default() -> Self {
        RegexConfig {
            num_labels: 2,
            inverse_prob: 0.0,
            leaves: 6,
            repeat_prob: 0.3,
        }
    }
}

/// Generate a random regex with roughly `cfg.leaves` letter occurrences.
///
/// The shape is a random binary combination of concatenations and unions
/// with occasional repetition operators — a workload generator for the
/// containment benches (E1, E4).
pub fn random_regex(rng: &mut SplitMix64, cfg: &RegexConfig) -> Regex {
    let e = gen_with_leaves(rng, cfg, cfg.leaves.max(1));
    if e.is_empty_language() {
        // Extremely unlikely (we never generate ∅), but keep the contract.
        Regex::Epsilon
    } else {
        e
    }
}

fn random_letter(rng: &mut SplitMix64, cfg: &RegexConfig) -> Letter {
    let label = LabelId(rng.below(cfg.num_labels) as u32);
    if rng.chance(cfg.inverse_prob) {
        Letter::backward(label)
    } else {
        Letter::forward(label)
    }
}

fn gen_with_leaves(rng: &mut SplitMix64, cfg: &RegexConfig, leaves: usize) -> Regex {
    let base = if leaves <= 1 {
        Regex::Letter(random_letter(rng, cfg))
    } else {
        let left = rng.range(1, leaves - 1);
        let l = gen_with_leaves(rng, cfg, left);
        let r = gen_with_leaves(rng, cfg, leaves - left);
        if rng.chance(0.5) {
            l.then(r)
        } else {
            l.or(r)
        }
    };
    if rng.chance(cfg.repeat_prob) {
        match rng.below(3) {
            0 => base.star(),
            1 => base.plus(),
            _ => base.optional(),
        }
    } else {
        base
    }
}

/// Generate a random trim ε-free NFA with `states` states over
/// `num_labels` labels (inverse letters with probability `inverse_prob`).
///
/// Density is edges-per-state; the automaton is guaranteed nonempty (a
/// random accepting path is planted first).
pub fn random_nfa(
    rng: &mut SplitMix64,
    states: usize,
    num_labels: usize,
    inverse_prob: f64,
    density: f64,
) -> Nfa {
    assert!(states >= 1 && num_labels >= 1);
    let mut nfa = Nfa::with_states(states);
    let cfg = RegexConfig {
        num_labels,
        inverse_prob,
        ..RegexConfig::default()
    };
    nfa.set_initial(0);
    nfa.set_final(states - 1);
    // Plant an accepting path through all states so the language is
    // nonempty and every state is useful.
    for s in 0..states.saturating_sub(1) {
        let l = random_letter(rng, &cfg);
        nfa.add_transition(s, l, s + 1);
    }
    // Random extra edges.
    let extra = ((states as f64) * density) as usize;
    for _ in 0..extra {
        let from = rng.below(states);
        let to = rng.below(states);
        let l = random_letter(rng, &cfg);
        nfa.add_transition(from, l, to);
    }
    nfa
}

/// An alphabet with `n` single-character labels `a, b, c, …`.
pub fn small_alphabet(n: usize) -> Alphabet {
    assert!(n <= 26);
    Alphabet::from_names((0..n).map(|i| ((b'a' + i as u8) as char).to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
            let v = rng.range(3, 5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn random_regex_has_requested_shape() {
        let mut rng = SplitMix64::new(1);
        let cfg = RegexConfig {
            leaves: 8,
            ..RegexConfig::default()
        };
        for _ in 0..50 {
            let e = random_regex(&mut rng, &cfg);
            assert!(!e.is_empty_language());
            assert!(e.size() >= 1);
        }
    }

    #[test]
    fn forward_only_config_generates_rpqs() {
        let mut rng = SplitMix64::new(2);
        let cfg = RegexConfig {
            inverse_prob: 0.0,
            leaves: 10,
            ..RegexConfig::default()
        };
        for _ in 0..20 {
            assert!(random_regex(&mut rng, &cfg).is_forward_only());
        }
    }

    #[test]
    fn random_nfa_is_nonempty() {
        let mut rng = SplitMix64::new(3);
        for states in [1, 2, 5, 12] {
            let nfa = random_nfa(&mut rng, states, 2, 0.2, 1.5);
            assert!(!nfa.is_empty(), "states={states}");
            assert_eq!(nfa.num_states(), states);
        }
    }

    #[test]
    fn small_alphabet_names() {
        let a = small_alphabet(3);
        assert_eq!(a.len(), 3);
        assert_eq!(a.name(LabelId(2)), "c");
    }
}
