//! # rq-engine
//!
//! A concurrent serving layer for regular queries: parallel
//! product-automaton evaluation over a [`rq_graph::GraphDb`] plus a
//! **containment-based semantic cache**.
//!
//! The paper's thesis is that containment (`Q ⊑ Q'` on every database,
//! Lemmas 1–2 / Theorems 5–6) is *the* static-analysis primitive for
//! regular queries; this crate uses it online, on the serving path:
//!
//! * queries are normalized to canonical minimal-DFA keys
//!   ([`rq_core::canonical`]), so equivalent syntax shares one cache entry;
//! * on a key miss, the cache probes cached queries with a cheap-first
//!   containment ladder ([`rq_core::containment::facade`]) — a subsuming
//!   `Q' ⊒ Q` answers `Q` by *filtering* its materialized pairs instead of
//!   re-traversing the graph, and a proven equivalence is a zero-cost hit;
//! * every search and every probe is metered by the
//!   [`rq_automata::governor`] protocol, so budgets degrade the cache to
//!   exact-match and cut off runaway queries instead of stalling the
//!   server.
//!
//! Modules: [`pool`] (fixed worker pool), [`cache`] (the semantic cache),
//! [`engine`] (the [`Engine`] front end with single-query and batch entry
//! points).
//!
//! ## Example
//!
//! ```
//! use rq_engine::{Engine, EngineConfig, Disposition};
//!
//! let db = rq_graph::generate::random_gnm(20, 60, &["a", "b"], 1);
//! let engine = Engine::new(db, EngineConfig { threads: 2, ..Default::default() });
//! let broad = engine.parse("(a|b)+").unwrap();
//! let narrow = engine.parse("a+").unwrap();
//! engine.run(&broad).unwrap();
//! // a+ ⊑ (a|b)+ — answered from the cached superset, not the graph.
//! let hit = engine.run(&narrow).unwrap();
//! assert_eq!(hit.disposition, Disposition::Subsumed);
//! ```

pub mod cache;
pub mod engine;
pub mod pool;

pub use cache::{Answer, CacheConfig, CacheStats, Lookup, SemanticCache};
pub use engine::{
    BatchItem, BatchReport, DeltaReport, Disposition, Engine, EngineConfig, QueryResult,
};
pub use pool::WorkerPool;
