//! The serving engine: a [`GraphDb`] behind a worker pool and a
//! [`SemanticCache`].
//!
//! Evaluation is the standard product-automaton BFS (§3.1), parallelized
//! across sources: for an all-pairs query, the `|V|` per-source searches
//! are striped over the pool; every worker meters its own [`Governor`]
//! spawned from the engine's [`Limits`], all sharing one cancellation
//! flag — the first exhausted worker cancels its peers, so a tripped
//! budget costs one search, not `threads` of them.

use crate::cache::{Answer, CacheConfig, CacheStats, Lookup, SemanticCache};
use crate::pool::WorkerPool;
use rq_automata::governor::{EngineError, Exhaustion, Governor, Limits, Resource};
use rq_automata::{Alphabet, LabelId};
use rq_core::TwoRpq;
use rq_graph::{Delta, GraphDb, NodeId};
use rq_metrics::span;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, RwLock};

/// Engine construction knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for parallel evaluation (clamped to
    /// `1 ..= max_threads`).
    pub threads: usize,
    /// Upper bound on `threads`, whether configured explicitly, detected
    /// from the machine, or set through `RQ_THREADS`. Guards against a
    /// huge `available_parallelism` (or a fat-fingered override) turning
    /// one engine into hundreds of OS threads.
    pub max_threads: usize,
    /// Per-worker budget for one query evaluation. Fuel is metered per
    /// worker; the wall-clock deadline spans the whole query.
    pub limits: Limits,
    /// Semantic-cache tuning (capacity, probe budgets, key mode).
    pub cache: CacheConfig,
    /// Run the `rq-analyze` pre-flight before keying: provably-empty
    /// queries short-circuit to ∅ without touching the pool, and union
    /// branches subsumed by siblings are dropped so answer-equivalent
    /// requests collide on the same canonical cache key.
    pub preflight: bool,
}

/// Default cap on detected worker threads ([`EngineConfig::max_threads`]).
pub const DEFAULT_MAX_THREADS: usize = 64;

/// Worker-thread count for [`EngineConfig::default`]: the `RQ_THREADS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`]; either way clamped to
/// `1 ..= max_threads`.
pub fn detect_threads(max_threads: usize) -> usize {
    let detected = std::env::var("RQ_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    detected.clamp(1, max_threads.max(1))
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: detect_threads(DEFAULT_MAX_THREADS),
            max_threads: DEFAULT_MAX_THREADS,
            limits: Limits::unlimited(),
            cache: CacheConfig::default(),
            preflight: true,
        }
    }
}

impl EngineConfig {
    /// Validate the configuration, returning a structured error instead
    /// of panicking (or silently misbehaving) later. Checks that the
    /// thread cap is non-zero, that `threads` respects it, and that the
    /// cache is not configured to probe with zero candidates *and* a
    /// zero-capacity store (a useless but historically panic-free combo
    /// is allowed; a zero cap alone is fine — it disables caching).
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.max_threads == 0 {
            return Err(EngineError::InvalidInput {
                message: "config: max_threads must be at least 1".into(),
            });
        }
        if self.threads == 0 {
            return Err(EngineError::InvalidInput {
                message: "config: threads must be at least 1 (use RQ_THREADS or \
                          EngineConfig::threads to size the pool)"
                    .into(),
            });
        }
        if self.threads > self.max_threads {
            return Err(EngineError::InvalidInput {
                message: format!(
                    "config: threads ({}) exceeds max_threads ({})",
                    self.threads, self.max_threads
                ),
            });
        }
        Ok(())
    }
}

/// How a query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Canonical-key cache hit.
    Exact,
    /// Containment probes proved equivalence to a cached query.
    Equivalent,
    /// Answered by filtering a subsuming cached result.
    Subsumed,
    /// Evaluated against the graph.
    Miss,
    /// Duplicate of an earlier query in the same batch (same key).
    Deduped,
    /// Pre-flight proved `L(Q) = ∅`: answered ∅ with no evaluation and no
    /// cache traffic.
    Empty,
}

impl fmt::Display for Disposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Disposition::Exact => "exact",
            Disposition::Equivalent => "equivalent",
            Disposition::Subsumed => "subsumed",
            Disposition::Miss => "miss",
            Disposition::Deduped => "deduped",
            Disposition::Empty => "empty",
        })
    }
}

/// A served answer and how it was obtained.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The pairs `Q(D)`.
    pub answer: Answer,
    /// Cache disposition.
    pub disposition: Disposition,
}

/// Per-query outcome of [`Engine::run_batch`], in input order.
#[derive(Debug)]
pub struct BatchItem {
    /// Index into the submitted batch.
    pub index: usize,
    /// The query's cache key.
    pub key: String,
    /// How the query was answered (duplicates report
    /// [`Disposition::Deduped`]).
    pub disposition: Disposition,
    /// The answer, or the budget that tripped while computing it.
    pub outcome: Result<Answer, EngineError>,
}

/// The outcome of a batch run.
#[derive(Debug)]
pub struct BatchReport {
    /// One item per submitted query, in input order.
    pub items: Vec<BatchItem>,
    /// Cache counters accumulated during this batch alone.
    pub stats: CacheStats,
}

struct Shared {
    alphabet: Alphabet,
    cache: SemanticCache,
}

/// The outcome of one [`Engine::apply_deltas`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaReport {
    /// Deltas that changed the graph.
    pub applied: usize,
    /// Idempotent no-ops (duplicate adds, removals of absent edges).
    pub ignored: usize,
    /// The graph epoch after the batch.
    pub epoch: u64,
    /// Cache entries evicted by alphabet-intersection invalidation.
    pub evicted: u64,
    /// Whether the batch interned new nodes (which additionally evicts
    /// nullable cached queries — ε ∈ L(Q) answers `(v, v)` for every
    /// node, including a fresh isolated one).
    pub added_nodes: bool,
}

/// A query-serving engine owning a versioned [`GraphDb`].
///
/// Queries must be parsed through [`Engine::parse`] (or against the
/// database's own alphabet) so that label identities line up across the
/// cache's containment probes.
///
/// The graph is mutable through [`Engine::apply_deltas`]: the database
/// lives behind an `RwLock<Arc<_>>`, in-flight evaluations pin the `Arc`
/// they started with, and each applied batch bumps a monotonically
/// increasing *graph epoch* used to fence cache writes against concurrent
/// ingest.
pub struct Engine {
    db: RwLock<Arc<GraphDb>>,
    /// Bumped once per [`Engine::apply_deltas`] batch that changed the
    /// graph. A query result computed against epoch `e` is only
    /// materialized into the cache if the epoch is still `e` at insert
    /// time.
    epoch: AtomicU64,
    pool: WorkerPool,
    shared: Mutex<Shared>,
    config: EngineConfig,
    /// Set when a poisoned shared lock was recovered: the cache was
    /// cleared and the engine now serves cache-off (every query evaluates
    /// the graph). Process death is strictly worse than a cold cache.
    degraded: AtomicBool,
}

impl Engine {
    /// Build an engine over `db`. Indexes are rebuilt here if stale, so a
    /// freshly deserialized database is safe to serve from.
    pub fn new(mut db: GraphDb, config: EngineConfig) -> Engine {
        db.ensure_indexes();
        let alphabet = db.alphabet().clone();
        Engine {
            db: RwLock::new(Arc::new(db)),
            epoch: AtomicU64::new(0),
            pool: WorkerPool::new(config.threads.clamp(1, config.max_threads.max(1))),
            shared: Mutex::new(Shared {
                alphabet,
                cache: SemanticCache::new(config.cache.clone()),
            }),
            config,
            degraded: AtomicBool::new(false),
        }
    }

    /// Lock the shared (alphabet + cache) state, *recovering* from poison
    /// instead of propagating it. A panic inside the critical section can
    /// leave the cache mid-mutation, so recovery drops every materialized
    /// answer (restoring the cache's invariants) and flips the engine
    /// into cache-off serving: requests keep being answered from the
    /// graph rather than the whole process aborting on the next lookup.
    fn shared(&self) -> std::sync::MutexGuard<'_, Shared> {
        match self.shared.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.cache.clear();
                self.shared.clear_poison();
                if !self.degraded.swap(true, Ordering::SeqCst) {
                    metrics::degraded(true);
                }
                metrics::lock_recovered();
                guard
            }
        }
    }

    /// Whether the engine has degraded to cache-off serving after
    /// recovering a poisoned lock.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Leave degraded (cache-off) mode and start caching again. The cache
    /// was cleared during recovery, so this is always sound — it merely
    /// re-enables materialization.
    pub fn reset_degraded(&self) {
        if self.degraded.swap(false, Ordering::SeqCst) {
            metrics::degraded(false);
        }
    }

    /// A snapshot of the served database. The returned `Arc` pins the
    /// graph version current at the moment of the call: a concurrent
    /// [`Engine::apply_deltas`] copy-on-writes a fresh version rather
    /// than mutating a pinned snapshot, so the reference stays coherent
    /// for as long as the caller holds it.
    pub fn db(&self) -> Arc<GraphDb> {
        Arc::clone(&self.db.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// The graph epoch: bumped once per [`Engine::apply_deltas`] batch
    /// that changed the graph.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Seed the epoch counter — serving layers restoring from a
    /// persistent store call this once at startup (with the store's
    /// epoch) before queries flow, so epochs stay monotone across
    /// restarts.
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::SeqCst);
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Snapshot of the engine's alphabet (the database's labels plus any
    /// labels interned by parsed queries).
    pub fn alphabet(&self) -> Alphabet {
        self.shared().alphabet.clone()
    }

    /// Parse a query against the engine's shared alphabet.
    pub fn parse(&self, text: &str) -> Result<TwoRpq, EngineError> {
        let mut shared = self.shared();
        TwoRpq::parse(text, &mut shared.alphabet).map_err(|e| EngineError::InvalidInput {
            message: e.to_string(),
        })
    }

    /// Cache counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared().cache.stats()
    }

    /// Drop all materialized answers (counters are kept).
    pub fn clear_cache(&self) {
        self.shared().cache.clear();
    }

    /// Serve the all-pairs answer `Q(D)`, consulting and feeding the
    /// semantic cache.
    pub fn run(&self, q: &TwoRpq) -> Result<QueryResult, EngineError> {
        self.run_with(q, &self.config.limits, None)
    }

    /// Serve `Q(D)` under request-specific `limits` and an optional
    /// external cancellation flag. The flag is shared with every worker
    /// stripe, so setting it from another thread (a request timeout, a
    /// server drain) stops the evaluation cooperatively at the next
    /// governor poll; the result surfaces as
    /// [`EngineError::Exhausted`] with [`Resource::Cancelled`].
    pub fn run_with(
        &self,
        q: &TwoRpq,
        limits: &Limits,
        cancel: Option<Arc<AtomicBool>>,
    ) -> Result<QueryResult, EngineError> {
        let mut span = span::start("engine.run");
        let start = std::time::Instant::now();
        let result = self.run_inner(q, limits, cancel);
        if span.active() {
            match &result {
                Ok(r) => {
                    span.record("disposition", r.disposition);
                    span.record("pairs", r.answer.len());
                }
                Err(e) => span.record("error", e),
            }
        }
        metrics::query(&result, start.elapsed());
        result
    }

    fn run_inner(
        &self,
        q: &TwoRpq,
        limits: &Limits,
        cancel: Option<Arc<AtomicBool>>,
    ) -> Result<QueryResult, EngineError> {
        // Degraded (post-recovery) serving: skip all cache traffic — the
        // answer still comes from the graph.
        if self.is_degraded() {
            let (q_eff, db) = {
                let mut shared = self.shared();
                let Shared { alphabet, .. } = &mut *shared;
                let q_eff = if self.config.preflight {
                    let p = rq_analyze::preflight(q, alphabet, &self.config.cache.probe_limits);
                    if p.action == rq_analyze::PreflightAction::Empty {
                        return Ok(QueryResult {
                            answer: Arc::new(BTreeSet::new()),
                            disposition: Disposition::Empty,
                        });
                    }
                    p.query
                } else {
                    q.clone()
                };
                (q_eff, self.db())
            };
            let sources: Vec<NodeId> = db.nodes().collect();
            let answer = Arc::new(self.eval_sources(&q_eff, &db, sources, limits, cancel)?);
            return Ok(QueryResult {
                answer,
                disposition: Disposition::Miss,
            });
        }
        // The database snapshot and the epoch are captured inside the same
        // critical section as the cache lookup: `apply_deltas` mutates
        // graph, epoch, and cache under this very lock, so the triple is
        // mutually consistent — a Subsumed superset is always filtered
        // against the graph version it was cached for.
        let (key, lookup, q_eff, db, epoch_at_lookup) = {
            let mut shared = self.shared();
            let Shared { alphabet, cache } = &mut *shared;
            // Pre-flight (rq-analyze): short-circuit ∅-language queries
            // and normalize away union branches a sibling subsumes, so the
            // canonical key below collides for answer-equivalent requests.
            let q_eff = if self.config.preflight {
                let p = rq_analyze::preflight(q, alphabet, &self.config.cache.probe_limits);
                if p.action == rq_analyze::PreflightAction::Empty {
                    return Ok(QueryResult {
                        answer: Arc::new(BTreeSet::new()),
                        disposition: Disposition::Empty,
                    });
                }
                p.query
            } else {
                q.clone()
            };
            let key = cache.key_of(&q_eff, alphabet);
            let lookup = cache.lookup(&q_eff, &key, alphabet);
            (key, lookup, q_eff, self.db(), self.epoch())
        };
        let q = &q_eff;
        // Graph work happens outside the lock: concurrent callers only
        // contend on key computation and probes.
        let (answer, disposition) = match lookup {
            Lookup::Exact(answer) => {
                return Ok(QueryResult {
                    answer,
                    disposition: Disposition::Exact,
                })
            }
            Lookup::Equivalent(answer) => {
                return Ok(QueryResult {
                    answer,
                    disposition: Disposition::Equivalent,
                })
            }
            Lookup::Subsumed { superset, .. } => {
                // Q(D) ⊆ Q'(D), so only sources occurring in Q'(D) can
                // answer Q: re-run the product BFS restricted to those
                // sources — the batched form of a per-pair membership
                // re-check.
                let mut sources: Vec<NodeId> = superset.iter().map(|&(x, _)| x).collect();
                sources.dedup();
                let answer = Arc::new(self.eval_sources(q, &db, sources, limits, cancel)?);
                (answer, Disposition::Subsumed)
            }
            Lookup::Miss => {
                let sources: Vec<NodeId> = db.nodes().collect();
                let answer = Arc::new(self.eval_sources(q, &db, sources, limits, cancel)?);
                (answer, Disposition::Miss)
            }
        };
        let mut shared = self.shared();
        // The recovery may have happened mid-request (the poison was
        // observed by this very lock call): don't materialize into a
        // cache the engine has just stopped trusting. Likewise, if a
        // delta batch landed while we were evaluating, the answer is for
        // a superseded graph version — correct to *return* (the query
        // linearizes at lookup time) but wrong to *cache*.
        if !self.is_degraded() && self.epoch() == epoch_at_lookup {
            shared.cache.insert(key, q, Arc::clone(&answer));
        }
        Ok(QueryResult {
            answer,
            disposition,
        })
    }

    /// Apply a batch of edge deltas to the served graph, bump the graph
    /// epoch, and invalidate exactly the cache entries the batch could
    /// have staled.
    ///
    /// Ordering inside the critical section:
    ///
    /// 1. every delta label is interned through the *shared* alphabet
    ///    first, then the database alphabet is aligned to it — so a label
    ///    first seen in a parsed query and later ingested as data gets
    ///    the same [`LabelId`] on both paths;
    /// 2. the graph is patched via [`Arc::make_mut`]: in place when no
    ///    in-flight evaluation pins the current version, copy-on-write
    ///    when one does (pinned snapshots never mutate under a reader);
    /// 3. if anything changed, the epoch is bumped once for the whole
    ///    batch and [`SemanticCache::invalidate`] evicts entries whose
    ///    automaton alphabet intersects the touched labels (plus nullable
    ///    entries when nodes were added). Entries over disjoint labels
    ///    stay live and keep hitting.
    ///
    /// Durability is the caller's concern: persistent serving layers
    /// append to their store (and fsync) *before* calling this, so a
    /// delta is never observable by queries unless it would survive a
    /// crash.
    pub fn apply_deltas(&self, deltas: &[Delta]) -> DeltaReport {
        let mut span = span::start("engine.apply_deltas");
        let mut shared = self.shared();
        let labels: Vec<LabelId> = deltas
            .iter()
            .map(|d| shared.alphabet.intern(d.label_name()))
            .collect();
        let mut touched: BTreeSet<LabelId> = BTreeSet::new();
        let mut applied = 0usize;
        let added_nodes;
        {
            let mut db_guard = self.db.write().unwrap_or_else(|p| p.into_inner());
            let db = Arc::make_mut(&mut db_guard);
            db.align_alphabet(&shared.alphabet);
            let nodes_before = db.num_nodes();
            for (d, &l) in deltas.iter().zip(&labels) {
                if db.apply_delta(d) {
                    applied += 1;
                    touched.insert(l);
                }
            }
            added_nodes = db.num_nodes() > nodes_before;
        }
        let (epoch, evicted) = if applied > 0 || added_nodes {
            let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
            let evicted = shared.cache.invalidate(&touched, added_nodes);
            (epoch, evicted)
        } else {
            (self.epoch(), 0)
        };
        drop(shared);
        let report = DeltaReport {
            applied,
            ignored: deltas.len() - applied,
            epoch,
            evicted,
            added_nodes,
        };
        metrics::deltas(&report);
        if span.active() {
            span.record("applied", applied);
            span.record("ignored", report.ignored);
            span.record("touched_labels", touched.len());
            span.record("evicted", evicted);
            span.record("epoch", epoch);
        }
        report
    }

    /// Parse and serve in one step.
    pub fn run_query(&self, text: &str) -> Result<QueryResult, EngineError> {
        let q = self.parse(text)?;
        self.run(&q)
    }

    /// Governed single-source evaluation (no cache: single-source answers
    /// are not materialized).
    pub fn run_from(&self, q: &TwoRpq, source: NodeId) -> Result<BTreeSet<NodeId>, EngineError> {
        let db = self.db();
        if source.index() >= db.num_nodes() {
            return Err(EngineError::InvalidInput {
                message: format!("source node #{} out of range", source.index()),
            });
        }
        let gov = self.config.limits.governor();
        Ok(q.evaluate_from_governed(&db, source, &gov)?)
    }

    /// Serve a batch: queries are deduplicated by cache key, ordered so
    /// that (heuristically) subsuming queries evaluate first — seeding the
    /// cache for the rest — and each evaluation fans out across the pool.
    pub fn run_batch(&self, queries: &[TwoRpq]) -> BatchReport {
        let mut span = span::start("engine.batch");
        let batch_start = std::time::Instant::now();
        let stats_before = self.cache_stats();
        // Group by cache key.
        let keys: Vec<String> = {
            let mut shared = self.shared();
            let Shared { alphabet, cache } = &mut *shared;
            queries.iter().map(|q| cache.key_of(q, alphabet)).collect()
        };
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new(); // (rep, members)
        for (i, key) in keys.iter().enumerate() {
            match groups.iter_mut().find(|(rep, _)| &keys[*rep] == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((i, Vec::new())),
            }
        }
        // Probe pairwise containment among representatives and evaluate
        // queries that subsume more of the batch first. The probes reuse
        // the cache's budgeted facade, so an adversarial batch degrades to
        // arbitrary order, not to a stall.
        let alphabet = self.alphabet();
        let probe_limits = self.config.cache.probe_limits.clone();
        let mut rank: Vec<(usize, usize)> = groups
            .iter()
            .enumerate()
            .map(|(gi, (rep, _))| {
                let subsumes = groups
                    .iter()
                    .filter(|(other, _)| {
                        *other != *rep
                            && rq_core::containment::facade::check_quick(
                                &queries[*other],
                                &queries[*rep],
                                &alphabet,
                                &probe_limits,
                            )
                            .is_contained()
                    })
                    .count();
                (gi, subsumes)
            })
            .collect();
        rank.sort_by_key(|&(gi, subsumes)| (std::cmp::Reverse(subsumes), gi));

        let mut items: Vec<Option<BatchItem>> = (0..queries.len()).map(|_| None).collect();
        for (gi, _) in rank {
            let (rep, members) = &groups[gi];
            let result = self.run(&queries[*rep]);
            let (disposition, outcome) = match result {
                Ok(r) => (r.disposition, Ok(r.answer)),
                Err(e) => (Disposition::Miss, Err(e)),
            };
            for &m in members {
                items[m] = Some(BatchItem {
                    index: m,
                    key: keys[m].clone(),
                    disposition: Disposition::Deduped,
                    outcome: match &outcome {
                        Ok(a) => Ok(Arc::clone(a)),
                        Err(e) => Err(e.clone()),
                    },
                });
            }
            items[*rep] = Some(BatchItem {
                index: *rep,
                key: keys[*rep].clone(),
                disposition,
                outcome,
            });
        }
        let after = self.cache_stats();
        let report = BatchReport {
            items: items
                .into_iter()
                .map(|i| i.expect("every index assigned"))
                .collect(),
            stats: CacheStats {
                exact: after.exact - stats_before.exact,
                equivalent: after.equivalent - stats_before.equivalent,
                subsumed: after.subsumed - stats_before.subsumed,
                misses: after.misses - stats_before.misses,
                probes: after.probes - stats_before.probes,
                probe_exhausted: after.probe_exhausted - stats_before.probe_exhausted,
                evictions: after.evictions - stats_before.evictions,
                invalidated: after.invalidated - stats_before.invalidated,
            },
        };
        if span.active() {
            span.record("queries", report.items.len());
            span.record("stats", report.stats);
        }
        metrics::batch(&report, batch_start.elapsed());
        report
    }

    /// Stripe `sources` across the pool, one governed product BFS per
    /// source, merging the per-worker pair sets. When `cancel` is given,
    /// every stripe *watches* it read-only — setting it from another
    /// thread (a request timeout, a server drain) stops the evaluation,
    /// but the internal first-failure peer-cancel path runs on its own
    /// flag, so an exhausted attempt never flips the caller's flag and a
    /// retry with the same flag starts clean.
    fn eval_sources(
        &self,
        q: &TwoRpq,
        db: &Arc<GraphDb>,
        sources: Vec<NodeId>,
        limits: &Limits,
        cancel: Option<Arc<AtomicBool>>,
    ) -> Result<BTreeSet<(NodeId, NodeId)>, EngineError> {
        if sources.is_empty() {
            return Ok(BTreeSet::new());
        }
        let mut eval_span = span::start("engine.eval");
        let stripes = self.pool.threads().min(sources.len());
        if eval_span.active() {
            eval_span.record("sources", sources.len());
            eval_span.record("stripes", stripes);
        }
        // Hand the request's trace to every stripe, parented under the
        // eval span, so worker-side spans (stripe, per-source BFS) land
        // in the same tree even though they run on pool threads.
        let trace_parent = span::current_context().map(|(ctx, _)| (ctx, eval_span.id()));
        let peer_cancel = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::<Result<BTreeSet<(NodeId, NodeId)>, Exhaustion>>();
        for s in 0..stripes {
            let db = Arc::clone(db);
            let q = q.clone();
            let tx = tx.clone();
            let peer_cancel = Arc::clone(&peer_cancel);
            let external = cancel.clone();
            let limits = limits.clone();
            let trace_parent = trace_parent.clone();
            let mine: Vec<NodeId> = sources.iter().skip(s).step_by(stripes).copied().collect();
            self.pool.execute(move || {
                let _trace_guard = trace_parent
                    .as_ref()
                    .map(|(ctx, parent)| span::install(ctx, *parent));
                let mut stripe_span = span::start("engine.stripe");
                let mut gov = Governor::with_cancel(limits, peer_cancel);
                if let Some(flag) = external {
                    gov = gov.watching(flag);
                }
                let mut out = BTreeSet::new();
                let mut failed = None;
                for x in mine {
                    match q.evaluate_from_governed(&db, x, &gov) {
                        Ok(ys) => out.extend(ys.into_iter().map(|y| (x, y))),
                        Err(e) => {
                            gov.cancel(); // stop the peers
                            failed = Some(e);
                            break;
                        }
                    }
                }
                if stripe_span.active() {
                    stripe_span.record("stripe", s);
                    stripe_span.record("fuel", gov.fuel_spent());
                    if failed.is_some() {
                        stripe_span.record("exhausted", "true");
                    }
                }
                drop(stripe_span);
                metrics::worker_fuel(gov.fuel_spent(), failed.is_none());
                let _ = tx.send(match failed {
                    None => Ok(out),
                    Some(e) => Err(e),
                });
            });
        }
        drop(tx);
        let mut merged = BTreeSet::new();
        let mut error: Option<Exhaustion> = None;
        for result in rx {
            match result {
                // Always extend the larger set with the smaller one, so a
                // single stripe (or one dominant stripe) pays no re-insert.
                Ok(part) => {
                    if part.len() > merged.len() {
                        let smaller = std::mem::replace(&mut merged, part);
                        merged.extend(smaller);
                    } else {
                        merged.extend(part);
                    }
                }
                // Peers cancelled by the first failure also report
                // `Cancelled`; keep the budget that actually tripped.
                Err(e) => {
                    let keep_new = match &error {
                        None => true,
                        Some(prev) => {
                            prev.resource == Resource::Cancelled
                                && e.resource != Resource::Cancelled
                        }
                    };
                    if keep_new {
                        error = Some(e);
                    }
                }
            }
        }
        match error {
            Some(e) => Err(EngineError::Exhausted(e)),
            None => Ok(merged),
        }
    }
}

/// Engine-level metrics: per-query and per-batch latency histograms,
/// disposition/error counters, and per-worker governor fuel consumption
/// split by outcome. JSON-lines trace events are no longer emitted here:
/// the `engine.run` / `engine.batch` spans opened by the serving path
/// emit them on completion (one schema, one sink — see
/// `rq_metrics::trace`). The latency histograms observe *traced* so
/// their exposition buckets carry trace-id exemplars.
mod metrics {
    use super::{BatchReport, DeltaReport, Disposition, EngineError, QueryResult};
    use rq_metrics::{fuel_buckets, global, latency_buckets_us, Counter, Gauge, Histogram};
    use std::sync::{Arc, OnceLock};
    use std::time::Duration;

    fn queries_total(d: Disposition) -> &'static Counter {
        static CELLS: OnceLock<[Arc<Counter>; 6]> = OnceLock::new();
        let cells = CELLS.get_or_init(|| {
            [
                "exact",
                "equivalent",
                "subsumed",
                "miss",
                "deduped",
                "empty",
            ]
            .map(|d| {
                global().counter_with(
                    "rq_engine_queries_total",
                    &[("disposition", d)],
                    "Queries served, by cache disposition",
                )
            })
        });
        let i = match d {
            Disposition::Exact => 0,
            Disposition::Equivalent => 1,
            Disposition::Subsumed => 2,
            Disposition::Miss => 3,
            Disposition::Deduped => 4,
            Disposition::Empty => 5,
        };
        &cells[i]
    }

    pub(super) fn query(result: &Result<QueryResult, EngineError>, elapsed: Duration) {
        static CELLS: OnceLock<(Arc<Histogram>, Arc<Counter>)> = OnceLock::new();
        let (latency, errors) = CELLS.get_or_init(|| {
            (
                global().histogram(
                    "rq_engine_query_latency_us",
                    "End-to-end latency of one served query, microseconds",
                    &latency_buckets_us(),
                ),
                global().counter(
                    "rq_engine_query_errors_total",
                    "Queries that failed (budget exhausted or invalid input)",
                ),
            )
        });
        let us = elapsed.as_micros() as u64;
        latency.observe_traced(us);
        match result {
            Ok(r) => queries_total(r.disposition).inc(),
            Err(_) => errors.inc(),
        }
    }

    pub(super) fn batch(report: &BatchReport, elapsed: Duration) {
        static CELLS: OnceLock<(Arc<Counter>, Arc<Histogram>)> = OnceLock::new();
        let (batches, latency) = CELLS.get_or_init(|| {
            (
                global().counter("rq_engine_batches_total", "Batches served"),
                global().histogram(
                    "rq_engine_batch_latency_us",
                    "End-to-end latency of one served batch, microseconds",
                    &latency_buckets_us(),
                ),
            )
        });
        batches.inc();
        let us = elapsed.as_micros() as u64;
        latency.observe_traced(us);
        let deduped = report
            .items
            .iter()
            .filter(|i| i.disposition == Disposition::Deduped)
            .count();
        for _ in 0..deduped {
            queries_total(Disposition::Deduped).inc();
        }
    }

    /// One poisoned shared lock recovered (cache cleared, poison flag
    /// reset).
    pub(super) fn lock_recovered() {
        static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
        CELL.get_or_init(|| {
            global().counter(
                "rq_engine_lock_recoveries_total",
                "Poisoned engine locks recovered by clearing the cache",
            )
        })
        .inc();
    }

    /// Flip the degraded-serving gauge (1 while the engine serves
    /// cache-off after a poison recovery).
    pub(super) fn degraded(on: bool) {
        static CELL: OnceLock<Arc<rq_metrics::Gauge>> = OnceLock::new();
        CELL.get_or_init(|| {
            global().gauge(
                "rq_engine_degraded",
                "1 while the engine is serving cache-off after recovering a poisoned lock",
            )
        })
        .set(u64::from(on));
    }

    /// Fuel one worker's governor metered over its stripe of sources,
    /// split by whether the stripe completed or tripped a budget.
    pub(super) fn worker_fuel(fuel_spent: u64, ok: bool) {
        static CELLS: OnceLock<[Arc<Histogram>; 2]> = OnceLock::new();
        let cells = CELLS.get_or_init(|| {
            ["ok", "exhausted"].map(|o| {
                global().histogram_with(
                    "rq_governor_fuel_spent",
                    &[("outcome", o)],
                    "Fuel consumed per worker evaluation stripe, by outcome",
                    &fuel_buckets(),
                )
            })
        });
        cells[if ok { 0 } else { 1 }].observe(fuel_spent);
    }

    /// One applied delta batch: applied/ignored record counters, the
    /// cache entries it invalidated, and the resulting graph epoch.
    pub(super) fn deltas(report: &DeltaReport) {
        type DeltaCells = (Arc<Counter>, Arc<Counter>, Arc<Counter>, Arc<Gauge>);
        static CELLS: OnceLock<DeltaCells> = OnceLock::new();
        let (applied, ignored, invalidated, epoch) = CELLS.get_or_init(|| {
            (
                global().counter(
                    "rq_engine_deltas_applied_total",
                    "Edge deltas that changed the served graph",
                ),
                global().counter(
                    "rq_engine_deltas_ignored_total",
                    "Edge deltas that were idempotent no-ops",
                ),
                global().counter(
                    "rq_engine_cache_invalidated_total",
                    "Cache entries evicted by delta-driven invalidation",
                ),
                global().gauge(
                    "rq_engine_graph_epoch",
                    "Monotone graph version, bumped once per applied delta batch",
                ),
            )
        });
        applied.add(report.applied as u64);
        ignored.add(report.ignored as u64);
        invalidated.add(report.evicted);
        epoch.set(report.epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_graph::generate;

    fn engine(threads: usize) -> Engine {
        let db = generate::random_gnm(30, 90, &["a", "b"], 7);
        Engine::new(
            db,
            EngineConfig {
                threads,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn parallel_matches_sequential() {
        let eng = engine(3);
        for text in ["a+", "(a|b)*", "a b- a", "b (a|b-)+"] {
            let q = eng.parse(text).unwrap();
            let expect = q.evaluate(&eng.db());
            let got = eng.run(&q).unwrap();
            assert_eq!(*got.answer, expect, "{text}");
        }
    }

    #[test]
    fn second_run_is_an_exact_hit() {
        let eng = engine(2);
        let q = eng.parse("a (a|b)*").unwrap();
        assert_eq!(eng.run(&q).unwrap().disposition, Disposition::Miss);
        assert_eq!(eng.run(&q).unwrap().disposition, Disposition::Exact);
        assert_eq!(eng.cache_stats().exact, 1);
    }

    #[test]
    fn subsumption_answers_by_filtering() {
        let eng = engine(2);
        let big = eng.parse("(a|b)+").unwrap();
        let small = eng.parse("a+").unwrap();
        assert_eq!(eng.run(&big).unwrap().disposition, Disposition::Miss);
        let got = eng.run(&small).unwrap();
        assert_eq!(got.disposition, Disposition::Subsumed);
        assert_eq!(*got.answer, small.evaluate(&eng.db()));
    }

    #[test]
    fn batch_dedups_and_orders_subsumers_first() {
        let eng = engine(2);
        let texts = ["a+", "(a|b)+", "a+", "b+"];
        let queries: Vec<TwoRpq> = texts.iter().map(|t| eng.parse(t).unwrap()).collect();
        let report = eng.run_batch(&queries);
        assert_eq!(report.items.len(), 4);
        assert_eq!(report.items[2].disposition, Disposition::Deduped);
        // (a|b)+ evaluated first (it subsumes both others), so a+ and b+
        // are subsumption hits.
        assert_eq!(report.items[1].disposition, Disposition::Miss);
        assert_eq!(report.items[0].disposition, Disposition::Subsumed);
        assert_eq!(report.items[3].disposition, Disposition::Subsumed);
        for (i, item) in report.items.iter().enumerate() {
            let expect = queries[i].evaluate(&eng.db());
            assert_eq!(**item.outcome.as_ref().unwrap(), expect, "{}", texts[i]);
        }
        assert_eq!(report.stats.misses, 1);
        assert_eq!(report.stats.subsumed, 2);
    }

    #[test]
    fn deadline_zero_exhausts() {
        let db = generate::random_gnm(60, 180, &["a", "b"], 9);
        let eng = Engine::new(
            db,
            EngineConfig {
                threads: 2,
                limits: Limits::unlimited().with_fuel(5),
                ..EngineConfig::default()
            },
        );
        let q = eng.parse("(a|b)*").unwrap();
        match eng.run(&q) {
            Err(EngineError::Exhausted(e)) => {
                assert_ne!(e.resource, Resource::Cancelled, "report the real budget");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn preflight_short_circuits_empty_queries() {
        let eng = engine(2);
        let q = eng.parse("a ∅ b").unwrap();
        let got = eng.run(&q).unwrap();
        assert_eq!(got.disposition, Disposition::Empty);
        assert!(got.answer.is_empty());
        // No cache traffic either: a re-run is Empty again, not Exact.
        assert_eq!(eng.run(&q).unwrap().disposition, Disposition::Empty);
        assert_eq!(eng.cache_stats().misses, 0);
    }

    #[test]
    fn preflight_normalization_creates_cache_collisions() {
        let eng = engine(2);
        // Lemma 2: p ⊑ p p⁻ p, so `a | a a- a` normalizes to `a a- a` and
        // must land on the cached entry for the plain detour query.
        let detour = eng.parse("a a- a").unwrap();
        let unioned = eng.parse("a | a a- a").unwrap();
        assert_eq!(eng.run(&detour).unwrap().disposition, Disposition::Miss);
        let got = eng.run(&unioned).unwrap();
        assert_eq!(got.disposition, Disposition::Exact);
        // And the answers are the full union's answers (the dropped branch
        // was subsumed, so nothing is lost).
        assert_eq!(*got.answer, unioned.evaluate(&eng.db()));
    }

    #[test]
    fn preflight_off_preserves_old_behavior() {
        let db = generate::random_gnm(30, 90, &["a", "b"], 7);
        let eng = Engine::new(
            db,
            EngineConfig {
                threads: 2,
                preflight: false,
                ..EngineConfig::default()
            },
        );
        let q = eng.parse("a ∅ b").unwrap();
        let got = eng.run(&q).unwrap();
        // Without pre-flight the empty query evaluates like any other.
        assert_eq!(got.disposition, Disposition::Miss);
        assert!(got.answer.is_empty());
    }

    #[test]
    fn poisoned_lock_recovers_to_cache_off_serving() {
        let eng = engine(2);
        let q = eng.parse("a+").unwrap();
        assert_eq!(eng.run(&q).unwrap().disposition, Disposition::Miss);
        assert_eq!(eng.run(&q).unwrap().disposition, Disposition::Exact);
        // Poison the shared lock: a thread panics while holding it.
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                let _guard = eng.shared.lock().unwrap();
                panic!("poison the engine lock");
            });
            assert!(h.join().is_err());
        });
        // Recovery: the next request is served from the graph (cache-off),
        // not a process abort, and the answer is still correct.
        let got = eng.run(&q).unwrap();
        assert!(eng.is_degraded());
        assert_eq!(got.disposition, Disposition::Miss);
        assert_eq!(*got.answer, q.evaluate(&eng.db()));
        // Degraded mode is sticky until reset; then the (cleared) cache
        // warms back up normally.
        assert_eq!(eng.run(&q).unwrap().disposition, Disposition::Miss);
        eng.reset_degraded();
        assert!(!eng.is_degraded());
        assert_eq!(eng.run(&q).unwrap().disposition, Disposition::Miss);
        assert_eq!(eng.run(&q).unwrap().disposition, Disposition::Exact);
    }

    #[test]
    fn external_cancel_flag_stops_run_with() {
        let db = generate::random_gnm(60, 180, &["a", "b"], 9);
        let eng = Engine::new(
            db,
            EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
        );
        let q = eng.parse("(a|b)*").unwrap();
        let cancel = Arc::new(AtomicBool::new(true)); // cancelled before start
        match eng.run_with(&q, &Limits::unlimited(), Some(cancel)) {
            Err(EngineError::Exhausted(e)) => assert_eq!(e.resource, Resource::Cancelled),
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn internal_exhaustion_never_flips_the_callers_cancel_flag() {
        let db = generate::random_gnm(200, 800, &["a", "b"], 9);
        let eng = Engine::new(
            db,
            EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
        );
        let q = eng.parse("(a|b)*").unwrap();
        let cancel = Arc::new(AtomicBool::new(false));
        // A fuel-starved run exhausts inside a stripe, which cancels its
        // peers — over an *internal* flag. The caller's flag must come
        // back untouched, and the error must name the real budget, so
        // the caller can retry with the same flag without the previous
        // attempt's peer-cancel masquerading as an external cancellation.
        let starved = Limits::unlimited().with_fuel(50);
        match eng.run_with(&q, &starved, Some(Arc::clone(&cancel))) {
            Err(EngineError::Exhausted(e)) => assert_eq!(e.resource, Resource::Fuel),
            other => panic!("expected fuel exhaustion, got {other:?}"),
        }
        assert!(!cancel.load(Ordering::SeqCst), "caller's flag was flipped");
        // The retry (same flag, real budget) now succeeds.
        assert!(eng.run_with(&q, &Limits::unlimited(), Some(cancel)).is_ok());
    }

    #[test]
    fn config_validation_rejects_bad_thread_counts() {
        let ok = EngineConfig::default();
        assert!(ok.validate().is_ok());
        let zero = EngineConfig {
            threads: 0,
            ..EngineConfig::default()
        };
        assert!(matches!(
            zero.validate(),
            Err(EngineError::InvalidInput { .. })
        ));
        let over = EngineConfig {
            threads: 9,
            max_threads: 4,
            ..EngineConfig::default()
        };
        assert!(matches!(
            over.validate(),
            Err(EngineError::InvalidInput { .. })
        ));
        let no_cap = EngineConfig {
            max_threads: 0,
            ..EngineConfig::default()
        };
        assert!(matches!(
            no_cap.validate(),
            Err(EngineError::InvalidInput { .. })
        ));
    }

    #[test]
    fn detected_threads_respect_the_cap() {
        assert_eq!(detect_threads(1), 1);
        let n = detect_threads(2);
        assert!((1..=2).contains(&n));
        assert!(detect_threads(usize::MAX) >= 1);
        // The default config is always internally consistent.
        let d = EngineConfig::default();
        assert!(d.threads >= 1 && d.threads <= d.max_threads);
    }

    #[test]
    fn run_from_rejects_out_of_range() {
        let eng = engine(1);
        let q = eng.parse("a").unwrap();
        assert!(matches!(
            eng.run_from(&q, rq_graph::NodeId(1000)),
            Err(EngineError::InvalidInput { .. })
        ));
    }
}
